// Ablation of the data decomposition (generalising the paper's N=1200
// comparison): heterogeneous speed-proportional decomposition (Eq. 3) vs
// equal decomposition, across problem sizes and both stencil variants.
// Equal decomposition makes the IPCs the stragglers and throws away the
// effective parallelism -- the paper notes that 6 Sparc2s alone then beat
// all 12 processors.
#include <cstdio>

#include "bench/common.hpp"
#include "core/decompose.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace netpart;
  const Network net = presets::paper_testbed();
  const ProcessorConfig all{6, 6};
  const ProcessorConfig sparc_only{6, 0};

  for (const bool overlap : {false, true}) {
    Table table({"N", "balanced 12p ms", "equal 12p ms",
                 "6 Sparc2s ms", "equal worse by", "6-Sparc2 beats equal"});
    for (std::int64_t n : bench::paper_sizes()) {
      const apps::StencilConfig cfg{.n = static_cast<int>(n),
                                    .iterations = 10,
                                    .overlap = overlap};
      const ComputationSpec spec = apps::make_stencil_spec(cfg);
      ExecutionOptions options;
      options.compute_jitter = 0.01;

      const Placement placement = contiguous_placement(net, all);
      const PartitionVector balanced =
          balanced_partition(net, all, clusters_by_speed(net), n);
      const PartitionVector equal =
          equal_partition(static_cast<int>(placement.size()), n);
      const double t_bal =
          average_elapsed_ms(net, spec, placement, balanced, options, 3);
      const double t_eq =
          average_elapsed_ms(net, spec, placement, equal, options, 3);
      const double t_sparc = bench::measured_stencil_ms(net, cfg, sparc_only);

      table.add_row({std::to_string(n), bench::ms(t_bal), bench::ms(t_eq),
                     bench::ms(t_sparc),
                     format_double(t_eq / t_bal, 2) + "x",
                     t_sparc < t_eq ? "yes" : "no"});
    }
    std::printf("%s\n",
                table
                    .render(std::string("Decomposition ablation (") +
                            (overlap ? "STEN-2" : "STEN-1") +
                            ", 6 Sparc2 + 6 IPC)")
                    .c_str());
  }
  return 0;
}

// Ablation of the Section 5 heuristic's design choices:
//
//  1. Heuristic vs exhaustive configuration search: the locality-first
//     ordering with per-cluster binary search against the true argmin of
//     the same objective, over random heterogeneous networks.  Reports the
//     T_c regret and the evaluation counts (K log2 P vs prod(N_i + 1)).
//
//  2. Cluster-contiguous vs round-robin task placement: why communication
//     locality matters -- round-robin maximises router crossings.
#include <cstdio>

#include "bench/common.hpp"
#include "core/decompose.hpp"
#include "topo/comm_cycle.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace netpart {
namespace {

void heuristic_vs_exhaustive() {
  Table table({"seed", "K", "P", "heuristic T_c", "exhaustive T_c",
               "regret %", "evals heur", "evals exh"});
  RunningStats regret;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const Network net = presets::random_network(rng, 4, 6);
    CalibrationParams params;
    params.topologies = {Topology::OneD};
    const CalibrationResult cal = calibrate(net, params);
    const ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = 900, .iterations = 10, .overlap = false});
    CycleEstimator estimator(net, cal.db, spec);
    const AvailabilitySnapshot snap = bench::idle_snapshot(net);

    const PartitionResult heur = partition(estimator, snap);
    const PartitionResult exh = exhaustive_partition(estimator, snap);
    const double pct =
        100.0 * (heur.estimate.t_c_ms / exh.estimate.t_c_ms - 1.0);
    regret.add(pct);
    table.add_row({std::to_string(seed), std::to_string(net.num_clusters()),
                   std::to_string(snap.total()),
                   format_double(heur.estimate.t_c_ms, 2),
                   format_double(exh.estimate.t_c_ms, 2),
                   format_double(pct, 1), std::to_string(heur.evaluations),
                   std::to_string(exh.evaluations)});
  }
  std::printf("%s\n",
              table.render("Heuristic vs exhaustive search "
                           "(stencil N=900, random 4-cluster networks)")
                  .c_str());
  std::printf("mean regret %.1f%%, max %.1f%%\n\n", regret.mean(),
              regret.max());
}

void placement_ablation() {
  const Network net = presets::paper_testbed();
  Table table({"N", "contiguous ms", "round-robin ms", "slowdown",
               "crossings contig", "crossings rr"});
  for (std::int64_t n : bench::paper_sizes()) {
    const apps::StencilConfig cfg{.n = static_cast<int>(n),
                                  .iterations = 10,
                                  .overlap = false};
    const ComputationSpec spec = apps::make_stencil_spec(cfg);
    const ProcessorConfig config{6, 6};
    const PartitionVector part = balanced_partition(
        net, config, clusters_by_speed(net), n);

    const Placement contig = contiguous_placement(net, config);
    const Placement rr = round_robin_placement(net, config);
    // Round-robin interleaves clusters, so Eq. 3's rank-major order no
    // longer matches processor speeds; rebuild the partition rank-by-rank.
    std::vector<std::int64_t> rr_a(rr.size());
    {
      // Assign each rank the share its processor speed earns.
      double weight_sum = 0.0;
      std::vector<double> w(rr.size());
      for (std::size_t i = 0; i < rr.size(); ++i) {
        w[i] = 1.0 / net.cluster(rr[i].cluster).type().flop_time.as_seconds();
        weight_sum += w[i];
      }
      std::int64_t used = 0;
      for (std::size_t i = 0; i < rr.size(); ++i) {
        rr_a[i] = static_cast<std::int64_t>(
            static_cast<double>(n) * w[i] / weight_sum);
        used += rr_a[i];
      }
      for (std::size_t i = 0; used < n; ++i, ++used) ++rr_a[i % rr_a.size()];
    }
    const PartitionVector rr_part{rr_a};

    ExecutionOptions options;
    const double t_contig =
        average_elapsed_ms(net, spec, contig, part, options, 3);
    const double t_rr =
        average_elapsed_ms(net, spec, rr, rr_part, options, 3);
    table.add_row(
        {std::to_string(n), bench::ms(t_contig), bench::ms(t_rr),
         format_double(t_rr / t_contig, 2),
         std::to_string(router_crossings(net, contig, Topology::OneD)),
         std::to_string(router_crossings(net, rr, Topology::OneD))});
  }
  std::printf("%s\n",
              table.render("Placement ablation (6 Sparc2 + 6 IPC, 1-D): "
                           "communication locality vs round-robin")
                  .c_str());
}

void locality_vs_bandwidth() {
  // Section 5, observations (1) vs (2): 6 processors as one intra-cluster
  // chain (locality, one channel) against 3 Sparc2 + 3 IPC (router cost,
  // but two private channels).  The ratio crosses as messages grow.
  const Network net = presets::paper_testbed();
  Placement intra;
  for (int i = 0; i < 6; ++i) intra.push_back(ProcessorRef{0, i});
  const Placement spanning = contiguous_placement(net, {3, 3});
  const auto run = [&](const Placement& placement, std::int64_t bytes) {
    sim::Engine engine;
    sim::NetSim sim(engine, net, sim::NetSimParams{}, Rng(3));
    return run_comm_cycles(sim, placement, Topology::OneD, bytes, 3)
        .elapsed_max.as_millis();
  };

  Table table({"bytes/message", "6 intra ms/cycle", "3+3 spanning ms/cycle",
               "spanning / intra"});
  for (const std::int64_t bytes : {64, 240, 1200, 2400, 4800, 9600}) {
    const double a = run(intra, bytes);
    const double b = run(spanning, bytes);
    table.add_row({std::to_string(bytes), format_double(a, 2),
                   format_double(b, 2), format_double(b / a, 2)});
  }
  std::printf("%s\n",
              table.render("Locality vs extra bandwidth (1-D cycle, 6 "
                           "processors total)")
                  .c_str());
}

}  // namespace
}  // namespace netpart

int main() {
  netpart::heuristic_vs_exhaustive();
  netpart::placement_ablation();
  netpart::locality_vs_bandwidth();
  return 0;
}

// Extension study (Section 7 future work): dynamic recomputation of the
// partition vector under processor sharing.
//
// Scenario 1 (load step): halfway through the run, another user takes 50%
// of three of the six Sparc2s.  Scenario 2 (drift): every processor's load
// redrawn periodically.  Static execution keeps the stale Eq. 3 partition;
// the adaptive executor repartitions from observed per-PDU rates, paying
// for the PDU migration through the simulated network.
#include <cstdio>

#include "bench/common.hpp"
#include "core/decompose.hpp"
#include "exec/adaptive.hpp"
#include "exec/load.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace netpart {
namespace {

void scenario(const char* title, const Network& net,
              const LoadSchedule& load, int iterations) {
  const apps::StencilConfig cfg{.n = 1200, .iterations = iterations,
                                .overlap = false};
  const ComputationSpec spec = apps::make_stencil_spec(cfg);
  const ProcessorConfig config{6, 0};
  const Placement placement = contiguous_placement(net, config);
  const PartitionVector initial = balanced_partition(
      net, config, clusters_by_speed(net), cfg.n);

  ExecutionOptions exec_options;
  exec_options.load = load.empty() ? nullptr : &load;
  AdaptiveOptions adaptive_options{.check_interval = 5,
                                   .imbalance_threshold = 1.2,
                                   .pdu_bytes = 4 * cfg.n};

  const AdaptiveResult fixed = execute_static_chunked(
      net, spec, placement, initial, exec_options, adaptive_options);
  const AdaptiveResult adaptive = execute_adaptive(
      net, spec, placement, initial, exec_options, adaptive_options);

  Table table({"strategy", "elapsed ms", "repartitions",
               "migration ms", "final A"});
  table.add_row({"static (Eq.3 once)", bench::ms(fixed.elapsed.as_millis()),
                 "0", "0", fixed.final_partition.to_string()});
  table.add_row({"adaptive", bench::ms(adaptive.elapsed.as_millis()),
                 std::to_string(adaptive.repartitions),
                 bench::ms(adaptive.redistribution_time.as_millis()),
                 adaptive.final_partition.to_string()});
  std::printf("%s\n", table.render(title).c_str());
  std::printf("  speedup from adaptation: %.2fx\n\n",
              fixed.elapsed.as_millis() / adaptive.elapsed.as_millis());
}

}  // namespace
}  // namespace netpart

int main() {
  using namespace netpart;
  const Network net = presets::paper_testbed();

  scenario("Adaptive repartitioning: no background load (control)", net,
           LoadSchedule{}, 40);

  scenario("Adaptive repartitioning: 50% load lands on 3 Sparc2s at t=2s",
           net, LoadSchedule::step(net, 0, 3, SimTime::seconds(2), 0.5),
           40);

  {
    // Fast drift: load changes quicker than a migration amortises, so
    // adaptation thrashes -- the honest counterpart to the paper's
    // assumption that "load fluctuation due to other users is small".
    const LoadSchedule drift = LoadSchedule::random_walk(
        net, Rng(31), 0.25, SimTime::seconds(3), SimTime::seconds(60));
    scenario("Adaptive repartitioning: FAST drift (mean 0.25, redrawn "
             "every 3s) -- expect thrashing",
             net, drift, 60);
  }
  {
    // Slow drift: each load level persists long enough to pay for the
    // repartition.
    const LoadSchedule drift = LoadSchedule::random_walk(
        net, Rng(31), 0.25, SimTime::seconds(20), SimTime::seconds(80));
    scenario("Adaptive repartitioning: SLOW drift (mean 0.25, redrawn "
             "every 20s)",
             net, drift, 60);
  }
  return 0;
}

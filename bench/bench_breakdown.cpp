// Eq. 6 seen from both sides: the estimator's T_comp / T_comm / T_overlap
// decomposition against the executor's measured per-cycle breakdown
// (compute time from the task accounting; communication exposure =
// elapsed - compute of the slowest rank).  STEN-2's exposure collapsing
// toward zero while STEN-1's stays at T_comm is the overlap mechanism the
// paper's min-rule models.
#include <algorithm>
#include <cstdio>

#include "bench/common.hpp"
#include "core/decompose.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace netpart;
  const Network net = presets::paper_testbed();
  const CalibrationResult calibration = bench::calibrate_testbed(net);
  const AvailabilitySnapshot snapshot = bench::idle_snapshot(net);

  for (const bool overlap : {false, true}) {
    Table table({"N", "config", "est T_comp", "est T_comm", "est overlap",
                 "est T_c", "meas compute/cyc", "meas exposure/cyc",
                 "meas T_c"});
    for (const std::int64_t n : bench::paper_sizes()) {
      const apps::StencilConfig cfg{.n = static_cast<int>(n),
                                    .iterations = 10,
                                    .overlap = overlap};
      const ComputationSpec spec = apps::make_stencil_spec(cfg);
      CycleEstimator estimator(net, calibration.db, spec);
      const PartitionResult plan = partition(estimator, snapshot);

      const ExecutionResult run = execute(net, spec, plan.placement,
                                          plan.estimate.partition, {});
      // Slowest rank's compute; the rest of its cycle is exposure.
      SimTime compute = SimTime::zero();
      for (const SimTime t : run.rank_compute) {
        compute = std::max(compute, t);
      }
      const double compute_cyc =
          compute.as_millis() / cfg.iterations;
      const double total_cyc = run.elapsed.as_millis() / cfg.iterations;

      // Built with += rather than one operator+ chain: gcc 12's -Wrestrict
      // fires a false positive on the chained temporaries under -O2.
      std::string config_cell = "(";
      config_cell += std::to_string(plan.config[0]);
      config_cell += ',';
      config_cell += std::to_string(plan.config[1]);
      config_cell += ')';
      table.add_row(
          {std::to_string(n), std::move(config_cell),
           format_double(plan.estimate.t_comp_ms, 1),
           format_double(plan.estimate.t_comm_ms, 1),
           format_double(plan.estimate.t_overlap_ms, 1),
           format_double(plan.estimate.t_c_ms, 1),
           format_double(compute_cyc, 1),
           format_double(total_cyc - compute_cyc, 1),
           format_double(total_cyc, 1)});
    }
    std::printf("%s\n",
                table
                    .render(std::string("Per-cycle breakdown (") +
                            (overlap ? "STEN-2" : "STEN-1") +
                            ", partitioner's configuration), ms")
                    .c_str());
  }
  return 0;
}

// Eq. 1 calibration: benchmark the topology-specific communication programs
// on the simulated testbed and fit the cost functions, reproducing the
// constants of Section 6:
//
//   T_comm[C1,1-D] ~ (-.0055 + .00283 P1) b + 1.1 P1   (msec)
//   T_comm[C2,1-D] ~ (-.0123 + .00457 P2) b + 1.9 P2
//   T_router       ~ .0006 b
//
// Also reports the fits for every other supported topology and the
// residual quality (r^2) of each fit.
#include <cstdio>

#include "bench/common.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace netpart;
  const Network net = presets::paper_testbed();
  const CalibrationResult calibration =
      bench::calibrate_testbed(net, /*all_topos=*/true);

  struct PaperFit {
    ClusterId cluster;
    double c1, c2, c3, c4;
  };
  const PaperFit paper[] = {
      {0, 0.0, 1.1, -0.0055, 0.00283},
      {1, 0.0, 1.9, -0.0123, 0.00457},
  };

  Table table({"cluster", "topology", "c1", "c2 (x p)", "c3 (x b)",
               "c4 (x b p)", "r^2", "paper c2/c3/c4"});
  for (ClusterId c = 0; c < net.num_clusters(); ++c) {
    for (Topology t : all_topologies()) {
      if (!calibration.db.has_comm(c, t)) continue;
      const Eq1Fit& fit = calibration.db.comm_fit(c, t);
      std::string ref = "-";
      if (t == Topology::OneD) {
        ref = format_double(paper[c].c2, 2) + " / " +
              format_double(paper[c].c3, 4) + " / " +
              format_double(paper[c].c4, 5);
      }
      table.add_row({net.cluster(c).name(), to_string(t),
                     format_double(fit.c1, 3), format_double(fit.c2, 3),
                     format_double(fit.c3, 5), format_double(fit.c4, 5),
                     format_double(fit.r2, 4), ref});
    }
  }
  std::printf("%s\n",
              table.render("Fitted Eq. 1 communication cost functions "
                           "(msec; paper's 1-D constants for reference)")
                  .c_str());

  const LineFit router = benchmark_router(net, 0, 1, CalibrationParams{});
  std::printf("T_router[C1,C2](b) ~ %.5f * b %+.3f  (r^2 %.4f); "
              "paper: 0.00060 * b\n",
              router.slope, router.intercept, router.r2);

  // Coercion appears once formats differ; show it on the mixed testbed.
  const Network mixed = presets::coercion_testbed();
  const LineFit coerce =
      benchmark_coercion(mixed, 0, 1, CalibrationParams{});
  std::printf("T_coerce[sparc2,i860](b) ~ %.6f * b %+.4f  (r^2 %.4f)\n",
              coerce.slope, coerce.intercept, coerce.r2);
  return 0;
}

// Fault-injection study: what failures cost, and how fast the adaptive
// pipeline recovers.
//
// Part 1 -- recovery latency and quality.  For a handful of chaos seeds, an
// open-ended slowdown schedule lands in the first quarter of an adaptive
// stencil run.  Reported per seed: when the first fault hits, how long the
// executor takes to react (first fault-forced repartition minus onset), the
// static-vs-adaptive elapsed times, and how close the recovered partition
// gets to the oracle re-partition for the effective post-fault speeds.
//
// Part 2 -- the control plane under fail-stop faults.  The fault-tolerant
// availability protocol runs with 0, 1 and 2 crashed managers: each death
// costs ack timeouts, but the ring always terminates and reports the dead.
//
// Emits BENCH_faults.json with both sections plus per-phase telemetry
// counter deltas (adaptive.*, mmps.*, partitioner.*) from the global
// registry.
#include <algorithm>
#include <cstdio>

#include "bench/common.hpp"
#include "core/decompose.hpp"
#include "exec/adaptive.hpp"
#include "mmps/manager_protocol.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "topo/placement.hpp"
#include "util/table.hpp"

namespace netpart {
namespace {

void recovery_study(const Network& net, JsonValue& root) {
  const apps::StencilConfig cfg{.n = 1200, .iterations = 40,
                                .overlap = false};
  const ComputationSpec spec = apps::make_stencil_spec(cfg);
  const ProcessorConfig config{6, 0};
  const std::vector<ClusterId> order = clusters_by_speed(net);
  const Placement placement = contiguous_placement(net, config, order);
  const PartitionVector initial =
      balanced_partition(net, config, order, cfg.n);
  const AdaptiveOptions adaptive_options{.check_interval = 5,
                                         .imbalance_threshold = 1.25,
                                         .pdu_bytes = 4 * cfg.n};

  ExecutionOptions benign;
  const AdaptiveResult baseline = execute_static_chunked(
      net, spec, placement, initial, benign, adaptive_options);

  Table table({"seed", "onset ms", "react ms", "static ms", "adaptive ms",
               "oracle ratio", "final A"});
  JsonValue seeds = JsonValue::array();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sim::ChaosOptions chaos;
    chaos.crashes = 0;
    chaos.revocations = 0;
    chaos.slowdowns = 2;
    chaos.flaps = 0;
    chaos.degrades = 0;
    chaos.horizon = baseline.elapsed * 0.25;
    chaos.max_slowdown = 3.0;
    chaos.open_ended_slowdowns = true;
    const sim::FaultPlan plan = sim::ChaosRng(seed).make_plan(net, chaos);

    SimTime onset = SimTime::max();
    for (const auto& s : plan.slowdowns) onset = std::min(onset, s.from);

    ExecutionOptions faulted;
    faulted.seed = seed;
    faulted.faults = &plan;
    const AdaptiveResult fixed = execute_static_chunked(
        net, spec, placement, initial, faulted, adaptive_options);
    const AdaptiveResult adaptive = execute_adaptive(
        net, spec, placement, initial, faulted, adaptive_options);

    const double ops =
        static_cast<double>(spec.computation_phases()[0].ops_per_pdu());
    std::vector<double> ms_per_pdu;
    ms_per_pdu.reserve(placement.size());
    for (const ProcessorRef& ref : placement) {
      ms_per_pdu.push_back(
          net.cluster(ref.cluster).type().flop_time.as_millis() * ops *
          plan.slowdown_at(ref, SimTime::seconds(1000000)));
    }
    const RecoveryReport report =
        evaluate_recovery(adaptive.final_partition, ms_per_pdu);

    const bool reacted = adaptive.first_fault_response < SimTime::max();
    char react[32];
    if (reacted) {
      std::snprintf(react, sizeof(react), "%.1f",
                    (adaptive.first_fault_response - onset).as_millis());
    } else {
      std::snprintf(react, sizeof(react), "-");
    }
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.3f", report.ratio);
    table.add_row({std::to_string(seed), bench::ms(onset.as_millis()),
                   react, bench::ms(fixed.elapsed.as_millis()),
                   bench::ms(adaptive.elapsed.as_millis()), ratio,
                   adaptive.final_partition.to_string()});

    JsonValue row = JsonValue::object();
    row.set("seed", static_cast<std::int64_t>(seed));
    row.set("onset_ms", onset.as_millis());
    if (reacted) {
      row.set("react_ms", (adaptive.first_fault_response - onset).as_millis());
    } else {
      row.set("react_ms", JsonValue());
    }
    row.set("static_ms", fixed.elapsed.as_millis());
    row.set("adaptive_ms", adaptive.elapsed.as_millis());
    row.set("oracle_ratio", report.ratio);
    seeds.push(std::move(row));
  }
  root.set("recovery", std::move(seeds));
  std::printf("%s\n", table.render("recovery under open-ended slowdowns "
                                   "(vs fault-free static "
                                   + bench::ms(baseline.elapsed.as_millis())
                                   + " ms)")
                          .c_str());
}

void protocol_study(JsonValue& root) {
  const Network net = presets::fig1_network();  // three clusters
  const std::vector<ClusterManager> managers = make_managers(net, {});

  Table table({"crashed managers", "elapsed ms", "messages", "dead",
               "available"});
  JsonValue rows = JsonValue::array();
  for (int kill = 0; kill <= 2; ++kill) {
    sim::FaultPlan plan;
    for (int c = 1; c <= kill; ++c) {
      plan.crashes.push_back({SimTime::zero(), ProcessorRef{c, 0}});
    }

    sim::Engine engine;
    sim::NetSim sim(engine, net, {}, Rng(1));
    sim::FaultInjector injector(sim, plan);
    injector.arm();
    const mmps::ProtocolResult result =
        mmps::run_fault_tolerant_protocol(sim, managers);

    std::string dead = "none";
    if (!result.dead.empty()) {
      dead.clear();
      for (ClusterId c : result.dead) {
        if (!dead.empty()) dead += ",";
        dead += std::to_string(c);
      }
    }
    std::string avail;
    for (int n : result.snapshot.available) {
      if (!avail.empty()) avail += " ";
      avail += std::to_string(n);
    }
    table.add_row({std::to_string(kill),
                   bench::ms(result.elapsed.as_millis()),
                   std::to_string(result.messages), dead, avail});

    JsonValue row = JsonValue::object();
    row.set("crashed", kill);
    row.set("elapsed_ms", result.elapsed.as_millis());
    row.set("messages", static_cast<std::int64_t>(result.messages));
    row.set("dead", static_cast<std::int64_t>(result.dead.size()));
    rows.push(std::move(row));
  }
  std::printf("%s\n",
              table.render("fault-tolerant availability protocol "
                           "(ack timeout 250 ms, 3 attempts)")
                  .c_str());
  root.set("protocol", std::move(rows));
}

}  // namespace
}  // namespace netpart

int main(int argc, char** argv) {
  using namespace netpart;
  const Config args = bench::parse_bench_args(argc, argv);
  const std::string json_out =
      args.get_or("json_out", "BENCH_faults.json");
  const Network net = presets::paper_testbed();
  bench::PhaseMetrics phase_metrics;
  JsonValue root = JsonValue::object();
  root.set("bench", "faults");
  recovery_study(net, root);
  phase_metrics.phase("recovery");
  protocol_study(root);
  phase_metrics.phase("protocol");
  root.set("metrics", phase_metrics.to_json());
  bench::write_bench_json(json_out, root);
  std::printf("\nresults -> %s\n", json_out.c_str());
  return 0;
}

// Fig. 1: the example heterogeneous network -- three clusters (Sun4, HP,
// RS-6000) on three ethernet segments joined by routers -- plus the
// Section 6 testbed.  Prints the validated inventories and demonstrates the
// cluster managers' threshold availability policy under background load.
#include <cstdio>

#include "bench/common.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace netpart;

  std::printf("== Fig. 1 example network ==\n%s\n",
              presets::fig1_network().describe().c_str());
  std::printf("== Section 6 evaluation testbed ==\n%s\n",
              presets::paper_testbed().describe().c_str());

  // Availability under increasing background load: the managers' threshold
  // policy (load < 0.10) shrinks N_i as sharing increases.
  Table table({"mean bg load", "avail sun4", "avail hp", "avail rs6000",
               "total"});
  for (const double load : {0.0, 0.02, 0.05, 0.10, 0.20, 0.40}) {
    Network net = presets::fig1_network();
    Rng rng(2026);
    apply_random_load(net, rng, load);
    const AvailabilitySnapshot snap =
        gather_availability(net, make_managers(net, AvailabilityPolicy{}));
    table.add_row({format_double(load, 2), std::to_string(snap.available[0]),
                   std::to_string(snap.available[1]),
                   std::to_string(snap.available[2]),
                   std::to_string(snap.total())});
  }
  std::printf("%s\n",
              table.render("Cluster-manager availability (threshold 0.10)")
                  .c_str());
  return 0;
}

// Fig. 2: a 1-D partition of a 20x20 matrix across four processors.  The
// paper's figure shows the homogeneous case (5 rows each); we reproduce it
// and add the heterogeneous case the partition vector exists for: two
// Sparc2s and two IPCs, where Eq. 3 gives the Sparc2s twice the rows.
#include <cstdio>

#include "bench/common.hpp"
#include "core/decompose.hpp"
#include "net/builder.hpp"
#include "util/table.hpp"

namespace netpart {
namespace {

void render_partition(const char* title, const Network& net,
                      const ProcessorConfig& config, int n) {
  const PartitionVector part =
      balanced_partition(net, config, clusters_by_speed(net), n);
  const Placement placement = contiguous_placement(net, config);
  std::printf("%s\n", title);
  const auto ranges = part.block_ranges();
  for (std::size_t r = 0; r < ranges.size(); ++r) {
    const auto& type =
        net.cluster(placement[r].cluster).type().name;
    std::printf("  p%zu (%-6s) rows %2lld..%2lld  |%s|\n", r + 1,
                type.c_str(), static_cast<long long>(ranges[r].first),
                static_cast<long long>(ranges[r].second - 1),
                std::string(static_cast<std::size_t>(part.at(
                                static_cast<int>(r))),
                            '#')
                    .c_str());
  }
  std::printf("  sum A_i = %lld (= num_PDUs = %d)\n\n",
              static_cast<long long>(part.total()), n);
}

}  // namespace
}  // namespace netpart

int main() {
  using namespace netpart;
  const int n = 20;

  // Homogeneous: four Sparc2s, equal 5-row blocks (the figure as printed).
  {
    NetworkBuilder b;
    b.add_cluster("sparc2", presets::sparc2(), 4);
    render_partition("Fig. 2 (homogeneous): 20x20 over 4 Sparc2s",
                     b.build(), {4}, n);
  }

  // Heterogeneous: Eq. 3 assigns rows inversely to per-op time.
  render_partition(
      "Fig. 2 (heterogeneous): 20x20 over 2 Sparc2s + 2 IPCs",
      presets::paper_testbed(), {2, 2}, n);
  return 0;
}

// Fig. 3: the canonical relationship between T_c and the number of
// processors -- region A (too little parallelism), a minimum at p_ideal,
// region B (granularity too small, too many processors).
//
// For each problem size we sweep p = 1..12 along the heuristic's fill order
// (Sparc2s first, then IPCs), printing the estimator's T_c, the measured
// per-cycle time from the simulator, and an ASCII curve.  The binary-search
// partitioner's p_ideal is marked; with a unimodal curve it must coincide
// with the sweep minimum of the estimate.
//
// Optional arg: csv=<path> dumps the series for plotting.
#include <cstdio>
#include <fstream>

#include "bench/common.hpp"
#include "core/decompose.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace netpart {
namespace {

ProcessorConfig fill_order_config(int p) {
  return {std::min(p, 6), std::max(0, p - 6)};
}

}  // namespace
}  // namespace netpart

int main(int argc, char** argv) {
  using namespace netpart;
  const Config args = Config::from_args(argc, argv);
  const Network net = presets::paper_testbed();
  const CalibrationResult calibration = bench::calibrate_testbed(net);
  const AvailabilitySnapshot snapshot = bench::idle_snapshot(net);

  std::ofstream csv_file;
  std::unique_ptr<CsvWriter> csv;
  if (const auto path = args.get("csv")) {
    csv_file.open(*path);
    csv = std::make_unique<CsvWriter>(
        csv_file, std::vector<std::string>{"variant", "n", "p", "tc_est_ms",
                                           "tc_measured_ms"});
  }

  for (const bool overlap : {false, true}) {
    for (const std::int64_t n : bench::paper_sizes()) {
      const apps::StencilConfig cfg{.n = static_cast<int>(n),
                                    .iterations = 10,
                                    .overlap = overlap};
      const ComputationSpec spec = apps::make_stencil_spec(cfg);
      CycleEstimator estimator(net, calibration.db, spec);
      const PartitionResult chosen = partition(estimator, snapshot);
      const int p_ideal = config_total(chosen.config);

      Table table({"p", "config", "T_c est (ms)", "T_c measured (ms)",
                   "curve"});
      double min_est = 1e300;
      std::vector<double> ests;
      for (int p = 1; p <= 12; ++p) {
        ests.push_back(
            estimator.estimate(fill_order_config(p)).t_c_ms);
        min_est = std::min(min_est, ests.back());
      }
      for (int p = 1; p <= 12; ++p) {
        const ProcessorConfig config = fill_order_config(p);
        const double est = ests[static_cast<std::size_t>(p - 1)];
        const double measured =
            bench::measured_stencil_ms(net, cfg, config) / cfg.iterations;
        const int bar =
            static_cast<int>(40.0 * min_est / est + 0.5);  // taller = better
        std::string curve(static_cast<std::size_t>(bar), '*');
        if (p == p_ideal) curve += "  <- p_ideal (binary search)";
        // Built with += rather than one operator+ chain: gcc 12's
        // -Wrestrict fires a false positive on the chained temporaries
        // under -O2.
        std::string config_cell = "(";
        config_cell += std::to_string(config[0]);
        config_cell += ',';
        config_cell += std::to_string(config[1]);
        config_cell += ')';
        table.add_row({std::to_string(p), std::move(config_cell),
                       format_double(est, 2), format_double(measured, 2),
                       curve});
        if (csv) {
          csv->write_row({overlap ? "STEN-2" : "STEN-1", std::to_string(n),
                          std::to_string(p), format_double(est, 4),
                          format_double(measured, 4)});
        }
      }
      std::string title = "Fig. 3 ";
      title += overlap ? "STEN-2" : "STEN-1";
      title += ", N=";
      title += std::to_string(n);
      title += ": T_c vs processors (region A left of minimum, "
               "region B right)";
      std::printf("%s\n", table.render(title).c_str());
    }
  }
  return 0;
}

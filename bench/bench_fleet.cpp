// Fleet study: what the multi-node partition service buys and costs.
//
// Four sections, all on the deterministic simulator:
//   scaling      aggregate RPS vs fleet size (1/2/4/8 nodes) under an
//                open-loop zipf workload that saturates a single node --
//                the case for fleeting the service at all.
//   replication  cache behaviour vs replication factor (R = 1/2/3) on a
//                4-node fleet: hit ratio, replica-local serves, push
//                traffic.
//   convergence  epoch gossip: rounds for a bump entering at node 0 to
//                reach every node, vs fleet size, with heartbeats slowed
//                so the ring-wise gossip path is measured alone.  Bound:
//                2N rounds (the ring needs N-1).
//   recovery     a node crash mid-epoch: RTO-driven failovers until the
//                token ring reports the death, the warm fraction of the
//                dead node's hot entries on its replicas, and post-report
//                routing with zero failovers.
//
// Emits BENCH_fleet.json.  Gates (also in --smoke): 4 nodes beat 1 node
// on RPS, every fleet converges within 2N gossip rounds, the crashed
// node's replicas hold >= 50% of its hot entries, the failover phase
// completes every request, and distributed tracing stays pay-for-use
// (zero spans recorded with tracing off; bounded wall-clock overhead
// with it on -- obs_overhead_pct in the JSON).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "fleet/driver.hpp"
#include "fleet/fleet.hpp"
#include "mmps/manager_protocol.hpp"
#include "net/availability.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"

namespace netpart {
namespace {

/// One fleet on its own simulator (members ordered for construction).
struct Bed {
  Network net;
  sim::Engine engine;
  sim::NetSim sim;
  fleet::Fleet fl;

  Bed(int nodes, fleet::FleetOptions options, std::uint64_t seed)
      : net(fleet::make_fleet_network(nodes)),
        sim(engine, net, sim::NetSimParams{}, Rng(seed)),
        fl(sim, std::move(options), fleet::synthetic_cold_path(net)) {
    fl.start();
  }
};

fleet::WorkloadOptions base_workload(bool smoke) {
  fleet::WorkloadOptions w;
  w.requests = smoke ? 150 : 600;
  w.distinct_keys = 32;
  w.zipf_s = 1.1;
  w.seed = 1;
  return w;
}

void scaling_study(bool smoke, JsonValue& root, bool& gate_scaling) {
  Table table({"nodes", "rps", "hit %", "forwards", "mean ms"});
  JsonValue rows = JsonValue::array();
  double rps1 = 0.0, rps4 = 0.0;
  for (const int nodes : {1, 2, 4, 8}) {
    fleet::FleetOptions options;
    options.replication = nodes >= 2 ? 2 : 1;
    // Model a heavier decision service for this section: at the default
    // 80us hit cost the simulated 10 Mbit/s links make a forward cost more
    // than it saves, so fleeting could never win; partition estimation at
    // realistic sizes sits in the hundreds of microseconds and up, where
    // the queueing delay on one node dominates the forward hop.
    options.hit_service = SimTime::micros(500);
    options.cold_service = SimTime::millis(20);
    Bed bed(nodes, options, /*seed=*/7);
    fleet::WorkloadOptions w = base_workload(smoke);
    // Arrivals fast enough to saturate one node, so added nodes convert
    // into throughput, not idle time.
    w.arrival_period = SimTime::micros(100);
    const fleet::WorkloadResult r = fleet::run_workload(bed.fl, w);
    bed.fl.stop();
    const double hit_pct = 100.0 * static_cast<double>(r.hit_replies) /
                           static_cast<double>(r.submitted);
    table.add_row({std::to_string(nodes), std::to_string(r.rps).substr(0, 7),
               bench::ms(hit_pct),
               std::to_string(bed.fl.stats().forwards),
               bench::ms(r.mean_latency_ms)});
    rows.push(JsonValue::object()
                  .set("nodes", nodes)
                  .set("rps", r.rps)
                  .set("ok", static_cast<std::int64_t>(r.ok))
                  .set("hit_pct", hit_pct)
                  .set("forwards",
                       static_cast<std::int64_t>(bed.fl.stats().forwards))
                  .set("mean_latency_ms", r.mean_latency_ms));
    if (nodes == 1) rps1 = r.rps;
    if (nodes == 4) rps4 = r.rps;
  }
  std::printf("scaling (aggregate RPS vs fleet size)\n");
  std::printf("%s", table.render().c_str());
  gate_scaling = rps4 > rps1;
  root.set("scaling", JsonValue::object()
                          .set("rows", rows)
                          .set("rps_1", rps1)
                          .set("rps_4", rps4));
}

void replication_study(bool smoke, JsonValue& root) {
  Table table({"R", "hit %", "replica serves", "pushes", "inserts",
               "mean ms"});
  JsonValue rows = JsonValue::array();
  for (const int r : {1, 2, 3}) {
    fleet::FleetOptions options;
    options.replication = r;
    Bed bed(4, options, /*seed=*/11);
    fleet::WorkloadOptions w = base_workload(smoke);
    (void)fleet::run_workload(bed.fl, w);  // warm the hot head
    const fleet::FleetStats warm = bed.fl.stats();
    const fleet::WorkloadResult measured = fleet::run_workload(bed.fl, w);
    bed.fl.stop();
    const fleet::FleetStats& s = bed.fl.stats();
    const double hit_pct = 100.0 *
                           static_cast<double>(measured.hit_replies) /
                           static_cast<double>(measured.submitted);
    const auto replica_serves = s.replica_serves - warm.replica_serves;
    table.add_row({std::to_string(r), bench::ms(hit_pct),
               std::to_string(replica_serves),
               std::to_string(s.replications_pushed),
               std::to_string(s.replica_inserts),
               bench::ms(measured.mean_latency_ms)});
    rows.push(JsonValue::object()
                  .set("replication", r)
                  .set("hit_pct", hit_pct)
                  .set("replica_serves",
                       static_cast<std::int64_t>(replica_serves))
                  .set("pushes",
                       static_cast<std::int64_t>(s.replications_pushed))
                  .set("inserts",
                       static_cast<std::int64_t>(s.replica_inserts))
                  .set("mean_latency_ms", measured.mean_latency_ms));
  }
  std::printf("\nreplication (4 nodes, zipf 1.1, measured after warmup)\n");
  std::printf("%s", table.render().c_str());
  root.set("replication", rows);
}

void convergence_study(JsonValue& root, bool& gate_convergence) {
  Table table({"nodes", "rounds", "bound 2N"});
  JsonValue rows = JsonValue::array();
  gate_convergence = true;
  for (const int nodes : {2, 4, 8}) {
    fleet::FleetOptions options;
    options.replication = 2;
    // Slow heartbeats (and matching peer thresholds) so epoch spread is
    // carried by the gossip ring alone, not heartbeat piggybacking.
    options.heartbeat_period = SimTime::seconds(10);
    options.peer.suspect_after = SimTime::seconds(30);
    options.peer.dead_after = SimTime::seconds(60);
    Bed bed(nodes, options, /*seed=*/3);
    const std::uint64_t epoch = 2;
    bed.fl.announce_epoch(0, epoch);
    const auto converged = [&] {
      for (fleet::NodeId id : bed.fl.node_ids()) {
        if (bed.fl.node(id).epoch() != epoch) return false;
      }
      return true;
    };
    const std::uint64_t bound = 2 * static_cast<std::uint64_t>(nodes);
    while (!converged() && bed.fl.stats().gossip_rounds <= bound + 1 &&
           bed.engine.step()) {
    }
    bed.fl.stop();
    const std::uint64_t rounds = bed.fl.stats().gossip_rounds;
    const bool ok = converged() && rounds <= bound;
    gate_convergence = gate_convergence && ok;
    table.add_row({std::to_string(nodes), std::to_string(rounds),
               std::to_string(bound)});
    rows.push(JsonValue::object()
                  .set("nodes", nodes)
                  .set("rounds", static_cast<std::int64_t>(rounds))
                  .set("bound", static_cast<std::int64_t>(bound))
                  .set("converged", ok));
  }
  std::printf("\nconvergence (gossip rounds to spread an epoch, "
              "heartbeats quiesced)\n");
  std::printf("%s", table.render().c_str());
  root.set("convergence", rows);
}

void recovery_study(bool smoke, JsonValue& root, bool& gate_warm,
                    bool& gate_failover) {
  fleet::FleetOptions options;
  options.replication = 2;
  Bed bed(4, options, /*seed=*/5);
  fleet::WorkloadOptions w = base_workload(smoke);
  (void)fleet::run_workload(bed.fl, w);  // warm the hot head

  // Crash node 3 with NO dead-peer report: the next phase discovers the
  // death one RTO at a time (the failover path under test).
  const fleet::NodeId victim = 3;
  bed.sim.host(ProcessorRef{victim, 0}).crash();
  const double warm = bed.fl.warm_fraction_for(victim);
  const std::uint64_t failovers_before = bed.fl.stats().failovers;
  const fleet::WorkloadResult blind = fleet::run_workload(bed.fl, w);
  const std::uint64_t blind_failovers =
      bed.fl.stats().failovers - failovers_before;

  // Now the PR 1 token ring reports the death; routing excludes the dead
  // node and failovers stop.
  const std::vector<ClusterManager> managers = make_managers(bed.net, {});
  const mmps::ProtocolResult avail =
      mmps::run_fault_tolerant_protocol(bed.sim, managers);
  bed.fl.report_dead_peers(avail.dead);
  const std::uint64_t reported_failovers_before = bed.fl.stats().failovers;
  const fleet::WorkloadResult routed = fleet::run_workload(bed.fl, w);
  const std::uint64_t routed_failovers =
      bed.fl.stats().failovers - reported_failovers_before;
  bed.fl.stop();

  gate_warm = warm >= 0.5;
  gate_failover = blind.failed == 0 && routed.failed == 0 &&
                  blind_failovers > 0 && routed_failovers == 0;
  std::printf("\nrecovery (node %d crashed mid-epoch, replication 2)\n",
              victim);
  std::printf("  warm fraction on replicas   %.0f%%  (gate >= 50%%)\n",
              100.0 * warm);
  std::printf("  blind phase: ok %llu/%llu, %llu failovers, "
              "max latency %.1f ms\n",
              static_cast<unsigned long long>(blind.ok),
              static_cast<unsigned long long>(blind.submitted),
              static_cast<unsigned long long>(blind_failovers),
              blind.max_latency_ms);
  std::printf("  token ring reported %zu dead in %.1f ms; routed phase: "
              "ok %llu/%llu, %llu failovers\n",
              avail.dead.size(), avail.elapsed.as_millis(),
              static_cast<unsigned long long>(routed.ok),
              static_cast<unsigned long long>(routed.submitted),
              static_cast<unsigned long long>(routed_failovers));
  root.set("recovery",
           JsonValue::object()
               .set("victim", victim)
               .set("warm_fraction", warm)
               .set("blind_ok", static_cast<std::int64_t>(blind.ok))
               .set("blind_failovers",
                    static_cast<std::int64_t>(blind_failovers))
               .set("blind_max_latency_ms", blind.max_latency_ms)
               .set("protocol_elapsed_ms", avail.elapsed.as_millis())
               .set("protocol_dead",
                    static_cast<std::int64_t>(avail.dead.size()))
               .set("routed_ok", static_cast<std::int64_t>(routed.ok))
               .set("routed_failovers",
                    static_cast<std::int64_t>(routed_failovers)));
}

void overhead_study(bool smoke, JsonValue& root, bool& gate_overhead) {
  // Tracing must be pay-for-what-you-use.  With tracing off a fleet
  // request's span machinery collapses to one enabled check per would-be
  // span, so the same workload is run twice -- spans off, spans on -- and
  // the wall-clock delta is the price of distributed tracing.  Min over
  // reps because wall time on shared CI hosts is noisy upward only.
  const int reps = 3;
  double best_us[2] = {1e300, 1e300};
  std::size_t spans[2] = {0, 0};
  for (int rep = 0; rep < reps; ++rep) {
    for (int traced = 0; traced < 2; ++traced) {
      fleet::FleetOptions options;
      options.replication = 2;
      options.tracing = traced == 1;
      Bed bed(4, options, /*seed=*/13);
      fleet::WorkloadOptions w = base_workload(smoke);
      const auto t0 = std::chrono::steady_clock::now();
      (void)fleet::run_workload(bed.fl, w);
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      best_us[traced] = std::min(best_us[traced], us);
      std::size_t recorded = 0;
      for (fleet::NodeId id : bed.fl.node_ids()) {
        recorded += bed.fl.node(id).telemetry().span_count();
      }
      spans[traced] = recorded;
      bed.fl.stop();
    }
  }
  const double overhead_pct =
      100.0 * (best_us[1] - best_us[0]) / best_us[0];
  // The bound is deliberately loose (tracing may cost real work; it must
  // not cost multiples of the workload); the sharp gate is the zero-span
  // invariant on the disabled path.
  gate_overhead = spans[0] == 0 && spans[1] > 0 && overhead_pct <= 150.0;
  std::printf("\nobservability (same workload, spans off vs on, min of %d "
              "reps)\n",
              reps);
  std::printf("  off %.0f us (0 spans)   on %.0f us (%zu spans)   "
              "overhead %+.1f%%  (gate <= 150%%)\n",
              best_us[0], best_us[1], spans[1], overhead_pct);
  root.set("observability",
           JsonValue::object()
               .set("disabled_us", best_us[0])
               .set("enabled_us", best_us[1])
               .set("spans_disabled",
                    static_cast<std::int64_t>(spans[0]))
               .set("spans_enabled", static_cast<std::int64_t>(spans[1]))
               .set("obs_overhead_pct", overhead_pct));
}

}  // namespace
}  // namespace netpart

int main(int argc, char** argv) {
  using namespace netpart;
  const Config args = bench::parse_bench_args(argc, argv);
  const bool smoke = args.get_bool_or("smoke", false);
  const std::string json_out = args.get_or("json_out", "BENCH_fleet.json");

  bench::PhaseMetrics phase_metrics;
  JsonValue root = JsonValue::object();
  root.set("bench", "fleet");
  root.set("meta", JsonValue::object().set("smoke", smoke));

  bool gate_scaling = false, gate_convergence = false, gate_warm = false,
       gate_failover = false, gate_overhead = false;
  scaling_study(smoke, root, gate_scaling);
  phase_metrics.phase("scaling");
  replication_study(smoke, root);
  phase_metrics.phase("replication");
  convergence_study(root, gate_convergence);
  phase_metrics.phase("convergence");
  recovery_study(smoke, root, gate_warm, gate_failover);
  phase_metrics.phase("recovery");
  overhead_study(smoke, root, gate_overhead);
  phase_metrics.phase("observability");

  const bool pass = gate_scaling && gate_convergence && gate_warm &&
                    gate_failover && gate_overhead;
  root.set("checks", JsonValue::object()
                         .set("scaling_4_beats_1", gate_scaling)
                         .set("convergence_within_2n", gate_convergence)
                         .set("warm_fraction_ge_half", gate_warm)
                         .set("failover_completes", gate_failover)
                         .set("tracing_overhead_bounded", gate_overhead)
                         .set("pass", pass));
  root.set("metrics", phase_metrics.to_json());
  bench::write_bench_json(json_out, root);
  std::printf("\nchecks: scaling %s, convergence %s, warm %s, failover %s, "
              "tracing %s -> %s\nresults -> %s\n",
              gate_scaling ? "ok" : "FAIL",
              gate_convergence ? "ok" : "FAIL", gate_warm ? "ok" : "FAIL",
              gate_failover ? "ok" : "FAIL", gate_overhead ? "ok" : "FAIL",
              pass ? "PASS" : "FAIL", json_out.c_str());
  return pass ? 0 : 1;
}

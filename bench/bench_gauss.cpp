// Gaussian elimination with partial pivoting (the paper's second, non-
// uniform application).  For each system size: calibrate the broadcast
// topology, run the partitioner, compare the estimate against the measured
// execution, and verify the functional distributed solver's residual.
#include <cmath>
#include <cstdio>

#include "apps/gauss.hpp"
#include "bench/common.hpp"
#include "core/decompose.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace netpart;
  const Network net = presets::paper_testbed();
  CalibrationParams params;
  params.topologies = {Topology::Broadcast};
  const CalibrationResult calibration = calibrate(net, params);
  const AvailabilitySnapshot snapshot = bench::idle_snapshot(net);

  Table table({"N", "P1", "P2", "T_c est ms", "est total ms",
               "measured ms", "evals"});
  for (const int n : {64, 128, 256, 512}) {
    const apps::GaussConfig cfg{.n = n};
    const ComputationSpec spec = apps::make_gauss_spec(cfg);
    CycleEstimator estimator(net, calibration.db, spec);
    const PartitionResult result = partition(estimator, snapshot);

    ExecutionOptions options;
    const double measured = average_elapsed_ms(
        net, spec, result.placement, result.estimate.partition, options, 1);
    table.add_row({std::to_string(n), std::to_string(result.config[0]),
                   std::to_string(result.config[1]),
                   format_double(result.estimate.t_c_ms, 2),
                   bench::ms(result.estimate.t_elapsed_ms),
                   bench::ms(measured),
                   std::to_string(result.evaluations)});
  }
  std::printf("%s\n",
              table.render("Gaussian elimination: partitioner choice and "
                           "estimate vs simulated execution")
                  .c_str());

  // The partition vector is abstract; the implementation decides the row
  // mapping (Section 4).  Block blocks starve early ranks as elimination
  // retires rows from the top; weighted-cyclic dealing keeps the active
  // set balanced.
  {
    Table mapping_table({"N", "block ms", "cyclic ms", "speedup"});
    for (const int n : {64, 128, 256}) {
      const ProcessorConfig config{4, 2};
      const Placement placement = contiguous_placement(net, config);
      const PartitionVector part =
          balanced_partition(net, config, clusters_by_speed(net), n);
      const auto block = apps::run_distributed_gauss(
          net, placement, part,
          apps::GaussConfig{.n = n, .mapping = apps::RowMapping::Block},
          11);
      const auto cyclic = apps::run_distributed_gauss(
          net, placement, part,
          apps::GaussConfig{.n = n, .mapping = apps::RowMapping::Cyclic},
          11);
      mapping_table.add_row(
          {std::to_string(n), bench::ms(block.elapsed.as_millis()),
           bench::ms(cyclic.elapsed.as_millis()),
           format_double(block.elapsed.as_millis() /
                             cyclic.elapsed.as_millis(),
                         2) +
               "x"});
    }
    std::printf("%s\n",
                mapping_table
                    .render("Row-mapping ablation (4 Sparc2 + 2 IPC): "
                            "block vs weighted-cyclic")
                    .c_str());
  }

  // Functional verification at a small size: distributed == sequential.
  {
    const apps::GaussConfig cfg{.n = 64};
    const ProcessorConfig config{4, 2};
    const Placement placement = contiguous_placement(net, config);
    const PartitionVector part =
        balanced_partition(net, config, clusters_by_speed(net), cfg.n);
    const auto dist =
        apps::run_distributed_gauss(net, placement, part, cfg, /*seed=*/17);
    const std::vector<double> seq =
        apps::solve_sequential(apps::make_test_system(cfg.n, 17));
    double max_err = 0.0;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      max_err = std::max(max_err, std::abs(dist.x[i] - seq[i]));
    }
    std::printf("functional check (N=64, 4 Sparc2 + 2 IPC): max |x_dist - "
                "x_seq| = %.2e, simulated elimination %.1f ms, %llu "
                "messages\n",
                max_err, dist.elapsed.as_millis(),
                static_cast<unsigned long long>(dist.messages));
  }
  return 0;
}

// Extension study (Section 5): the general partitioning problem.
//
// The published locality-first heuristic can leave large gains on the
// table when a slower cluster is much larger (extra cross-segment
// bandwidth beats locality).  The multi-start local search closes that
// gap at polynomial cost.  Compares, over random heterogeneous networks:
// locality heuristic vs general search vs exhaustive optimum (estimates),
// and validates the winner on the simulator.
#include <cstdio>

#include "bench/common.hpp"
#include "core/decompose.hpp"
#include "core/general.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace netpart;
  Table table({"seed", "K", "P", "heuristic T_c", "general T_c",
               "optimal T_c", "heur evals", "gen evals", "exh evals"});
  RunningStats heuristic_regret;
  RunningStats general_regret;

  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    const Network net = presets::random_network(rng, 4, 6);
    CalibrationParams params;
    params.topologies = {Topology::OneD};
    const CalibrationResult cal = calibrate(net, params);
    const ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = 900, .iterations = 10, .overlap = false});
    CycleEstimator est(net, cal.db, spec);
    const AvailabilitySnapshot snap = bench::idle_snapshot(net);

    const PartitionResult heur = partition(est, snap);
    const PartitionResult gen = general_partition(est, snap);
    const PartitionResult exh = exhaustive_partition(est, snap);
    heuristic_regret.add(
        100.0 * (heur.estimate.t_c_ms / exh.estimate.t_c_ms - 1.0));
    general_regret.add(
        100.0 * (gen.estimate.t_c_ms / exh.estimate.t_c_ms - 1.0));
    table.add_row({std::to_string(seed), std::to_string(net.num_clusters()),
                   std::to_string(snap.total()),
                   format_double(heur.estimate.t_c_ms, 2),
                   format_double(gen.estimate.t_c_ms, 2),
                   format_double(exh.estimate.t_c_ms, 2),
                   std::to_string(heur.evaluations),
                   std::to_string(gen.evaluations),
                   std::to_string(exh.evaluations)});
  }
  std::printf("%s\n",
              table.render("General partitioning: locality heuristic vs "
                           "multi-start search vs exhaustive optimum")
                  .c_str());
  std::printf("regret vs optimum: heuristic mean %.1f%% (max %.1f%%), "
              "general mean %.2f%% (max %.2f%%)\n",
              heuristic_regret.mean(), heuristic_regret.max(),
              general_regret.mean(), general_regret.max());
  return 0;
}

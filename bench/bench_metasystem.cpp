// Extension study (Section 7): the metasystem environment.
//
// "We also plan to demonstrate that our approach is applicable to a
//  metasystem environment that may contain machines of different classes
//  such as multicomputers and workstations together."
//
// An 8-node multicomputer (fast nodes, 80 Mbit/s internal interconnect)
// sits next to the 6 Sparc2 + 6 IPC workstation clusters; assumption 1
// (equal segment bandwidth) is relaxed, which the per-cluster calibration
// absorbs.  The partitioner should saturate the multicomputer first and
// recruit workstations only when the problem outgrows it.
#include <cstdio>

#include "bench/common.hpp"
#include "core/decompose.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace netpart;
  const Network net = presets::metasystem();
  std::printf("%s\n", net.describe().c_str());

  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult calibration = calibrate(net, params);
  const AvailabilitySnapshot snapshot = bench::idle_snapshot(net);

  // How much faster is the multicomputer's fabric?  (fitted per byte.)
  std::printf("fitted 1-D c4 (ms per byte*proc): multicomputer %.5f, "
              "sparc2 %.5f, ipc %.5f\n\n",
              calibration.db.comm_fit(0, Topology::OneD).c4,
              calibration.db.comm_fit(1, Topology::OneD).c4,
              calibration.db.comm_fit(2, Topology::OneD).c4);

  Table table({"N", "mc", "sparc2", "ipc", "T_c est ms", "measured ms",
               "vs workstations-only ms"});
  const Network workstations = presets::paper_testbed();
  CalibrationParams wparams;
  wparams.topologies = {Topology::OneD};
  const CalibrationResult wcal = calibrate(workstations, wparams);
  const AvailabilitySnapshot wsnap = bench::idle_snapshot(workstations);

  for (const std::int64_t n : {300, 1200, 4800}) {
    const apps::StencilConfig cfg{.n = static_cast<int>(n),
                                  .iterations = 10,
                                  .overlap = false};
    const ComputationSpec spec = apps::make_stencil_spec(cfg);

    CycleEstimator estimator(net, calibration.db, spec);
    const PartitionResult plan = partition(estimator, snapshot);
    ExecutionOptions options;
    const double measured = average_elapsed_ms(
        net, spec, plan.placement, plan.estimate.partition, options, 1);

    CycleEstimator westimator(workstations, wcal.db, spec);
    const PartitionResult wplan = partition(westimator, wsnap);
    const double wmeasured =
        average_elapsed_ms(workstations, spec, wplan.placement,
                           wplan.estimate.partition, options, 1);

    table.add_row({std::to_string(n), std::to_string(plan.config[0]),
                   std::to_string(plan.config[1]),
                   std::to_string(plan.config[2]),
                   format_double(plan.estimate.t_c_ms, 2),
                   bench::ms(measured), bench::ms(wmeasured)});
  }
  std::printf("%s\n",
              table.render("Metasystem partitioning (stencil): "
                           "multicomputer first, workstations on demand")
                  .c_str());
  return 0;
}

// MMPS substrate micro-benchmark: per-message delivery-latency
// distributions on the simulated testbed, within and across clusters, with
// and without datagram loss.  Messages are issued one at a time (no
// pipelining), so the distribution shows pure path latency; the long
// retransmission tail under loss is the reason the paper's cost functions
// are "average case ... due to the large amount of non-determinism
// inherent in UDP-based communications".
#include <cstdio>
#include <functional>

#include "bench/common.hpp"
#include "mmps/system.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"

namespace netpart {
namespace {

void measure(const char* title, ProcessorRef src, ProcessorRef dst,
             std::int64_t bytes, double loss) {
  const Network net = presets::paper_testbed();
  sim::Engine engine;
  sim::NetSimParams params;
  params.loss_rate = loss;
  params.rto = SimTime::millis(20);
  sim::NetSim netsim(engine, net, params, Rng(99));
  mmps::System mmps(netsim);

  constexpr int kMessages = 400;
  Histogram hist(0.0, 80.0, 16);
  RunningStats stats;

  // Chain the messages: each send is issued when the previous delivery
  // completes, so every sample sees an idle channel.
  std::function<void(int)> send_next = [&](int i) {
    if (i == kMessages) return;
    const SimTime t0 = engine.now();
    mmps.send(src, dst, i, std::vector<std::byte>(
                               static_cast<std::size_t>(bytes)));
    mmps.recv(dst, src, i, [&, i, t0](mmps::Message) {
      const double ms = (engine.now() - t0).as_millis();
      hist.add(ms);
      stats.add(ms);
      send_next(i + 1);
    });
  };
  send_next(0);
  engine.run();

  std::printf("%s (%d messages of %lld bytes, loss %.0f%%)\n"
              "latency mean %.2f ms, min %.2f, max %.2f, "
              "%llu retransmissions\n%s\n",
              title, kMessages, static_cast<long long>(bytes), 100 * loss,
              stats.mean(), stats.min(), stats.max(),
              static_cast<unsigned long long>(netsim.retransmissions()),
              hist.render().c_str());
}

}  // namespace
}  // namespace netpart

int main() {
  using namespace netpart;
  measure("intra-cluster (Sparc2 -> Sparc2)", ProcessorRef{0, 0},
          ProcessorRef{0, 1}, 2400, 0.0);
  measure("cross-router (Sparc2 -> IPC)", ProcessorRef{0, 0},
          ProcessorRef{1, 0}, 2400, 0.0);
  measure("cross-router under 10% loss", ProcessorRef{0, 0},
          ProcessorRef{1, 0}, 2400, 0.10);
  return 0;
}

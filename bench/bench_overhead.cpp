// Section 6 overhead claim: partitioning costs O(K log2 P) objective
// evaluations and microseconds of wall time -- trivially amortised against
// elapsed times in the hundreds to thousands of milliseconds.
//
// google-benchmark micro-benchmarks of the estimator and the full
// partitioner, over the paper testbed and larger random networks.
#include <benchmark/benchmark.h>

#include "apps/stencil.hpp"
#include "calib/calibrate.hpp"
#include "core/partitioner.hpp"
#include "net/availability.hpp"
#include "net/presets.hpp"

namespace netpart {
namespace {

struct Setup {
  Network net;
  CalibrationResult calibration;
  ComputationSpec spec;
  AvailabilitySnapshot snapshot;

  static Setup paper(int n) {
    Network net = presets::paper_testbed();
    CalibrationParams params;
    params.topologies = {Topology::OneD};
    CalibrationResult cal = calibrate(net, params);
    ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = n, .iterations = 10, .overlap = false});
    AvailabilitySnapshot snap =
        gather_availability(net, make_managers(net, AvailabilityPolicy{}));
    return Setup{std::move(net), std::move(cal), std::move(spec),
                 std::move(snap)};
  }

  static Setup random(int clusters, int per_cluster, int n) {
    Rng rng(77);
    Network net = presets::random_network(rng, clusters, per_cluster);
    CalibrationParams params;
    params.topologies = {Topology::OneD};
    CalibrationResult cal = calibrate(net, params);
    ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = n, .iterations = 10, .overlap = false});
    AvailabilitySnapshot snap =
        gather_availability(net, make_managers(net, AvailabilityPolicy{}));
    return Setup{std::move(net), std::move(cal), std::move(spec),
                 std::move(snap)};
  }
};

void BM_EstimateOnce(benchmark::State& state) {
  const Setup s = Setup::paper(static_cast<int>(state.range(0)));
  CycleEstimator estimator(s.net, s.calibration.db, s.spec);
  const ProcessorConfig config{6, 6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(config).t_c_ms);
  }
}
BENCHMARK(BM_EstimateOnce)->Arg(60)->Arg(1200);

void BM_PartitionPaperTestbed(benchmark::State& state) {
  const Setup s = Setup::paper(static_cast<int>(state.range(0)));
  CycleEstimator estimator(s.net, s.calibration.db, s.spec);
  std::uint64_t evals = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    const PartitionResult result = partition(estimator, s.snapshot);
    benchmark::DoNotOptimize(result.estimate.t_c_ms);
    evals += result.evaluations;
    ++runs;
  }
  state.counters["evaluations"] =
      static_cast<double>(evals) / static_cast<double>(runs);
}
BENCHMARK(BM_PartitionPaperTestbed)->Arg(60)->Arg(300)->Arg(600)->Arg(1200);

void BM_PartitionRandomNetwork(benchmark::State& state) {
  const Setup s =
      Setup::random(static_cast<int>(state.range(0)), 8, 2400);
  CycleEstimator estimator(s.net, s.calibration.db, s.spec);
  std::uint64_t evals = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    const PartitionResult result = partition(estimator, s.snapshot);
    benchmark::DoNotOptimize(result.estimate.t_c_ms);
    evals += result.evaluations;
    ++runs;
  }
  state.counters["evaluations"] =
      static_cast<double>(evals) / static_cast<double>(runs);
  state.counters["K"] = static_cast<double>(state.range(0));
  state.counters["P"] = static_cast<double>(s.snapshot.total());
}
BENCHMARK(BM_PartitionRandomNetwork)->Arg(2)->Arg(3)->Arg(5)->Arg(8);

void BM_ExhaustivePartition(benchmark::State& state) {
  const Setup s =
      Setup::random(static_cast<int>(state.range(0)), 6, 2400);
  CycleEstimator estimator(s.net, s.calibration.db, s.spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exhaustive_partition(estimator, s.snapshot).estimate.t_c_ms);
  }
}
BENCHMARK(BM_ExhaustivePartition)->Arg(2)->Arg(3)->Arg(4);

}  // namespace
}  // namespace netpart

BENCHMARK_MAIN();

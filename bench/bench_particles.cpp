// Particle-chain workload: latency-bound communication (8-byte ghost
// messages).  Demonstrates the partitioner scaling its processor-count
// decision with computation granularity in a regime opposite to the
// stencil: even huge particle counts need few extra processors because
// per-cycle latency costs dwarf the 8-byte transfers.
#include <cstdio>

#include "apps/particles.hpp"
#include "bench/common.hpp"
#include "core/decompose.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace netpart;
  const Network net = presets::paper_testbed();
  const CalibrationResult calibration = bench::calibrate_testbed(net);
  const AvailabilitySnapshot snapshot = bench::idle_snapshot(net);

  Table table({"particles", "P1", "P2", "T_c est ms", "measured ms",
               "1-Sparc2 ms", "speedup"});
  for (const int count : {1000, 10000, 100000, 1000000}) {
    const apps::ParticleConfig cfg{.count = count, .iterations = 20};
    const ComputationSpec spec = apps::make_particle_spec(cfg);
    CycleEstimator estimator(net, calibration.db, spec);
    const PartitionResult result = partition(estimator, snapshot);

    ExecutionOptions options;
    const double measured = average_elapsed_ms(
        net, spec, result.placement, result.estimate.partition, options, 1);
    const ProcessorConfig solo{1, 0};
    const double t_solo = average_elapsed_ms(
        net, spec, contiguous_placement(net, solo),
        balanced_partition(net, solo, clusters_by_speed(net), count),
        options, 1);
    table.add_row({std::to_string(count), std::to_string(result.config[0]),
                   std::to_string(result.config[1]),
                   format_double(result.estimate.t_c_ms, 3),
                   bench::ms(measured), bench::ms(t_solo),
                   format_double(t_solo / measured, 2) + "x"});
  }
  std::printf("%s\n",
              table.render("Particle chain: partitioner choices for a "
                           "latency-bound workload")
                  .c_str());

  // Functional verification: distributed run is bit-identical.
  {
    const apps::ParticleConfig cfg{.count = 300, .iterations = 30};
    const ProcessorConfig config{4, 2};
    const auto dist = apps::run_distributed_particles(
        net, contiguous_placement(net, config),
        balanced_partition(net, config, clusters_by_speed(net), cfg.count),
        cfg);
    const apps::ParticleState seq = apps::run_sequential_particles(cfg, 5);
    std::printf("functional check (300 particles, 6 ranks): positions %s\n",
                dist.state.position == seq.position ? "bit-identical"
                                                    : "MISMATCH");
  }
  return 0;
}

// Partition-search hot path: the evaluation engine under the microscope.
//
// Seven sections, emitted as BENCH_partition.json:
//
//   * eval -- ns per cost-model evaluation, reference path (estimate(),
//     materialises the Eq. 3 vector) vs fast path (estimate_into(), the
//     closed-form per-cluster engine the searches run on), plus their
//     bitwise agreement on every cost field.
//   * batched -- ns per evaluation through estimate_batch (the SoA lane
//     engine the exhaustive sweep and start scoring run on), plus bitwise
//     agreement of every lane against estimate_into.
//   * delta -- ns per +-1-move probe through estimate_delta (the engine
//     the hill climb runs on), plus bitwise agreement of every probe
//     against a from-scratch estimate_into of the moved configuration.
//   * alloc -- heap allocations per steady-state fast/batched/delta
//     evaluation, counted by a global operator-new hook in this binary.
//     The contract is exactly zero once the scratch has warmed up.
//   * search -- full partition() searches per second with one long-lived
//     scratch, single- and multi-threaded (each thread owns its scratch;
//     the estimator is shared read-only).
//   * general -- full general_partition() searches per second (multi-start
//     + delta-driven hill climb) with one long-lived scratch.
//   * exhaustive -- the work-stealing product-space sweep, serial vs 4
//     threads, on a wider availability space; the configurations must
//     match exactly (the merge is deterministic at every thread count).
//
// Gate ledger (bench::GateSet): the checks block's `pass` is the AND over
// gates that ran; skipped gates land in `gates_skipped` with a reason.
// Structural gates (bitwise on all engines, zero-alloc, preflight
// zero-cost, exhaustive determinism) always run -- --smoke runs a reduced
// rep count and exits nonzero if any of them fails; tier-1 runs that on
// every build.  Wall-clock gates (fast >= 3x, batched < 40 ns, parallel
// speedup >= 0.8x per effective thread) run in full mode only, and the
// single-core skip (no wall-clock speedup physically possible; batched
// < 40 ns is a multi-core-host gate) is explicit, unit-tested, and
// driven by detected_hardware_concurrency() / NETPART_HW_CONCURRENCY.
//
// Keys: eval_reps, searches, exhaustive_size, threads, json_out, smoke.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <new>
#include <thread>
#include <vector>

#include "analysis/preflight.hpp"
#include "bench/common.hpp"
#include "core/general.hpp"
#include "net/builder.hpp"
#include "svc/validate.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

// ---------------------------------------------------------------------------
// Allocation counting: every operator new in this binary bumps a relaxed
// counter.  Used to prove the fast path's zero-allocation contract.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = ((size ? size : 1) + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace netpart {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// Minimum ns/op across `windows` equal timing windows.  One long average
/// absorbs every hypervisor steal slice and background wakeup on a shared
/// host (observed 2x swings run to run); the fastest window is the closest
/// observable estimate of the code's true cost, and it can never flatter:
/// no window can run faster than the code itself.  `body(reps)` must
/// perform exactly `reps` operations.
template <typename Body>
double min_window_ns_per_op(std::int64_t total_reps, int windows,
                            const Body& body) {
  const std::int64_t per =
      std::max<std::int64_t>(1, total_reps / std::max(1, windows));
  double best_ns = std::numeric_limits<double>::infinity();
  for (std::int64_t done = 0; done < total_reps;) {
    const std::int64_t reps = std::min(per, total_reps - done);
    const auto t0 = Clock::now();
    body(reps);
    best_ns = std::min(best_ns,
                       ms_since(t0) * 1e6 / static_cast<double>(reps));
    done += reps;
  }
  return best_ns;
}

/// Random valid configurations (total > 0) over the snapshot.
std::vector<ProcessorConfig> sample_configs(Rng& rng,
                                            const AvailabilitySnapshot& snap,
                                            int count) {
  std::vector<ProcessorConfig> configs;
  while (static_cast<int>(configs.size()) < count) {
    ProcessorConfig config(snap.available.size(), 0);
    int total = 0;
    for (std::size_t c = 0; c < config.size(); ++c) {
      config[c] = static_cast<int>(rng.next_int(0, snap.available[c]));
      total += config[c];
    }
    if (total > 0) configs.push_back(std::move(config));
  }
  return configs;
}

struct Testbed {
  Network net;
  CalibrationResult cal;
  AvailabilitySnapshot snap;
  ComputationSpec spec;

  Testbed(Network network, int n)
      : net(std::move(network)),
        cal(bench::calibrate_testbed(net)),
        snap(bench::idle_snapshot(net)),
        spec(apps::make_stencil_spec(
            apps::StencilConfig{.n = n, .iterations = 10,
                                .overlap = false})) {}
};

/// Deterministic heterogeneous network: `clusters` clusters of exactly
/// `per_cluster` processors each, speeds spread over the paper's
/// Sparc2/IPC range -- so the exhaustive space is exactly
/// (per_cluster+1)^clusters.
Network make_grid_network(int clusters, int per_cluster) {
  NetworkBuilder b;
  b.bandwidth_bps(10e6);
  b.frame_overhead(SimTime::micros(50));
  b.router_delay(SimTime::nanos(600), SimTime::micros(100));
  for (int i = 0; i < clusters; ++i) {
    ProcessorType t;
    t.name = "cpu" + std::to_string(i);
    t.flop_time = SimTime::micros(0.1 + 0.1 * i);
    t.int_time = t.flop_time * 0.5;
    t.comm_per_byte = SimTime::nanos(800);
    t.comm_per_message = SimTime::micros(500);
    t.data_format =
        i % 2 == 0 ? DataFormat::BigEndian : DataFormat::LittleEndian;
    t.coerce_per_byte = SimTime::nanos(400);
    b.add_cluster(t.name, t, per_cluster);
  }
  return b.build();
}

int run(const Config& args) {
  const bool smoke = args.get_bool_or("smoke", false);
  const auto eval_reps = args.get_int_or("eval_reps", smoke ? 20000 : 200000);
  const auto searches = args.get_int_or("searches", smoke ? 200 : 2000);
  const auto exhaustive_size =
      args.get_int_or("exhaustive_size", smoke ? 8 : 12);
  const int threads = static_cast<int>(args.get_int_or("threads", 4));
  const std::string json_out =
      args.get_or("json_out", "BENCH_partition.json");
  const unsigned hw = bench::detected_hardware_concurrency();

  // The 4-cluster preset: the shape the paper's testbed generalises to.
  Testbed bed(make_grid_network(/*clusters=*/4, /*per_cluster=*/6),
              /*n=*/1200);
  CycleEstimator estimator(bed.net, bed.cal.db, bed.spec);
  Rng rng(7);
  const std::vector<ProcessorConfig> configs =
      sample_configs(rng, bed.snap, 64);

  JsonValue root = JsonValue::object();
  root.set("bench", "partition_hotpath");
  root.set("meta", JsonValue::object()
                       .set("clusters", bed.net.num_clusters())
                       .set("processors", bed.snap.total())
                       .set("hardware_concurrency",
                            static_cast<std::int64_t>(hw))
                       // The parallel gate's skip condition, spelled out so
                       // consumers need not re-derive it from
                       // hardware_concurrency.
                       .set("single_core", hw <= 1)
                       .set("smoke", smoke));

  // --- eval: ns per evaluation, reference vs fast, bitwise agreement ----
  EstimatorScratch scratch;
  bool bitwise = true;
  for (const ProcessorConfig& config : configs) {
    const CycleEstimate ref = estimator.estimate(config);
    const FastEstimate fast = estimator.estimate_into(config, scratch);
    bitwise = bitwise && ref.t_comp_ms == fast.t_comp_ms &&
              ref.t_comm_ms == fast.t_comm_ms &&
              ref.t_overlap_ms == fast.t_overlap_ms &&
              ref.t_c_ms == fast.t_c_ms;
  }

  // All per-eval timings are the minimum over kWindows windows (see
  // min_window_ns_per_op): this host class shares physical cores, and a
  // single long average would gate on hypervisor steal, not on the code.
  constexpr int kWindows = 16;
  double sink = 0.0;
  const double ref_ns = min_window_ns_per_op(
      eval_reps, kWindows, [&](std::int64_t reps) {
        for (std::int64_t i = 0; i < reps; ++i) {
          sink += estimator
                      .estimate(configs[static_cast<std::size_t>(i) %
                                        configs.size()])
                      .t_c_ms;
        }
      });
  const double fast_ns = min_window_ns_per_op(
      eval_reps, kWindows, [&](std::int64_t reps) {
        for (std::int64_t i = 0; i < reps; ++i) {
          sink += estimator
                      .estimate_into(configs[static_cast<std::size_t>(i) %
                                             configs.size()],
                                     scratch)
                      .t_c_ms;
        }
      });
  const double eval_speedup = ref_ns / fast_ns;
  root.set("eval", JsonValue::object()
                       .set("evals", eval_reps)
                       .set("timing_windows",
                            static_cast<std::int64_t>(kWindows))
                       .set("reference_ns_per_eval", ref_ns)
                       .set("fast_ns_per_eval", fast_ns)
                       .set("speedup", eval_speedup)
                       .set("bitwise_match", bitwise));

  // --- batched: the SoA lane engine ------------------------------------
  // Bitwise agreement first: every lane of every batch width (full lanes
  // and the scalar remainder) must reproduce estimate_into exactly.
  std::vector<FastEstimate> batch_out(configs.size());
  bool batched_bitwise = true;
  constexpr auto kL = static_cast<std::size_t>(BatchScratch::kLanes);
  for (const std::size_t width :
       {std::size_t{1}, kL - 1, kL, kL + 1, 2 * kL - 1, configs.size()}) {
    estimator.estimate_batch(configs.data(), width, batch_out.data(),
                             scratch);
    for (std::size_t i = 0; i < width; ++i) {
      const FastEstimate fast = estimator.estimate_into(configs[i], scratch);
      batched_bitwise = batched_bitwise &&
                        batch_out[i].t_comp_ms == fast.t_comp_ms &&
                        batch_out[i].t_comm_ms == fast.t_comm_ms &&
                        batch_out[i].t_overlap_ms == fast.t_overlap_ms &&
                        batch_out[i].t_c_ms == fast.t_c_ms;
    }
  }

  // Window reps round up to whole passes over the config set so every
  // window times complete batches.
  std::int64_t batched_evals = 0;
  const double batched_ns = min_window_ns_per_op(
      eval_reps, kWindows, [&](std::int64_t reps) {
        std::int64_t done = 0;
        while (done < reps) {
          estimator.estimate_batch(configs.data(), configs.size(),
                                   batch_out.data(), scratch);
          for (const FastEstimate& e : batch_out) sink += e.t_c_ms;
          done += static_cast<std::int64_t>(configs.size());
        }
        batched_evals += done;
      });
  root.set("batched",
           JsonValue::object()
               .set("evals", batched_evals)
               .set("batched_ns_per_eval", batched_ns)
               .set("speedup_vs_fast", fast_ns / batched_ns)
               .set("bitwise_match", batched_bitwise));

  // --- delta: the incremental +/-1 path the hill climb runs on ----------
  // Bind a baseline once, then score alternating +1/-1 moves against it --
  // the exact access pattern of a climb probing a neighbourhood.  Bitwise
  // agreement with estimate_into on the moved configuration is asserted
  // here for every probe of the first pass (the property tier covers
  // randomised sequences).
  DeltaScratch delta_scratch;
  bool delta_bitwise = true;
  std::vector<std::pair<ClusterId, int>> probes;  // valid +/-1 moves
  {
    const ProcessorConfig& baseline = configs[0];
    const int total = config_total(baseline);
    estimator.bind_delta(baseline, delta_scratch, scratch);
    ProcessorConfig moved = baseline;
    for (std::size_t c = 0; c < baseline.size(); ++c) {
      for (const int delta : {+1, -1}) {
        const int p = baseline[c] + delta;
        if (p < 0 || p > bed.snap.available[c]) continue;
        if (total + delta == 0) continue;
        probes.emplace_back(static_cast<ClusterId>(c), delta);
        const FastEstimate d = estimator.estimate_delta(
            static_cast<ClusterId>(c), delta, delta_scratch, scratch);
        moved = baseline;
        moved[c] = p;
        const FastEstimate f = estimator.estimate_into(moved, scratch);
        delta_bitwise = delta_bitwise && d.t_comp_ms == f.t_comp_ms &&
                        d.t_comm_ms == f.t_comm_ms &&
                        d.t_overlap_ms == f.t_overlap_ms &&
                        d.t_c_ms == f.t_c_ms;
      }
    }
  }
  std::int64_t delta_evals = 0;
  const double delta_ns = min_window_ns_per_op(
      eval_reps, kWindows, [&](std::int64_t reps) {
        for (std::int64_t i = 0; i < reps; ++i) {
          const auto& [c, delta] =
              probes[static_cast<std::size_t>(i) % probes.size()];
          sink +=
              estimator.estimate_delta(c, delta, delta_scratch, scratch)
                  .t_c_ms;
        }
        delta_evals += reps;
      });
  root.set("delta",
           JsonValue::object()
               .set("evals", delta_evals)
               .set("delta_ns_per_eval", delta_ns)
               .set("speedup_vs_fast", fast_ns / delta_ns)
               .set("bitwise_match", delta_bitwise));

  // --- alloc: the zero-allocation contract ------------------------------
  // The scratch is warm (the loops above).  Every allocation between the
  // two reads below is a contract violation.
  const std::int64_t alloc_evals = smoke ? 5000 : 50000;
  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  for (std::int64_t i = 0; i < alloc_evals; ++i) {
    sink += estimator
                .estimate_into(configs[static_cast<std::size_t>(i) %
                                       configs.size()],
                               scratch)
                .t_c_ms;
  }
  const std::uint64_t fast_allocs =
      g_allocations.load(std::memory_order_relaxed) - allocs_before;

  // Same contract for the lane engine (its buffers warmed up above).
  const std::uint64_t batch_allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  for (std::int64_t i = 0; i < alloc_evals;
       i += static_cast<std::int64_t>(configs.size())) {
    estimator.estimate_batch(configs.data(), configs.size(),
                             batch_out.data(), scratch);
  }
  const std::uint64_t batched_allocs =
      g_allocations.load(std::memory_order_relaxed) - batch_allocs_before;

  // Same contract for the delta path (its staging warmed up at bind).
  const std::uint64_t delta_allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  for (std::int64_t i = 0; i < alloc_evals; ++i) {
    const auto& [c, delta] =
        probes[static_cast<std::size_t>(i) % probes.size()];
    sink += estimator.estimate_delta(c, delta, delta_scratch, scratch)
                .t_c_ms;
  }
  const std::uint64_t delta_allocs =
      g_allocations.load(std::memory_order_relaxed) - delta_allocs_before;

  // For contrast: allocations of one reference evaluation (vector
  // materialisation and friends).
  const std::uint64_t ref_before =
      g_allocations.load(std::memory_order_relaxed);
  sink += estimator.estimate(configs[0]).t_c_ms;
  const std::uint64_t ref_allocs =
      g_allocations.load(std::memory_order_relaxed) - ref_before;

  root.set("alloc",
           JsonValue::object()
               .set("fast_evals", alloc_evals)
               .set("fast_allocations", fast_allocs)
               .set("batched_allocations", batched_allocs)
               .set("delta_allocations", delta_allocs)
               .set("allocations_per_eval",
                    static_cast<double>(fast_allocs) /
                        static_cast<double>(alloc_evals))
               .set("reference_allocations_per_eval", ref_allocs));

  // --- preflight: the admission gate's zero-cost contract ---------------
  // The partition service lints its network + cost model once at startup
  // (analysis::preflight) and screens every request at submit()
  // (svc::validate_request) in front of the cache.  Neither may tax the
  // cached hot path: validation must be allocation-free, and the startup
  // lint must not consume a single estimator evaluation.
  std::uint64_t validate_allocs = 0;
  std::uint64_t preflight_evals = 0;
  const std::int64_t validate_reps = smoke ? 5000 : 50000;
  {
    svc::PartitionRequest request;
    request.spec = "stencil";
    request.n = 1200;
    request.iterations = 10;
    bool all_valid = true;
    const std::uint64_t before =
        g_allocations.load(std::memory_order_relaxed);
    for (std::int64_t i = 0; i < validate_reps; ++i) {
      all_valid = all_valid && svc::validate_request(request) == nullptr;
    }
    validate_allocs =
        g_allocations.load(std::memory_order_relaxed) - before;
    if (!all_valid) validate_allocs = ~std::uint64_t{0};  // can't happen

    const std::uint64_t evals_before = estimator.evaluations();
    const analysis::DiagnosticSink gate =
        analysis::preflight(bed.net, bed.cal.db);
    preflight_evals = estimator.evaluations() - evals_before;

    root.set("preflight",
             JsonValue::object()
                 .set("validate_calls", validate_reps)
                 .set("validate_allocations",
                      static_cast<std::int64_t>(validate_allocs))
                 .set("preflight_estimator_evals",
                      static_cast<std::int64_t>(preflight_evals))
                 .set("preflight_errors", gate.errors())
                 .set("preflight_warnings", gate.warnings()));
  }

  // --- search: whole partition() searches per second --------------------
  {
    EstimatorScratch search_scratch;
    PartitionResult warm =
        partition(estimator, bed.snap, {}, &search_scratch);
    sink += warm.estimate.t_c_ms;
    const auto t0 = Clock::now();
    for (std::int64_t i = 0; i < searches; ++i) {
      sink += partition(estimator, bed.snap, {}, &search_scratch)
                  .estimate.t_c_ms;
    }
    const double single_ms = ms_since(t0);

    const auto t1 = Clock::now();
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    const std::int64_t per_thread =
        (searches + threads - 1) / threads;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&estimator, &bed, per_thread] {
        EstimatorScratch local;
        double local_sink = 0.0;
        for (std::int64_t i = 0; i < per_thread; ++i) {
          local_sink +=
              partition(estimator, bed.snap, {}, &local).estimate.t_c_ms;
        }
        (void)local_sink;
      });
    }
    for (auto& t : pool) t.join();
    const double multi_ms = ms_since(t1);
    const double multi_searches =
        static_cast<double>(per_thread) * threads;

    root.set("search",
             JsonValue::object()
                 .set("searches", searches)
                 .set("single_thread_per_sec",
                      static_cast<double>(searches) * 1e3 / single_ms)
                 .set("threads", threads)
                 .set("multi_thread_per_sec", multi_searches * 1e3 / multi_ms));
  }

  // --- general: general_partition searches per second --------------------
  // The multi-start hill climb (heuristic + corner + random starts, then
  // +-1 probing until a local optimum).  This is the searcher adaptive
  // repartitioning leans on, so its whole-search throughput is a first
  // class metric alongside partition()'s.
  {
    const std::int64_t general_searches =
        std::max<std::int64_t>(smoke ? 20 : 200, searches / 10);
    EstimatorScratch general_scratch;
    PartitionResult warm =
        general_partition(estimator, bed.snap, {}, &general_scratch);
    sink += warm.estimate.t_c_ms;
    const auto t0 = Clock::now();
    for (std::int64_t i = 0; i < general_searches; ++i) {
      sink += general_partition(estimator, bed.snap, {}, &general_scratch)
                  .estimate.t_c_ms;
    }
    const double general_ms = ms_since(t0);
    root.set("general",
             JsonValue::object()
                 .set("searches", general_searches)
                 .set("searches_per_sec",
                      static_cast<double>(general_searches) * 1e3 /
                          general_ms)
                 .set("us_per_search",
                      general_ms * 1e3 /
                          static_cast<double>(general_searches)));
  }

  // --- exhaustive: serial vs sharded sweep ------------------------------
  // A wider snapshot so the sweep is worth sharding (the 4-cluster preset
  // above enumerates in microseconds): (exhaustive_size+1)^4 configs.
  Testbed wide(make_grid_network(/*clusters=*/4,
                                 static_cast<int>(exhaustive_size)),
               /*n=*/2400);
  CycleEstimator wide_estimator(wide.net, wide.cal.db, wide.spec);
  std::uint64_t space = 1;
  for (int n : wide.snap.available) {
    space *= static_cast<std::uint64_t>(n) + 1;
  }

  const auto t_serial = Clock::now();
  const PartitionResult serial =
      exhaustive_partition(wide_estimator, wide.snap, {.threads = 1});
  const double serial_ms = ms_since(t_serial);

  const auto t_parallel = Clock::now();
  const PartitionResult parallel =
      exhaustive_partition(wide_estimator, wide.snap, {.threads = threads});
  const double parallel_ms = ms_since(t_parallel);

  const bool exhaustive_match = serial.config == parallel.config;
  const double exhaustive_speedup = serial_ms / parallel_ms;
  root.set("exhaustive",
           JsonValue::object()
               .set("space", static_cast<std::int64_t>(space))
               .set("serial_ms", serial_ms)
               .set("threads", threads)
               .set("parallel_ms", parallel_ms)
               .set("speedup", exhaustive_speedup)
               .set("configs_match", exhaustive_match));

  // --- checks -----------------------------------------------------------
  // Structural gates (bitwise identity, allocation contracts) run in every
  // mode.  Wall-clock gates run only where their verdict means something:
  // never under --smoke (reduced reps), and the absolute-nanosecond and
  // parallel-speedup gates never on a single-core host, where the numbers
  // measure the hypervisor, not the code.  `pass` is the AND over gates
  // that ran; `gates_skipped` lists the rest with reasons.
  const bool zero_alloc =
      fast_allocs == 0 && batched_allocs == 0 && delta_allocs == 0;
  const bool preflight_zero = validate_allocs == 0 && preflight_evals == 0;
  const bool fast_3x = eval_speedup >= 3.0;
  const bool batched_under_40ns = batched_ns < 40.0;
  const bench::SpeedupEvaluation parallel_eval =
      bench::evaluate_parallel_speedup(smoke, threads, exhaustive_speedup);
  const bench::SpeedupGate parallel_gate = parallel_eval.gate;

  bench::GateSet gates;
  gates.require("bitwise_match", bitwise);
  gates.require("batched_bitwise_match", batched_bitwise);
  gates.require("delta_bitwise_match", delta_bitwise);
  gates.require("zero_alloc_per_eval", zero_alloc);
  gates.require("preflight_zero_cost", preflight_zero);
  gates.require("exhaustive_configs_match", exhaustive_match);
  if (smoke) {
    gates.skip("fast_speedup_3x", "skipped_smoke");
    gates.skip("batched_under_40ns", "skipped_smoke");
  } else {
    gates.require("fast_speedup_3x", fast_3x);
    if (hw <= 1) {
      // The <40 ns bar is an absolute wall-clock target; on a single-core
      // (shared, steal-prone) host it gates the neighbours, not the
      // engine.  The measured number is still reported above -- honestly
      // -- and multi-core hosts enforce the bar.
      gates.skip("batched_under_40ns", "skipped_single_core");
    } else {
      gates.require("batched_under_40ns", batched_under_40ns);
    }
  }
  if (parallel_gate == bench::SpeedupGate::Pass ||
      parallel_gate == bench::SpeedupGate::Fail) {
    gates.require("parallel_speedup",
                  parallel_gate == bench::SpeedupGate::Pass);
  } else {
    gates.skip("parallel_speedup", bench::to_string(parallel_gate));
  }
  const bool pass = gates.pass();
  root.set("checks",
           JsonValue::object()
               .set("bitwise_match", bitwise)
               .set("batched_bitwise_match", batched_bitwise)
               .set("delta_bitwise_match", delta_bitwise)
               .set("zero_alloc_per_eval", zero_alloc)
               .set("preflight_zero_cost", preflight_zero)
               .set("exhaustive_configs_match", exhaustive_match)
               .set("fast_speedup_3x", fast_3x)
               .set("batched_under_40ns", batched_under_40ns)
               .set("parallel_speedup", bench::to_string(parallel_gate))
               .set("gates_skipped", gates.skipped_json())
               .set("pass", pass));
  (void)sink;

  Table table({"metric", "value"});
  table.add_row({"reference ns/eval", format_double(ref_ns, 1)});
  table.add_row({"fast ns/eval", format_double(fast_ns, 1)});
  table.add_row({"batched ns/eval", format_double(batched_ns, 1)});
  table.add_row({"delta ns/eval", format_double(delta_ns, 1)});
  table.add_row({"eval speedup", format_double(eval_speedup, 2) + "x"});
  table.add_row({"allocations/eval (fast, steady state)",
                  format_double(static_cast<double>(fast_allocs) /
                                    static_cast<double>(alloc_evals),
                                3)});
  table.add_row({"exhaustive serial / parallel (ms)",
                  format_double(serial_ms, 1) + " / " +
                      format_double(parallel_ms, 1)});
  table.add_row({"bitwise fast == reference", bitwise ? "yes" : "NO"});
  table.add_row(
      {"bitwise batched == fast", batched_bitwise ? "yes" : "NO"});
  table.add_row({"bitwise delta == fast", delta_bitwise ? "yes" : "NO"});
  table.add_row({"preflight gate zero-cost", preflight_zero ? "yes" : "NO"});
  table.add_row({"parallel speedup gate", bench::to_string(parallel_gate)});
  std::printf("%s\n", table.render("partition hot path").c_str());

  bench::write_bench_json(json_out, root);
  std::printf("results -> %s\n", json_out.c_str());

  if (smoke && !pass) {
    // Under --smoke every gate that ran is structural (the wall-clock
    // gates were skipped), so any failure is a contract violation.
    std::fprintf(stderr,
                 "bench_partition_hotpath --smoke FAILED: bitwise=%d "
                 "batched_bitwise=%d delta_bitwise=%d zero_alloc=%d "
                 "preflight_zero=%d exhaustive_match=%d\n",
                 bitwise, batched_bitwise, delta_bitwise, zero_alloc,
                 preflight_zero, exhaustive_match);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace netpart

int main(int argc, char** argv) {
  try {
    return netpart::run(netpart::bench::parse_bench_args(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_partition_hotpath: %s\n", e.what());
    return 1;
  }
}

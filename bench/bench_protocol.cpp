// The cooperative availability protocol's cost (the paper's [11] claim:
// "additional overhead required to determine the available processors ...
// is also small relative to elapsed time").  Token ring + result broadcast
// over real simulated messages, across cluster counts.
#include <cstdio>

#include "bench/common.hpp"
#include "mmps/manager_protocol.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace netpart;
  Table table({"clusters", "processors", "messages", "elapsed ms",
               "vs stencil N=300 (6 Sparc2s)"});

  // Reference elapsed time the overhead must amortise against.
  const double stencil_ms = [] {
    const Network net = presets::paper_testbed();
    const apps::StencilConfig cfg{.n = 300, .iterations = 10,
                                  .overlap = false};
    return bench::measured_stencil_ms(net, cfg, {6, 0}, 1);
  }();

  for (const int k : {2, 3, 5, 8}) {
    Rng rng(static_cast<std::uint64_t>(k) * 31);
    const Network net = presets::random_network(rng, k, 6);
    const auto managers = make_managers(net, AvailabilityPolicy{});
    sim::Engine engine;
    sim::NetSim sim(engine, net, sim::NetSimParams{}, Rng(9));
    const mmps::ProtocolResult result =
        mmps::run_availability_protocol(sim, managers);
    table.add_row({std::to_string(k),
                   std::to_string(net.total_processors()),
                   std::to_string(result.messages),
                   format_double(result.elapsed.as_millis(), 2),
                   format_double(100.0 * result.elapsed.as_millis() /
                                     stencil_ms,
                                 2) +
                       "%"});
  }
  std::printf("%s\n",
              table.render("Availability protocol cost (ring + broadcast "
                           "among cluster managers)")
                  .c_str());
  return 0;
}

// Partitioner scalability beyond the paper's 2-cluster testbed: networks
// of 2..10 clusters (up to ~60 processors), stencil sizes spanning three
// orders of magnitude.  Reports the chosen processor counts, the
// evaluation budget (the paper's K log2 P bound), and wall-clock cost of
// one partitioning call.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench/common.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace netpart;
  Table table({"K", "P", "N", "chosen p", "evals", "K*log2P",
               "partition wall us"});

  for (const int k : {2, 4, 6, 10}) {
    Rng rng(static_cast<std::uint64_t>(k) * 1021);
    const Network net = presets::random_network(rng, k, 6);
    CalibrationParams params;
    params.topologies = {Topology::OneD};
    const CalibrationResult cal = calibrate(net, params);
    const AvailabilitySnapshot snap = bench::idle_snapshot(net);

    for (const int n : {120, 1200, 12000}) {
      const ComputationSpec spec = apps::make_stencil_spec(
          apps::StencilConfig{.n = n, .iterations = 10, .overlap = false});
      CycleEstimator est(net, cal.db, spec);

      const auto t0 = std::chrono::steady_clock::now();
      const PartitionResult r = partition(est, snap);
      const double wall_us = std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();

      const double bound =
          k * std::log2(static_cast<double>(snap.total()));
      table.add_row({std::to_string(k), std::to_string(snap.total()),
                     std::to_string(n),
                     std::to_string(config_total(r.config)),
                     std::to_string(r.evaluations),
                     format_double(bound, 1),
                     format_double(wall_us, 1)});
    }
  }
  std::printf("%s\n",
              table.render("Partitioner scaling over cluster count and "
                           "problem size")
                  .c_str());
  return 0;
}

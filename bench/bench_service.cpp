// Partition-service performance: cold vs. cached latency, and throughput
// scaling with worker threads (the start of the perf trajectory for the
// src/svc subsystem; see DESIGN.md §8).
//
// Part 1 -- latency: one worker, one client, a universe of distinct
// requests queried cold once then re-queried hot.  Per-request wall
// latencies are kept raw (cache hits are sub-microsecond; histogram
// buckets would flatten the tail) and summarised as p50/p95/p99.
//
// Part 2 -- scaling: a cold-only mix (every request a distinct key, the
// cache never hits) against 1/2/4 workers.  Each cold decision runs the
// real partitioner (Linear search on a larger random network) plus a
// simulated availability-manager round trip -- the blocking a deployed
// service pays to refresh N_i before a cold decision.  Worker scaling
// therefore measures service-time overlap, which holds even on the
// single-core CI container where raw CPU parallelism cannot.
//
// Emits BENCH_service.json with both sections plus the pass/fail of the
// two acceptance checks (hit >= 5x cheaper than cold; 2 workers > 1).
//
// Keys: universe, hit_rounds, cold_requests, clients, json_out.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "svc/service.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace netpart {
namespace {

using Clock = std::chrono::steady_clock;

ComputationSpec resolve_stencil(const svc::PartitionRequest& request) {
  return apps::make_stencil_spec(apps::StencilConfig{
      .n = static_cast<int>(request.n), .iterations = request.iterations});
}

svc::PartitionRequest stencil_request(std::int64_t n, bool heavy) {
  svc::PartitionRequest request;
  request.spec = "stencil";
  request.n = n;
  request.iterations = 10;
  if (heavy) request.options.search = PartitionOptions::Search::Linear;
  return request;
}

double elapsed_us(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0)
      .count();
}

struct LatencySummary {
  double p50 = 0.0, p95 = 0.0, p99 = 0.0, mean = 0.0;
};

LatencySummary summarize(const std::vector<double>& samples) {
  LatencySummary s;
  s.p50 = bench::sample_quantile(samples, 0.50);
  s.p95 = bench::sample_quantile(samples, 0.95);
  s.p99 = bench::sample_quantile(samples, 0.99);
  double total = 0.0;
  for (double v : samples) total += v;
  s.mean = total / static_cast<double>(samples.size());
  return s;
}

JsonValue to_json(const LatencySummary& s) {
  JsonValue out = JsonValue::object();
  out.set("p50_us", s.p50);
  out.set("p95_us", s.p95);
  out.set("p99_us", s.p99);
  out.set("mean_us", s.mean);
  return out;
}

/// How long the simulated cluster-manager round trip blocks a cold
/// decision (Section 4's availability protocol, paid remotely).
constexpr auto kManagerRpc = std::chrono::microseconds(200);

/// Cold-only throughput: `clients` threads each synchronously querying a
/// disjoint slice of distinct keys against a fresh service.
double cold_throughput_rps(const Network& net, const CostModelDb& db,
                           int workers, int clients, int total_requests) {
  AvailabilityFeed feed(net, make_managers(net, AvailabilityPolicy{}));
  svc::ServiceOptions options;
  options.workers = workers;
  options.queue_capacity = static_cast<std::size_t>(total_requests);
  options.cold_override = [&net, &db](const svc::PartitionRequest& request,
                                      const AvailabilitySnapshot& snapshot) {
    std::this_thread::sleep_for(kManagerRpc);
    svc::PartitionDecision decision;
    const ComputationSpec spec = resolve_stencil(request);
    const CycleEstimator estimator(net, db, spec);
    PartitionResult result = partition(estimator, snapshot, request.options);
    decision.partition = std::move(result.estimate.partition);
    decision.config = std::move(result.config);
    decision.placement = std::move(result.placement);
    decision.t_c_ms = result.estimate.t_c_ms;
    decision.evaluations = result.evaluations;
    return decision;
  };
  svc::PartitionService service(net, db, feed, resolve_stencil, options);

  const int per_client = total_requests / clients;
  const auto t0 = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      for (int r = 0; r < per_client; ++r) {
        // Distinct n per (client, request): every query is a cold miss.
        const std::int64_t n = 64 + c * per_client + r;
        (void)service.query(stencil_request(n, /*heavy=*/true));
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double secs = elapsed_us(t0) / 1e6;
  return static_cast<double>(per_client * clients) / secs;
}

int run(const Config& args) {
  const int universe = static_cast<int>(args.get_int_or("universe", 64));
  const int hit_rounds =
      static_cast<int>(args.get_int_or("hit_rounds", 50));
  const int cold_requests =
      static_cast<int>(args.get_int_or("cold_requests", 96));
  const int clients = static_cast<int>(args.get_int_or("clients", 8));
  const std::string json_out = args.get_or("json_out", "BENCH_service.json");

  bench::PhaseMetrics phase_metrics;

  // --- Part 1: cold vs. hit latency on the paper testbed. -------------
  const Network net = presets::paper_testbed();
  const CostModelDb db = bench::calibrate_testbed(net).db;
  AvailabilityFeed feed(net, make_managers(net, AvailabilityPolicy{}));
  svc::ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = static_cast<std::size_t>(universe);
  svc::PartitionService service(net, db, feed, resolve_stencil, options);

  std::vector<double> cold_us, hit_us;
  cold_us.reserve(static_cast<std::size_t>(universe));
  hit_us.reserve(static_cast<std::size_t>(universe * hit_rounds));
  for (int k = 0; k < universe; ++k) {
    const auto t0 = Clock::now();
    const svc::ServiceReply reply =
        service.query(stencil_request(60 + 10 * k, /*heavy=*/false));
    NP_REQUIRE(reply.status == svc::ServiceStatus::Ok, reply.error);
    NP_REQUIRE(!reply.cache_hit, "first query of a key must be cold");
    cold_us.push_back(elapsed_us(t0));
  }
  for (int round = 0; round < hit_rounds; ++round) {
    for (int k = 0; k < universe; ++k) {
      const auto t0 = Clock::now();
      const svc::ServiceReply reply =
          service.query(stencil_request(60 + 10 * k, /*heavy=*/false));
      NP_REQUIRE(reply.status == svc::ServiceStatus::Ok && reply.cache_hit,
                 "warmed key must hit");
      hit_us.push_back(elapsed_us(t0));
    }
  }
  const LatencySummary cold = summarize(cold_us);
  const LatencySummary hit = summarize(hit_us);
  const double hit_speedup = cold.p50 / hit.p50;
  phase_metrics.phase("latency");

  // --- Part 2: throughput scaling on a cold-only mix. -----------------
  Rng rng(7);
  const Network big = presets::random_network(rng, 10, 32);
  const CostModelDb big_db = bench::calibrate_testbed(big).db;
  const std::vector<int> worker_counts = {1, 2, 4};
  std::vector<double> rps;
  rps.reserve(worker_counts.size());
  for (int workers : worker_counts) {
    rps.push_back(cold_throughput_rps(big, big_db, workers, clients,
                                      cold_requests));
  }
  const double scaling_2w = rps[1] / rps[0];
  phase_metrics.phase("throughput");

  // --- Report. ---------------------------------------------------------
  Table latency({"path", "p50 us", "p95 us", "p99 us", "mean us"});
  const auto lat_row = [&latency](const char* label,
                                  const LatencySummary& s) {
    latency.add_row({label, format_double(s.p50, 1), format_double(s.p95, 1),
                     format_double(s.p99, 1), format_double(s.mean, 1)});
  };
  lat_row("cold (miss)", cold);
  lat_row("cached (hit)", hit);
  std::printf("%s\n", latency.render("service latency, 1 worker").c_str());
  std::printf("  hit speedup (cold p50 / hit p50): %.1fx\n\n", hit_speedup);

  Table scaling({"workers", "cold rps"});
  for (std::size_t i = 0; i < worker_counts.size(); ++i) {
    scaling.add_row({std::to_string(worker_counts[i]),
                     format_double(rps[i], 0)});
  }
  std::printf("%s\n",
              scaling.render("cold-mix throughput vs workers").c_str());
  std::printf("  2-worker scaling over 1: %.2fx\n", scaling_2w);

  JsonValue root = JsonValue::object();
  root.set("bench", "service");
  JsonValue config = JsonValue::object();
  config.set("universe", universe);
  config.set("hit_rounds", hit_rounds);
  config.set("cold_requests", cold_requests);
  config.set("clients", clients);
  root.set("config", std::move(config));
  JsonValue lat = JsonValue::object();
  lat.set("cold", to_json(cold));
  lat.set("hit", to_json(hit));
  lat.set("hit_speedup_p50", hit_speedup);
  root.set("latency", std::move(lat));
  JsonValue thr = JsonValue::object();
  JsonValue points = JsonValue::array();
  for (std::size_t i = 0; i < worker_counts.size(); ++i) {
    JsonValue point = JsonValue::object();
    point.set("workers", worker_counts[i]);
    point.set("rps", rps[i]);
    points.push(std::move(point));
  }
  thr.set("points", std::move(points));
  thr.set("scaling_2w_over_1w", scaling_2w);
  root.set("throughput", std::move(thr));
  root.set("metrics", phase_metrics.to_json());
  JsonValue checks = JsonValue::object();
  checks.set("hit_5x_cheaper_than_cold", hit_speedup >= 5.0);
  checks.set("workers_scale_2_gt_1", scaling_2w > 1.0);
  root.set("checks", std::move(checks));
  bench::write_bench_json(json_out, root);
  std::printf("\nresults -> %s\n", json_out.c_str());

  return hit_speedup >= 5.0 && scaling_2w > 1.0 ? 0 : 1;
}

}  // namespace
}  // namespace netpart

int main(int argc, char** argv) {
  try {
    return netpart::run(netpart::bench::parse_bench_args(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_service: %s\n", e.what());
    return 1;
  }
}

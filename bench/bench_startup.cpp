// Startup amortisation (Section 5's T_elapsed = I*T_c + T_startup).
//
// The paper assumes "the computation is of sufficient granularity to
// amortize the startup costs".  This bench quantifies that: for each
// problem size, the measured initial scatter (rank 0 distributes every
// block) against I*T_c, and the iteration count at which startup drops
// below 5% of the total.
#include <cstdio>

#include "bench/common.hpp"
#include "core/decompose.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace netpart;
  const Network net = presets::paper_testbed();

  Table table({"N", "config", "T_startup ms", "T_c ms", "startup = 5% at I",
               "I=10 startup share"});
  for (std::int64_t n : bench::paper_sizes()) {
    const apps::StencilConfig cfg{.n = static_cast<int>(n),
                                  .iterations = 10,
                                  .overlap = false};
    const ComputationSpec spec = apps::make_stencil_spec(cfg);
    const ProcessorConfig config{6, 6};
    const Placement placement = contiguous_placement(net, config);
    const PartitionVector part = balanced_partition(
        net, config, clusters_by_speed(net), n);

    ExecutionOptions options;
    options.pdu_bytes = 4 * n;  // one float row per PDU
    const ExecutionResult run = execute(net, spec, placement, part, options);
    const double startup = run.startup.as_millis();
    const double per_cycle = run.elapsed.as_millis() / cfg.iterations;
    const int amortized_at =
        static_cast<int>(startup / (0.05 * per_cycle) + 1.0);
    table.add_row(
        {std::to_string(n), "(6,6)", bench::ms(startup),
         bench::ms(per_cycle), std::to_string(amortized_at),
         format_double(100.0 * startup /
                           (startup + run.elapsed.as_millis()),
                       1) +
             "%"});
  }
  std::printf("%s\n",
              table.render("Startup (initial scatter) vs per-cycle cost")
                  .c_str());
  return 0;
}

// Table 1: output of the partitioning algorithm for STEN-1 and STEN-2.
//
// For each problem size the partitioner chooses (P1, P2) -- Sparc2s and
// IPCs -- and the per-processor PDU counts (A1, A2).  The paper's reference
// values are printed alongside.  Note: the paper's printed A-values for
// N=1200 (171/86) are inconsistent with P1=P2=6 (they sum to 1542 rows);
// Eq. 3 gives 133/67, which is what a correct implementation reports.
#include <cstdio>

#include "bench/common.hpp"
#include "util/table.hpp"

namespace netpart {
namespace {

struct PaperRow {
  std::int64_t n;
  int p1, p2;
  std::int64_t a1, a2;
};

// Reference values from the paper (Table 1).
const PaperRow kPaperSten1[] = {
    {60, 1, 0, 60, 0}, {300, 6, 0, 50, 0}, {600, 6, 4, 75, 38},
    {1200, 6, 6, 171, 86},  // printed values; see header comment
};
const PaperRow kPaperSten2[] = {
    {60, 2, 0, 30, 0}, {300, 6, 2, 43, 21}, {600, 6, 6, 67, 33},
    {1200, 6, 6, 171, 86},
};

void run_variant(const Network& net, const CostModelDb& db, bool overlap,
                 const PaperRow* paper, Table& table) {
  const AvailabilitySnapshot snapshot = bench::idle_snapshot(net);
  for (std::size_t i = 0; i < bench::paper_sizes().size(); ++i) {
    const std::int64_t n = bench::paper_sizes()[i];
    const apps::StencilConfig cfg{.n = static_cast<int>(n),
                                  .iterations = 10,
                                  .overlap = overlap};
    const ComputationSpec spec = apps::make_stencil_spec(cfg);
    CycleEstimator estimator(net, db, spec);
    const PartitionResult result = partition(estimator, snapshot);

    const int p1 = result.config[0];
    const int p2 = result.config[1];
    const std::int64_t a1 = p1 > 0 ? result.estimate.partition.at(0) : 0;
    const std::int64_t a2 =
        p2 > 0 ? result.estimate.partition.at(p1) : 0;
    table.add_row({std::to_string(n), std::to_string(p1),
                   std::to_string(p2), std::to_string(a1),
                   std::to_string(a2),
                   std::to_string(paper[i].p1) + "/" +
                       std::to_string(paper[i].p2),
                   std::to_string(paper[i].a1) + "/" +
                       std::to_string(paper[i].a2),
                   std::to_string(result.evaluations)});
  }
}

}  // namespace
}  // namespace netpart

int main() {
  using namespace netpart;
  const Network net = presets::paper_testbed();
  const CalibrationResult calibration = bench::calibrate_testbed(net);

  for (const bool overlap : {false, true}) {
    Table table({"N", "P1", "P2", "A1", "A2", "paper P1/P2", "paper A1/A2",
                 "evals"});
    run_variant(net, calibration.db, overlap,
                overlap ? kPaperSten2 : kPaperSten1, table);
    std::printf("%s\n",
                table
                    .render(std::string("Table 1 (") +
                            (overlap ? "STEN-2" : "STEN-1") +
                            "): partitioning algorithm output")
                    .c_str());
  }
  return 0;
}

// Table 2: measured elapsed times for STEN-1 and STEN-2 across the seven
// processor configurations, with the partitioner's predicted minimum
// starred.  Reproduces the paper's claim: the predicted configuration is
// the measured minimum for every problem size, and (N=1200) heterogeneous
// decomposition beats equal decomposition.
// Optional arg: csv=<path> appends machine-readable rows.
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>

#include "bench/common.hpp"
#include "core/decompose.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace netpart {
namespace {

void run_variant(const Network& net, const CostModelDb& db, bool overlap,
                 CsvWriter* csv) {
  const AvailabilitySnapshot snapshot = bench::idle_snapshot(net);
  const auto configs = bench::table2_configs();

  std::vector<std::string> headers = {"N"};
  for (const auto& c : configs) headers.push_back(c.label);
  headers.push_back("equal-A (12p)");
  headers.push_back("predicted");
  headers.push_back("pred ms");
  headers.push_back("agree");
  Table table(headers);

  for (std::int64_t n : bench::paper_sizes()) {
    const apps::StencilConfig cfg{.n = static_cast<int>(n),
                                  .iterations = 10,
                                  .overlap = overlap};
    const ComputationSpec spec = apps::make_stencil_spec(cfg);
    CycleEstimator estimator(net, db, spec);
    const PartitionResult predicted = partition(estimator, snapshot);

    // Measure every configuration; star the measured minimum and bracket
    // the predicted one -- the paper's claim is that they coincide.
    std::vector<double> elapsed;
    std::size_t measured_min = 0;
    for (std::size_t i = 0; i < configs.size(); ++i) {
      elapsed.push_back(
          bench::measured_stencil_ms(net, cfg, configs[i].config));
      if (elapsed[i] < elapsed[measured_min]) measured_min = i;
      if (csv != nullptr) {
        csv->write_row({overlap ? "STEN-2" : "STEN-1", std::to_string(n),
                        std::to_string(configs[i].config[0]),
                        std::to_string(configs[i].config[1]),
                        format_double(elapsed[i], 2)});
      }
    }

    std::vector<std::string> row{std::to_string(n)};
    for (std::size_t i = 0; i < configs.size(); ++i) {
      std::string cell = bench::ms(elapsed[i]);
      if (i == measured_min) cell += "*";
      if (configs[i].config == predicted.config) cell = "[" + cell + "]";
      row.push_back(cell);
    }

    // Equal decomposition across all 12 processors (paper shows N=1200;
    // we report every size).
    {
      const ProcessorConfig all{6, 6};
      const Placement placement = contiguous_placement(net, all);
      const PartitionVector equal =
          equal_partition(static_cast<int>(placement.size()), n);
      ExecutionOptions options;
      options.compute_jitter = 0.01;
      row.push_back(bench::ms(
          average_elapsed_ms(net, spec, placement, equal, options, 3)));
    }

    // The partitioner's choice may fall between the paper's seven columns
    // (e.g. 5 Sparc2s); measure it explicitly and check it is within noise
    // of the best measured configuration.
    const double predicted_ms =
        bench::measured_stencil_ms(net, cfg, predicted.config);
    // Built with += rather than one operator+ chain: gcc 12's -Wrestrict
    // fires a false positive on the chained temporaries under -O2.
    std::string predicted_cell = "(";
    predicted_cell += std::to_string(predicted.config[0]);
    predicted_cell += ',';
    predicted_cell += std::to_string(predicted.config[1]);
    predicted_cell += ')';
    row.push_back(std::move(predicted_cell));
    row.push_back(bench::ms(predicted_ms));
    const double best_ms = std::min(predicted_ms, elapsed[measured_min]);
    row.push_back(predicted_ms <= 1.05 * best_ms ? "yes" : "NO");
    table.add_row(row);
  }

  std::printf("%s\n",
              table
                  .render(std::string("Table 2 (") +
                          (overlap ? "STEN-2" : "STEN-1") +
                          "): measured elapsed ms; * = measured min, "
                          "[] = predicted min")
                  .c_str());
}

}  // namespace
}  // namespace netpart

int main(int argc, char** argv) {
  using namespace netpart;
  const Config args = Config::from_args(argc, argv);
  const Network net = presets::paper_testbed();
  const CalibrationResult calibration = bench::calibrate_testbed(net);

  std::ofstream csv_file;
  std::unique_ptr<CsvWriter> csv;
  if (const auto path = args.get("csv")) {
    csv_file.open(*path);
    csv = std::make_unique<CsvWriter>(
        csv_file,
        std::vector<std::string>{"variant", "n", "p1", "p2", "elapsed_ms"});
  }

  run_variant(net, calibration.db, /*overlap=*/false, csv.get());
  run_variant(net, calibration.db, /*overlap=*/true, csv.get());
  return 0;
}

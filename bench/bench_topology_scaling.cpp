// Topology ablation: how the decomposition's communication structure
// changes the processor-count decision.
//
// Three variants of the same N x N relaxation:
//   1-D rows  : border = 4N bytes, constant in p       (the paper's code)
//   2-D blocks: border = 4*sqrt(A_i), shrinks with p   ("b depends on A_i")
//   ring      : one 4N-byte forward per cycle
//
// With shrinking borders the granularity limit moves right: the 2-D
// decomposition keeps additional processors profitable at sizes where the
// 1-D code has saturated.  Estimated T_c per cycle across the fill order,
// plus the partitioner's choice, per topology.
#include <cstdio>

#include "bench/common.hpp"
#include "core/decompose.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace netpart {
namespace {

ComputationSpec make_ring_variant(int n, int iterations) {
  ComputationPhaseSpec grid;
  grid.name = "grid";
  grid.num_pdus = [n] { return static_cast<std::int64_t>(n); };
  grid.ops_per_pdu = [n] { return 5.0 * n; };
  CommunicationPhaseSpec forward;
  forward.name = "forward";
  forward.topology = [] { return Topology::Ring; };
  forward.bytes_per_message = [n](std::int64_t) {
    return static_cast<std::int64_t>(4) * n;
  };
  return ComputationSpec("ring-relax", {grid}, {forward}, iterations);
}

}  // namespace
}  // namespace netpart

int main() {
  using namespace netpart;
  const Network net = presets::paper_testbed();
  const CalibrationResult calibration =
      bench::calibrate_testbed(net, /*all_topos=*/true);
  const AvailabilitySnapshot snapshot = bench::idle_snapshot(net);

  for (const int n : {300, 1200}) {
    Table table({"p", "config", "1-D rows T_c", "2-D blocks T_c",
                 "ring T_c"});
    const ComputationSpec one_d = apps::make_stencil_spec(
        apps::StencilConfig{.n = n, .iterations = 10, .overlap = false});
    const ComputationSpec two_d = apps::make_stencil2d_spec(
        apps::StencilConfig{.n = n, .iterations = 10, .overlap = false});
    const ComputationSpec ring = make_ring_variant(n, 10);
    CycleEstimator est1(net, calibration.db, one_d);
    CycleEstimator est2(net, calibration.db, two_d);
    CycleEstimator est3(net, calibration.db, ring);

    for (int p = 1; p <= 12; ++p) {
      const ProcessorConfig config{std::min(p, 6), std::max(0, p - 6)};
      // Built with += rather than one operator+ chain: gcc 12's -Wrestrict
      // fires a false positive on the chained temporaries under -O2.
      std::string config_cell = "(";
      config_cell += std::to_string(config[0]);
      config_cell += ',';
      config_cell += std::to_string(config[1]);
      config_cell += ')';
      table.add_row({std::to_string(p), std::move(config_cell),
                     format_double(est1.estimate(config).t_c_ms, 2),
                     format_double(est2.estimate(config).t_c_ms, 2),
                     format_double(est3.estimate(config).t_c_ms, 2)});
    }
    std::printf("%s\n",
                table
                    .render("Estimated T_c per cycle, N=" +
                            std::to_string(n) +
                            " (same computation, three decompositions)")
                    .c_str());

    const PartitionResult r1 = partition(est1, snapshot);
    const PartitionResult r2 = partition(est2, snapshot);
    const PartitionResult r3 = partition(est3, snapshot);
    std::printf("partitioner: 1-D -> (%d,%d), 2-D -> (%d,%d), "
                "ring -> (%d,%d)\n\n",
                r1.config[0], r1.config[1], r2.config[0], r2.config[1],
                r3.config[0], r3.config[1]);
  }
  return 0;
}

#include "bench/common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "core/decompose.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace netpart::bench {

const std::vector<std::int64_t>& paper_sizes() {
  static const std::vector<std::int64_t> kSizes = {60, 300, 600, 1200};
  return kSizes;
}

Config parse_bench_args(int argc, const char* const* argv) {
  std::vector<std::string> plain;
  Config flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      flags.set("smoke", "1");
      continue;
    }
    if (arg == "--json-out") {
      NP_REQUIRE(i + 1 < argc, "--json-out needs a path argument");
      flags.set("json_out", argv[++i]);
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      arg.erase(0, 2);
      std::replace(arg.begin(), arg.end(), '-', '_');
    }
    plain.push_back(std::move(arg));
  }
  Config config = Config::from_args(plain);
  for (const auto& [key, value] : flags.entries()) {
    config.set(key, value);  // flag spellings win over positional tokens
  }
  return config;
}

CalibrationResult calibrate_testbed(const Network& net, bool all_topos) {
  CalibrationParams params;
  if (!all_topos) {
    params.topologies = {Topology::OneD};
  }
  return calibrate(net, params);
}

AvailabilitySnapshot idle_snapshot(const Network& net) {
  return gather_availability(net, make_managers(net, AvailabilityPolicy{}));
}

std::vector<NamedConfig> table2_configs() {
  return {
      {"1 Sparc2", {1, 0}},          {"2 Sparc2s", {2, 0}},
      {"4 Sparc2s", {4, 0}},         {"6 Sparc2s", {6, 0}},
      {"6 Sparc2s + 2 IPCs", {6, 2}}, {"6 Sparc2s + 4 IPCs", {6, 4}},
      {"6 Sparc2s + 6 IPCs", {6, 6}},
  };
}

double measured_stencil_ms(const Network& net,
                           const apps::StencilConfig& cfg,
                           const ProcessorConfig& config, int runs) {
  const ComputationSpec spec = apps::make_stencil_spec(cfg);
  const Placement placement = contiguous_placement(net, config);
  const PartitionVector partition =
      balanced_partition(net, config, clusters_by_speed(net), cfg.n);
  ExecutionOptions options;
  options.compute_jitter = 0.01;  // light load variation, as on a real net
  return average_elapsed_ms(net, spec, placement, partition, options, runs);
}

std::string ms(double v) { return format_double(v, 0); }

void write_bench_json(const std::string& path, const JsonValue& root) {
  std::ofstream out(path);
  NP_REQUIRE(out.good(), "cannot open bench json path: " + path);
  out << root.dump(2);
}

PhaseMetrics::PhaseMetrics()
    : last_(obs::TelemetryRegistry::global().snapshot()),
      phases_(JsonValue::object()) {}

void PhaseMetrics::phase(const std::string& name) {
  obs::MetricsSnapshot now = obs::TelemetryRegistry::global().snapshot();
  phases_.set(name, obs::snapshot_json(obs::snapshot_delta(last_, now)));
  last_ = std::move(now);
}

SpeedupGate parallel_speedup_gate(unsigned hardware_concurrency, bool smoke,
                                  int threads, double speedup,
                                  double required_per_thread) {
  if (hardware_concurrency <= 1) return SpeedupGate::SkippedSingleCore;
  if (smoke) return SpeedupGate::SkippedSmoke;
  const int effective = std::min(
      threads, static_cast<int>(hardware_concurrency));
  return speedup >= required_per_thread * static_cast<double>(effective)
             ? SpeedupGate::Pass
             : SpeedupGate::Fail;
}

unsigned detected_hardware_concurrency() {
  if (const char* env = std::getenv("NETPART_HW_CONCURRENCY")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 4096) {
      return static_cast<unsigned>(v);
    }
  }
  return std::thread::hardware_concurrency();
}

SpeedupEvaluation evaluate_parallel_speedup(bool smoke, int threads,
                                            double speedup,
                                            double required_per_thread) {
  SpeedupEvaluation eval;
  eval.hardware_concurrency = detected_hardware_concurrency();
  eval.effective_threads = std::min(
      threads, static_cast<int>(std::max(1u, eval.hardware_concurrency)));
  eval.required =
      required_per_thread * static_cast<double>(eval.effective_threads);
  eval.gate = parallel_speedup_gate(eval.hardware_concurrency, smoke,
                                    threads, speedup, required_per_thread);
  eval.ok = eval.gate != SpeedupGate::Fail;
  return eval;
}

const char* to_string(SpeedupGate gate) {
  switch (gate) {
    case SpeedupGate::Pass:
      return "ok";
    case SpeedupGate::Fail:
      return "fail";
    case SpeedupGate::SkippedSingleCore:
      return "skipped_single_core";
    case SpeedupGate::SkippedSmoke:
      return "skipped_smoke";
  }
  return "unknown";
}

void GateSet::require(const std::string& name, bool ok) {
  if (!ok) failed_.push_back(name);
  pass_ = pass_ && ok;
}

void GateSet::skip(const std::string& name, const std::string& reason) {
  skipped_.emplace_back(name, reason);
}

JsonValue GateSet::skipped_json() const {
  JsonValue out = JsonValue::array();
  for (const auto& [name, reason] : skipped_) {
    out.push(name + ": " + reason);
  }
  return out;
}

double sample_quantile(std::vector<double> samples, double q) {
  NP_REQUIRE(!samples.empty(), "sample_quantile needs samples");
  NP_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= samples.size()) return samples.back();
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] + frac * (samples[lo + 1] - samples[lo]);
}

}  // namespace netpart::bench

#include "bench/common.hpp"

#include "core/decompose.hpp"
#include "util/string_util.hpp"

namespace netpart::bench {

const std::vector<std::int64_t>& paper_sizes() {
  static const std::vector<std::int64_t> kSizes = {60, 300, 600, 1200};
  return kSizes;
}

CalibrationResult calibrate_testbed(const Network& net, bool all_topos) {
  CalibrationParams params;
  if (!all_topos) {
    params.topologies = {Topology::OneD};
  }
  return calibrate(net, params);
}

AvailabilitySnapshot idle_snapshot(const Network& net) {
  return gather_availability(net, make_managers(net, AvailabilityPolicy{}));
}

std::vector<NamedConfig> table2_configs() {
  return {
      {"1 Sparc2", {1, 0}},          {"2 Sparc2s", {2, 0}},
      {"4 Sparc2s", {4, 0}},         {"6 Sparc2s", {6, 0}},
      {"6 Sparc2s + 2 IPCs", {6, 2}}, {"6 Sparc2s + 4 IPCs", {6, 4}},
      {"6 Sparc2s + 6 IPCs", {6, 6}},
  };
}

double measured_stencil_ms(const Network& net,
                           const apps::StencilConfig& cfg,
                           const ProcessorConfig& config, int runs) {
  const ComputationSpec spec = apps::make_stencil_spec(cfg);
  const Placement placement = contiguous_placement(net, config);
  const PartitionVector partition =
      balanced_partition(net, config, clusters_by_speed(net), cfg.n);
  ExecutionOptions options;
  options.compute_jitter = 0.01;  // light load variation, as on a real net
  return average_elapsed_ms(net, spec, placement, partition, options, runs);
}

std::string ms(double v) { return format_double(v, 0); }

}  // namespace netpart::bench

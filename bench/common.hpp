// Shared setup for the paper-reproduction benchmarks: the Section 6 testbed,
// its calibration, and the stencil configurations of Tables 1 and 2.
#pragma once

#include <string>
#include <vector>

#include "apps/stencil.hpp"
#include "calib/calibrate.hpp"
#include "core/partitioner.hpp"
#include "exec/executor.hpp"
#include "net/availability.hpp"
#include "net/presets.hpp"
#include "obs/telemetry.hpp"
#include "util/config.hpp"
#include "util/json.hpp"

namespace netpart::bench {

/// The paper's problem sizes.
const std::vector<std::int64_t>& paper_sizes();

/// Shared bench command line.  Accepts the `key=value` tokens every bench
/// already takes, plus flag spellings common to all benches:
///
///   --json-out <path> / --json-out=<path>   -> json_out=<path>
///   --smoke                                 -> smoke=1
///   --<key>=<value>                         -> <key>=<value> ('-' -> '_')
///
/// so `bench_x --json-out /tmp/x.json` and `bench_x json_out=/tmp/x.json`
/// are equivalent.  Unknown positional tokens still throw ConfigError.
Config parse_bench_args(int argc, const char* const* argv);

/// Calibrate the Section 6 testbed (1-D topology only unless `all_topos`).
CalibrationResult calibrate_testbed(const Network& net,
                                    bool all_topos = false);

/// Availability snapshot with every processor idle (the paper benchmarks a
/// lightly loaded network).
AvailabilitySnapshot idle_snapshot(const Network& net);

/// The Table 2 column layout: the seven configurations the paper measures.
struct NamedConfig {
  std::string label;
  ProcessorConfig config;  // {sparc2, ipc}
};
std::vector<NamedConfig> table2_configs();

/// Measured elapsed time (ms) of a stencil variant under a configuration,
/// averaged over `runs` executions (compute jitter makes runs differ).
double measured_stencil_ms(const Network& net,
                           const apps::StencilConfig& cfg,
                           const ProcessorConfig& config, int runs = 3);

/// Format helper: fixed 1-decimal milliseconds.
std::string ms(double v);

/// Write a machine-readable BENCH_*.json artifact.  Deterministic by
/// construction (JsonValue renders members in insertion order with
/// shortest-round-trip doubles), so re-running a bench with identical
/// results produces a byte-identical file.
void write_bench_json(const std::string& path, const JsonValue& root);

/// Exact percentile of a raw sample set by linear interpolation between
/// order statistics (q in [0, 1]).  Used for per-request latency tails
/// where histogram buckets would be too coarse.
double sample_quantile(std::vector<double> samples, double q);

/// Outcome of the exhaustive sweep's parallel-speedup gate.
enum class SpeedupGate {
  Pass,              ///< speedup met the per-thread floor
  Fail,              ///< multi-core host, floor missed
  SkippedSingleCore, ///< hardware_concurrency <= 1: no speedup possible
  SkippedSmoke,      ///< --smoke run: timings too short to be meaningful
};

/// The gate itself, separated from the bench so tests can pin the logic:
/// on a single-core host the gate is skipped (no wall-clock speedup is
/// physically possible); in smoke mode it is skipped (reduced reps);
/// otherwise it passes iff `speedup >= required_per_thread * effective`
/// where effective = min(threads, hardware_concurrency) -- asking 8
/// workers of a 2-core host for 6.4x would be a hardware test, not a
/// scheduler test.  Whenever >= 2 cores exist and smoke is off, the
/// result is Pass or Fail, never a skip.
SpeedupGate parallel_speedup_gate(unsigned hardware_concurrency, bool smoke,
                                  int threads, double speedup,
                                  double required_per_thread = 0.8);

/// JSON/console spelling of a gate outcome ("ok", "fail",
/// "skipped_single_core", "skipped_smoke").
const char* to_string(SpeedupGate gate);

/// Hardware concurrency as every bench gate sees it: the
/// NETPART_HW_CONCURRENCY environment variable when it parses as a
/// positive integer (tests and CI pin the gate's skip condition with it),
/// otherwise std::thread::hardware_concurrency().
unsigned detected_hardware_concurrency();

/// One gate decision with everything it was derived from, so a bench
/// reports the verdict and its inputs (meta fields, console line) from a
/// single evaluation instead of re-deriving the skip condition.
struct SpeedupEvaluation {
  SpeedupGate gate = SpeedupGate::SkippedSmoke;
  unsigned hardware_concurrency = 0;
  int effective_threads = 0;  ///< min(threads, hardware_concurrency)
  double required = 0.0;      ///< speedup floor the gate compared against
  bool ok = false;            ///< gate != Fail (skips do not fail a run)
};

/// The one code path from measured speedup to gate verdict: resolves
/// hardware concurrency via detected_hardware_concurrency() and applies
/// parallel_speedup_gate to it.
SpeedupEvaluation evaluate_parallel_speedup(bool smoke, int threads,
                                            double speedup,
                                            double required_per_thread = 0.8);

/// Pass/fail ledger for a bench's gate block, separating "gate failed"
/// from "gate skipped".  A gate either ran (require(): its verdict feeds
/// pass()) or was skipped with a recorded reason (skip(): its measured
/// value may still be reported, but it must not drive pass()).  pass() is
/// the AND over gates that ran -- a run whose only red mark is a skipped
/// wall-clock gate is a passing run, and `gates_skipped` says exactly what
/// was not checked and why.  Coverage tests pin this logic.
class GateSet {
 public:
  /// Record a gate that ran with its verdict.
  void require(const std::string& name, bool ok);
  /// Record a gate that was skipped and why (e.g. "skipped_single_core").
  void skip(const std::string& name, const std::string& reason);
  /// AND over gates that ran; vacuously true if every gate was skipped.
  bool pass() const { return pass_; }
  /// Names of gates that ran and failed, insertion order.
  const std::vector<std::string>& failed() const { return failed_; }
  /// JSON array of "name: reason" entries, insertion order -- the
  /// `gates_skipped` field of the bench's checks block.
  JsonValue skipped_json() const;

 private:
  bool pass_ = true;
  std::vector<std::string> failed_;
  std::vector<std::pair<std::string, std::string>> skipped_;
};

/// Per-phase telemetry for BENCH_*.json artifacts: snapshots the global
/// registry at construction, and each phase() call records the counter
/// deltas since the previous call under the given name.  Only changed
/// counters appear, name-ordered, so the artifact stays small and
/// deterministic.  Embed via `root.set("metrics", recorder.to_json())`.
class PhaseMetrics {
 public:
  PhaseMetrics();
  /// Close the window since the previous call (or construction) as `name`.
  void phase(const std::string& name);
  JsonValue to_json() const { return phases_; }

 private:
  obs::MetricsSnapshot last_;
  JsonValue phases_;
};

}  // namespace netpart::bench

# Benchmark binaries: one per table/figure of the paper plus ablations.
# Defined at top level so the binary dir bench/ holds only executables.

add_library(np_bench_common STATIC bench/common.cpp)
target_link_libraries(np_bench_common PUBLIC
  np_util np_net np_sim np_mmps np_topo np_calib np_dp np_core np_exec
  np_obs np_apps)
target_include_directories(np_bench_common PUBLIC ${CMAKE_SOURCE_DIR})

function(np_add_bench name)
  add_executable(${name} ${ARGN})
  target_link_libraries(${name} PRIVATE np_bench_common)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

np_add_bench(bench_table1 bench/bench_table1.cpp)
np_add_bench(bench_table2 bench/bench_table2.cpp)
np_add_bench(bench_fig1_network bench/bench_fig1_network.cpp)
np_add_bench(bench_fig2_partition bench/bench_fig2_partition.cpp)
np_add_bench(bench_fig3_tc_curve bench/bench_fig3_tc_curve.cpp)
np_add_bench(bench_costfit bench/bench_costfit.cpp)
np_add_bench(bench_ablation_locality bench/bench_ablation_locality.cpp)
np_add_bench(bench_ablation_decomposition
             bench/bench_ablation_decomposition.cpp)
np_add_bench(bench_gauss bench/bench_gauss.cpp)
np_add_bench(bench_particles bench/bench_particles.cpp)

np_add_bench(bench_overhead bench/bench_overhead.cpp)
target_link_libraries(bench_overhead PRIVATE benchmark::benchmark)
np_add_bench(bench_adaptive bench/bench_adaptive.cpp)
np_add_bench(bench_general bench/bench_general.cpp)
np_add_bench(bench_startup bench/bench_startup.cpp)
np_add_bench(bench_metasystem bench/bench_metasystem.cpp)
np_add_bench(bench_topology_scaling bench/bench_topology_scaling.cpp)
np_add_bench(bench_mmps_latency bench/bench_mmps_latency.cpp)
np_add_bench(bench_protocol bench/bench_protocol.cpp)
np_add_bench(bench_breakdown bench/bench_breakdown.cpp)
np_add_bench(bench_scaling bench/bench_scaling.cpp)
np_add_bench(bench_faults bench/bench_faults.cpp)
np_add_bench(bench_service bench/bench_service.cpp)
target_link_libraries(bench_service PRIVATE np_svc)
np_add_bench(bench_fleet bench/bench_fleet.cpp)
target_link_libraries(bench_fleet PRIVATE np_fleet)
np_add_bench(bench_partition_hotpath bench/bench_partition_hotpath.cpp)
# The --smoke gate also pins the service admission + pre-flight zero-cost
# contract, so the bench links the service and analysis layers.
target_link_libraries(bench_partition_hotpath PRIVATE np_svc np_analysis)

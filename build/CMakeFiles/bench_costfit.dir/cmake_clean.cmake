file(REMOVE_RECURSE
  "CMakeFiles/bench_costfit.dir/bench/bench_costfit.cpp.o"
  "CMakeFiles/bench_costfit.dir/bench/bench_costfit.cpp.o.d"
  "bench/bench_costfit"
  "bench/bench_costfit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_costfit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

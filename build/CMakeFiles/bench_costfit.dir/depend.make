# Empty dependencies file for bench_costfit.
# This may be replaced when dependencies are built.

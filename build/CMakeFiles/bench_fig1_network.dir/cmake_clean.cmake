file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_network.dir/bench/bench_fig1_network.cpp.o"
  "CMakeFiles/bench_fig1_network.dir/bench/bench_fig1_network.cpp.o.d"
  "bench/bench_fig1_network"
  "bench/bench_fig1_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_tc_curve.dir/bench/bench_fig3_tc_curve.cpp.o"
  "CMakeFiles/bench_fig3_tc_curve.dir/bench/bench_fig3_tc_curve.cpp.o.d"
  "bench/bench_fig3_tc_curve"
  "bench/bench_fig3_tc_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_tc_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig3_tc_curve.
# This may be replaced when dependencies are built.

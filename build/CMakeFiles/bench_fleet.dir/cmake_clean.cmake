file(REMOVE_RECURSE
  "CMakeFiles/bench_fleet.dir/bench/bench_fleet.cpp.o"
  "CMakeFiles/bench_fleet.dir/bench/bench_fleet.cpp.o.d"
  "bench/bench_fleet"
  "bench/bench_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fleet.
# This may be replaced when dependencies are built.

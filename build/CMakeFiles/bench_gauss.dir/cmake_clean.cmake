file(REMOVE_RECURSE
  "CMakeFiles/bench_gauss.dir/bench/bench_gauss.cpp.o"
  "CMakeFiles/bench_gauss.dir/bench/bench_gauss.cpp.o.d"
  "bench/bench_gauss"
  "bench/bench_gauss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gauss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

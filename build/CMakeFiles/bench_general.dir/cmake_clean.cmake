file(REMOVE_RECURSE
  "CMakeFiles/bench_general.dir/bench/bench_general.cpp.o"
  "CMakeFiles/bench_general.dir/bench/bench_general.cpp.o.d"
  "bench/bench_general"
  "bench/bench_general.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_general.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

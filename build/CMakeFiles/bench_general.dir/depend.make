# Empty dependencies file for bench_general.
# This may be replaced when dependencies are built.

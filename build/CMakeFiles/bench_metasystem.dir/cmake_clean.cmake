file(REMOVE_RECURSE
  "CMakeFiles/bench_metasystem.dir/bench/bench_metasystem.cpp.o"
  "CMakeFiles/bench_metasystem.dir/bench/bench_metasystem.cpp.o.d"
  "bench/bench_metasystem"
  "bench/bench_metasystem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_metasystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_metasystem.
# This may be replaced when dependencies are built.

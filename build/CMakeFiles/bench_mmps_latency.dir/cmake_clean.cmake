file(REMOVE_RECURSE
  "CMakeFiles/bench_mmps_latency.dir/bench/bench_mmps_latency.cpp.o"
  "CMakeFiles/bench_mmps_latency.dir/bench/bench_mmps_latency.cpp.o.d"
  "bench/bench_mmps_latency"
  "bench/bench_mmps_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mmps_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_mmps_latency.
# This may be replaced when dependencies are built.

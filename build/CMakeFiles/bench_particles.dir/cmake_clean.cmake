file(REMOVE_RECURSE
  "CMakeFiles/bench_particles.dir/bench/bench_particles.cpp.o"
  "CMakeFiles/bench_particles.dir/bench/bench_particles.cpp.o.d"
  "bench/bench_particles"
  "bench/bench_particles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_particles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_particles.
# This may be replaced when dependencies are built.

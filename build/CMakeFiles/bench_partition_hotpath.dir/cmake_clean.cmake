file(REMOVE_RECURSE
  "CMakeFiles/bench_partition_hotpath.dir/bench/bench_partition_hotpath.cpp.o"
  "CMakeFiles/bench_partition_hotpath.dir/bench/bench_partition_hotpath.cpp.o.d"
  "bench/bench_partition_hotpath"
  "bench/bench_partition_hotpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition_hotpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_partition_hotpath.
# This may be replaced when dependencies are built.

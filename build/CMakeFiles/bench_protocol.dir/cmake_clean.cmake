file(REMOVE_RECURSE
  "CMakeFiles/bench_protocol.dir/bench/bench_protocol.cpp.o"
  "CMakeFiles/bench_protocol.dir/bench/bench_protocol.cpp.o.d"
  "bench/bench_protocol"
  "bench/bench_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_topology_scaling.dir/bench/bench_topology_scaling.cpp.o"
  "CMakeFiles/bench_topology_scaling.dir/bench/bench_topology_scaling.cpp.o.d"
  "bench/bench_topology_scaling"
  "bench/bench_topology_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_topology_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_topology_scaling.
# This may be replaced when dependencies are built.

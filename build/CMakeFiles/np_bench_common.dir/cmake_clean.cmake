file(REMOVE_RECURSE
  "CMakeFiles/np_bench_common.dir/bench/common.cpp.o"
  "CMakeFiles/np_bench_common.dir/bench/common.cpp.o.d"
  "libnp_bench_common.a"
  "libnp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libnp_bench_common.a"
)

# Empty compiler generated dependencies file for np_bench_common.
# This may be replaced when dependencies are built.

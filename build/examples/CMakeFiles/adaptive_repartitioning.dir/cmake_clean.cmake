file(REMOVE_RECURSE
  "CMakeFiles/adaptive_repartitioning.dir/adaptive_repartitioning.cpp.o"
  "CMakeFiles/adaptive_repartitioning.dir/adaptive_repartitioning.cpp.o.d"
  "adaptive_repartitioning"
  "adaptive_repartitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_repartitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for adaptive_repartitioning.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/netpart_cli.dir/netpart_cli.cpp.o"
  "CMakeFiles/netpart_cli.dir/netpart_cli.cpp.o.d"
  "netpart_cli"
  "netpart_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netpart_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

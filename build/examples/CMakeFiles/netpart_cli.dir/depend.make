# Empty dependencies file for netpart_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/particle_chain.dir/particle_chain.cpp.o"
  "CMakeFiles/particle_chain.dir/particle_chain.cpp.o.d"
  "particle_chain"
  "particle_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/particle_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for particle_chain.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/diagnostics.cpp" "src/analysis/CMakeFiles/np_analysis.dir/diagnostics.cpp.o" "gcc" "src/analysis/CMakeFiles/np_analysis.dir/diagnostics.cpp.o.d"
  "/root/repo/src/analysis/fleet_lint.cpp" "src/analysis/CMakeFiles/np_analysis.dir/fleet_lint.cpp.o" "gcc" "src/analysis/CMakeFiles/np_analysis.dir/fleet_lint.cpp.o.d"
  "/root/repo/src/analysis/model_lint.cpp" "src/analysis/CMakeFiles/np_analysis.dir/model_lint.cpp.o" "gcc" "src/analysis/CMakeFiles/np_analysis.dir/model_lint.cpp.o.d"
  "/root/repo/src/analysis/net_lint.cpp" "src/analysis/CMakeFiles/np_analysis.dir/net_lint.cpp.o" "gcc" "src/analysis/CMakeFiles/np_analysis.dir/net_lint.cpp.o.d"
  "/root/repo/src/analysis/npcheck.cpp" "src/analysis/CMakeFiles/np_analysis.dir/npcheck.cpp.o" "gcc" "src/analysis/CMakeFiles/np_analysis.dir/npcheck.cpp.o.d"
  "/root/repo/src/analysis/preflight.cpp" "src/analysis/CMakeFiles/np_analysis.dir/preflight.cpp.o" "gcc" "src/analysis/CMakeFiles/np_analysis.dir/preflight.cpp.o.d"
  "/root/repo/src/analysis/spec_lint.cpp" "src/analysis/CMakeFiles/np_analysis.dir/spec_lint.cpp.o" "gcc" "src/analysis/CMakeFiles/np_analysis.dir/spec_lint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/np_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/np_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/np_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/calib/CMakeFiles/np_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/np_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/np_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/np_analysis.dir/diagnostics.cpp.o"
  "CMakeFiles/np_analysis.dir/diagnostics.cpp.o.d"
  "CMakeFiles/np_analysis.dir/fleet_lint.cpp.o"
  "CMakeFiles/np_analysis.dir/fleet_lint.cpp.o.d"
  "CMakeFiles/np_analysis.dir/model_lint.cpp.o"
  "CMakeFiles/np_analysis.dir/model_lint.cpp.o.d"
  "CMakeFiles/np_analysis.dir/net_lint.cpp.o"
  "CMakeFiles/np_analysis.dir/net_lint.cpp.o.d"
  "CMakeFiles/np_analysis.dir/npcheck.cpp.o"
  "CMakeFiles/np_analysis.dir/npcheck.cpp.o.d"
  "CMakeFiles/np_analysis.dir/preflight.cpp.o"
  "CMakeFiles/np_analysis.dir/preflight.cpp.o.d"
  "CMakeFiles/np_analysis.dir/spec_lint.cpp.o"
  "CMakeFiles/np_analysis.dir/spec_lint.cpp.o.d"
  "libnp_analysis.a"
  "libnp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libnp_analysis.a"
)

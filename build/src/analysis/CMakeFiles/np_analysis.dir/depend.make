# Empty dependencies file for np_analysis.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fleetd.dir/fleetd.cpp.o"
  "CMakeFiles/fleetd.dir/fleetd.cpp.o.d"
  "fleetd"
  "fleetd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleetd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fleetd.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/netpartd.dir/netpartd.cpp.o"
  "CMakeFiles/netpartd.dir/netpartd.cpp.o.d"
  "netpartd"
  "netpartd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netpartd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

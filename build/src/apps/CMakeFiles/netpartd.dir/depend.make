# Empty dependencies file for netpartd.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/np_apps.dir/gauss.cpp.o"
  "CMakeFiles/np_apps.dir/gauss.cpp.o.d"
  "CMakeFiles/np_apps.dir/particles.cpp.o"
  "CMakeFiles/np_apps.dir/particles.cpp.o.d"
  "CMakeFiles/np_apps.dir/reduce.cpp.o"
  "CMakeFiles/np_apps.dir/reduce.cpp.o.d"
  "CMakeFiles/np_apps.dir/solver.cpp.o"
  "CMakeFiles/np_apps.dir/solver.cpp.o.d"
  "CMakeFiles/np_apps.dir/stencil.cpp.o"
  "CMakeFiles/np_apps.dir/stencil.cpp.o.d"
  "libnp_apps.a"
  "libnp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libnp_apps.a"
)

# Empty compiler generated dependencies file for np_apps.
# This may be replaced when dependencies are built.

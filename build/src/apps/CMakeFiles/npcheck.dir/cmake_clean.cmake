file(REMOVE_RECURSE
  "CMakeFiles/npcheck.dir/npcheck.cpp.o"
  "CMakeFiles/npcheck.dir/npcheck.cpp.o.d"
  "npcheck"
  "npcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

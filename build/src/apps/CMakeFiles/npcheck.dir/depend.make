# Empty dependencies file for npcheck.
# This may be replaced when dependencies are built.

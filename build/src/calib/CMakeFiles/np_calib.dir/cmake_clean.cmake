file(REMOVE_RECURSE
  "CMakeFiles/np_calib.dir/calibrate.cpp.o"
  "CMakeFiles/np_calib.dir/calibrate.cpp.o.d"
  "CMakeFiles/np_calib.dir/cost_model.cpp.o"
  "CMakeFiles/np_calib.dir/cost_model.cpp.o.d"
  "CMakeFiles/np_calib.dir/model_io.cpp.o"
  "CMakeFiles/np_calib.dir/model_io.cpp.o.d"
  "libnp_calib.a"
  "libnp_calib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_calib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

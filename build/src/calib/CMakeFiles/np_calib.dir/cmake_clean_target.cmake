file(REMOVE_RECURSE
  "libnp_calib.a"
)

# Empty compiler generated dependencies file for np_calib.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/np_core.dir/decompose.cpp.o"
  "CMakeFiles/np_core.dir/decompose.cpp.o.d"
  "CMakeFiles/np_core.dir/estimator.cpp.o"
  "CMakeFiles/np_core.dir/estimator.cpp.o.d"
  "CMakeFiles/np_core.dir/general.cpp.o"
  "CMakeFiles/np_core.dir/general.cpp.o.d"
  "CMakeFiles/np_core.dir/partitioner.cpp.o"
  "CMakeFiles/np_core.dir/partitioner.cpp.o.d"
  "libnp_core.a"
  "libnp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

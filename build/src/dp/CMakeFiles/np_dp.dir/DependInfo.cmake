
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dp/expr.cpp" "src/dp/CMakeFiles/np_dp.dir/expr.cpp.o" "gcc" "src/dp/CMakeFiles/np_dp.dir/expr.cpp.o.d"
  "/root/repo/src/dp/partition_vector.cpp" "src/dp/CMakeFiles/np_dp.dir/partition_vector.cpp.o" "gcc" "src/dp/CMakeFiles/np_dp.dir/partition_vector.cpp.o.d"
  "/root/repo/src/dp/phases.cpp" "src/dp/CMakeFiles/np_dp.dir/phases.cpp.o" "gcc" "src/dp/CMakeFiles/np_dp.dir/phases.cpp.o.d"
  "/root/repo/src/dp/spec_parser.cpp" "src/dp/CMakeFiles/np_dp.dir/spec_parser.cpp.o" "gcc" "src/dp/CMakeFiles/np_dp.dir/spec_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/np_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/np_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/np_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/np_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/np_dp.dir/expr.cpp.o"
  "CMakeFiles/np_dp.dir/expr.cpp.o.d"
  "CMakeFiles/np_dp.dir/partition_vector.cpp.o"
  "CMakeFiles/np_dp.dir/partition_vector.cpp.o.d"
  "CMakeFiles/np_dp.dir/phases.cpp.o"
  "CMakeFiles/np_dp.dir/phases.cpp.o.d"
  "CMakeFiles/np_dp.dir/spec_parser.cpp.o"
  "CMakeFiles/np_dp.dir/spec_parser.cpp.o.d"
  "libnp_dp.a"
  "libnp_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

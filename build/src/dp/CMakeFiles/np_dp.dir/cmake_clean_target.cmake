file(REMOVE_RECURSE
  "libnp_dp.a"
)

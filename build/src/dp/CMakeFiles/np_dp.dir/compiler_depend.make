# Empty compiler generated dependencies file for np_dp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/np_exec.dir/adaptive.cpp.o"
  "CMakeFiles/np_exec.dir/adaptive.cpp.o.d"
  "CMakeFiles/np_exec.dir/executor.cpp.o"
  "CMakeFiles/np_exec.dir/executor.cpp.o.d"
  "CMakeFiles/np_exec.dir/load.cpp.o"
  "CMakeFiles/np_exec.dir/load.cpp.o.d"
  "CMakeFiles/np_exec.dir/schedule.cpp.o"
  "CMakeFiles/np_exec.dir/schedule.cpp.o.d"
  "CMakeFiles/np_exec.dir/threaded.cpp.o"
  "CMakeFiles/np_exec.dir/threaded.cpp.o.d"
  "libnp_exec.a"
  "libnp_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

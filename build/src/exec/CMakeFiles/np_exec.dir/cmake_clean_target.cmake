file(REMOVE_RECURSE
  "libnp_exec.a"
)

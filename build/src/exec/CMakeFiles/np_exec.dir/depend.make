# Empty dependencies file for np_exec.
# This may be replaced when dependencies are built.

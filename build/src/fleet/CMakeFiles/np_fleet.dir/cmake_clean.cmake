file(REMOVE_RECURSE
  "CMakeFiles/np_fleet.dir/driver.cpp.o"
  "CMakeFiles/np_fleet.dir/driver.cpp.o.d"
  "CMakeFiles/np_fleet.dir/fleet.cpp.o"
  "CMakeFiles/np_fleet.dir/fleet.cpp.o.d"
  "CMakeFiles/np_fleet.dir/fleet_telemetry.cpp.o"
  "CMakeFiles/np_fleet.dir/fleet_telemetry.cpp.o.d"
  "CMakeFiles/np_fleet.dir/hash_ring.cpp.o"
  "CMakeFiles/np_fleet.dir/hash_ring.cpp.o.d"
  "CMakeFiles/np_fleet.dir/node.cpp.o"
  "CMakeFiles/np_fleet.dir/node.cpp.o.d"
  "CMakeFiles/np_fleet.dir/peer_table.cpp.o"
  "CMakeFiles/np_fleet.dir/peer_table.cpp.o.d"
  "CMakeFiles/np_fleet.dir/wire.cpp.o"
  "CMakeFiles/np_fleet.dir/wire.cpp.o.d"
  "libnp_fleet.a"
  "libnp_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libnp_fleet.a"
)

# Empty dependencies file for np_fleet.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmps/manager_protocol.cpp" "src/mmps/CMakeFiles/np_mmps.dir/manager_protocol.cpp.o" "gcc" "src/mmps/CMakeFiles/np_mmps.dir/manager_protocol.cpp.o.d"
  "/root/repo/src/mmps/system.cpp" "src/mmps/CMakeFiles/np_mmps.dir/system.cpp.o" "gcc" "src/mmps/CMakeFiles/np_mmps.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/np_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/np_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/np_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/np_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/np_mmps.dir/manager_protocol.cpp.o"
  "CMakeFiles/np_mmps.dir/manager_protocol.cpp.o.d"
  "CMakeFiles/np_mmps.dir/system.cpp.o"
  "CMakeFiles/np_mmps.dir/system.cpp.o.d"
  "libnp_mmps.a"
  "libnp_mmps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_mmps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

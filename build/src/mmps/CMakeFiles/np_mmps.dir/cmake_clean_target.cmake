file(REMOVE_RECURSE
  "libnp_mmps.a"
)

# Empty dependencies file for np_mmps.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/np_net.dir/availability.cpp.o"
  "CMakeFiles/np_net.dir/availability.cpp.o.d"
  "CMakeFiles/np_net.dir/builder.cpp.o"
  "CMakeFiles/np_net.dir/builder.cpp.o.d"
  "CMakeFiles/np_net.dir/cluster.cpp.o"
  "CMakeFiles/np_net.dir/cluster.cpp.o.d"
  "CMakeFiles/np_net.dir/network.cpp.o"
  "CMakeFiles/np_net.dir/network.cpp.o.d"
  "CMakeFiles/np_net.dir/presets.cpp.o"
  "CMakeFiles/np_net.dir/presets.cpp.o.d"
  "libnp_net.a"
  "libnp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for np_net.
# This may be replaced when dependencies are built.

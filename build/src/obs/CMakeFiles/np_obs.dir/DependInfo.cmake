
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/chrome_trace.cpp" "src/obs/CMakeFiles/np_obs.dir/chrome_trace.cpp.o" "gcc" "src/obs/CMakeFiles/np_obs.dir/chrome_trace.cpp.o.d"
  "/root/repo/src/obs/metrics.cpp" "src/obs/CMakeFiles/np_obs.dir/metrics.cpp.o" "gcc" "src/obs/CMakeFiles/np_obs.dir/metrics.cpp.o.d"
  "/root/repo/src/obs/sim_bridge.cpp" "src/obs/CMakeFiles/np_obs.dir/sim_bridge.cpp.o" "gcc" "src/obs/CMakeFiles/np_obs.dir/sim_bridge.cpp.o.d"
  "/root/repo/src/obs/span.cpp" "src/obs/CMakeFiles/np_obs.dir/span.cpp.o" "gcc" "src/obs/CMakeFiles/np_obs.dir/span.cpp.o.d"
  "/root/repo/src/obs/telemetry.cpp" "src/obs/CMakeFiles/np_obs.dir/telemetry.cpp.o" "gcc" "src/obs/CMakeFiles/np_obs.dir/telemetry.cpp.o.d"
  "/root/repo/src/obs/trace_context.cpp" "src/obs/CMakeFiles/np_obs.dir/trace_context.cpp.o" "gcc" "src/obs/CMakeFiles/np_obs.dir/trace_context.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/np_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/np_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/np_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/np_obs.dir/chrome_trace.cpp.o"
  "CMakeFiles/np_obs.dir/chrome_trace.cpp.o.d"
  "CMakeFiles/np_obs.dir/metrics.cpp.o"
  "CMakeFiles/np_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/np_obs.dir/sim_bridge.cpp.o"
  "CMakeFiles/np_obs.dir/sim_bridge.cpp.o.d"
  "CMakeFiles/np_obs.dir/span.cpp.o"
  "CMakeFiles/np_obs.dir/span.cpp.o.d"
  "CMakeFiles/np_obs.dir/telemetry.cpp.o"
  "CMakeFiles/np_obs.dir/telemetry.cpp.o.d"
  "CMakeFiles/np_obs.dir/trace_context.cpp.o"
  "CMakeFiles/np_obs.dir/trace_context.cpp.o.d"
  "libnp_obs.a"
  "libnp_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

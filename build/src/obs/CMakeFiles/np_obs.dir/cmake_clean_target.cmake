file(REMOVE_RECURSE
  "libnp_obs.a"
)

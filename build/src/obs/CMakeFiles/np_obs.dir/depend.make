# Empty dependencies file for np_obs.
# This may be replaced when dependencies are built.

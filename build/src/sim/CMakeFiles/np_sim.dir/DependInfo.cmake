
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/channel.cpp" "src/sim/CMakeFiles/np_sim.dir/channel.cpp.o" "gcc" "src/sim/CMakeFiles/np_sim.dir/channel.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/np_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/np_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/faults.cpp" "src/sim/CMakeFiles/np_sim.dir/faults.cpp.o" "gcc" "src/sim/CMakeFiles/np_sim.dir/faults.cpp.o.d"
  "/root/repo/src/sim/host.cpp" "src/sim/CMakeFiles/np_sim.dir/host.cpp.o" "gcc" "src/sim/CMakeFiles/np_sim.dir/host.cpp.o.d"
  "/root/repo/src/sim/netsim.cpp" "src/sim/CMakeFiles/np_sim.dir/netsim.cpp.o" "gcc" "src/sim/CMakeFiles/np_sim.dir/netsim.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/np_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/np_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/np_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/np_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

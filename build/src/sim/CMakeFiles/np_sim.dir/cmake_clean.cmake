file(REMOVE_RECURSE
  "CMakeFiles/np_sim.dir/channel.cpp.o"
  "CMakeFiles/np_sim.dir/channel.cpp.o.d"
  "CMakeFiles/np_sim.dir/engine.cpp.o"
  "CMakeFiles/np_sim.dir/engine.cpp.o.d"
  "CMakeFiles/np_sim.dir/faults.cpp.o"
  "CMakeFiles/np_sim.dir/faults.cpp.o.d"
  "CMakeFiles/np_sim.dir/host.cpp.o"
  "CMakeFiles/np_sim.dir/host.cpp.o.d"
  "CMakeFiles/np_sim.dir/netsim.cpp.o"
  "CMakeFiles/np_sim.dir/netsim.cpp.o.d"
  "CMakeFiles/np_sim.dir/trace.cpp.o"
  "CMakeFiles/np_sim.dir/trace.cpp.o.d"
  "libnp_sim.a"
  "libnp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libnp_sim.a"
)

# Empty compiler generated dependencies file for np_sim.
# This may be replaced when dependencies are built.

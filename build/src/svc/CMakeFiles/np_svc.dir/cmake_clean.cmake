file(REMOVE_RECURSE
  "CMakeFiles/np_svc.dir/cache.cpp.o"
  "CMakeFiles/np_svc.dir/cache.cpp.o.d"
  "CMakeFiles/np_svc.dir/client.cpp.o"
  "CMakeFiles/np_svc.dir/client.cpp.o.d"
  "CMakeFiles/np_svc.dir/request.cpp.o"
  "CMakeFiles/np_svc.dir/request.cpp.o.d"
  "CMakeFiles/np_svc.dir/service.cpp.o"
  "CMakeFiles/np_svc.dir/service.cpp.o.d"
  "CMakeFiles/np_svc.dir/validate.cpp.o"
  "CMakeFiles/np_svc.dir/validate.cpp.o.d"
  "libnp_svc.a"
  "libnp_svc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_svc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libnp_svc.a"
)

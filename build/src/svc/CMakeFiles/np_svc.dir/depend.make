# Empty dependencies file for np_svc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/np_topo.dir/comm_cycle.cpp.o"
  "CMakeFiles/np_topo.dir/comm_cycle.cpp.o.d"
  "CMakeFiles/np_topo.dir/placement.cpp.o"
  "CMakeFiles/np_topo.dir/placement.cpp.o.d"
  "CMakeFiles/np_topo.dir/topology.cpp.o"
  "CMakeFiles/np_topo.dir/topology.cpp.o.d"
  "libnp_topo.a"
  "libnp_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libnp_topo.a"
)

# Empty dependencies file for np_topo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/np_util.dir/config.cpp.o"
  "CMakeFiles/np_util.dir/config.cpp.o.d"
  "CMakeFiles/np_util.dir/csv.cpp.o"
  "CMakeFiles/np_util.dir/csv.cpp.o.d"
  "CMakeFiles/np_util.dir/hash.cpp.o"
  "CMakeFiles/np_util.dir/hash.cpp.o.d"
  "CMakeFiles/np_util.dir/histogram.cpp.o"
  "CMakeFiles/np_util.dir/histogram.cpp.o.d"
  "CMakeFiles/np_util.dir/json.cpp.o"
  "CMakeFiles/np_util.dir/json.cpp.o.d"
  "CMakeFiles/np_util.dir/least_squares.cpp.o"
  "CMakeFiles/np_util.dir/least_squares.cpp.o.d"
  "CMakeFiles/np_util.dir/log.cpp.o"
  "CMakeFiles/np_util.dir/log.cpp.o.d"
  "CMakeFiles/np_util.dir/rng.cpp.o"
  "CMakeFiles/np_util.dir/rng.cpp.o.d"
  "CMakeFiles/np_util.dir/stats.cpp.o"
  "CMakeFiles/np_util.dir/stats.cpp.o.d"
  "CMakeFiles/np_util.dir/string_util.cpp.o"
  "CMakeFiles/np_util.dir/string_util.cpp.o.d"
  "CMakeFiles/np_util.dir/table.cpp.o"
  "CMakeFiles/np_util.dir/table.cpp.o.d"
  "libnp_util.a"
  "libnp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_fleet.dir/fleet_test.cpp.o"
  "CMakeFiles/test_fleet.dir/fleet_test.cpp.o.d"
  "test_fleet"
  "test_fleet.pdb"
  "test_fleet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_fleet_chaos.dir/fleet_chaos_test.cpp.o"
  "CMakeFiles/test_fleet_chaos.dir/fleet_chaos_test.cpp.o.d"
  "test_fleet_chaos"
  "test_fleet_chaos.pdb"
  "test_fleet_chaos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fleet_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

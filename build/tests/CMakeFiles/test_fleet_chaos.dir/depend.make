# Empty dependencies file for test_fleet_chaos.
# This may be replaced when dependencies are built.

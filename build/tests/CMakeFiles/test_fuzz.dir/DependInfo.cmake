
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/test_fuzz.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/test_fuzz.dir/fuzz_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/np_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/np_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/np_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mmps/CMakeFiles/np_mmps.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/np_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/calib/CMakeFiles/np_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/np_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/np_core.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/np_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/np_apps.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/np_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/np_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/fleet/CMakeFiles/np_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/svc/CMakeFiles/np_svc.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/np_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

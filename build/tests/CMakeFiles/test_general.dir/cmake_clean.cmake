file(REMOVE_RECURSE
  "CMakeFiles/test_general.dir/general_test.cpp.o"
  "CMakeFiles/test_general.dir/general_test.cpp.o.d"
  "test_general"
  "test_general.pdb"
  "test_general[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_general.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_metasystem.dir/metasystem_test.cpp.o"
  "CMakeFiles/test_metasystem.dir/metasystem_test.cpp.o.d"
  "test_metasystem"
  "test_metasystem.pdb"
  "test_metasystem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metasystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

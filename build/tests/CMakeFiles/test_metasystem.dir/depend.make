# Empty dependencies file for test_metasystem.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_mmps.dir/mmps_test.cpp.o"
  "CMakeFiles/test_mmps.dir/mmps_test.cpp.o.d"
  "test_mmps"
  "test_mmps.pdb"
  "test_mmps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mmps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

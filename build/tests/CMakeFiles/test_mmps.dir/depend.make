# Empty dependencies file for test_mmps.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mmps[1]_include.cmake")
include("/root/repo/build/tests/test_faults[1]_include.cmake")
include("/root/repo/build/tests/test_chaos[1]_include.cmake")
include("/root/repo/build/tests/test_topo[1]_include.cmake")
include("/root/repo/build/tests/test_calib[1]_include.cmake")
include("/root/repo/build/tests/test_dp[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_exec[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_model_io[1]_include.cmake")
include("/root/repo/build/tests/test_general[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_reduce[1]_include.cmake")
include("/root/repo/build/tests/test_metasystem[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_threaded[1]_include.cmake")
include("/root/repo/build/tests/test_service[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_spec_parser[1]_include.cmake")
include("/root/repo/build/tests/test_coverage[1]_include.cmake")
include("/root/repo/build/tests/test_paper[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_smoke[1]_include.cmake")

// Dynamic repartitioning under processor sharing (the paper's Section 7
// future work, implemented in exec/adaptive).
//
// A stencil starts perfectly balanced on 6 Sparc2s; two seconds in,
// another user takes half of three machines.  The static Eq. 3 partition
// now stalls on the loaded processors every cycle; the adaptive executor
// notices the imbalance, recomputes the partition vector from *observed*
// per-PDU rates, migrates rows through the network, and finishes sooner.
//
// Usage: adaptive_repartitioning [n=1200] [iterations=40] [load=0.5]
#include <cstdio>

#include "apps/stencil.hpp"
#include "core/decompose.hpp"
#include "exec/adaptive.hpp"
#include "net/presets.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace netpart;
  const Config args = Config::from_args(argc, argv);
  const apps::StencilConfig cfg{
      .n = static_cast<int>(args.get_int_or("n", 1200)),
      .iterations = static_cast<int>(args.get_int_or("iterations", 40)),
      .overlap = false};
  const double load = args.get_double_or("load", 0.5);

  const Network net = presets::paper_testbed();
  const ComputationSpec spec = apps::make_stencil_spec(cfg);
  const ProcessorConfig config{6, 0};
  const Placement placement = contiguous_placement(net, config);
  const PartitionVector initial = balanced_partition(
      net, config, clusters_by_speed(net), cfg.n);

  const LoadSchedule skew =
      LoadSchedule::step(net, 0, 3, SimTime::seconds(2), load);
  ExecutionOptions options;
  options.load = &skew;
  const AdaptiveOptions adaptive_options{.check_interval = 5,
                                         .imbalance_threshold = 1.2,
                                         .pdu_bytes = 4 * cfg.n};

  std::printf("N=%d, %d iterations; at t=2s processors 3..5 take %.0f%% "
              "background load\n\n",
              cfg.n, cfg.iterations, 100 * load);

  const AdaptiveResult fixed = execute_static_chunked(
      net, spec, placement, initial, options, adaptive_options);
  std::printf("static   : %.0f ms, partition stays [%s]\n",
              fixed.elapsed.as_millis(),
              fixed.final_partition.to_string().c_str());

  const AdaptiveResult adaptive = execute_adaptive(
      net, spec, placement, initial, options, adaptive_options);
  std::printf("adaptive : %.0f ms, %d repartition(s), %.0f ms spent "
              "migrating rows, final [%s]\n",
              adaptive.elapsed.as_millis(), adaptive.repartitions,
              adaptive.redistribution_time.as_millis(),
              adaptive.final_partition.to_string().c_str());
  std::printf("speedup  : %.2fx\n",
              fixed.elapsed.as_millis() / adaptive.elapsed.as_millis());
  return 0;
}

// Bringing your own computation to the partitioner: a ring-structured
// pipeline on a mixed-endianness network, annotated directly with callback
// functions (no canned app).  Demonstrates:
//
//   * ring topology calibration and estimation,
//   * coercion costs appearing automatically between big- and little-endian
//     clusters (T_coerce),
//   * comparing the heuristic against the exhaustive reference partitioner.
//
// Usage: custom_topology [pdus=5000] [ops=2000]
#include <cstdio>

#include "calib/calibrate.hpp"
#include "core/partitioner.hpp"
#include "exec/executor.hpp"
#include "net/presets.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace netpart;
  const Config args = Config::from_args(argc, argv);
  const std::int64_t pdus = args.get_int_or("pdus", 5000);
  const double ops = static_cast<double>(args.get_int_or("ops", 2000));

  // Sparc2s (big-endian) and i860s (little-endian): messages crossing the
  // router pay a per-byte coercion penalty on top of the router delay.
  const Network net = presets::coercion_testbed();

  CalibrationParams cal;
  cal.topologies = {Topology::Ring};
  const CalibrationResult calibration = calibrate(net, cal);
  std::printf("coercion fit present: %s\n",
              calibration.db.has_coerce(0, 1) ? "yes" : "no");
  std::printf("T_coerce(4096 bytes) = %.2f ms, T_router(4096) = %.2f ms\n",
              calibration.db.coerce_ms(0, 1, 4096),
              calibration.db.router_ms(0, 1, 4096));

  // The computation: each task transforms its PDUs, then forwards a fixed
  // 4 KiB block to its ring successor each cycle.
  ComputationPhaseSpec transform;
  transform.name = "transform";
  transform.num_pdus = [pdus] { return pdus; };
  transform.ops_per_pdu = [ops] { return ops; };

  CommunicationPhaseSpec forward;
  forward.name = "forward";
  forward.topology = [] { return Topology::Ring; };
  forward.bytes_per_message = [](std::int64_t) { return std::int64_t{4096}; };
  forward.overlap_with = "transform";  // forwarding hides behind compute

  const ComputationSpec spec("ring-pipeline", {transform}, {forward},
                             /*iterations=*/25);

  const AvailabilitySnapshot snapshot =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));
  CycleEstimator estimator(net, calibration.db, spec);

  const PartitionResult heuristic = partition(estimator, snapshot);
  const PartitionResult reference =
      exhaustive_partition(estimator, snapshot);
  std::printf("heuristic:  (%d, %d), T_c %.2f ms, %llu evaluations\n",
              heuristic.config[0], heuristic.config[1],
              heuristic.estimate.t_c_ms,
              static_cast<unsigned long long>(heuristic.evaluations));
  std::printf("exhaustive: (%d, %d), T_c %.2f ms, %llu evaluations\n",
              reference.config[0], reference.config[1],
              reference.estimate.t_c_ms,
              static_cast<unsigned long long>(reference.evaluations));

  const ExecutionResult run = execute(net, spec, heuristic.placement,
                                      heuristic.estimate.partition, {});
  std::printf("measured (heuristic config): %.0f ms\n",
              run.elapsed.as_millis());
  return 0;
}

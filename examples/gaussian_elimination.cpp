// Gaussian elimination with partial pivoting across the heterogeneous
// testbed: an application with non-uniform computational and communication
// complexity (the second workload Section 6 reports success with).
//
// Usage: gaussian_elimination [n=96] [seed=17]
#include <cmath>
#include <cstdio>

#include "apps/gauss.hpp"
#include "calib/calibrate.hpp"
#include "core/partitioner.hpp"
#include "exec/executor.hpp"
#include "net/presets.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace netpart;
  const Config args = Config::from_args(argc, argv);
  const int n = static_cast<int>(args.get_int_or("n", 96));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int_or("seed", 17));

  const Network net = presets::paper_testbed();
  CalibrationParams cal;
  cal.topologies = {Topology::Broadcast};
  const CalibrationResult calibration = calibrate(net, cal);
  const AvailabilitySnapshot snapshot =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));

  const apps::GaussConfig cfg{.n = n};
  const ComputationSpec spec = apps::make_gauss_spec(cfg);
  CycleEstimator estimator(net, calibration.db, spec);
  const PartitionResult plan = partition(estimator, snapshot);
  std::printf("gauss N=%d: chose (%d Sparc2, %d IPC), A=[%s], "
              "estimated %.0f ms\n",
              n, plan.config[0], plan.config[1],
              plan.estimate.partition.to_string().c_str(),
              plan.estimate.t_elapsed_ms);

  const auto dist = apps::run_distributed_gauss(
      net, plan.placement, plan.estimate.partition, cfg, seed);
  const std::vector<double> reference =
      apps::solve_sequential(apps::make_test_system(n, seed));
  double max_err = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    max_err = std::max(max_err, std::abs(dist.x[i] - reference[i]));
  }
  std::printf("distributed elimination: %.0f ms simulated, %llu messages, "
              "max |x - x_ref| = %.2e\n",
              dist.elapsed.as_millis(),
              static_cast<unsigned long long>(dist.messages), max_err);
  return 0;
}

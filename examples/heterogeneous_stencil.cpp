// The paper's evaluation, end to end: STEN-1 and STEN-2 on the 6 Sparc2 +
// 6 IPC testbed, with the partitioner choosing the configuration and the
// functional implementation verifying numerics against the sequential
// reference.
//
// Usage: heterogeneous_stencil [n=300] [iterations=10] [loss=0.0]
#include <cstdio>

#include "apps/stencil.hpp"
#include "calib/calibrate.hpp"
#include "core/partitioner.hpp"
#include "exec/executor.hpp"
#include "net/presets.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace netpart;
  const Config args = Config::from_args(argc, argv);
  const int n = static_cast<int>(args.get_int_or("n", 300));
  const int iterations = static_cast<int>(args.get_int_or("iterations", 10));
  const double loss = args.get_double_or("loss", 0.0);

  const Network net = presets::paper_testbed();
  CalibrationParams cal;
  cal.topologies = {Topology::OneD};
  const CalibrationResult calibration = calibrate(net, cal);
  const AvailabilitySnapshot snapshot =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));

  for (const bool overlap : {false, true}) {
    const apps::StencilConfig cfg{.n = n, .iterations = iterations,
                                  .overlap = overlap};
    const ComputationSpec spec = apps::make_stencil_spec(cfg);
    CycleEstimator estimator(net, calibration.db, spec);
    const PartitionResult plan = partition(estimator, snapshot);

    ExecutionOptions options;
    options.sim_params.loss_rate = loss;
    const ExecutionResult run =
        execute(net, spec, plan.placement, plan.estimate.partition, options);

    std::printf("%s N=%d: chose (%d Sparc2, %d IPC), A=[%s]\n",
                spec.name().c_str(), n, plan.config[0], plan.config[1],
                plan.estimate.partition.to_string().c_str());
    std::printf("  estimated %.0f ms, measured %.0f ms, %llu messages, "
                "%llu retransmissions\n",
                plan.estimate.t_elapsed_ms, run.elapsed.as_millis(),
                static_cast<unsigned long long>(run.messages_delivered),
                static_cast<unsigned long long>(run.retransmissions));

    // Functional verification with real data through MMPS (small grids
    // only -- the real relaxation is O(n^2) per sweep on the host).
    if (n <= 600) {
      sim::NetSimParams sim_params;
      sim_params.loss_rate = loss;
      const auto functional = apps::run_distributed_stencil(
          net, plan.placement, plan.estimate.partition, cfg, sim_params);
      const auto reference = apps::run_sequential(cfg);
      std::printf("  functional run: grids %s, simulated %.0f ms\n",
                  functional.grid == reference ? "bit-identical"
                                               : "MISMATCH",
                  functional.elapsed.as_millis());
    }
  }
  return 0;
}

// netpart_cli: config-driven driver for the whole library.
//
// Reads key=value arguments, builds a network, calibrates (or loads a saved
// cost model), partitions the chosen application, executes it on the
// simulator, and reports prediction vs measurement.
//
// Keys:
//   app        = stencil | sten2 | gauss | particles | reduce   (default stencil)
//   spec       = path to an annotation spec file (overrides app; see
//                dp/spec_parser.hpp and specs/*.spec)
//   n          = problem size; with spec= this overrides param N
//   iterations = cycles (ignored when spec= provides its own)
//   network    = paper | fig1 | coercion | metasystem            (default paper)
//   model_in   = path to a saved cost model (skips calibration)
//   model_out  = path to save the calibrated cost model
//   loss       = datagram loss probability                      (default 0)
//   partitioner= heuristic | general | exhaustive               (default heuristic)
//
// Example:
//   netpart_cli app=sten2 n=1200 model_out=/tmp/testbed.costmodel
//   netpart_cli app=gauss n=256 model_in=/tmp/testbed.costmodel
//   netpart_cli spec=specs/stencil.spec n=600
#include <cstdio>

#include "apps/gauss.hpp"
#include "apps/particles.hpp"
#include "apps/reduce.hpp"
#include "apps/stencil.hpp"
#include "calib/calibrate.hpp"
#include "calib/model_io.hpp"
#include "core/general.hpp"
#include "dp/spec_parser.hpp"
#include "exec/executor.hpp"
#include "net/presets.hpp"
#include "util/config.hpp"

namespace netpart {
namespace {

Network make_network(const std::string& name) {
  if (name == "paper") return presets::paper_testbed();
  if (name == "fig1") return presets::fig1_network();
  if (name == "coercion") return presets::coercion_testbed();
  if (name == "metasystem") return presets::metasystem();
  throw ConfigError("unknown network: " + name);
}

ComputationSpec make_app(const std::string& app, int n, int iterations) {
  if (app == "stencil") {
    return apps::make_stencil_spec(
        apps::StencilConfig{.n = n, .iterations = iterations,
                            .overlap = false});
  }
  if (app == "sten2") {
    return apps::make_stencil_spec(
        apps::StencilConfig{.n = n, .iterations = iterations,
                            .overlap = true});
  }
  if (app == "gauss") {
    return apps::make_gauss_spec(apps::GaussConfig{.n = n});
  }
  if (app == "particles") {
    return apps::make_particle_spec(
        apps::ParticleConfig{.count = n, .iterations = iterations});
  }
  if (app == "reduce") {
    return apps::make_reduce_spec(
        apps::ReduceConfig{.count = n, .iterations = iterations});
  }
  throw ConfigError("unknown app: " + app);
}

ComputationSpec make_computation(const Config& args) {
  if (const auto path = args.get("spec")) {
    // Compiler-generated-callback route: annotations from a spec file,
    // with n= overriding the N parameter when declared.
    const SpecTemplate tmpl = parse_spec_file(*path);
    std::map<std::string, double> overrides;
    if (args.contains("n") && tmpl.params().count("N") > 0) {
      overrides["N"] = static_cast<double>(args.get_int_or("n", 0));
    }
    return tmpl.instantiate(overrides);
  }
  return make_app(args.get_or("app", "stencil"),
                  static_cast<int>(args.get_int_or("n", 600)),
                  static_cast<int>(args.get_int_or("iterations", 10)));
}

int run(const Config& args) {
  const Network net = make_network(args.get_or("network", "paper"));
  const ComputationSpec spec = make_computation(args);
  std::printf("%s", net.describe().c_str());
  std::printf("application: %s, %lld PDUs, %d cycles\n\n",
              spec.name().c_str(),
              static_cast<long long>(spec.num_pdus()), spec.iterations());

  // Cost model: load a saved calibration, or benchmark now.
  CostModelDb db(net.num_clusters());
  if (const auto path = args.get("model_in")) {
    db = load_cost_model_file(*path);
    std::printf("loaded cost model from %s\n", path->c_str());
  } else {
    std::printf("calibrating (this benchmarks every cluster/topology "
                "pair)...\n");
    db = calibrate(net).db;
  }
  if (const auto path = args.get("model_out")) {
    save_cost_model_file(db, *path);
    std::printf("saved cost model to %s\n", path->c_str());
  }

  const AvailabilitySnapshot snapshot =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));
  CycleEstimator estimator(net, db, spec);

  const std::string which = args.get_or("partitioner", "heuristic");
  PartitionResult plan = [&] {
    if (which == "heuristic") return partition(estimator, snapshot);
    if (which == "general") return general_partition(estimator, snapshot);
    if (which == "exhaustive") {
      return exhaustive_partition(estimator, snapshot);
    }
    throw ConfigError("unknown partitioner: " + which);
  }();

  std::printf("\n%s partitioner chose:", which.c_str());
  for (std::size_t c = 0; c < plan.config.size(); ++c) {
    std::printf(" %s=%d", net.cluster(static_cast<ClusterId>(c)).name().c_str(),
                plan.config[c]);
  }
  std::printf("  (%llu objective evaluations)\n",
              static_cast<unsigned long long>(plan.evaluations));
  std::printf("partition vector A = [%s]\n",
              plan.estimate.partition.to_string().c_str());
  std::printf("estimate: T_comp %.2f + T_comm %.2f - T_overlap %.2f = "
              "T_c %.2f ms/cycle -> %.0f ms total\n",
              plan.estimate.t_comp_ms, plan.estimate.t_comm_ms,
              plan.estimate.t_overlap_ms, plan.estimate.t_c_ms,
              plan.estimate.t_elapsed_ms);

  ExecutionOptions options;
  options.sim_params.loss_rate = args.get_double_or("loss", 0.0);
  const ExecutionResult result =
      execute(net, spec, plan.placement, plan.estimate.partition, options);
  std::printf("measured: %.0f ms (%llu messages, %llu retransmissions)\n",
              result.elapsed.as_millis(),
              static_cast<unsigned long long>(result.messages_delivered),
              static_cast<unsigned long long>(result.retransmissions));
  return 0;
}

}  // namespace
}  // namespace netpart

int main(int argc, char** argv) {
  try {
    return netpart::run(netpart::Config::from_args(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "netpart_cli: %s\n", e.what());
    return 1;
  }
}

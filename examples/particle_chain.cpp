// Latency-bound partitioning: a particle-chain simulation whose per-cycle
// messages are 8 bytes.  Shows the partitioner holding back processors
// until the computation granularity justifies them, and the bit-identical
// functional run.
//
// Usage: particle_chain [count=20000] [iterations=50]
#include <cstdio>

#include "apps/particles.hpp"
#include "calib/calibrate.hpp"
#include "core/partitioner.hpp"
#include "exec/executor.hpp"
#include "net/presets.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace netpart;
  const Config args = Config::from_args(argc, argv);
  const apps::ParticleConfig cfg{
      .count = static_cast<int>(args.get_int_or("count", 20000)),
      .iterations = static_cast<int>(args.get_int_or("iterations", 50))};

  const Network net = presets::paper_testbed();
  CalibrationParams cal;
  cal.topologies = {Topology::OneD};
  const CalibrationResult calibration = calibrate(net, cal);
  const AvailabilitySnapshot snapshot =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));

  const ComputationSpec spec = apps::make_particle_spec(cfg);
  CycleEstimator estimator(net, calibration.db, spec);
  const PartitionResult plan = partition(estimator, snapshot);
  std::printf("%d particles, %d steps: chose (%d Sparc2, %d IPC)\n",
              cfg.count, cfg.iterations, plan.config[0], plan.config[1]);

  const ExecutionResult run =
      execute(net, spec, plan.placement, plan.estimate.partition, {});
  std::printf("estimated %.0f ms, measured %.0f ms\n",
              plan.estimate.t_elapsed_ms, run.elapsed.as_millis());

  if (cfg.count <= 50000) {
    const auto functional = apps::run_distributed_particles(
        net, plan.placement, plan.estimate.partition, cfg);
    const apps::ParticleState reference =
        apps::run_sequential_particles(cfg, 5);
    std::printf("functional run: positions %s, %.0f ms simulated\n",
                functional.state.position == reference.position
                    ? "bit-identical to sequential"
                    : "MISMATCH",
                functional.elapsed.as_millis());
  }
  return 0;
}

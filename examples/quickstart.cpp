// Quickstart: the whole pipeline in one page.
//
//   1. Describe a heterogeneous network (two clusters, a router).
//   2. Benchmark it offline -> topology-specific cost functions (Eq. 1).
//   3. Annotate a data parallel computation with callbacks.
//   4. Ask the cluster managers what is available.
//   5. Partition: processor selection + load-balanced decomposition.
//   6. Execute on the simulated network and compare with the estimate.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "calib/calibrate.hpp"
#include "core/partitioner.hpp"
#include "exec/executor.hpp"
#include "net/builder.hpp"
#include "net/presets.hpp"

int main() {
  using namespace netpart;

  // 1. A network: 4 fast machines and 4 slower ones, each cluster on its
  //    own 10 Mbit/s ethernet segment, joined by one router.
  NetworkBuilder builder;
  builder.add_cluster("fast", presets::sparc2(), 4);
  builder.add_cluster("slow", presets::sun_ipc(), 4);
  const Network net = builder.build();
  std::printf("%s\n", net.describe().c_str());

  // 2. Offline calibration: run the 1-D communication program over a
  //    (p, bytes) grid and fit T_comm[C, 1-D](b, p) = c1 + c2 p + b(c3+c4 p).
  CalibrationParams cal;
  cal.topologies = {Topology::OneD};
  const CalibrationResult calibration = calibrate(net, cal);
  const Eq1Fit& fit = calibration.db.comm_fit(0, Topology::OneD);
  std::printf("fitted 'fast' 1-D cost: %.3f + %.3f p + b(%.5f + %.5f p) ms "
              "(r^2 %.3f)\n\n",
              fit.c1, fit.c2, fit.c3, fit.c4, fit.r2);

  // 3. Annotate the computation.  PDU = one row of a 400x400 grid; each
  //    cycle computes 5 flops per point and exchanges 1600-byte borders
  //    with 1-D neighbours.
  const int n = 400;
  ComputationPhaseSpec compute;
  compute.name = "relax";
  compute.num_pdus = [n] { return std::int64_t{n}; };
  compute.ops_per_pdu = [n] { return 5.0 * n; };

  CommunicationPhaseSpec borders;
  borders.name = "borders";
  borders.topology = [] { return Topology::OneD; };
  borders.bytes_per_message = [n](std::int64_t) { return std::int64_t{4} * n; };

  const ComputationSpec spec("quickstart", {compute}, {borders},
                             /*iterations=*/20);

  // 4. Availability from the cluster managers (everything idle here).
  const AvailabilitySnapshot snapshot =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));

  // 5. Partition.
  CycleEstimator estimator(net, calibration.db, spec);
  const PartitionResult plan = partition(estimator, snapshot);
  std::printf("partitioner chose %d fast + %d slow processors "
              "(%llu objective evaluations)\n",
              plan.config[0], plan.config[1],
              static_cast<unsigned long long>(plan.evaluations));
  std::printf("partition vector A = [%s], estimated %.0f ms total\n",
              plan.estimate.partition.to_string().c_str(),
              plan.estimate.t_elapsed_ms);

  // 6. Execute on the simulator.
  const ExecutionResult run =
      execute(net, spec, plan.placement, plan.estimate.partition, {});
  std::printf("measured on the simulated network: %.0f ms "
              "(%llu messages delivered)\n",
              run.elapsed.as_millis(),
              static_cast<unsigned long long>(run.messages_delivered));
  return 0;
}

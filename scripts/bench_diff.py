#!/usr/bin/env python3
"""Compare two BENCH_partition.json artifacts and report regressions.

Usage:
    scripts/bench_diff.py OLD.json NEW.json [--gate] [--tolerance PCT]

Prints a table of the key perf metrics with old/new values and the
relative change, flagging each row as `ok`, `improved`, `regressed`, or
`new` (metric absent from the old artifact -- e.g. a bench section that
did not exist yet).  By default the script always exits 0: bench numbers
move with the host, so off the designated CI machine the diff is
informational.  With --gate, any `regressed` row beyond the tolerance
fails the run (exit 1), which is how CI pins the checked-in baseline.

Regression direction is per metric: ns/eval and us/search regress when
they go up; throughput and speedup regress when they go down.  The
tolerance (default 10%) absorbs run-to-run jitter; min-of-windows timing
in the bench keeps genuine changes well above that.
"""

import argparse
import json
import sys

# (json path, human name, direction) -- direction 'down' means lower is
# better, 'up' means higher is better.
METRICS = [
    (("eval", "reference_ns_per_eval"), "reference ns/eval", "down"),
    (("eval", "fast_ns_per_eval"), "fast ns/eval", "down"),
    (("batched", "batched_ns_per_eval"), "batched ns/eval", "down"),
    (("delta", "delta_ns_per_eval"), "delta ns/eval", "down"),
    (("general", "searches_per_sec"), "general searches/sec", "up"),
    (("search", "single_thread_per_sec"), "search evals/sec", "up"),
    (("exhaustive", "speedup"), "exhaustive speedup", "up"),
    (("alloc", "allocations_per_eval"), "allocations/eval", "down"),
]


def lookup(doc, path):
    node = doc
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node if isinstance(node, (int, float)) else None


def classify(old, new, direction, tolerance):
    """Return (status, pct_change) for one metric row."""
    if old is None:
        return "new", None
    if old == 0:
        # Zero baselines (e.g. allocations/eval) must stay zero.
        return ("ok" if new == 0 else "regressed"), None
    change = (new - old) / abs(old)
    worse = change > tolerance if direction == "down" else change < -tolerance
    better = change < -tolerance if direction == "down" else change > tolerance
    if worse:
        return "regressed", change
    if better:
        return "improved", change
    return "ok", change


def fmt(value):
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.2f}"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="previous BENCH_partition.json")
    parser.add_argument("new", help="fresh BENCH_partition.json")
    parser.add_argument(
        "--gate", action="store_true",
        help="exit 1 on any regression beyond tolerance (CI baseline host)")
    parser.add_argument(
        "--tolerance", type=float, default=10.0,
        help="relative tolerance in percent (default 10)")
    args = parser.parse_args()

    with open(args.old) as f:
        old_doc = json.load(f)
    with open(args.new) as f:
        new_doc = json.load(f)

    tolerance = args.tolerance / 100.0
    rows = []
    regressions = []
    for path, name, direction in METRICS:
        old = lookup(old_doc, path)
        new = lookup(new_doc, path)
        if new is None:
            # The new artifact dropped a section; that is a bench change,
            # not a perf change -- note it but never gate on it.
            rows.append((name, fmt(old), "-", "-", "missing"))
            continue
        status, change = classify(old, new, direction, tolerance)
        pct = "-" if change is None else f"{change * 100.0:+.1f}%"
        rows.append((name, fmt(old), fmt(new), pct, status))
        if status == "regressed":
            regressions.append(name)

    widths = [max(len(r[i]) for r in rows + [("metric", "old", "new",
                                              "change", "status")])
              for i in range(5)]
    header = ("metric", "old", "new", "change", "status")
    for row in (header,) + tuple(rows):
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))

    if regressions:
        print(f"\nregressed: {', '.join(regressions)} "
              f"(tolerance {args.tolerance:.0f}%)", file=sys.stderr)
        if args.gate:
            return 1
        print("warn-only (set NETPART_BENCH_GATE=1 via tier1.sh --bench "
              "to gate)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Cross-check the npracer diagnostic codes against the DESIGN.md §14 code
# table: every NP-R code the detector can emit must have a documented row.
# Run by scripts/tier1.sh --lint; fails the lint tier on any missing code.
set -euo pipefail
cd "$(dirname "$0")/.."

# Codes the detector can emit: every "NP-Rnnn" string literal in the
# analyzer sources.  (The docs/tests may mention more codes than the
# analyzer emits; only emitted-but-undocumented is an error.)
emitted="$(grep -rhoE '"NP-R[0-9]{3}"' src/analysis/race/ |
  tr -d '"' | sort -u)"
if [[ -z "$emitted" ]]; then
  echo "check_race_codes: no NP-R codes found in src/analysis/race/" >&2
  exit 1
fi

missing=0
for code in $emitted; do
  if ! grep -q "$code" DESIGN.md; then
    echo "check_race_codes: $code is emitted by src/analysis/race/" \
         "but has no row in the DESIGN.md §14 code table" >&2
    missing=1
  fi
done
if [[ "$missing" == 1 ]]; then
  exit 1
fi
echo "check_race_codes: all $(echo "$emitted" | wc -l) NP-R codes documented"

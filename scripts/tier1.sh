#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#
#   scripts/tier1.sh            # Release build in build/
#   scripts/tier1.sh asan-ubsan # ASan+UBSan build in build-asan/
#   scripts/tier1.sh --tsan     # TSan build in build-tsan/; runs the
#                               # service + threaded tests (the tsan test
#                               # preset filters to them) -- any reported
#                               # race fails the tier
#   scripts/tier1.sh --obs      # Release build, then a telemetry smoke
#                               # stage: netpartd --trace-out on a small
#                               # spec, validated by trace_check (the
#                               # trace must parse and contain the
#                               # partitioner / service / adaptive spans),
#                               # plus a small fleetd run whose merged
#                               # multi-node trace/metrics/health exports
#                               # are validated by trace_check --fleet and
#                               # grepped for per-hop attribution and
#                               # {node=N} dimension rows
#   scripts/tier1.sh --bench    # Release build + tests, then the full
#                               # partition hot-path bench, emitting
#                               # BENCH_partition.json in the repo root;
#                               # NETPART_HW_CONCURRENCY defaults to
#                               # $(nproc) so the wall-clock gates record
#                               # what this host could test, and the new
#                               # artifact is diffed against the previous
#                               # one (scripts/bench_diff.py; warn-only
#                               # unless NETPART_BENCH_GATE=1)
#   scripts/tier1.sh --batch    # Release build, then the batched-engine
#                               # lockdown: the differential property
#                               # suite (estimate_batch bitwise ==
#                               # estimate_into across batch shapes), the
#                               # work-stealing determinism tests, and
#                               # the degenerate-input fuzz sweeps
#   scripts/tier1.sh --lint     # Strict build (-Wshadow -Werror, preset
#                               # `strict`) plus clang-tidy over src/ when
#                               # clang-tidy is installed (the gcc-only CI
#                               # image skips that half gracefully), plus
#                               # the NP-R diagnostic-code cross-check
#                               # (every code npracer can emit must be
#                               # documented in DESIGN.md §14)
#   scripts/tier1.sh --race     # npracer interleaving tier (preset
#                               # `race`: Release + NETPART_RACE=ON, in
#                               # build-race/).  Runs the detector suite:
#                               # known-racy fixtures must produce their
#                               # expected NP-R diagnostics, and the
#                               # instrumented shipped surfaces (service,
#                               # cache, sweep, telemetry, fleet sim) must
#                               # report ZERO unannotated findings across
#                               # every perturbed schedule -- any finding
#                               # fails the tier.  test_race_macros_off
#                               # then re-proves the compile-out contract
#                               # inside the instrumented build.
#   scripts/tier1.sh --fleet    # Release build, then the fleet lockdown:
#                               # the fleet unit suite, the 20-seed
#                               # crash/failover chaos tier, the npcheck
#                               # --fleet config lint (clean and NP-F
#                               # rejection cases), and the bench_fleet
#                               # --smoke gates (scaling, gossip
#                               # convergence, warm failover)
#
# The release tier always ends with two gates:
#   * npcheck over specs/ and the network presets -- the shipped artifacts
#     must be diagnostics-clean (see DESIGN.md §11);
#   * bench_partition_hotpath --smoke -- fails the tier if the estimator
#     fast path allocates in steady state, diverges bitwise from the
#     reference path, or the service admission gate adds allocations to
#     the cached hot path.
#
# Tests run in a random order (--schedule-random) so hidden inter-test
# dependencies surface, and --repeat until-pass:1 keeps every test to a
# single attempt -- a flaky test fails the tier instead of slipping through
# on retry.
set -euo pipefail
cd "$(dirname "$0")/.."

preset="${1:-release}"
obs_stage=0
bench_stage=0
lint_stage=0
batch_stage=0
fleet_stage=0
race_stage=0
if [[ "$preset" == "--tsan" ]]; then
  preset="tsan"
elif [[ "$preset" == "--obs" ]]; then
  preset="release"
  obs_stage=1
elif [[ "$preset" == "--bench" ]]; then
  preset="release"
  bench_stage=1
elif [[ "$preset" == "--batch" ]]; then
  preset="release"
  batch_stage=1
elif [[ "$preset" == "--fleet" ]]; then
  preset="release"
  fleet_stage=1
elif [[ "$preset" == "--lint" ]]; then
  preset="strict"
  lint_stage=1
elif [[ "$preset" == "--race" ]]; then
  preset="race"
  race_stage=1
fi

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"

if [[ "$batch_stage" == 1 ]]; then
  # Focused lockdown of the batched estimator engine and the
  # work-stealing sweep: the differential tier (bitwise batch == scalar),
  # steal-order determinism under chaos yields, degenerate-input fuzzing,
  # and the speedup-gate unit tests.  A subset of the release tier, for
  # fast iteration on the engine itself.
  echo "== batched engine lockdown =="
  ./build/tests/test_property \
    --gtest_filter='*Batch*:*ParallelExhaustive*:GroupShares.*:RankKernel.*:*DeltaBitwise*:DeltaEval.*'
  ./build/tests/test_threaded \
    --gtest_filter='ThreadedPartitionSearchTest.*'
  ./build/tests/test_fuzz \
    --gtest_filter='DegenerateInputs.*:*StarvationPressure*'
  ./build/tests/test_coverage \
    --gtest_filter='SpeedupGateCoverage.*:GateSetCoverage.*'
  echo "== batched perf smoke =="
  ./build/bench/bench_partition_hotpath --smoke >/dev/null
  echo "batch tier ok"
  exit 0
fi

if [[ "$fleet_stage" == 1 ]]; then
  # Focused lockdown of the multi-node fleet (DESIGN.md §12): unit suite,
  # the 20-seed crash chaos tier, the fleet config lint from both sides
  # of its exit contract, and the bench gates.  A subset of the release
  # tier, for fast iteration on the fleet control plane.
  echo "== fleet test stage =="
  ./build/tests/test_fleet
  ./build/tests/test_fleet_chaos
  echo "== fleet lint stage =="
  ./build/src/apps/npcheck --fleet nodes=4,replication=2 >/dev/null
  if ./build/src/apps/npcheck --fleet nodes=2,replication=3 >/dev/null 2>&1
  then
    echo "npcheck --fleet accepted replication > nodes (NP-F001)" >&2
    exit 1
  fi
  ./build/src/apps/fleetd nodes=4 replication=2 --check >/dev/null
  echo "== fleet bench gates =="
  ./build/bench/bench_fleet --smoke --json-out BENCH_fleet.json >/dev/null
  echo "fleet tier ok"
  exit 0
fi

if [[ "$race_stage" == 1 ]]; then
  # npracer lockdown (DESIGN.md §14).  test_race carries both halves of
  # the tier's contract: the known-racy fixtures (which must light up
  # with their exact NP-R codes, proving the detector sees what it claims
  # to see) and the quiet gates over the instrumented shipped surfaces,
  # which explore() across perturbed schedules and hard-fail on any
  # finding.  test_race_macros_off runs here too: its translation unit
  # defines NETPART_RACE_FORCE_OFF, so even inside the instrumented
  # build it must observe every macro expanding to nothing.
  echo "== npracer interleaving tier =="
  ./build-race/tests/test_race
  ./build-race/tests/test_race_macros_off
  echo "race tier ok"
  exit 0
fi

if [[ "$lint_stage" == 1 ]]; then
  # The strict build above IS the first half of the lint tier (-Werror).
  # The second half needs clang-tidy, which the gcc-only toolchain image
  # does not ship -- gate, don't fail.
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== clang-tidy stage =="
    cmake --preset strict -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    find src -name '*.cpp' -print0 |
      xargs -0 -n 8 -P "$(nproc)" clang-tidy -p build-strict --quiet
    echo "clang-tidy stage ok"
  else
    echo "clang-tidy not installed; skipping tidy half of --lint" >&2
  fi
  echo "== NP-R code table cross-check =="
  scripts/check_race_codes.sh
  echo "lint tier ok (strict -Werror build passed)"
  exit 0
fi

ctest --preset "$preset" \
  --repeat until-pass:1 \
  -j "$(nproc)"

if [[ "$preset" == "release" ]]; then
  echo "== npcheck stage =="
  ./build/src/apps/npcheck specs/*.spec \
    --network paper >/dev/null
  for net in fig1 coercion metasystem; do
    ./build/src/apps/npcheck --network "$net" >/dev/null
  done
  echo "npcheck stage ok"

  echo "== perf smoke stage =="
  smoke_json="$(mktemp)"
  ./build/bench/bench_partition_hotpath --smoke --json-out "$smoke_json"
  rm -f "$smoke_json"
  echo "perf smoke stage ok"
fi

if [[ "$bench_stage" == 1 ]]; then
  echo "== partition hot-path bench =="
  # Wall-clock gates (parallel_speedup, batched_under_40ns) key off the
  # host's core count; pin it explicitly so the gate decision in the
  # artifact records what this host could actually test.  CI or a user
  # can override by exporting NETPART_HW_CONCURRENCY first.
  export NETPART_HW_CONCURRENCY="${NETPART_HW_CONCURRENCY:-$(nproc)}"
  prev_bench=""
  if [[ -f BENCH_partition.json ]]; then
    prev_bench="$(mktemp)"
    cp BENCH_partition.json "$prev_bench"
  fi
  ./build/bench/bench_partition_hotpath --json-out BENCH_partition.json
  if [[ -n "$prev_bench" ]]; then
    echo "== bench baseline diff =="
    # Warn-only by default: bench numbers move with the host.  On the
    # designated CI host, export NETPART_BENCH_GATE=1 to make a
    # regression against the checked-in baseline fail the tier.
    if [[ "${NETPART_BENCH_GATE:-0}" == 1 ]]; then
      python3 scripts/bench_diff.py "$prev_bench" BENCH_partition.json \
        --gate
    else
      python3 scripts/bench_diff.py "$prev_bench" BENCH_partition.json
    fi
    rm -f "$prev_bench"
  fi
fi

if [[ "$obs_stage" == 1 ]]; then
  echo "== obs smoke stage =="
  workdir="$(mktemp -d)"
  trap 'rm -rf "$workdir"' EXIT
  ./build/src/apps/netpartd \
    clients=2 requests=20 universe=8 workers=2 churn=1 \
    --trace-out "$workdir/trace.json" \
    --metrics-out "$workdir/metrics.txt" >/dev/null
  ./build/src/apps/trace_check "$workdir/trace.json" \
    partition.search svc.request svc.execute \
    adaptive.chunk adaptive.repartition
  grep -q "^counter partitioner.calls" "$workdir/metrics.txt" || {
    echo "metrics.txt lacks partitioner counters" >&2; exit 1; }

  # Fleet half: a small fleetd run exporting the merged multi-node
  # artifacts, validated structurally (--fleet checks per-node pid lanes,
  # parent-link closure, and parent/child timestamp order) plus the two
  # grep gates on the merged metrics dump: per-hop request attribution
  # and the {node=N} dimension rows.
  ./build/src/apps/fleetd \
    nodes=3 requests=120 crash=2 \
    --trace-out "$workdir/fleet_trace.json" \
    --metrics-out "$workdir/fleet_metrics.txt" \
    --health-out "$workdir/fleet_health.txt" >/dev/null
  ./build/src/apps/trace_check --fleet "$workdir/fleet_trace.json" \
    fleet.request fleet.forward fleet.serve
  grep -q "^latency fleet.request.total_us" "$workdir/fleet_metrics.txt" || {
    echo "fleet metrics lack per-hop attribution histograms" >&2; exit 1; }
  grep -q "{node=0}" "$workdir/fleet_metrics.txt" || {
    echo "fleet metrics lack per-node dimension rows" >&2; exit 1; }
  grep -q "^node 0 alive=1" "$workdir/fleet_health.txt" || {
    echo "fleet health summary missing" >&2; exit 1; }
  echo "obs smoke stage ok"
fi

#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#
#   scripts/tier1.sh            # Release build in build/
#   scripts/tier1.sh asan-ubsan # ASan+UBSan build in build-asan/
#   scripts/tier1.sh --tsan     # TSan build in build-tsan/; runs the
#                               # service + threaded tests (the tsan test
#                               # preset filters to them) -- any reported
#                               # race fails the tier
#
# Tests run in a random order (--schedule-random) so hidden inter-test
# dependencies surface, and --repeat until-pass:1 keeps every test to a
# single attempt -- a flaky test fails the tier instead of slipping through
# on retry.
set -euo pipefail
cd "$(dirname "$0")/.."

preset="${1:-release}"
if [[ "$preset" == "--tsan" ]]; then
  preset="tsan"
fi

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset" \
  --repeat until-pass:1 \
  -j "$(nproc)"

#include "analysis/diagnostics.hpp"

#include <utility>

#include "util/error.hpp"

namespace netpart::analysis {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  throw LogicError("unknown diagnostic severity");
}

void DiagnosticSink::report(Diagnostic diagnostic) {
  if (diagnostic.severity == Severity::Error) ++errors_;
  if (diagnostic.severity == Severity::Warning) ++warnings_;
  diagnostics_.push_back(std::move(diagnostic));
}

void DiagnosticSink::error(std::string code, SourceLoc loc,
                           std::string message, std::string fix_hint) {
  report(Diagnostic{Severity::Error, std::move(code), std::move(loc),
                    std::move(message), std::move(fix_hint)});
}

void DiagnosticSink::warning(std::string code, SourceLoc loc,
                             std::string message, std::string fix_hint) {
  report(Diagnostic{Severity::Warning, std::move(code), std::move(loc),
                    std::move(message), std::move(fix_hint)});
}

void DiagnosticSink::note(std::string code, SourceLoc loc,
                          std::string message, std::string fix_hint) {
  report(Diagnostic{Severity::Note, std::move(code), std::move(loc),
                    std::move(message), std::move(fix_hint)});
}

std::string DiagnosticSink::render_text() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += d.loc.file.empty() ? "<input>" : d.loc.file;
    if (d.loc.known()) {
      out += ':';
      out += std::to_string(d.loc.line);
      out += ':';
      out += std::to_string(d.loc.column);
    }
    out += ": ";
    out += to_string(d.severity);
    out += ": ";
    out += d.message;
    out += " [";
    out += d.code;
    out += "]\n";
    if (!d.fix_hint.empty()) {
      out += "  hint: ";
      out += d.fix_hint;
      out += '\n';
    }
  }
  out += std::to_string(errors_);
  out += " error(s), ";
  out += std::to_string(warnings_);
  out += " warning(s)\n";
  return out;
}

JsonValue DiagnosticSink::to_json() const {
  JsonValue list = JsonValue::array();
  for (const Diagnostic& d : diagnostics_) {
    JsonValue entry = JsonValue::object();
    entry.set("severity", to_string(d.severity));
    entry.set("code", d.code);
    entry.set("file", d.loc.file);
    entry.set("line", d.loc.line);
    entry.set("column", d.loc.column);
    entry.set("message", d.message);
    if (!d.fix_hint.empty()) entry.set("hint", d.fix_hint);
    list.push(std::move(entry));
  }
  JsonValue root = JsonValue::object();
  root.set("diagnostics", std::move(list));
  root.set("errors", errors_);
  root.set("warnings", warnings_);
  root.set("clean", clean());
  return root;
}

}  // namespace netpart::analysis

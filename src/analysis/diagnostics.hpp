// The diagnostics engine: structured findings from the static checks.
//
// The partitioner is only as trustworthy as its inputs -- annotation specs
// (Section 4), fitted cost functions (Eq. 1), and the network description.
// A malformed spec or a non-monotone fit silently skews T_c and every
// downstream decision.  The analysis subsystem catches those *before*
// execution and reports them compiler-style:
//
//   stencil.spec:8:9: error: expression references undefined variable 'M'
//     [NP-S001]
//     hint: declare it with `param M <default>` or fix the spelling
//
// A Diagnostic is one finding (severity, stable code, source location,
// message, optional fix hint); a DiagnosticSink collects them and renders
// either human-readable text or machine-readable JSON (a SARIF-lite shape:
// one `diagnostics` array plus severity totals, deterministic member
// order via util/json).  Codes are stable API: tests golden-match them and
// docs/annotations.md maps each code to the paper equation it guards.
#pragma once

#include <string>
#include <vector>

#include "util/json.hpp"

namespace netpart::analysis {

enum class Severity {
  Note,     ///< advisory; never fails a check run
  Warning,  ///< suspicious but not definitively wrong
  Error,    ///< the input would mislead or crash the partitioner
};

const char* to_string(Severity severity);

/// A position in an analysed artifact.  `file` names the artifact (a spec
/// path, "<model>", "<network>"); line/column are 1-based, 0 = unknown.
struct SourceLoc {
  std::string file;
  int line = 0;
  int column = 0;

  bool known() const { return line > 0; }
};

/// One finding.
struct Diagnostic {
  Severity severity = Severity::Error;
  std::string code;     ///< stable identifier, e.g. "NP-S001"
  SourceLoc loc;
  std::string message;
  std::string fix_hint;  ///< optional "hint:" line
};

/// Collects diagnostics and renders them.  Not thread-safe (one sink per
/// analysis run).
class DiagnosticSink {
 public:
  void report(Diagnostic diagnostic);

  /// Convenience constructors for the common severities.
  void error(std::string code, SourceLoc loc, std::string message,
             std::string fix_hint = {});
  void warning(std::string code, SourceLoc loc, std::string message,
               std::string fix_hint = {});
  void note(std::string code, SourceLoc loc, std::string message,
            std::string fix_hint = {});

  const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  int errors() const { return errors_; }
  int warnings() const { return warnings_; }
  bool empty() const { return diagnostics_.empty(); }

  /// No errors (warnings and notes are allowed).
  bool clean() const { return errors_ == 0; }

  /// Compiler-style text: `file:line:col: severity: message [CODE]` with an
  /// indented `hint:` line when a fix hint is present, and a trailing
  /// severity summary.  Deterministic: diagnostics render in report order.
  std::string render_text() const;

  /// Machine-readable form: {"diagnostics": [...], "errors": E,
  /// "warnings": W, "clean": bool}.  Member order is fixed, so goldens are
  /// byte-stable.
  JsonValue to_json() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  int errors_ = 0;
  int warnings_ = 0;
};

}  // namespace netpart::analysis

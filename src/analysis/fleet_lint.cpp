#include "analysis/fleet_lint.hpp"

#include <unistd.h>

#include <charconv>
#include <cstdlib>
#include <filesystem>
#include <utility>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace netpart::analysis {

namespace {

double parse_number(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    throw ConfigError("fleet config: " + key + "=" + value +
                      " is not a number");
  }
  return v;
}

int parse_int(const std::string& key, const std::string& value) {
  int v = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), v);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    throw ConfigError("fleet config: " + key + "=" + value +
                      " is not an integer");
  }
  return v;
}

}  // namespace

FleetLintConfig parse_fleet_config(const std::string& spec) {
  FleetLintConfig config;
  if (spec.empty()) return config;
  for (const std::string& part : split(spec, ',')) {
    const auto eq = part.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("fleet config: expected key=value, got '" + part +
                        "'");
    }
    const std::string key = part.substr(0, eq);
    const std::string value = part.substr(eq + 1);
    if (key == "nodes") {
      config.nodes = parse_int(key, value);
    } else if (key == "replication") {
      config.replication = parse_int(key, value);
    } else if (key == "vnodes") {
      config.vnodes = parse_int(key, value);
    } else if (key == "hot_threshold") {
      config.hot_threshold = parse_int(key, value);
    } else if (key == "heartbeat_ms") {
      config.heartbeat_ms = parse_number(key, value);
    } else if (key == "gossip_ms") {
      config.gossip_ms = parse_number(key, value);
    } else if (key == "suspect_ms") {
      config.suspect_ms = parse_number(key, value);
    } else if (key == "dead_ms") {
      config.dead_ms = parse_number(key, value);
    } else if (key == "forward_timeout_ms") {
      config.forward_timeout_ms = parse_number(key, value);
    } else if (key == "trace_out") {
      config.trace_out = value;
    } else if (key == "metrics_out") {
      config.metrics_out = value;
    } else if (key == "health_out") {
      config.health_out = value;
    } else {
      throw ConfigError("fleet config: unknown key '" + key + "'");
    }
  }
  return config;
}

void lint_fleet_config(const FleetLintConfig& config,
                       const std::string& file, DiagnosticSink& sink) {
  const SourceLoc loc{file, 0, 0};
  if (config.nodes < 1) {
    sink.error("NP-F002", loc,
               "fleet needs at least one node (nodes=" +
                   std::to_string(config.nodes) + ")");
  }
  if (config.replication < 1) {
    sink.error("NP-F001", loc,
               "replication factor must be >= 1 (replication=" +
                   std::to_string(config.replication) + ")",
               "an entry always has one copy: its owner");
  } else if (config.nodes >= 1 && config.replication > config.nodes) {
    sink.error("NP-F001", loc,
               "replication factor " + std::to_string(config.replication) +
                   " exceeds the fleet size " + std::to_string(config.nodes),
               "the ring cannot place more distinct copies than nodes");
  } else if (config.replication == 1 && config.nodes > 1) {
    sink.warning("NP-F005", loc,
                 "replication=1 on a multi-node fleet: no replicas, every "
                 "failover restarts cold",
                 "set replication >= 2 to get cache-warm failover");
  }
  if (config.vnodes < 1) {
    sink.error("NP-F003", loc,
               "vnodes must be >= 1 (vnodes=" +
                   std::to_string(config.vnodes) + ")");
  } else if (config.vnodes < 4) {
    sink.warning("NP-F003", loc,
                 "vnodes=" + std::to_string(config.vnodes) +
                     " gives a coarse ring; per-node key share will be "
                     "badly unbalanced",
                 "use at least 4 (16 is the default)");
  } else if (config.vnodes > 4096) {
    sink.warning("NP-F003", loc,
                 "vnodes=" + std::to_string(config.vnodes) +
                     " bloats the ring for no balance gain");
  }
  if (config.hot_threshold < 1) {
    sink.error("NP-F005", loc,
               "hot threshold must be >= 1 (hot_threshold=" +
                   std::to_string(config.hot_threshold) + ")");
  }
  const auto positive = [&](const char* name, double v) {
    if (v <= 0.0) {
      sink.error("NP-F004", loc,
                 std::string(name) + " must be positive (got " +
                     std::to_string(v) + " ms)");
      return false;
    }
    return true;
  };
  const bool periods_ok = positive("heartbeat_ms", config.heartbeat_ms) &
                          positive("gossip_ms", config.gossip_ms) &
                          positive("suspect_ms", config.suspect_ms) &
                          positive("dead_ms", config.dead_ms) &
                          positive("forward_timeout_ms",
                                   config.forward_timeout_ms);
  if (periods_ok) {
    if (config.dead_ms <= config.suspect_ms) {
      sink.error("NP-F004", loc,
                 "dead_ms must exceed suspect_ms (suspect_ms=" +
                     std::to_string(config.suspect_ms) + ", dead_ms=" +
                     std::to_string(config.dead_ms) + ")",
                 "the Suspect state needs a non-empty window");
    }
    if (config.heartbeat_ms >= config.suspect_ms) {
      sink.warning("NP-F006", loc,
                   "heartbeat period " + std::to_string(config.heartbeat_ms) +
                       " ms >= suspect threshold " +
                       std::to_string(config.suspect_ms) +
                       " ms: healthy peers will flap Suspect between beats",
                   "keep heartbeat_ms well below suspect_ms (e.g. 3x)");
    }
  }

  // NP-F007: the observability outputs.  Mutual consistency first (two
  // flags writing one file means the later export clobbers the earlier,
  // silently), then per-path writability -- the cheap pre-flight that
  // saves a full simulated run from dying at its final fopen.
  const std::pair<const char*, const std::string*> outputs[] = {
      {"trace_out", &config.trace_out},
      {"metrics_out", &config.metrics_out},
      {"health_out", &config.health_out}};
  for (std::size_t i = 0; i < 3; ++i) {
    if (outputs[i].second->empty()) continue;
    for (std::size_t j = i + 1; j < 3; ++j) {
      if (*outputs[i].second == *outputs[j].second) {
        sink.error("NP-F007", loc,
                   std::string(outputs[i].first) + " and " +
                       outputs[j].first + " both name '" +
                       *outputs[i].second + "'",
                   "the later export overwrites the earlier; give each "
                   "artifact its own file");
      }
    }
    std::error_code ec;
    const std::filesystem::path path(*outputs[i].second);
    if (std::filesystem::is_directory(path, ec)) {
      sink.error("NP-F007", loc,
                 std::string(outputs[i].first) + "='" + path.string() +
                     "' is a directory, not a writable file path");
      continue;
    }
    std::filesystem::path dir = path.parent_path();
    if (dir.empty()) dir = ".";
    if (!std::filesystem::is_directory(dir, ec)) {
      sink.error("NP-F007", loc,
                 std::string(outputs[i].first) + "='" + path.string() +
                     "': parent directory '" + dir.string() +
                     "' does not exist",
                 "create the directory before the run");
    } else if (::access(dir.c_str(), W_OK) != 0) {
      sink.error("NP-F007", loc,
                 std::string(outputs[i].first) + "='" + path.string() +
                     "': parent directory '" + dir.string() +
                     "' is not writable");
    }
  }
}

void require_fleet(const FleetLintConfig& config) {
  DiagnosticSink sink;
  lint_fleet_config(config, "<fleet>", sink);
  if (!sink.clean()) {
    throw InvalidArgument("fleet pre-flight checks failed:\n" +
                          sink.render_text());
  }
}

}  // namespace netpart::analysis

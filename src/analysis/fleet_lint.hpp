// Static checks over fleet deployment configs (DESIGN.md §12).
//
// A fleet config is a handful of integers, but the failure modes of a bad
// one are the quiet kind: a replication factor above the node count makes
// every ring walk silently short, a heartbeat period above the suspect
// threshold makes healthy peers flap Suspect forever, a dead threshold at
// or below the suspect threshold skips the Suspect state entirely.  The
// lint catches these before a fleet is ever started; apps/fleetd runs it
// as its pre-flight and npcheck exposes it via --fleet.
//
// Codes:
//   NP-F001  error    replication factor out of range (< 1 or > nodes)
//   NP-F002  error    node count < 1
//   NP-F003  error    vnodes < 1; warning when < 4 (per-node key share
//                     too coarse to balance) or > 4096 (ring bloat)
//   NP-F004  error    non-positive period/timeout, or peer thresholds
//                     out of order (dead_ms <= suspect_ms)
//   NP-F005  error    hot threshold < 1; warning when replication == 1 on
//                     a multi-node fleet (no replicas: every failover is
//                     cold, the hot-push machinery is dead weight)
//   NP-F006  warning  heartbeat period >= suspect threshold (healthy
//                     peers oscillate Alive/Suspect between beats)
//   NP-F007  error    observability output paths inconsistent: two of
//                     trace_out/metrics_out/health_out name the same file
//                     (the later write clobbers the earlier), a path's
//                     parent directory is missing or unwritable, or the
//                     path names an existing directory
#pragma once

#include <optional>
#include <string>

#include "analysis/diagnostics.hpp"

namespace netpart::analysis {

/// The lint's view of a fleet deployment (mirrors fleet::FleetOptions
/// plus the node count; plain numbers so analysis does not depend on the
/// fleet library).
struct FleetLintConfig {
  int nodes = 1;
  int replication = 2;
  int vnodes = 16;
  int hot_threshold = 3;
  double heartbeat_ms = 100.0;
  double gossip_ms = 50.0;
  double suspect_ms = 300.0;
  double dead_ms = 900.0;
  double forward_timeout_ms = 250.0;
  /// Observability artifact paths (empty = export disabled); NP-F007
  /// checks them before a run spends simulated hours to find out the
  /// output directory is missing.
  std::string trace_out;
  std::string metrics_out;
  std::string health_out;
};

/// Parse "key=value[,key=value...]" (keys: nodes, replication, vnodes,
/// hot_threshold, heartbeat_ms, gossip_ms, suspect_ms, dead_ms,
/// forward_timeout_ms, trace_out, metrics_out, health_out; unset keys
/// keep defaults).  Throws ConfigError on unknown keys or malformed
/// numbers.
FleetLintConfig parse_fleet_config(const std::string& spec);

/// Lint `config` into `sink`; `file` labels diagnostic locations.
void lint_fleet_config(const FleetLintConfig& config,
                       const std::string& file, DiagnosticSink& sink);

/// Throws InvalidArgument carrying the rendered diagnostics when the lint
/// finds errors (warnings pass).  The fleetd pre-flight.
void require_fleet(const FleetLintConfig& config);

}  // namespace netpart::analysis

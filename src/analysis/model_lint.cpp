#include "analysis/model_lint.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace netpart::analysis {

namespace {

/// Sample points for b: the fits are linear in b, but the derivative in p
/// and the sign sweep both want interior points, not just the corners.
std::vector<double> byte_grid(double max_bytes) {
  return {0.0, 256.0, 1024.0, 4096.0, 16384.0, max_bytes};
}

std::string fit_label(const Network& net, ClusterId c, Topology t) {
  return "T_comm[" + net.cluster(c).name() + ", " +
         netpart::to_string(t) + "]";
}

bool all_finite(const Eq1Fit& fit) {
  return std::isfinite(fit.c1) && std::isfinite(fit.c2) &&
         std::isfinite(fit.c3) && std::isfinite(fit.c4) &&
         std::isfinite(fit.r2);
}

void lint_comm_fit(const Eq1Fit& fit, const Network& net, ClusterId c,
                   Topology t, const std::string& file,
                   DiagnosticSink& sink, const ModelLintOptions& options) {
  const SourceLoc loc{file, 0, 0};
  const std::string label = fit_label(net, c, t);

  if (!all_finite(fit)) {
    sink.error("NP-M001", loc,
               label + " has a non-finite coefficient (c1=" +
                   std::to_string(fit.c1) + " c2=" + std::to_string(fit.c2) +
                   " c3=" + std::to_string(fit.c3) + " c4=" +
                   std::to_string(fit.c4) + ")",
               "re-run calibration; a NaN/Inf fit poisons every T_comm "
               "comparison");
    return;  // the sweeps below would only add noise
  }

  const int max_p = net.cluster(c).size();

  // Sign sweep (NP-M002): the paper observed small negative dips at
  // P2 = 2 and evaluates |T_comm|; a fit negative at the far corner is a
  // different animal -- the model is wrong where the search trusts it most.
  const double corner =
      fit.evaluate(options.max_bytes, static_cast<double>(max_p));
  if (corner < 0.0) {
    sink.error("NP-M002", loc,
               label + " is negative (" + std::to_string(corner) +
                   " ms) at the domain corner b=" +
                   std::to_string(static_cast<long>(options.max_bytes)) +
                   ", p=" + std::to_string(max_p),
               "the fitted Eq. 1 does not describe the calibrated domain; "
               "re-benchmark with more samples");
  } else {
    bool dips = false;
    for (double b : byte_grid(options.max_bytes)) {
      for (int p = 1; p <= max_p && !dips; ++p) {
        dips = fit.evaluate(b, static_cast<double>(p)) < 0.0;
      }
    }
    if (dips) {
      sink.warning("NP-M002", loc,
                   label + " dips negative inside the calibrated domain",
                   "evaluation applies the paper's |T_comm| fix-up; "
                   "verify the dip is the small-p artifact the paper "
                   "describes");
    }
  }

  // Monotonicity in b (NP-M003): d/db = c3 + c4 p.
  int decreasing_in_b = 0;
  for (int p = 1; p <= max_p; ++p) {
    if (fit.c3 + fit.c4 * p < 0.0) ++decreasing_in_b;
  }
  if (decreasing_in_b == max_p && max_p > 0) {
    sink.error("NP-M003", loc,
               label + " decreases as messages grow for every p in "
               "[1, " + std::to_string(max_p) + "]",
               "sending more bytes can never be cheaper; the fit is "
               "inverted");
  } else if (decreasing_in_b > 0) {
    sink.warning("NP-M003", loc,
                 label + " decreases in b for " +
                     std::to_string(decreasing_in_b) + " of " +
                     std::to_string(max_p) + " processor counts");
  }

  // Monotonicity in p (NP-M004): d/dp = c2 + c4 b.  More stations on a
  // shared channel cannot speed the cycle up.
  bool decreasing_in_p = false;
  for (double b : byte_grid(options.max_bytes)) {
    decreasing_in_p = decreasing_in_p || fit.c2 + fit.c4 * b < 0.0;
  }
  if (decreasing_in_p) {
    sink.warning("NP-M004", loc,
                 label + " decreases as processors are added for some "
                 "message sizes",
                 "Eq. 1 models contention growing with p; a negative "
                 "per-processor slope usually means too few calibration "
                 "samples");
  }

  // Fit quality (NP-M005).
  if (fit.r2 < options.r2_warn) {
    sink.warning("NP-M005", loc,
                 label + " has suspicious fit residuals (r^2 = " +
                     std::to_string(fit.r2) + ")",
                 "the linear Eq. 1 shape may not describe this cluster; "
                 "collect more calibration samples");
  }
}

void lint_line_fit(const LineFit& fit, const std::string& what,
                   const std::string& file, DiagnosticSink& sink) {
  const SourceLoc loc{file, 0, 0};
  if (!std::isfinite(fit.slope) || !std::isfinite(fit.intercept)) {
    sink.error("NP-M001", loc,
               what + " has a non-finite coefficient (slope=" +
                   std::to_string(fit.slope) + " intercept=" +
                   std::to_string(fit.intercept) + ")");
    return;
  }
  if (fit.slope < 0.0) {
    sink.error("NP-M007", loc,
               what + " has a negative per-byte slope (" +
                   std::to_string(fit.slope) + " ms/byte)",
               "forwarding more bytes cannot take less time; re-run the "
               "router benchmark");
  }
}

}  // namespace

void lint_cost_model(const CostModelDb& db, const Network& net,
                     const std::string& file, DiagnosticSink& sink,
                     const ModelLintOptions& options) {
  const SourceLoc loc{file, 0, 0};

  if (db.num_clusters() != net.num_clusters()) {
    sink.error("NP-M008", loc,
               "cost model was fitted for " +
                   std::to_string(db.num_clusters()) +
                   " cluster(s) but the network has " +
                   std::to_string(net.num_clusters()),
               "recalibrate against this network (or load the matching "
               "model file)");
    return;  // per-cluster sweeps below would index out of range
  }

  for (ClusterId c = 0; c < net.num_clusters(); ++c) {
    bool any_fit = false;
    for (Topology t : all_topologies()) {
      if (!db.has_comm(c, t)) continue;
      any_fit = true;
      lint_comm_fit(db.comm_fit(c, t), net, c, t, file, sink, options);
    }
    if (!any_fit) {
      sink.warning("NP-M006", loc,
                   "cluster '" + net.cluster(c).name() +
                       "' has no communication fit for any topology",
                   "the estimator will fall back to another cluster's "
                   "fit; calibrate this cluster for the topologies it "
                   "will run");
    }
  }

  for (ClusterId a = 0; a < net.num_clusters(); ++a) {
    for (ClusterId b = a + 1; b < net.num_clusters(); ++b) {
      const std::string pair = "[" + net.cluster(a).name() + " <-> " +
                               net.cluster(b).name() + "]";
      if (const auto fit = db.router_fit(a, b)) {
        lint_line_fit(*fit, "T_router" + pair, file, sink);
      } else if (net.cluster(a).segment() != net.cluster(b).segment()) {
        sink.note("NP-M007", loc,
                  "no router fit for cluster pair " + pair +
                      "; cross-segment traffic will be costed at zero");
      }
      if (const auto fit = db.coerce_fit(a, b)) {
        lint_line_fit(*fit, "T_coerce" + pair, file, sink);
      }
    }
  }
}

}  // namespace netpart::analysis

// Static checks over fitted cost models (Eq. 1 and the router/coercion
// lines).
//
// The partitioner never measures the network at runtime; it trusts the
// offline fits.  A NaN coefficient, a fit that goes negative where the
// search evaluates it, or a cost that *decreases* as messages grow will
// silently steer every T_comm comparison (Eqs. 1, 2, 5).  These checks
// sweep each fit over its calibrated domain -- b in [0, 64 KiB], p in
// [1, P_i] per cluster -- and flag the pathologies.
//
// Codes:
//   NP-M001  error    non-finite coefficient (NaN/Inf) in a fit
//   NP-M002  warning  T_comm dips negative inside the domain (the paper
//                     tolerates small-p dips via |.|); error when negative
//                     at the domain's far corner (b = 64 KiB, p = P_i)
//   NP-M003  warning  non-monotone in b: d(T_comm)/db < 0 for some p
//                     (error when negative for every p in the domain)
//   NP-M004  warning  non-monotone in p: d(T_comm)/dp < 0 for some b
//   NP-M005  warning  suspicious fit residual (r^2 below 0.9)
//   NP-M006  warning  cluster has no communication fit for any topology
//   NP-M007  error    router/coercion fit with negative slope; note when a
//                     cluster pair lacks a router fit entirely
//   NP-M008  error    model shape mismatch (fitted for K clusters, network
//                     has K')
#pragma once

#include <string>

#include "analysis/diagnostics.hpp"
#include "calib/cost_model.hpp"
#include "net/network.hpp"

namespace netpart::analysis {

/// Domain the fits are swept over.
struct ModelLintOptions {
  double max_bytes = 65536.0;  ///< calibrated upper bound on b
  double r2_warn = 0.9;        ///< NP-M005 threshold
};

/// Lint `db` against the network it claims to model.  `file` labels
/// diagnostic locations (a model path or "<cost-model>").
void lint_cost_model(const CostModelDb& db, const Network& net,
                     const std::string& file, DiagnosticSink& sink,
                     const ModelLintOptions& options = {});

}  // namespace netpart::analysis

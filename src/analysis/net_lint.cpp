#include "analysis/net_lint.hpp"

#include <cmath>
#include <map>
#include <string>
#include <vector>

namespace netpart::analysis {

namespace {

constexpr double kMinSaneBps = 1e5;   // 100 kbit/s
constexpr double kMaxSaneBps = 1e12;  // 1 Tbit/s

std::string cluster_label(const Cluster& c) {
  return "cluster " + std::to_string(c.id()) + " '" + c.name() + "'";
}

}  // namespace

void lint_network_parts(const std::vector<Cluster>& clusters,
                        const std::vector<Segment>& segments,
                        const std::vector<RouterLink>& routers,
                        const std::string& file, DiagnosticSink& sink) {
  const SourceLoc loc{file, 0, 0};
  const auto num_segments = static_cast<SegmentId>(segments.size());

  if (clusters.empty()) {
    sink.error("NP-N005", loc, "network has no clusters",
               "there is nothing to partition over");
  }

  // --- NP-N003: dense ids, unique names --------------------------------
  std::map<std::string, int> names;
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    const Cluster& c = clusters[i];
    if (c.id() != static_cast<ClusterId>(i)) {
      sink.error("NP-N003", loc,
                 cluster_label(c) + " stored at position " +
                     std::to_string(i) + "; cluster ids must be dense "
                     "and ordered",
                 "partition vectors and placements index clusters by id");
    }
    if (++names[c.name()] == 2) {
      sink.error("NP-N003", loc,
                 "duplicate cluster name '" + c.name() + "'",
                 "cluster_by_name() and the calibration report resolve "
                 "clusters by name; rename one");
    }
  }
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].id != static_cast<SegmentId>(i)) {
      sink.error("NP-N003", loc,
                 "segment " + std::to_string(segments[i].id) +
                     " stored at position " + std::to_string(i) +
                     "; segment ids must be dense and ordered");
    }
  }

  // --- NP-N002: bandwidth sanity ---------------------------------------
  for (const Segment& s : segments) {
    if (!std::isfinite(s.bandwidth_bps) || s.bandwidth_bps <= 0.0) {
      sink.error("NP-N002", loc,
                 "segment " + std::to_string(s.id) + " has bandwidth " +
                     std::to_string(s.bandwidth_bps) + " bit/s",
                 "a channel that moves no data cannot carry a "
                 "communication phase");
    } else if (s.bandwidth_bps < kMinSaneBps ||
               s.bandwidth_bps > kMaxSaneBps) {
      sink.warning("NP-N002", loc,
                   "segment " + std::to_string(s.id) +
                       " has implausible bandwidth " +
                       std::to_string(s.bandwidth_bps) + " bit/s",
                   "check the units: the builder takes bits per second");
    }
    if (s.frame_overhead < SimTime::zero()) {
      sink.error("NP-N002", loc,
                 "segment " + std::to_string(s.id) +
                     " has negative frame overhead");
    }
  }

  // --- NP-N005 / NP-N006: cluster sanity and segment references --------
  std::vector<int> clusters_on_segment(segments.size(), 0);
  for (const Cluster& c : clusters) {
    if (c.size() <= 0) {
      sink.error("NP-N005", loc, cluster_label(c) + " has no processors");
    }
    if (c.type().flop_time <= SimTime::zero() ||
        c.type().int_time < SimTime::zero()) {
      sink.error("NP-N005", loc,
                 cluster_label(c) + " has a non-positive instruction "
                 "rate",
                 "S_i (Eq. 4) is time per operation and must be positive");
    }
    if (c.segment() < 0 || c.segment() >= num_segments) {
      sink.error("NP-N006", loc,
                 cluster_label(c) + " references unknown segment " +
                     std::to_string(c.segment()));
    } else {
      ++clusters_on_segment[static_cast<std::size_t>(c.segment())];
    }
  }
  for (std::size_t s = 0; s < clusters_on_segment.size(); ++s) {
    if (clusters_on_segment[s] != 1) {
      sink.error("NP-N006", loc,
                 "segment " + std::to_string(s) + " hosts " +
                     std::to_string(clusters_on_segment[s]) +
                     " cluster(s); assumption 2 requires exactly one",
                 "give each cluster its own segment (the builder does "
                 "this automatically)");
    }
  }

  // --- NP-N004: router cost sanity; NP-N006: router references ---------
  for (const RouterLink& r : routers) {
    const std::string label = "router between segments " +
                              std::to_string(r.a) + " and " +
                              std::to_string(r.b);
    if (r.a < 0 || r.a >= num_segments || r.b < 0 || r.b >= num_segments ||
        r.a == r.b) {
      sink.error("NP-N006", loc,
                 label + " joins unknown or identical segments");
      continue;
    }
    if (r.delay_per_byte < SimTime::zero() ||
        r.delay_per_packet < SimTime::zero()) {
      sink.error("NP-N004", loc, label + " has a negative forwarding "
                 "delay");
    } else if (r.delay_per_byte > SimTime::millis(1) ||
               r.delay_per_packet > SimTime::seconds(1)) {
      sink.warning("NP-N004", loc,
                   label + " has an implausibly large forwarding delay",
                   "the paper's router costs are ~0.0006 ms/byte; check "
                   "the units");
    }
  }

  // --- NP-N001 / NP-N007: reachability over the router graph -----------
  if (!segments.empty()) {
    std::vector<char> reached(segments.size(), 0);
    std::vector<SegmentId> frontier{0};
    reached[0] = 1;
    while (!frontier.empty()) {
      const SegmentId s = frontier.back();
      frontier.pop_back();
      for (const RouterLink& r : routers) {
        if (r.a < 0 || r.a >= num_segments || r.b < 0 ||
            r.b >= num_segments) {
          continue;
        }
        const SegmentId other = r.a == s ? r.b : r.b == s ? r.a : -1;
        if (other >= 0 && !reached[static_cast<std::size_t>(other)]) {
          reached[static_cast<std::size_t>(other)] = 1;
          frontier.push_back(other);
        }
      }
    }
    for (std::size_t s = 0; s < segments.size(); ++s) {
      if (!reached[s]) {
        sink.error("NP-N001", loc,
                   "segment " + std::to_string(s) + " is unreachable "
                   "from segment 0 over the router graph",
                   "messages crossing segments travel exactly one router "
                   "hop; an unreachable segment cannot participate");
      }
    }
    // Assumption 3 wants every *pair* joined directly (one-hop model).
    for (SegmentId a = 0; a < num_segments; ++a) {
      for (SegmentId b = a + 1; b < num_segments; ++b) {
        bool joined = false;
        for (const RouterLink& r : routers) {
          joined = joined || (r.a == a && r.b == b) ||
                   (r.a == b && r.b == a);
        }
        if (!joined) {
          sink.warning("NP-N007", loc,
                       "segments " + std::to_string(a) + " and " +
                           std::to_string(b) + " have no direct router",
                       "the cost model has no T_router term for this "
                       "pair (assumption 3); traffic between them is "
                       "mis-costed");
        }
      }
    }
  }
}

void lint_network(const Network& net, const std::string& file,
                  DiagnosticSink& sink) {
  lint_network_parts(net.clusters(), net.segments(), net.routers(), file,
                     sink);
}

}  // namespace netpart::analysis

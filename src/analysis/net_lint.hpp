// Static checks over network descriptions (clusters, segments, routers).
//
// The Network constructor enforces the paper's three structural
// assumptions; the lint goes further and runs on the *raw parts* too, so a
// description the constructor would reject with a single exception can be
// reported as a full diagnostic set, and states the constructor cannot see
// (a misnamed cluster, an absurd bandwidth, a router graph that leaves a
// segment unreachable) are caught before a partition is ever computed.
//
// Codes:
//   NP-N001  error    router graph leaves segments unreachable from
//                     segment 0 (a message could never be delivered)
//   NP-N002  error    segment bandwidth is zero/negative; warning when
//                     absurd (below 100 kbit/s or above 1 Tbit/s)
//   NP-N003  error    duplicate cluster name or non-dense cluster/segment
//                     ids (placements address clusters by id and name)
//   NP-N004  warning  router cost sanity: negative or absurd forwarding
//                     delays (error when negative)
//   NP-N005  error    cluster with no processors or non-positive
//                     instruction rate
//   NP-N006  error    dangling reference: cluster on an unknown segment,
//                     router joining unknown/identical segments, or a
//                     segment hosting != 1 cluster (assumption 2)
//   NP-N007  warning  a segment pair lacks a router (assumption 3: the
//                     cost model has no T_router term for that pair)
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "net/network.hpp"

namespace netpart::analysis {

/// Lint raw network parts (need not satisfy the Network constructor's
/// assumptions).  `file` labels diagnostic locations.
void lint_network_parts(const std::vector<Cluster>& clusters,
                        const std::vector<Segment>& segments,
                        const std::vector<RouterLink>& routers,
                        const std::string& file, DiagnosticSink& sink);

/// Lint a constructed (hence structurally valid) network.
void lint_network(const Network& net, const std::string& file,
                  DiagnosticSink& sink);

}  // namespace netpart::analysis

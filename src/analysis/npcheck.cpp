#include "analysis/npcheck.hpp"

#include <ostream>

#include "analysis/fleet_lint.hpp"
#include "analysis/model_lint.hpp"
#include "analysis/net_lint.hpp"
#include "analysis/spec_lint.hpp"
#include "calib/model_io.hpp"
#include "net/presets.hpp"
#include "util/error.hpp"

namespace netpart::analysis {

namespace {

constexpr const char* kUsage =
    "usage: npcheck [options] [spec files...]\n"
    "  --format=FMT      report format: text (default) | json\n"
    "  --json            shorthand for --format=json\n"
    "  --network NAME    lint a preset: paper|fig1|coercion|metasystem\n"
    "  --model PATH      lint a saved cost model against --network\n"
    "  --fleet SPEC      lint a fleet config (key=value[,...]; keys:\n"
    "                    nodes, replication, vnodes, hot_threshold,\n"
    "                    heartbeat_ms, gossip_ms, suspect_ms, dead_ms,\n"
    "                    forward_timeout_ms)\n"
    "  --strict          treat warnings as errors\n";

Network preset_network(const std::string& name) {
  if (name == "paper") return presets::paper_testbed();
  if (name == "fig1") return presets::fig1_network();
  if (name == "coercion") return presets::coercion_testbed();
  if (name == "metasystem") return presets::metasystem();
  throw ConfigError("unknown network preset: " + name +
                    " (expected paper|fig1|coercion|metasystem)");
}

}  // namespace

NpcheckResult run_npcheck(const std::vector<std::string>& args,
                          std::ostream& out, std::ostream& err) {
  bool json = false;
  bool strict = false;
  std::string network;
  std::string model;
  std::string fleet;
  bool fleet_given = false;
  std::vector<std::string> specs;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto take_value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        err << "npcheck: " << flag << " needs a value\n" << kUsage;
        return nullptr;
      }
      return &args[++i];
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--format" || arg.rfind("--format=", 0) == 0) {
      std::string value;
      if (arg == "--format") {
        const std::string* v = take_value("--format");
        if (v == nullptr) return NpcheckResult{2, {}};
        value = *v;
      } else {
        value = arg.substr(std::string("--format=").size());
      }
      if (value == "json") {
        json = true;
      } else if (value == "text") {
        json = false;
      } else {
        err << "npcheck: unknown --format value '" << value
            << "' (expected text|json)\n"
            << kUsage;
        return NpcheckResult{2, {}};
      }
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--network") {
      const std::string* v = take_value("--network");
      if (v == nullptr) return NpcheckResult{2, {}};
      network = *v;
    } else if (arg == "--model") {
      const std::string* v = take_value("--model");
      if (v == nullptr) return NpcheckResult{2, {}};
      model = *v;
    } else if (arg == "--fleet") {
      const std::string* v = take_value("--fleet");
      if (v == nullptr) return NpcheckResult{2, {}};
      fleet = *v;
      fleet_given = true;
    } else if (arg == "--help" || arg == "-h") {
      out << kUsage;
      return NpcheckResult{0, {}};
    } else if (!arg.empty() && arg[0] == '-') {
      err << "npcheck: unknown option " << arg << "\n" << kUsage;
      return NpcheckResult{2, {}};
    } else {
      specs.push_back(arg);
    }
  }

  if (specs.empty() && network.empty() && model.empty() && !fleet_given) {
    err << "npcheck: nothing to check\n" << kUsage;
    return NpcheckResult{2, {}};
  }
  if (!model.empty() && network.empty()) {
    err << "npcheck: --model needs --network (the fit domain is the "
           "network's cluster sizes)\n"
        << kUsage;
    return NpcheckResult{2, {}};
  }

  NpcheckResult result;
  for (const std::string& spec : specs) {
    lint_spec_file(spec, result.sink);
  }
  if (fleet_given) {
    try {
      const FleetLintConfig config = parse_fleet_config(fleet);
      lint_fleet_config(config, "<fleet:" + fleet + ">", result.sink);
    } catch (const Error& e) {
      err << "npcheck: " << e.what() << '\n';
      return NpcheckResult{2, std::move(result.sink)};
    }
  }
  if (!network.empty()) {
    try {
      const Network net = preset_network(network);
      lint_network(net, "<network:" + network + ">", result.sink);
      if (!model.empty()) {
        try {
          const CostModelDb db = load_cost_model_file(model);
          lint_cost_model(db, net, model, result.sink);
        } catch (const Error& e) {
          result.sink.error("NP-M000", SourceLoc{model, 0, 0}, e.what(),
                            "the model file does not parse; see "
                            "calib/model_io.hpp for the format");
        }
      }
    } catch (const Error& e) {
      err << "npcheck: " << e.what() << '\n';
      return NpcheckResult{2, std::move(result.sink)};
    }
  }

  if (json) {
    out << result.sink.to_json().dump(2);
  } else {
    out << result.sink.render_text();
  }
  const bool failed =
      !result.sink.clean() || (strict && result.sink.warnings() > 0);
  result.exit_code = failed ? 1 : 0;
  return result;
}

}  // namespace netpart::analysis

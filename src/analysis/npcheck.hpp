// The npcheck driver: spec / cost-model / network lint behind one entry
// point.
//
// apps/npcheck is a thin main() around run_npcheck(); tests call the
// function directly to pin the exit-code contract and golden output
// without spawning processes.
//
//   npcheck [options] [spec files...]
//     --format=FMT      report format: text (default) | json; a bad value
//                       is a usage error (exit 2)
//     --json            shorthand for --format=json (kept for scripts)
//     --network NAME    lint a canned preset: paper|fig1|coercion|metasystem
//     --model PATH      lint a saved cost model against --network
//     --strict          treat warnings as errors
//
// Exit codes: 0 = clean (warnings allowed unless --strict), 1 = findings
// (an unreadable or unparseable spec is itself a finding, NP-S000), 2 =
// usage error.  At least one artifact (spec, --network, or --model) must
// be given.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"

namespace netpart::analysis {

struct NpcheckResult {
  int exit_code = 0;
  DiagnosticSink sink;
};

/// Run the checks the argument list names and write the report to `out`
/// (usage errors go to `err`).  Never throws on bad input -- bad input is
/// the product.
NpcheckResult run_npcheck(const std::vector<std::string>& args,
                          std::ostream& out, std::ostream& err);

}  // namespace netpart::analysis

#include "analysis/preflight.hpp"

#include "analysis/model_lint.hpp"
#include "analysis/net_lint.hpp"
#include "util/error.hpp"

namespace netpart::analysis {

DiagnosticSink preflight(const Network& net, const CostModelDb& db) {
  DiagnosticSink sink;
  lint_network(net, "<network>", sink);
  lint_cost_model(db, net, "<cost-model>", sink);
  return sink;
}

void require_preflight(const Network& net, const CostModelDb& db) {
  const DiagnosticSink sink = preflight(net, db);
  if (!sink.clean()) {
    throw InvalidArgument("pre-flight checks failed:\n" +
                          sink.render_text());
  }
}

}  // namespace netpart::analysis

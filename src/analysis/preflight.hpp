// Pre-flight gate: the checks a long-lived service runs before serving.
//
// The partition service answers queries from a network description and a
// fitted cost model that were produced offline; a bad pair would skew (or
// crash) every reply.  The gate runs the network and cost-model lints once
// at startup -- *never* per request, so it adds zero work to the cached
// hot path -- and refuses to start on error-severity findings.
#pragma once

#include <string>

#include "analysis/diagnostics.hpp"
#include "calib/cost_model.hpp"
#include "net/network.hpp"

namespace netpart::analysis {

/// Run network + cost-model lint into one sink.
DiagnosticSink preflight(const Network& net, const CostModelDb& db);

/// Throws InvalidArgument carrying the rendered diagnostics when the
/// pre-flight finds errors (warnings pass).
void require_preflight(const Network& net, const CostModelDb& db);

}  // namespace netpart::analysis

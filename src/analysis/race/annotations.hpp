// npracer annotation macros (see DESIGN.md §14).
//
// The service, fleet, and hot-path layers are exactly where a silent data
// race or a lock-order inversion corrupts partition decisions without
// failing a test.  TSan only observes the interleavings one run happens to
// schedule; these macros instead *declare* the concurrency structure --
// which state is shared, which lock guards it, where happens-before edges
// are created -- so the npracer detector can check every recorded run
// deterministically, including on the single-vCPU CI host where thread
// interleavings are nearly serial.
//
// Vocabulary (all statements; every macro is free to appear in hot paths):
//
//   NP_READ(addr, "name")            annotated read of shared state
//   NP_WRITE(addr, "name")           annotated write of shared state
//   NP_LOCK_SCOPE(addr, "name")      RAII: acquire now, release at scope end
//   NP_LOCK_ACQUIRE(addr, "name")    explicit acquire (non-scoped locks)
//   NP_LOCK_RELEASE(addr, "name")    explicit release
//   NP_ATOMIC_ACQUIRE(addr, "name")  acquire-load observing `addr`
//   NP_ATOMIC_RELEASE(addr, "name")  release-store publishing via `addr`
//   NP_ATOMIC_RMW(addr, "name")      read-modify-write (acq+rel combined)
//   NP_GUARDED_BY(addr, lock, "name")declare: `addr` is guarded by `lock`
//   NP_BENIGN_RACE(addr, "name", "why") declare: races on `addr` are
//                                    intentional (e.g. relaxed counters)
//   NP_THREAD_FORK(token, "name")    parent, before spawning worker(s)
//   NP_THREAD_START(token, "name")   child, first statement
//   NP_THREAD_END(token, "name")     child, last statement
//   NP_THREAD_JOIN(token, "name")    parent, after join()
//
// Cost discipline: the macros compile to NOTHING unless the build sets
// NETPART_RACE_RUNTIME (the `race` CMake preset; see tier1.sh --race).
// The shipped release/strict/bench builds therefore carry zero overhead --
// tests/race_macros_off_test.cpp proves the expansion is constexpr-empty
// and allocation-free.  Even in the race build, an unarmed recorder costs
// one relaxed atomic load per annotation.
#pragma once

#ifndef NETPART_RACE_RUNTIME
#define NETPART_RACE_RUNTIME 0
#endif

// A TU can force the compiled-out expansion (tests of the no-op contract
// define this before including; the library never does).
#if NETPART_RACE_RUNTIME && !defined(NETPART_RACE_FORCE_OFF)
#define NP_RACE_ACTIVE 1
#else
#define NP_RACE_ACTIVE 0
#endif

#if NP_RACE_ACTIVE

#include "analysis/race/recorder.hpp"

#define NP_RACE_DETAIL_CAT2_(a, b) a##b
#define NP_RACE_DETAIL_CAT_(a, b) NP_RACE_DETAIL_CAT2_(a, b)

#define NP_RACE_DETAIL_EVENT_(kind, addr, aux, name, detail)               \
  do {                                                                     \
    if (::netpart::analysis::race::RaceRecorder::armed()) {                \
      ::netpart::analysis::race::RaceRecorder::instance().on_event(        \
          ::netpart::analysis::race::EventKind::kind, (addr), (aux),       \
          (name), (detail), __FILE__, __LINE__);                           \
    }                                                                      \
  } while (0)

#define NP_READ(addr, name) \
  NP_RACE_DETAIL_EVENT_(kRead, addr, nullptr, name, nullptr)
#define NP_WRITE(addr, name) \
  NP_RACE_DETAIL_EVENT_(kWrite, addr, nullptr, name, nullptr)
#define NP_LOCK_ACQUIRE(addr, name) \
  NP_RACE_DETAIL_EVENT_(kLockAcquire, addr, nullptr, name, nullptr)
#define NP_LOCK_RELEASE(addr, name) \
  NP_RACE_DETAIL_EVENT_(kLockRelease, addr, nullptr, name, nullptr)
#define NP_ATOMIC_ACQUIRE(addr, name) \
  NP_RACE_DETAIL_EVENT_(kAtomicAcquire, addr, nullptr, name, nullptr)
#define NP_ATOMIC_RELEASE(addr, name) \
  NP_RACE_DETAIL_EVENT_(kAtomicRelease, addr, nullptr, name, nullptr)
#define NP_ATOMIC_RMW(addr, name) \
  NP_RACE_DETAIL_EVENT_(kAtomicRmw, addr, nullptr, name, nullptr)
#define NP_GUARDED_BY(addr, lock, name) \
  NP_RACE_DETAIL_EVENT_(kGuardedBy, addr, lock, name, nullptr)
#define NP_BENIGN_RACE(addr, name, reason) \
  NP_RACE_DETAIL_EVENT_(kBenignRace, addr, nullptr, name, reason)
#define NP_THREAD_FORK(token, name) \
  NP_RACE_DETAIL_EVENT_(kThreadFork, token, nullptr, name, nullptr)
#define NP_THREAD_START(token, name) \
  NP_RACE_DETAIL_EVENT_(kThreadStart, token, nullptr, name, nullptr)
#define NP_THREAD_END(token, name) \
  NP_RACE_DETAIL_EVENT_(kThreadEnd, token, nullptr, name, nullptr)
#define NP_THREAD_JOIN(token, name) \
  NP_RACE_DETAIL_EVENT_(kThreadJoin, token, nullptr, name, nullptr)

// RAII acquire/release around the statement's enclosing scope.  Place it
// immediately after the std::lock_guard/unique_lock it mirrors: this
// object destructs *before* the guard (reverse construction order), so the
// release event is emitted while the real mutex is still held and the
// recorded event order matches the real one.
#define NP_LOCK_SCOPE(addr, name)                         \
  ::netpart::analysis::race::LockScope NP_RACE_DETAIL_CAT_( \
      np_race_lock_scope_, __LINE__)((addr), (name), __FILE__, __LINE__)

#else  // !NP_RACE_ACTIVE

#define NP_READ(addr, name) static_cast<void>(0)
#define NP_WRITE(addr, name) static_cast<void>(0)
#define NP_LOCK_ACQUIRE(addr, name) static_cast<void>(0)
#define NP_LOCK_RELEASE(addr, name) static_cast<void>(0)
#define NP_LOCK_SCOPE(addr, name) static_cast<void>(0)
#define NP_ATOMIC_ACQUIRE(addr, name) static_cast<void>(0)
#define NP_ATOMIC_RELEASE(addr, name) static_cast<void>(0)
#define NP_ATOMIC_RMW(addr, name) static_cast<void>(0)
#define NP_GUARDED_BY(addr, lock, name) static_cast<void>(0)
#define NP_BENIGN_RACE(addr, name, reason) static_cast<void>(0)
#define NP_THREAD_FORK(token, name) static_cast<void>(0)
#define NP_THREAD_START(token, name) static_cast<void>(0)
#define NP_THREAD_END(token, name) static_cast<void>(0)
#define NP_THREAD_JOIN(token, name) static_cast<void>(0)

#endif  // NP_RACE_ACTIVE

#include "analysis/race/detector.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

namespace netpart::analysis::race {

namespace {

using VectorClock = std::vector<std::uint64_t>;

void join_into(VectorClock& into, const VectorClock& from) {
  if (into.size() < from.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i) {
    into[i] = std::max(into[i], from[i]);
  }
}

/// Strip the build-machine path prefix: diagnostics must read the same on
/// every host, so everything before the repo-relative `src/`, `tests/`, or
/// `bench/` component goes.
std::string trim_path(const char* file) {
  const std::string path = file == nullptr ? "" : file;
  for (const char* root : {"/src/", "/tests/", "/bench/"}) {
    if (const auto pos = path.rfind(root); pos != std::string::npos) {
      return path.substr(pos + 1);
    }
  }
  return path;
}

std::string site_of(const Event& event) {
  if (event.line <= 0) return std::string("<") + to_string(event.kind) + ">";
  return trim_path(event.file) + ":" + std::to_string(event.line);
}

std::string hex_id(std::uint64_t id) {
  if (id == 0) return "-";
  char buffer[20];
  std::snprintf(buffer, sizeof buffer, "0x%llx",
                static_cast<unsigned long long>(id));
  return buffer;
}

/// One prior access to a shared address, with everything a race report
/// needs to describe it.
struct Access {
  std::uint32_t thread = 0;
  std::uint64_t clock = 0;  ///< accessing thread's own component
  bool is_write = false;
  const char* name = "";
  std::string site;
  std::uint64_t seq = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

struct AddrState {
  bool has_write = false;
  Access last_write;
  /// Last read per thread since the last write (cleared on write).
  std::unordered_map<std::uint32_t, Access> reads;
  /// Guarded-by declaration (nullptr = undeclared).
  const void* guard = nullptr;
  const char* guard_name = "";
  /// Benign-race declaration.
  bool benign = false;
  const char* benign_reason = nullptr;
  std::string benign_site;
  bool benign_conflict_seen = false;
  const char* benign_name = "";
};

struct HeldLock {
  const void* addr = nullptr;
  const char* name = "";
  std::string site;  ///< where this thread acquired it
};

struct ThreadState {
  VectorClock clock;
  std::vector<HeldLock> held;
};

/// Lock-order graph edge example: `to` was acquired at `to_site` while
/// `from` was held (acquired at `from_site`) -- the first observation is
/// kept so reports are deterministic.
struct OrderEdge {
  std::string from_site;
  std::string to_site;
};

struct LockNode {
  const void* addr = nullptr;
  const char* name = "";
  std::map<std::size_t, OrderEdge> out;  ///< key: target node index
};

class Detector {
 public:
  Detector(DiagnosticSink& sink, const DetectorOptions& options)
      : sink_(sink), options_(options) {}

  void run(const std::vector<Event>& log) {
    for (const Event& event : log) process(event);
    report_lock_cycles();
    report_unused_benign();
  }

 private:
  // --- bookkeeping ------------------------------------------------------

  std::size_t thread_index(std::uint32_t thread) {
    const auto [it, inserted] =
        thread_index_.emplace(thread, threads_.size());
    if (inserted) threads_.emplace_back();
    return it->second;
  }

  ThreadState& state_of(std::uint32_t thread) {
    return threads_[thread_index(thread)];
  }

  std::uint64_t tick(const Event& event) {
    const std::size_t index = thread_index(event.thread);
    ThreadState& state = threads_[index];
    if (state.clock.size() <= index) state.clock.resize(index + 1, 0);
    return ++state.clock[index];
  }

  bool ordered_before(const Access& prior, const ThreadState& current) {
    const std::size_t index = thread_index(prior.thread);
    if (current.clock.size() <= index) return false;
    return prior.clock <= current.clock[index];
  }

  std::size_t lock_node(const void* addr, const char* name) {
    const auto [it, inserted] = lock_index_.emplace(addr, locks_.size());
    if (inserted) locks_.push_back(LockNode{addr, name, {}});
    return it->second;
  }

  bool report(Severity severity, const char* code, const std::string& site,
              std::string message, std::string hint,
              const std::string& fingerprint) {
    if (!fingerprints_.insert(fingerprint).second) return false;
    if (reported_ >= options_.max_reports) return false;
    ++reported_;
    SourceLoc loc;
    const auto colon = site.rfind(':');
    if (colon != std::string::npos && site.find('<') == std::string::npos) {
      loc.file = site.substr(0, colon);
      loc.line = std::atoi(site.c_str() + colon + 1);
      loc.column = 1;
    } else {
      loc.file = site;
    }
    sink_.report(Diagnostic{severity, code, std::move(loc),
                            std::move(message), std::move(hint)});
    return true;
  }

  // --- event processing -------------------------------------------------

  void process(const Event& event) {
    switch (event.kind) {
      case EventKind::kRead:
      case EventKind::kWrite:
        on_access(event);
        break;
      case EventKind::kLockAcquire:
        on_lock_acquire(event);
        break;
      case EventKind::kLockRelease:
        on_lock_release(event);
        break;
      case EventKind::kAtomicAcquire: {
        tick(event);
        join_into(state_of(event.thread).clock, sync_[event.addr]);
        break;
      }
      case EventKind::kAtomicRelease: {
        tick(event);
        join_into(sync_[event.addr], state_of(event.thread).clock);
        break;
      }
      case EventKind::kAtomicRmw: {
        tick(event);
        ThreadState& state = state_of(event.thread);
        join_into(state.clock, sync_[event.addr]);
        join_into(sync_[event.addr], state.clock);
        break;
      }
      case EventKind::kThreadFork: {
        tick(event);
        join_into(fork_[event.addr], state_of(event.thread).clock);
        break;
      }
      case EventKind::kThreadStart: {
        tick(event);
        join_into(state_of(event.thread).clock, fork_[event.addr]);
        break;
      }
      case EventKind::kThreadEnd: {
        tick(event);
        join_into(end_[event.addr], state_of(event.thread).clock);
        break;
      }
      case EventKind::kThreadJoin: {
        tick(event);
        join_into(state_of(event.thread).clock, end_[event.addr]);
        break;
      }
      case EventKind::kGuardedBy: {
        AddrState& addr = addrs_[event.addr];
        addr.guard = event.aux;
        addr.guard_name = event.name;
        break;
      }
      case EventKind::kBenignRace: {
        AddrState& addr = addrs_[event.addr];
        addr.benign = true;
        addr.benign_reason = event.detail;
        addr.benign_site = site_of(event);
        addr.benign_name = event.name;
        break;
      }
    }
  }

  void on_access(const Event& event) {
    const bool is_write = event.kind == EventKind::kWrite;
    const std::uint64_t clock = tick(event);
    ThreadState& state = state_of(event.thread);
    AddrState& addr = addrs_[event.addr];

    check_guard(event, addr, state);

    Access access;
    access.thread = event.thread;
    access.clock = clock;
    access.is_write = is_write;
    access.name = event.name;
    access.site = site_of(event);
    access.seq = event.seq;
    access.trace_id = event.trace_id;
    access.span_id = event.span_id;

    if (is_write) {
      if (addr.has_write) check_pair(addr, addr.last_write, access, state);
      // Thread-id order, not unordered_map order: report order (and thus
      // sink contents under the report cap) must be deterministic.
      std::vector<const Access*> reads;
      reads.reserve(addr.reads.size());
      for (const auto& [thread, read] : addr.reads) {
        if (thread != event.thread) reads.push_back(&read);
      }
      std::sort(reads.begin(), reads.end(),
                [](const Access* a, const Access* b) {
                  return a->thread < b->thread;
                });
      for (const Access* read : reads) {
        check_pair(addr, *read, access, state);
      }
      addr.last_write = access;
      addr.has_write = true;
      addr.reads.clear();
    } else {
      if (addr.has_write) check_pair(addr, addr.last_write, access, state);
      addr.reads[event.thread] = access;
    }
  }

  void check_guard(const Event& event, AddrState& addr,
                   const ThreadState& state) {
    if (addr.guard == nullptr) return;
    for (const HeldLock& held : state.held) {
      if (held.addr == addr.guard) return;
    }
    const std::string site = site_of(event);
    report(
        Severity::Error, "NP-R004", site,
        std::string("`") + event.name + "` is declared NP_GUARDED_BY(`" +
            addr.guard_name + "`) but is " +
            (event.kind == EventKind::kWrite ? "written" : "read") +
            " at " + site + " without it held",
        "take the declared lock around this access, or fix the "
        "NP_GUARDED_BY declaration if the guard changed",
        std::string("NP-R004|") + event.name + "|" + site);
  }

  void check_pair(AddrState& addr, const Access& prior,
                  const Access& current, const ThreadState& state) {
    if (prior.thread == current.thread) return;
    if (ordered_before(prior, state)) return;
    if (addr.benign) {
      addr.benign_conflict_seen = true;
      return;
    }
    const bool both_writes = prior.is_write && current.is_write;
    const char* code = both_writes ? "NP-R001" : "NP-R002";
    // Stable fingerprint: the unordered site pair.  Threads, sequence
    // numbers, and span ids vary between schedules; the *pair of source
    // sites* is what identifies the bug.
    std::string a = prior.site;
    std::string b = current.site;
    if (b < a) std::swap(a, b);
    report(
        Severity::Error, code, current.site,
        std::string(both_writes ? "write-write" : "read-write") +
            " data race on `" + current.name + "`: " +
            (current.is_write ? "write" : "read") + " at " + current.site +
            " is unordered against prior " +
            (prior.is_write ? "write" : "read") + " at " + prior.site +
            " (threads " + std::to_string(current.thread) + "/" +
            std::to_string(prior.thread) + ", seq " +
            std::to_string(current.seq) + "/" + std::to_string(prior.seq) +
            ", spans " + hex_id(current.span_id) + "/" +
            hex_id(prior.span_id) + ")",
        "order the two accesses (common lock, acquire/release pair, or "
        "fork/join edge), or declare NP_BENIGN_RACE with a justification",
        std::string(code) + "|" + current.name + "|" + a + "|" + b);
  }

  void on_lock_acquire(const Event& event) {
    tick(event);
    ThreadState& state = state_of(event.thread);
    const std::string site = site_of(event);
    for (const HeldLock& held : state.held) {
      if (held.addr == event.addr) {
        report(Severity::Error, "NP-R005", site,
               std::string("lock `") + event.name + "` re-acquired at " +
                   site + " while already held (acquired at " + held.site +
                   "); non-recursive locks self-deadlock here",
               "split the critical sections or pass the lock down instead "
               "of re-taking it",
               std::string("NP-R005|reacquire|") + event.name + "|" + site);
        return;
      }
    }
    // Happens-before: fold in the clock the last release published.
    if (const auto it = sync_.find(event.addr); it != sync_.end()) {
      join_into(state.clock, it->second);
    }
    // Lock-order graph: an edge from every lock already held.
    const std::size_t to = lock_node(event.addr, event.name);
    for (const HeldLock& held : state.held) {
      const std::size_t from = lock_node(held.addr, held.name);
      locks_[from].out.emplace(to, OrderEdge{held.site, site});
    }
    state.held.push_back(HeldLock{event.addr, event.name, site});
  }

  void on_lock_release(const Event& event) {
    tick(event);
    ThreadState& state = state_of(event.thread);
    const auto it = std::find_if(
        state.held.begin(), state.held.end(),
        [&](const HeldLock& held) { return held.addr == event.addr; });
    if (it == state.held.end()) {
      const std::string site = site_of(event);
      report(Severity::Error, "NP-R005", site,
             std::string("lock `") + event.name + "` released at " + site +
                 " but this thread does not hold it",
             "pair every NP_LOCK_RELEASE with an acquire on the same "
             "thread (or use NP_LOCK_SCOPE, which cannot unbalance)",
             std::string("NP-R005|release|") + event.name + "|" + site);
      return;
    }
    state.held.erase(it);
    // Publish this thread's clock for the next acquirer.
    sync_[event.addr] = state.clock;
  }

  // --- end-of-log reports ----------------------------------------------

  /// Tarjan SCC over the lock-order graph; any component with two or more
  /// locks contains a cycle (self-edges cannot occur: re-acquisition is
  /// reported as NP-R005 and not added to the graph).
  void report_lock_cycles() {
    const std::size_t n = locks_.size();
    std::vector<int> index(n, -1);
    std::vector<int> low(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<std::size_t> stack;
    std::vector<std::vector<std::size_t>> components;
    int next_index = 0;

    // Iterative Tarjan (explicit frame stack): the lock graph is tiny, but
    // recursion depth should never depend on input shape.
    struct Frame {
      std::size_t node;
      std::map<std::size_t, OrderEdge>::const_iterator edge;
    };
    for (std::size_t root = 0; root < n; ++root) {
      if (index[root] != -1) continue;
      std::vector<Frame> frames{{root, locks_[root].out.begin()}};
      index[root] = low[root] = next_index++;
      stack.push_back(root);
      on_stack[root] = true;
      while (!frames.empty()) {
        Frame& frame = frames.back();
        const std::size_t v = frame.node;
        if (frame.edge != locks_[v].out.end()) {
          const std::size_t w = frame.edge->first;
          ++frame.edge;
          if (index[w] == -1) {
            index[w] = low[w] = next_index++;
            stack.push_back(w);
            on_stack[w] = true;
            frames.push_back(Frame{w, locks_[w].out.begin()});
          } else if (on_stack[w]) {
            low[v] = std::min(low[v], index[w]);
          }
        } else {
          if (low[v] == index[v]) {
            std::vector<std::size_t> component;
            for (;;) {
              const std::size_t w = stack.back();
              stack.pop_back();
              on_stack[w] = false;
              component.push_back(w);
              if (w == v) break;
            }
            if (component.size() >= 2) {
              std::sort(component.begin(), component.end());
              components.push_back(std::move(component));
            }
          }
          frames.pop_back();
          if (!frames.empty()) {
            Frame& parent = frames.back();
            low[parent.node] = std::min(low[parent.node], low[v]);
          }
        }
      }
    }

    std::sort(components.begin(), components.end());
    for (const std::vector<std::size_t>& component : components) {
      std::string names;
      std::string edges;
      std::string fingerprint = "NP-R003";
      std::string loc_site;
      for (const std::size_t v : component) {
        if (!names.empty()) names += ", ";
        names += '`';
        names += locks_[v].name;
        names += '`';
        fingerprint += '|';
        fingerprint += locks_[v].name;
        for (const auto& [w, edge] : locks_[v].out) {
          if (!std::binary_search(component.begin(), component.end(), w)) {
            continue;
          }
          if (loc_site.empty()) loc_site = edge.to_site;
          edges += "; `";
          edges += locks_[w].name;
          edges += "` acquired at ";
          edges += edge.to_site;
          edges += " while holding `";
          edges += locks_[v].name;
          edges += "` (acquired at ";
          edges += edge.from_site;
          edges += ")";
        }
      }
      report(Severity::Error, "NP-R003", loc_site,
             "lock-order cycle between " + names +
                 " -- some interleaving of the recorded threads deadlocks" +
                 edges,
             "pick one global acquisition order for these locks and "
             "enforce it at every site listed",
             fingerprint);
    }
  }

  void report_unused_benign() {
    if (!options_.report_unused_benign) return;
    // addrs_ iterates in pointer order, which is not stable across runs;
    // collect and sort by declaration site for deterministic output.
    std::vector<const AddrState*> unused;
    for (const auto& [addr, state] : addrs_) {
      if (state.benign && !state.benign_conflict_seen) {
        unused.push_back(&state);
      }
    }
    std::sort(unused.begin(), unused.end(),
              [](const AddrState* a, const AddrState* b) {
                return std::tie(a->benign_site, a->benign_name) <
                       std::tie(b->benign_site, b->benign_name);
              });
    for (const AddrState* state : unused) {
      report(Severity::Note, "NP-R006", state->benign_site,
             std::string("NP_BENIGN_RACE on `") + state->benign_name +
                 "` (\"" +
                 (state->benign_reason == nullptr ? ""
                                                  : state->benign_reason) +
                 "\") never observed a concurrent conflict in this log",
             "if no schedule ever conflicts here, the annotation (and "
             "perhaps the sharing) may be stale",
             std::string("NP-R006|") + state->benign_name + "|" +
                 state->benign_site);
    }
  }

  DiagnosticSink& sink_;
  const DetectorOptions& options_;

  std::unordered_map<std::uint32_t, std::size_t> thread_index_;
  std::vector<ThreadState> threads_;
  std::unordered_map<const void*, VectorClock> sync_;  ///< locks + atomics
  std::unordered_map<const void*, VectorClock> fork_;
  std::unordered_map<const void*, VectorClock> end_;
  std::unordered_map<const void*, AddrState> addrs_;

  std::unordered_map<const void*, std::size_t> lock_index_;
  std::vector<LockNode> locks_;

  std::set<std::string> fingerprints_;
  std::size_t reported_ = 0;
};

}  // namespace

void analyze_into(const std::vector<Event>& log, DiagnosticSink& sink,
                  const DetectorOptions& options) {
  Detector(sink, options).run(log);
}

DiagnosticSink analyze(const std::vector<Event>& log,
                       const DetectorOptions& options) {
  DiagnosticSink sink;
  analyze_into(log, sink, options);
  return sink;
}

}  // namespace netpart::analysis::race

// npracer analysis pass: happens-before races + lock-order deadlocks
// (see DESIGN.md §14).
//
// Input: one RaceRecorder event log (a total order over every annotation
// event a run produced).  Output: stable NP-R diagnostics through the same
// analysis::Diagnostic machinery npcheck and the pre-flight gate use, so
// CI consumes one format.
//
// The happens-before half is a vector-clock detector in the
// DJIT+/FastTrack family: each thread carries a vector clock, advanced on
// every event; lock releases, atomic release-stores, thread forks and
// thread ends publish the releasing thread's clock into a per-object sync
// clock; lock acquires, atomic acquire-loads, thread starts and joins fold
// the matching sync clock back in.  Two accesses to the same address race
// when neither's clock is contained in the other's -- a property of the
// annotations, not of the particular interleaving the run scheduled, which
// is what lets a near-serial single-vCPU run still prove an ordering
// violation.
//
// The deadlock half builds a lock-order graph: an edge A->B for every
// acquisition of B while A is held (one example acquisition pair is kept
// per edge).  Any strongly connected component with a cycle is a
// lock-order inversion: some interleaving of the recorded threads can
// deadlock, even if this run did not.
//
// Codes (the table in DESIGN.md §14 is the contract; scripts/
// check_race_codes.sh cross-checks it):
//
//   NP-R001  error    write-write data race
//   NP-R002  error    read-write data race
//   NP-R003  error    lock-order cycle (potential deadlock)
//   NP-R004  error    guarded-by violation: access without the declared
//                     lock held
//   NP-R005  error    lock discipline: release without acquire, or
//                     re-acquire of a held non-recursive lock
//   NP-R006  note     benign-race annotation that never saw a concurrent
//                     conflict (candidate for deletion); off by default
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/race/recorder.hpp"

namespace netpart::analysis::race {

struct DetectorOptions {
  /// Cap on reported findings (dedup happens first; the cap bounds
  /// pathological logs, not normal ones).
  std::size_t max_reports = 64;
  /// Emit NP-R006 notes for benign-race declarations that never observed
  /// a concurrent conflict.  Off by default: a quiet run of an
  /// uncontended surface is not evidence the annotation is stale.
  bool report_unused_benign = false;
};

/// Analyze one recorded log into `sink`.  Deterministic: identical logs
/// produce byte-identical diagnostics.
void analyze_into(const std::vector<Event>& log, DiagnosticSink& sink,
                  const DetectorOptions& options = {});

/// Convenience wrapper returning a fresh sink.
DiagnosticSink analyze(const std::vector<Event>& log,
                       const DetectorOptions& options = {});

}  // namespace netpart::analysis::race

#include "analysis/race/harness.hpp"

#include <set>
#include <string>

namespace netpart::analysis::race {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Stable identity of a finding across schedules: code + location + the
/// message up to the volatile tail ("(threads ...)" carries thread ids,
/// sequence numbers, and span ids, which legitimately differ from
/// schedule to schedule).
std::string finding_key(const Diagnostic& diagnostic) {
  std::string message = diagnostic.message;
  if (const auto tail = message.rfind(" (threads ");
      tail != std::string::npos) {
    message.resize(tail);
  }
  return diagnostic.code + "|" + diagnostic.loc.file + ":" +
         std::to_string(diagnostic.loc.line) + "|" + message;
}

}  // namespace

ExploreResult explore(const std::function<void(std::uint64_t)>& scenario,
                      const ExploreOptions& options) {
  ExploreResult result;
  std::set<std::string> seen;
  RaceRecorder& recorder = RaceRecorder::instance();
  const int schedules = options.schedules < 1 ? 1 : options.schedules;
  for (int schedule = 0; schedule < schedules; ++schedule) {
    RecorderOptions recorder_options = options.recorder;
    // Schedule 0 records the natural interleaving; later schedules
    // perturb it with distinct non-zero seeds.
    recorder_options.yield_seed =
        schedule == 0
            ? 0
            : splitmix64(options.base_seed +
                         static_cast<std::uint64_t>(schedule));
    recorder.start(recorder_options);
    const std::uint64_t seed =
        splitmix64(options.base_seed ^
                   (static_cast<std::uint64_t>(schedule) << 32));
    try {
      scenario(seed);
    } catch (...) {
      recorder.stop();
      throw;
    }
    result.dropped += recorder.dropped();
    const std::vector<Event> log = recorder.stop();
    result.events += static_cast<std::uint64_t>(log.size());
    ++result.schedules;

    const DiagnosticSink schedule_sink = analyze(log, options.detector);
    for (const Diagnostic& diagnostic : schedule_sink.diagnostics()) {
      if (seen.insert(finding_key(diagnostic)).second) {
        result.sink.report(diagnostic);
      }
    }
  }
  return result;
}

}  // namespace netpart::analysis::race

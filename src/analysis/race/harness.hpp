// Deterministic interleaving exploration (see DESIGN.md §14).
//
// One run of a concurrent scenario observes one schedule; a race that
// needs a particular interleaving can hide forever on a near-serial
// single-vCPU host.  explore() runs the scenario under a sweep of seeded
// schedule perturbations -- the recorder yields the recording thread on a
// SplitMix64 pattern keyed by (seed, event sequence), the same seam PR 6's
// chaos_yield gives the work-stealing sweep -- and analyzes every recorded
// log, merging the findings.
//
// The scenario receives the schedule seed, so it can thread the same seed
// into its own chaos seams (ExhaustiveOptions.chaos_yield_seed, FaultPlan
// seeds) and vary *both* the OS interleaving and the workload shape.
//
// Findings are deduplicated across schedules by their stable identity
// (code + source sites): thread ids, sequence numbers, and span ids vary
// from schedule to schedule, but the site pair that races is the bug.
#pragma once

#include <cstdint>
#include <functional>

#include "analysis/diagnostics.hpp"
#include "analysis/race/detector.hpp"
#include "analysis/race/recorder.hpp"

namespace netpart::analysis::race {

struct ExploreOptions {
  /// Distinct perturbation seeds to sweep (schedule 0 runs unperturbed --
  /// the "natural" interleaving is always in the set).
  int schedules = 8;
  std::uint64_t base_seed = 1;
  RecorderOptions recorder;
  DetectorOptions detector;
};

struct ExploreResult {
  /// Union of findings across schedules, deduplicated; error-free means
  /// every explored schedule was proven quiet.
  DiagnosticSink sink;
  int schedules = 0;
  std::uint64_t events = 0;   ///< total events recorded across schedules
  std::uint64_t dropped = 0;  ///< events lost to the capacity bound
};

/// Run `scenario` once per schedule under the armed recorder and analyze
/// each log.  The scenario must create and join its threads inside the
/// call (leaked threads would bleed events into the next schedule).
ExploreResult explore(const std::function<void(std::uint64_t seed)>& scenario,
                      const ExploreOptions& options = {});

}  // namespace netpart::analysis::race

#include "analysis/race/recorder.hpp"

#include <thread>

namespace netpart::analysis::race {

namespace {

std::atomic<ContextProbe> g_context_probe{nullptr};
std::atomic<std::uint32_t> g_next_thread_id{0};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kRead:
      return "read";
    case EventKind::kWrite:
      return "write";
    case EventKind::kLockAcquire:
      return "lock-acquire";
    case EventKind::kLockRelease:
      return "lock-release";
    case EventKind::kAtomicAcquire:
      return "atomic-acquire";
    case EventKind::kAtomicRelease:
      return "atomic-release";
    case EventKind::kAtomicRmw:
      return "atomic-rmw";
    case EventKind::kGuardedBy:
      return "guarded-by";
    case EventKind::kBenignRace:
      return "benign-race";
    case EventKind::kThreadFork:
      return "thread-fork";
    case EventKind::kThreadStart:
      return "thread-start";
    case EventKind::kThreadEnd:
      return "thread-end";
    case EventKind::kThreadJoin:
      return "thread-join";
  }
  return "unknown";
}

void set_context_probe(ContextProbe probe) {
  g_context_probe.store(probe, std::memory_order_release);
}

std::uint32_t race_thread_id() {
  thread_local const std::uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

RaceRecorder& RaceRecorder::instance() {
  static RaceRecorder recorder;
  return recorder;
}

void RaceRecorder::start(RecorderOptions options) {
  std::lock_guard lock(mutex_);
  events_.clear();
  events_.reserve(options.capacity < 4096 ? options.capacity : 4096);
  options_ = options;
  if (options_.yield_period == 0) options_.yield_period = 1;
  dropped_ = 0;
  session_.fetch_add(1, std::memory_order_relaxed);
  armed_flag_.store(true, std::memory_order_release);
}

std::vector<Event> RaceRecorder::stop() {
  armed_flag_.store(false, std::memory_order_release);
  std::lock_guard lock(mutex_);
  std::vector<Event> log;
  log.swap(events_);
  return log;
}

std::vector<Event> RaceRecorder::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::size_t RaceRecorder::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::uint64_t RaceRecorder::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void RaceRecorder::on_event(EventKind kind, const void* addr,
                            const void* aux, const char* name,
                            const char* detail, const char* file, int line) {
  Event event;
  event.kind = kind;
  event.thread = race_thread_id();
  event.addr = addr;
  event.aux = aux;
  event.name = name == nullptr ? "" : name;
  event.detail = detail;
  event.file = file == nullptr ? "" : file;
  event.line = line;
  if (ContextProbe probe = g_context_probe.load(std::memory_order_acquire)) {
    probe(&event.trace_id, &event.span_id);
  }

  bool yield = false;
  {
    std::lock_guard lock(mutex_);
    // A stop() can land between the macro's armed() check and this lock;
    // the event is then recorded into the drained (empty) log and cleared
    // by the next start() -- harmless either way.
    if (events_.size() >= options_.capacity) {
      ++dropped_;
      return;
    }
    event.seq = static_cast<std::uint64_t>(events_.size());
    if (options_.yield_seed != 0) {
      const std::uint64_t h = splitmix64(options_.yield_seed ^ event.seq);
      yield = (h % options_.yield_period) == 0;
    }
    events_.push_back(event);
  }
  // Perturb *outside* the recorder lock so a yield stalls only this
  // thread's next step, not every recording thread.
  if (yield) std::this_thread::yield();
}

}  // namespace netpart::analysis::race

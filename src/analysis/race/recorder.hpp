// npracer event recorder (see DESIGN.md §14).
//
// The annotation macros in annotations.hpp compile down to calls into one
// process-wide RaceRecorder.  While armed, it appends every annotation
// event -- lock acquire/release, shared reads/writes, atomic
// acquire/release edges, thread fork/join, guarded-by and benign-race
// declarations -- to a single totally-ordered log (one short mutex per
// event; the global order doubles as the detector's observation order).
// Disarmed, every annotation is one relaxed atomic load.
//
// Schedule perturbation: a non-zero `yield_seed` makes the recorder yield
// the recording thread on a deterministic SplitMix64 pattern keyed by
// (seed, sequence number) -- the same seam PR 6's chaos_yield gives the
// work-stealing sweep, applied at every annotation point.  The harness
// (harness.hpp) sweeps seeds so one scenario is observed under many
// distinct interleavings, all replayable.
//
// Layering: this is a leaf library (np_race).  It depends on nothing but
// the standard library so that obs/, svc/, fleet/, mmps/, and core/ can
// all link it without cycles; obs registers a context probe at static-init
// time so events carry the active span's (trace_id, span_id) without this
// library linking obs.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace netpart::analysis::race {

enum class EventKind : std::uint8_t {
  kRead,
  kWrite,
  kLockAcquire,
  kLockRelease,
  kAtomicAcquire,
  kAtomicRelease,
  kAtomicRmw,
  kGuardedBy,
  kBenignRace,
  kThreadFork,
  kThreadStart,
  kThreadEnd,
  kThreadJoin,
};

const char* to_string(EventKind kind);

/// One annotation event.  `name`/`detail`/`file` are string literals from
/// the annotation site (static storage duration), so recording never
/// copies or allocates strings.
struct Event {
  EventKind kind = EventKind::kRead;
  std::uint32_t thread = 0;    ///< recorder-assigned dense thread id
  const void* addr = nullptr;  ///< shared object / lock / fork token
  const void* aux = nullptr;   ///< kGuardedBy: the guarding lock
  const char* name = "";       ///< annotation label, e.g. "svc.cache.lru"
  const char* detail = nullptr;  ///< kBenignRace: the justification
  const char* file = "";
  int line = 0;
  std::uint64_t seq = 0;       ///< position in the global order
  std::uint64_t trace_id = 0;  ///< active span context at event time
  std::uint64_t span_id = 0;
};

struct RecorderOptions {
  /// 0 = record without perturbing the schedule; otherwise yield on a
  /// deterministic pattern keyed by (seed, event sequence).
  std::uint64_t yield_seed = 0;
  /// Average one yield per this many events when yield_seed != 0.
  std::uint32_t yield_period = 4;
  /// Events kept; beyond this new events are dropped and counted.
  std::size_t capacity = 1u << 20;
};

/// Provider of the active obs span context (registered by np_obs at
/// static-init time; see obs/trace_context.cpp).
using ContextProbe = void (*)(std::uint64_t* trace_id, std::uint64_t* span_id);
void set_context_probe(ContextProbe probe);

class RaceRecorder {
 public:
  static RaceRecorder& instance();

  /// One relaxed load: the annotation macros' fast path.
  static bool armed() {
    return armed_flag_.load(std::memory_order_relaxed);
  }

  /// Arm and reset: clears the log, bumps the session id, applies
  /// `options`.  Nestable starts are not supported (one analysis at a
  /// time); re-starting while armed discards the previous log.
  void start(RecorderOptions options = {});

  /// Disarm and drain: returns the log and leaves the recorder empty.
  std::vector<Event> stop();

  /// Snapshot without disarming (event-ordering tests).
  std::vector<Event> events() const;
  std::size_t size() const;
  std::uint64_t dropped() const;

  /// Bumps on every start(); LockScope uses it to pair acquire/release
  /// across an arm/disarm boundary (a release whose acquire predates the
  /// current session is not emitted, so a mid-scope start() can never
  /// fabricate an unpaired release).
  std::uint64_t session() const {
    return session_.load(std::memory_order_relaxed);
  }

  /// Append one event (annotation macros; tests may call it directly to
  /// build synthetic logs through the same path).
  void on_event(EventKind kind, const void* addr, const void* aux,
                const char* name, const char* detail, const char* file,
                int line);

 private:
  RaceRecorder() = default;

  static inline std::atomic<bool> armed_flag_{false};

  mutable std::mutex mutex_;
  std::vector<Event> events_;
  RecorderOptions options_;
  std::uint64_t dropped_ = 0;
  std::atomic<std::uint64_t> session_{0};
};

/// Dense per-thread id, assigned on first use (independent of
/// obs::this_thread_id so np_race stays a leaf).
std::uint32_t race_thread_id();

/// RAII acquire/release pair for NP_LOCK_SCOPE.
class LockScope {
 public:
  LockScope(const void* addr, const char* name, const char* file, int line)
      : addr_(addr), name_(name), file_(file), line_(line) {
    if (RaceRecorder::armed()) {
      RaceRecorder& recorder = RaceRecorder::instance();
      session_ = recorder.session();
      armed_at_acquire_ = true;
      recorder.on_event(EventKind::kLockAcquire, addr_, nullptr, name_,
                        nullptr, file_, line_);
    }
  }

  ~LockScope() {
    if (armed_at_acquire_ && RaceRecorder::armed()) {
      RaceRecorder& recorder = RaceRecorder::instance();
      if (recorder.session() == session_) {
        recorder.on_event(EventKind::kLockRelease, addr_, nullptr, name_,
                          nullptr, file_, line_);
      }
    }
  }

  LockScope(const LockScope&) = delete;
  LockScope& operator=(const LockScope&) = delete;

 private:
  const void* addr_;
  const char* name_;
  const char* file_;
  int line_;
  std::uint64_t session_ = 0;
  bool armed_at_acquire_ = false;
};

}  // namespace netpart::analysis::race

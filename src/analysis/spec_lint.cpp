#include "analysis/spec_lint.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>

#include "topo/topology.hpp"
#include "util/error.hpp"

namespace netpart::analysis {

namespace {

SourceLoc at(const std::string& file, SpecLoc loc) {
  return SourceLoc{file, loc.line, loc.column};
}

/// %g-style number for messages: "300", "-100", "0.5" -- not "0.000000".
std::string fmt_num(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%g", value);
  return buffer;
}

/// Evaluate `expr` under `env`; nullopt when evaluation throws (an
/// undefined-variable diagnostic has already been emitted for that case).
std::optional<double> try_evaluate(const ExprPtr& expr, const ExprEnv& env) {
  try {
    return expr->evaluate(env);
  } catch (const Error&) {
    return std::nullopt;
  }
}

/// Report NP-S001 for every variable `expr` references that is neither a
/// declared param nor in `extra`, and record the ones it does use.
void check_variables(const ExprPtr& expr, const SpecTemplate& spec,
                     const std::set<std::string>& extra,
                     const std::string& file, SpecLoc loc,
                     const std::string& context, DiagnosticSink& sink,
                     std::set<std::string>& used) {
  if (expr == nullptr) return;
  for (const std::string& var : expr_variables(*expr)) {
    if (spec.params().count(var) > 0) {
      used.insert(var);
      continue;
    }
    if (extra.count(var) > 0) continue;
    const std::string hint =
        var == "A" ? "A (the PDU assignment) is only defined in comm-phase "
                     "bytes expressions"
                   : "declare it with `param " + var +
                         " <default>` or fix the spelling";
    sink.error("NP-S001", at(file, loc),
               context + " references undefined variable '" + var + "'",
               hint);
  }
}

}  // namespace

void lint_spec(const SpecTemplate& spec, const std::string& file,
               DiagnosticSink& sink) {
  const std::set<std::string> none;
  const std::set<std::string> with_a = {"A"};
  std::set<std::string> used;

  // --- NP-S007: params shadowing the built-in A ------------------------
  for (const auto& [name, value] : spec.params()) {
    (void)value;
    if (name == "A") {
      const auto it = spec.param_locs().find(name);
      const SpecLoc loc =
          it != spec.param_locs().end() ? it->second : SpecLoc{};
      sink.warning("NP-S007", at(file, loc),
                   "param 'A' shadows the built-in assignment variable",
                   "rename the param; bytes expressions read A as the "
                   "sender's PDU assignment (Section 4)");
    }
  }

  // --- NP-S001: undefined variables ------------------------------------
  check_variables(spec.iterations_expr(), spec, none, file,
                  spec.iterations_loc(), "iterations expression", sink,
                  used);
  for (const SpecTemplate::ComputePhase& p : spec.compute_phases()) {
    check_variables(p.pdus, spec, none, file, p.pdus_loc,
                    "compute phase '" + p.name + "' pdus expression", sink,
                    used);
    check_variables(p.ops, spec, none, file, p.ops_loc,
                    "compute phase '" + p.name + "' ops expression", sink,
                    used);
  }
  for (const SpecTemplate::CommPhase& p : spec.comm_phases()) {
    check_variables(p.bytes, spec, with_a, file, p.bytes_loc,
                    "comm phase '" + p.name + "' bytes expression", sink,
                    used);
  }

  // --- NP-S002: unused params ------------------------------------------
  for (const auto& [name, value] : spec.params()) {
    (void)value;
    if (used.count(name) > 0 || name == "A") continue;
    const auto it = spec.param_locs().find(name);
    const SpecLoc loc =
        it != spec.param_locs().end() ? it->second : SpecLoc{};
    sink.warning("NP-S002", at(file, loc),
                 "param '" + name + "' is declared but never referenced",
                 "remove the declaration or reference it from an "
                 "annotation expression");
  }

  // --- NP-S006: duplicate phase names ----------------------------------
  std::map<std::string, int> compute_seen;
  for (const SpecTemplate::ComputePhase& p : spec.compute_phases()) {
    if (++compute_seen[p.name] == 2) {
      sink.error("NP-S006", at(file, p.loc),
                 "duplicate compute phase '" + p.name + "'",
                 "overlap annotations resolve compute phases by name; "
                 "rename one of the duplicates");
    }
  }
  std::map<std::string, int> comm_seen;
  for (const SpecTemplate::CommPhase& p : spec.comm_phases()) {
    if (++comm_seen[p.name] == 2) {
      sink.warning("NP-S006", at(file, p.loc),
                   "duplicate comm phase '" + p.name + "'");
    }
  }

  // --- NP-S004 / NP-S009: the overlap edge of the phase graph ----------
  std::map<std::string, std::string> overlap_targets;  // target -> comm
  for (const SpecTemplate::CommPhase& p : spec.comm_phases()) {
    if (p.overlap_with.empty()) continue;
    if (compute_seen.count(p.overlap_with) == 0) {
      sink.error("NP-S004", at(file, p.overlap_loc),
                 "comm phase '" + p.name + "' overlaps unknown compute "
                 "phase '" + p.overlap_with + "'",
                 "overlap must name one of the spec's compute phases");
    } else if (const auto [it, inserted] =
                   overlap_targets.emplace(p.overlap_with, p.name);
               !inserted) {
      sink.warning("NP-S009", at(file, p.overlap_loc),
                   "compute phase '" + p.overlap_with + "' is overlapped "
                   "by both '" + it->second + "' and '" + p.name + "'",
                   "T_overlap models one overlapped communication per "
                   "computation phase (Eq. 6)");
    }
  }

  // --- value checks at the declared defaults ---------------------------
  ExprEnv env;
  for (const auto& [name, value] : spec.params()) env[name] = value;

  std::optional<double> pdus_default;
  if (const auto iters = try_evaluate(spec.iterations_expr(), env);
      iters && (!std::isfinite(*iters) || *iters < 1.0)) {
    sink.error("NP-S005", at(file, spec.iterations_loc()),
               "iterations evaluates to " + fmt_num(*iters) +
                   " at the declared defaults; must be at least 1");
  }
  for (const SpecTemplate::ComputePhase& p : spec.compute_phases()) {
    if (const auto pdus = try_evaluate(p.pdus, env)) {
      if (!std::isfinite(*pdus) || *pdus < 1.0) {
        sink.error("NP-S005", at(file, p.pdus_loc),
                   "compute phase '" + p.name + "' has " +
                       fmt_num(*pdus) +
                       " PDUs at the declared defaults; a decomposable "
                       "computation needs at least 1");
      } else if (!pdus_default) {
        pdus_default = *pdus;
      }
    }
    if (const auto ops = try_evaluate(p.ops, env);
        ops && (!std::isfinite(*ops) || *ops <= 0.0)) {
      sink.error("NP-S005", at(file, p.ops_loc),
                 "compute phase '" + p.name + "' has non-positive "
                 "computational complexity at the declared defaults");
    }
  }

  // NP-S003 / NP-S008: bytes evaluated at A = num_PDUs, the
  // single-processor upper bound dominant_communication() compares at.
  ExprEnv bytes_env = env;
  bytes_env["A"] = pdus_default.value_or(1.0);
  for (const SpecTemplate::CommPhase& p : spec.comm_phases()) {
    if (const auto bytes = try_evaluate(p.bytes, bytes_env);
        bytes && (!std::isfinite(*bytes) || *bytes <= 0.0)) {
      sink.error("NP-S003", at(file, p.bytes_loc),
                 "comm phase '" + p.name + "' (topology " +
                     netpart::to_string(p.topology) + ") sends " +
                     fmt_num(*bytes) +
                     " bytes per message at the declared defaults",
                 "a communication phase that sends nothing contradicts "
                 "its communication-complexity annotation; drop the phase "
                 "or fix the bytes expression");
    }
    if (is_bandwidth_limited(p.topology) && p.bytes != nullptr &&
        expr_variables(*p.bytes).count("A") > 0) {
      sink.warning("NP-S008", at(file, p.bytes_loc),
                   "comm phase '" + p.name + "' uses bandwidth-limited "
                   "topology " + netpart::to_string(p.topology) +
                       " but its bytes depend on the assignment A",
                   "a root-to-all pattern sends one message size; "
                   "A-dependent bytes suggest the wrong topology "
                   "annotation");
    }
  }
}

bool lint_spec_text(const std::string& text, const std::string& file,
                    DiagnosticSink& sink) {
  try {
    const SpecTemplate spec = parse_spec(text);
    lint_spec(spec, file, sink);
    return true;
  } catch (const SpecParseError& e) {
    sink.error("NP-S000", SourceLoc{file, e.loc().line, e.loc().column},
               e.what());
  } catch (const SpecStructureError& e) {
    sink.error("NP-S000", SourceLoc{file, e.loc().line, e.loc().column},
               e.what());
  } catch (const Error& e) {
    sink.error("NP-S000", SourceLoc{file, 0, 0}, e.what());
  }
  return false;
}

bool lint_spec_file(const std::string& path, DiagnosticSink& sink) {
  std::ifstream in(path);
  if (!in) {
    sink.error("NP-S000", SourceLoc{path, 0, 0},
               "cannot open spec file");
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_spec_text(buffer.str(), path, sink);
}

}  // namespace netpart::analysis

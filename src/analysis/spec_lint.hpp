// Static checks over annotation specs (the paper's Section 4 inputs).
//
// A spec compiles into the callbacks the partitioner trusts blindly:
// num_PDUs, computational complexity, communication complexity, topology,
// overlap.  These checks catch the inputs that would mislead it --
// undefined or unused variables, phases whose annotations contradict each
// other, overlap edges pointing at phases that do not exist -- and anchor
// every finding to the declaration's line:column.
//
// Codes (docs/annotations.md maps each to the paper annotation it guards):
//   NP-S000  error    spec does not parse
//   NP-S001  error    expression references an undefined variable
//   NP-S002  warning  param declared but never referenced
//   NP-S003  error    communication bytes non-positive / non-finite at
//                     defaults (topology vs. communication-complexity
//                     mismatch: the phase claims traffic but sends none)
//   NP-S004  error    overlap names a phase that is not a compute phase
//                     (phase-graph reachability)
//   NP-S005  error    num_PDUs / ops / iterations non-positive at defaults
//   NP-S006  error    duplicate compute-phase name (overlap resolution
//                     becomes ambiguous); warning for duplicate comm names
//   NP-S007  warning  param shadows the built-in assignment variable A
//   NP-S008  warning  bandwidth-limited topology (broadcast) with
//                     A-dependent bytes: per-assignment message sizes
//                     contradict a root-to-all pattern
//   NP-S009  warning  multiple comm phases overlap the same compute phase
#pragma once

#include <string>

#include "analysis/diagnostics.hpp"
#include "dp/spec_parser.hpp"

namespace netpart::analysis {

/// Lint a parsed template.  `file` labels diagnostic locations.
void lint_spec(const SpecTemplate& spec, const std::string& file,
               DiagnosticSink& sink);

/// Parse + lint spec text.  Parse failures become NP-S000 diagnostics
/// (never exceptions).  Returns false when the text did not parse.
bool lint_spec_text(const std::string& text, const std::string& file,
                    DiagnosticSink& sink);

/// Parse + lint a spec file.  Unreadable files report NP-S000.
bool lint_spec_file(const std::string& path, DiagnosticSink& sink);

}  // namespace netpart::analysis

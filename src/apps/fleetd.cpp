// fleetd: a multi-node netpartd fleet in one process (DESIGN.md §12).
//
// Spins up N fleet nodes over the simulated network -- each with its own
// decision cache, peer table, and hash ring -- and drives a zipf-skewed
// partition-request workload through them, with every cross-node
// interaction (forwards, heartbeats, epoch gossip, hot-entry replication)
// carried as real MMPS messages.  The run then demonstrates the two fleet
// failure paths end to end:
//
//   1. an availability epoch bump entering at node 0 and gossiping
//      ring-wise until every node has invalidated its cache, and
//   2. (with crash=ID) a node crash mid-epoch: the fault-tolerant
//      availability token ring detects the dead manager, its report feeds
//      every peer table, and the post-crash workload fails over to
//      replicas that the hot-entry pushes have already warmed.
//
// Keys:
//   nodes       = fleet size                          (default 4)
//   procs       = processors per node cluster         (default 2)
//   replication = copies per entry (owner + R-1)      (default 2)
//   vnodes      = virtual nodes per node on the ring  (default 16)
//   hot         = owner hits before replication       (default 3)
//   requests    = requests per workload phase         (default 400)
//   universe    = distinct request shapes             (default 32)
//   zipf        = skew exponent                       (default 1.1)
//   seed        = workload seed                       (default 1)
//   crash       = node to crash mid-epoch, -1 = none  (default -1)
//   --check     = run the fleet config lint and exit
//
// Observability (also accepted as --trace-out FILE / --metrics-out FILE /
// --health-out FILE; all pre-flighted by NP-F007):
//   trace_out   = merged multi-lane Chrome trace (one pid per node);
//                 setting it turns fleet span tracing on
//   metrics_out = merged name-ordered metrics text ({node=N} dimension
//                 on per-node rows, fleet.request.* per-hop histograms)
//   health_out  = per-node health/SLO summary (p50/p99 latency, forward
//                 ratio, warm fraction, dead peers)
//
// Example:
//   fleetd nodes=4 replication=2 crash=3 --trace-out fleet_trace.json
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/fleet_lint.hpp"
#include "fleet/driver.hpp"
#include "fleet/fleet.hpp"
#include "fleet/fleet_telemetry.hpp"
#include "mmps/manager_protocol.hpp"
#include "net/availability.hpp"
#include "obs/chrome_trace.hpp"
#include "util/config.hpp"

namespace netpart {
namespace {

int run(const Config& args) {
  const int nodes = static_cast<int>(args.get_int_or("nodes", 4));
  const int procs = static_cast<int>(args.get_int_or("procs", 2));
  fleet::FleetOptions options;
  options.replication = static_cast<int>(args.get_int_or("replication", 2));
  options.node.vnodes = static_cast<int>(args.get_int_or("vnodes", 16));
  options.node.hot_threshold = static_cast<int>(args.get_int_or("hot", 3));
  const int requests = static_cast<int>(args.get_int_or("requests", 400));
  const int universe = static_cast<int>(args.get_int_or("universe", 32));
  const double zipf = args.get_double_or("zipf", 1.1);
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  const int crash = static_cast<int>(args.get_int_or("crash", -1));
  const auto trace_out = args.get("trace_out");
  const auto metrics_out = args.get("metrics_out");
  const auto health_out = args.get("health_out");
  // Asking for a trace is the opt-in for span recording; metrics and
  // health come from counters/histograms, which are always on.
  options.tracing = trace_out.has_value();
  options.trace_seed = seed;

  // Pre-flight: the same lint `npcheck --fleet` runs; refuses to start on
  // error-severity findings (NP-F001 bad replication factor, NP-F007
  // unwritable/clashing observability paths, ...).
  analysis::FleetLintConfig lint;
  lint.nodes = nodes;
  lint.replication = options.replication;
  lint.vnodes = options.node.vnodes;
  lint.hot_threshold = options.node.hot_threshold;
  lint.heartbeat_ms = options.heartbeat_period.as_millis();
  lint.gossip_ms = options.gossip_period.as_millis();
  lint.suspect_ms = options.peer.suspect_after.as_millis();
  lint.dead_ms = options.peer.dead_after.as_millis();
  lint.forward_timeout_ms = options.forward_timeout.as_millis();
  lint.trace_out = trace_out.value_or("");
  lint.metrics_out = metrics_out.value_or("");
  lint.health_out = health_out.value_or("");
  analysis::require_fleet(lint);
  if (args.get_bool_or("check", false)) {
    std::printf("fleet config ok: %d nodes, replication %d, %d vnodes\n",
                nodes, options.replication, options.node.vnodes);
    return 0;
  }
  NP_REQUIRE(crash < nodes, "crash id out of range");
  NP_REQUIRE(crash != 0, "node 0 initiates the availability protocol and "
                         "must stay alive");

  const Network net = fleet::make_fleet_network(nodes, procs);
  sim::Engine engine;
  sim::NetSim sim(engine, net, sim::NetSimParams{}, Rng(seed));
  fleet::Fleet fl(sim, options, fleet::synthetic_cold_path(net));
  fl.start();

  fleet::WorkloadOptions workload;
  workload.requests = requests;
  workload.distinct_keys = universe;
  workload.zipf_s = zipf;
  workload.seed = seed;

  std::printf("fleetd: %d nodes x %d procs, replication %d, %d vnodes, "
              "%d requests/phase over %d shapes (zipf %.2f)\n\n",
              nodes, procs, options.replication, options.node.vnodes,
              requests, universe, zipf);

  // --- phase 1: steady state -------------------------------------------
  const fleet::WorkloadResult steady = fleet::run_workload(fl, workload);
  const fleet::FleetStats& s = fl.stats();
  std::printf("steady   : ok %llu/%llu  rps %.0f  hit-replies %.1f%%  "
              "forwards %llu  local %llu  replica-serves %llu\n",
              static_cast<unsigned long long>(steady.ok),
              static_cast<unsigned long long>(steady.submitted), steady.rps,
              100.0 * static_cast<double>(steady.hit_replies) /
                  static_cast<double>(steady.submitted),
              static_cast<unsigned long long>(s.forwards),
              static_cast<unsigned long long>(s.local_serves),
              static_cast<unsigned long long>(s.replica_serves));

  // --- phase 2: epoch bump gossips to every node ------------------------
  const std::uint64_t epoch = fl.node(0).epoch() + 1;
  const std::uint64_t rounds_before = s.gossip_rounds;
  fl.announce_epoch(0, epoch);
  const auto converged = [&] {
    for (fleet::NodeId id : fl.node_ids()) {
      if (fl.node_alive(id) && fl.node(id).epoch() != epoch) return false;
    }
    return true;
  };
  while (!converged() &&
         s.gossip_rounds - rounds_before <=
             2 * static_cast<std::uint64_t>(nodes) + 2 &&
         engine.step()) {
  }
  std::printf("epoch    : %llu reached all nodes in %llu gossip rounds "
              "(bound 2N = %d)\n",
              static_cast<unsigned long long>(epoch),
              static_cast<unsigned long long>(s.gossip_rounds -
                                              rounds_before),
              2 * nodes);

  // --- phase 3: optional mid-epoch crash + warm failover ----------------
  if (crash >= 0) {
    // Re-warm the hot head under the new epoch so the crash has warm
    // state to lose.
    (void)fleet::run_workload(fl, workload);
    sim.host(ProcessorRef{crash, 0}).crash();
    const double warm = fl.warm_fraction_for(crash);

    // The PR 1 fault-tolerant token ring detects the dead manager; its
    // report feeds every surviving peer table.
    const std::vector<ClusterManager> managers = make_managers(net, {});
    const mmps::ProtocolResult avail =
        mmps::run_fault_tolerant_protocol(sim, managers);
    fl.report_dead_peers(avail.dead);

    const std::uint64_t failovers_before = s.failovers;
    const fleet::WorkloadResult after = fleet::run_workload(fl, workload);
    std::printf("crash    : node %d down; token ring reported %zu dead, "
                "warm replicas held %.0f%% of its hot entries\n",
                crash, avail.dead.size(), 100.0 * warm);
    std::printf("failover : ok %llu/%llu  rps %.0f  failovers %llu  "
                "max chain %d\n",
                static_cast<unsigned long long>(after.ok),
                static_cast<unsigned long long>(after.submitted), after.rps,
                static_cast<unsigned long long>(s.failovers -
                                                failovers_before),
                after.max_failovers);
  }

  std::printf("\ngossip   : %llu rounds, %llu messages, %llu adoptions; "
              "heartbeats %llu; replication pushes %llu, inserts %llu\n",
              static_cast<unsigned long long>(s.gossip_rounds),
              static_cast<unsigned long long>(s.gossip_messages),
              static_cast<unsigned long long>(s.epoch_adoptions),
              static_cast<unsigned long long>(s.heartbeats),
              static_cast<unsigned long long>(s.replications_pushed),
              static_cast<unsigned long long>(s.replica_inserts));
  fl.stop();

  // --- merged observability artifacts ----------------------------------
  fleet::FleetTelemetry telemetry(fl);
  if (trace_out) {
    std::ofstream out(*trace_out);
    NP_REQUIRE(out.good(), "cannot open trace_out path");
    obs::write_chrome_trace(out, telemetry.lanes());
    std::size_t spans = 0;
    for (fleet::NodeId id : fl.node_ids()) {
      spans += fl.node(id).telemetry().span_count();
    }
    std::printf("trace -> %s (%zu spans across %d node lanes)\n",
                trace_out->c_str(), spans, fl.num_nodes());
  }
  if (metrics_out) {
    std::ofstream out(*metrics_out);
    NP_REQUIRE(out.good(), "cannot open metrics_out path");
    out << telemetry.merged_metrics_text();
    std::printf("metrics -> %s\n", metrics_out->c_str());
  }
  if (health_out) {
    std::ofstream out(*health_out);
    NP_REQUIRE(out.good(), "cannot open health_out path");
    out << telemetry.health_text();
    std::printf("health -> %s\n", health_out->c_str());
  }
  return 0;
}

}  // namespace
}  // namespace netpart

int main(int argc, char** argv) {
  try {
    static const std::pair<const char*, const char*> kFlags[] = {
        {"--trace-out", "trace_out"},
        {"--metrics-out", "metrics_out"},
        {"--health-out", "health_out"}};
    std::vector<std::string> tokens;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--check") {
        tokens.push_back("check=1");
        continue;
      }
      bool rewritten = false;
      for (const auto& [flag, key] : kFlags) {
        const std::string prefix = std::string(flag) + "=";
        if (arg == flag) {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "fleetd: %s needs a file argument\n", flag);
            return 1;
          }
          tokens.push_back(std::string(key) + "=" + argv[++i]);
          rewritten = true;
          break;
        }
        if (arg.rfind(prefix, 0) == 0) {
          tokens.push_back(std::string(key) + "=" +
                           arg.substr(prefix.size()));
          rewritten = true;
          break;
        }
      }
      if (!rewritten) tokens.push_back(arg);
    }
    return netpart::run(netpart::Config::from_args(tokens));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleetd: %s\n", e.what());
    return 1;
  }
}

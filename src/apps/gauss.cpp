#include "apps/gauss.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "mmps/coercion.hpp"
#include "mmps/system.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace netpart::apps {

ComputationSpec make_gauss_spec(const GaussConfig& config) {
  NP_REQUIRE(config.n >= 2, "need at least a 2x2 system");
  const int n = config.n;

  ComputationPhaseSpec eliminate;
  eliminate.name = "eliminate";
  eliminate.num_pdus = [n] { return static_cast<std::int64_t>(n); };
  // Total elimination work is ~2n^3/3 flops over n cycles and n rows:
  // (2/3) n per PDU per cycle on average.
  eliminate.ops_per_pdu = [n] { return 2.0 / 3.0 * n; };
  eliminate.op_kind = OpKind::FloatingPoint;

  CommunicationPhaseSpec pivot;
  pivot.name = "pivot";
  pivot.topology = [] { return Topology::Broadcast; };
  // Average pivot row: half the columns remain, in doubles, plus rhs.
  pivot.bytes_per_message = [n](std::int64_t) {
    return static_cast<std::int64_t>(8) * (n / 2 + 2);
  };

  return ComputationSpec("gauss", {eliminate}, {pivot}, /*iterations=*/n);
}

LinearSystem make_test_system(int n, std::uint64_t seed) {
  NP_REQUIRE(n >= 2, "need at least a 2x2 system");
  LinearSystem sys;
  sys.n = n;
  sys.a.resize(static_cast<std::size_t>(n) * n);
  sys.b.resize(static_cast<std::size_t>(n));
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    double off_diag = 0.0;
    for (int j = 0; j < n; ++j) {
      const double v = 2.0 * rng.next_double() - 1.0;
      sys.a[static_cast<std::size_t>(i) * n + j] = v;
      if (j != i) off_diag += std::abs(v);
    }
    // Diagonal dominance keeps the system comfortably well conditioned.
    sys.a[static_cast<std::size_t>(i) * n + i] =
        off_diag + 1.0 + rng.next_double();
    sys.b[static_cast<std::size_t>(i)] = 2.0 * rng.next_double() - 1.0;
  }
  return sys;
}

std::vector<double> solve_sequential(LinearSystem sys) {
  const int n = sys.n;
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    int pivot = k;
    double best = std::abs(sys.a[static_cast<std::size_t>(k) * n + k]);
    for (int i = k + 1; i < n; ++i) {
      const double v = std::abs(sys.a[static_cast<std::size_t>(i) * n + k]);
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    NP_REQUIRE(best > 1e-12, "singular system");
    if (pivot != k) {
      for (int j = 0; j < n; ++j) {
        std::swap(sys.a[static_cast<std::size_t>(k) * n + j],
                  sys.a[static_cast<std::size_t>(pivot) * n + j]);
      }
      std::swap(sys.b[static_cast<std::size_t>(k)],
                sys.b[static_cast<std::size_t>(pivot)]);
    }
    perm[static_cast<std::size_t>(k)] = pivot;
    const double diag = sys.a[static_cast<std::size_t>(k) * n + k];
    for (int i = k + 1; i < n; ++i) {
      const double factor =
          sys.a[static_cast<std::size_t>(i) * n + k] / diag;
      if (factor == 0.0) continue;
      for (int j = k; j < n; ++j) {
        sys.a[static_cast<std::size_t>(i) * n + j] -=
            factor * sys.a[static_cast<std::size_t>(k) * n + j];
      }
      sys.b[static_cast<std::size_t>(i)] -=
          factor * sys.b[static_cast<std::size_t>(k)];
    }
  }
  std::vector<double> x(static_cast<std::size_t>(n));
  for (int i = n - 1; i >= 0; --i) {
    double acc = sys.b[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < n; ++j) {
      acc -= sys.a[static_cast<std::size_t>(i) * n + j] *
             x[static_cast<std::size_t>(j)];
    }
    x[static_cast<std::size_t>(i)] =
        acc / sys.a[static_cast<std::size_t>(i) * n + i];
  }
  return x;
}

std::vector<std::vector<int>> map_rows(const PartitionVector& partition,
                                       int n, RowMapping mapping) {
  partition.validate(n);
  const int ranks = partition.num_ranks();
  std::vector<std::vector<int>> rows(static_cast<std::size_t>(ranks));
  if (mapping == RowMapping::Block) {
    const auto ranges = partition.block_ranges();
    for (int r = 0; r < ranks; ++r) {
      for (std::int64_t g = ranges[static_cast<std::size_t>(r)].first;
           g < ranges[static_cast<std::size_t>(r)].second; ++g) {
        rows[static_cast<std::size_t>(r)].push_back(static_cast<int>(g));
      }
    }
    return rows;
  }
  // Weighted-cyclic: deal each row to the rank furthest behind its
  // proportional share (largest deficit first, ties to the lower rank),
  // never exceeding its quota A_r.  Every prefix of the matrix is then
  // split in approximately the A ratio, so elimination retires work
  // uniformly across ranks.
  std::vector<std::int64_t> dealt(static_cast<std::size_t>(ranks), 0);
  for (int g = 0; g < n; ++g) {
    int chosen = -1;
    double best_deficit = -1.0;
    for (int r = 0; r < ranks; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      if (dealt[ri] >= partition.at(r)) continue;
      const double target = static_cast<double>(partition.at(r)) *
                            static_cast<double>(g + 1) /
                            static_cast<double>(n);
      const double deficit = target - static_cast<double>(dealt[ri]);
      if (deficit > best_deficit) {
        best_deficit = deficit;
        chosen = r;
      }
    }
    NP_ASSERT(chosen >= 0);
    rows[static_cast<std::size_t>(chosen)].push_back(g);
    ++dealt[static_cast<std::size_t>(chosen)];
  }
  return rows;
}

namespace {

/// One owned matrix row.
struct OwnedRow {
  int global = 0;
  bool active = true;  ///< not yet elected as a pivot
  std::vector<double> a;
  double b = 0.0;
};

/// A pivot row recorded at the root, in elimination order.
struct PivotRecord {
  int column = 0;          ///< elimination step k
  std::vector<double> a;   ///< columns k..n-1
  double b = 0.0;
};

struct GaussRank {
  int rank = 0;
  std::vector<OwnedRow> rows;
  int step = 0;
  int candidates_needed = 0;  ///< root only: outstanding candidate messages
  /// Root only: best candidate so far for the current step
  double best_value = -1.0;
  std::vector<double> best_payload;
};

class GaussRunner {
 public:
  GaussRunner(const Network& network, const Placement& placement,
              const PartitionVector& partition, const GaussConfig& config,
              std::uint64_t seed, const sim::NetSimParams& sim_params)
      : n_(config.n),
        placement_(placement),
        net_(engine_, network, sim_params, Rng(seed ^ 0x9a55)),
        mmps_(net_),
        flop_ms_(build_flop_ms(network, placement)) {
    partition.validate(config.n);
    system_ = make_test_system(config.n, seed);
    const auto mapping = map_rows(partition, config.n, config.mapping);
    ranks_.resize(placement.size());
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      ranks_[r].rank = static_cast<int>(r);
      for (const int row : mapping[r]) {
        OwnedRow owned;
        owned.global = row;
        owned.a.assign(
            system_.a.begin() + static_cast<std::ptrdiff_t>(row) * n_,
            system_.a.begin() + static_cast<std::ptrdiff_t>(row + 1) * n_);
        owned.b = system_.b[static_cast<std::size_t>(row)];
        ranks_[r].rows.push_back(std::move(owned));
      }
    }
  }

  DistributedGaussResult run() {
    for (GaussRank& gr : ranks_) {
      engine_.schedule_at(SimTime::zero(),
                          [this, &gr] { begin_step(gr); });
    }
    engine_.run();
    NP_ASSERT(static_cast<int>(pivots_.size()) == n_);
    NP_ASSERT(mmps_.unclaimed() == 0);

    DistributedGaussResult result;
    result.elapsed = finish_;
    result.messages = net_.messages_delivered();
    result.x = back_substitute();
    return result;
  }

 private:
  static std::vector<double> build_flop_ms(const Network& network,
                                           const Placement& placement) {
    std::vector<double> out;
    out.reserve(placement.size());
    for (const ProcessorRef& ref : placement) {
      out.push_back(
          network.cluster(ref.cluster).type().flop_time.as_millis());
    }
    return out;
  }

  int active_rows(const GaussRank& gr) const {
    int count = 0;
    for (const OwnedRow& row : gr.rows) {
      if (row.active) ++count;
    }
    return count;
  }

  /// Candidate payload: [global_index, |value|, b, a[k..n-1]...];
  /// global_index == -1 flags "no active rows here".
  std::vector<double> make_candidate(const GaussRank& gr, int k) const {
    const OwnedRow* best = nullptr;
    for (const OwnedRow& row : gr.rows) {
      if (!row.active) continue;
      if (best == nullptr ||
          std::abs(row.a[static_cast<std::size_t>(k)]) >
              std::abs(best->a[static_cast<std::size_t>(k)])) {
        best = &row;
      }
    }
    std::vector<double> payload;
    if (best == nullptr) {
      payload = {-1.0, 0.0, 0.0};
      return payload;
    }
    payload.reserve(static_cast<std::size_t>(n_ - k) + 3);
    payload.push_back(static_cast<double>(best->global));
    payload.push_back(std::abs(best->a[static_cast<std::size_t>(k)]));
    payload.push_back(best->b);
    payload.insert(payload.end(), best->a.begin() + k, best->a.end());
    return payload;
  }

  void begin_step(GaussRank& gr) {
    if (gr.step == n_) {
      finish_ = std::max(finish_, engine_.now());
      return;
    }
    const int k = gr.step;
    const ProcessorRef me = placement_[static_cast<std::size_t>(gr.rank)];

    // Local pivot selection: one comparison per active row.
    const SimTime select_end =
        net_.host(me).reserve(engine_.now(),
                              SimTime::millis(flop_ms_[static_cast<std::size_t>(
                                                  gr.rank)] *
                                              active_rows(gr)));
    engine_.schedule_at(select_end, [this, &gr, k, me] {
      const std::vector<double> candidate = make_candidate(gr, k);
      if (gr.rank == 0) {
        gr.best_value = candidate[1];
        gr.best_payload = candidate;
        gr.candidates_needed = static_cast<int>(ranks_.size()) - 1;
        if (gr.candidates_needed == 0) {
          elect_and_broadcast(gr, k);
        } else {
          collect_candidates(gr, k);
        }
      } else {
        mmps_.send(me, placement_[0], k, mmps::encode_array(
                                             std::span<const double>(
                                                 candidate)));
        // Wait for the elected pivot row from the root.
        mmps_.recv(me, placement_[0], k, [this, &gr, k](mmps::Message msg) {
          apply_pivot(gr, k, mmps::decode_array<double>(msg.payload));
        });
      }
    });
  }

  void collect_candidates(GaussRank& root, int k) {
    for (std::size_t r = 1; r < ranks_.size(); ++r) {
      mmps_.recv(placement_[0], placement_[r], k,
                 [this, &root, k](mmps::Message msg) {
                   const std::vector<double> candidate =
                       mmps::decode_array<double>(msg.payload);
                   if (candidate[0] >= 0.0 &&
                       candidate[1] > root.best_value) {
                     root.best_value = candidate[1];
                     root.best_payload = candidate;
                   }
                   if (--root.candidates_needed == 0) {
                     elect_and_broadcast(root, k);
                   }
                 });
    }
  }

  void elect_and_broadcast(GaussRank& root, int k) {
    NP_REQUIRE(root.best_payload[0] >= 0.0 && root.best_value > 1e-12,
               "singular system in distributed elimination");
    // Record the winning row for back substitution.
    PivotRecord record;
    record.column = k;
    record.b = root.best_payload[2];
    record.a.assign(root.best_payload.begin() + 3, root.best_payload.end());
    pivot_globals_.push_back(static_cast<int>(root.best_payload[0]));
    pivots_.push_back(std::move(record));

    for (std::size_t r = 1; r < ranks_.size(); ++r) {
      mmps_.send(placement_[0], placement_[r], k,
                 mmps::encode_array(
                     std::span<const double>(root.best_payload)));
    }
    apply_pivot(root, k, root.best_payload);
  }

  void apply_pivot(GaussRank& gr, int k, std::vector<double> payload) {
    const int pivot_global = static_cast<int>(payload[0]);
    const double pivot_b = payload[2];
    const std::span<const double> pivot_row(payload.data() + 3,
                                            payload.size() - 3);
    NP_ASSERT(static_cast<int>(pivot_row.size()) == n_ - k);

    int updated = 0;
    for (OwnedRow& row : gr.rows) {
      if (row.global == pivot_global) {
        row.active = false;  // frozen as this step's pivot
        continue;
      }
      if (!row.active) continue;
      ++updated;
      const double diag = pivot_row[0];
      const double factor = row.a[static_cast<std::size_t>(k)] / diag;
      for (int j = k; j < n_; ++j) {
        row.a[static_cast<std::size_t>(j)] -=
            factor * pivot_row[static_cast<std::size_t>(j - k)];
      }
      row.b -= factor * pivot_b;
    }

    const double ms = flop_ms_[static_cast<std::size_t>(gr.rank)] * 2.0 *
                      static_cast<double>(n_ - k) * updated;
    const ProcessorRef me = placement_[static_cast<std::size_t>(gr.rank)];
    const SimTime end = net_.host(me).reserve(engine_.now(),
                                              SimTime::millis(ms));
    ++gr.step;
    engine_.schedule_at(end, [this, &gr] { begin_step(gr); });
  }

  std::vector<double> back_substitute() const {
    std::vector<double> x(static_cast<std::size_t>(n_), 0.0);
    for (int k = n_ - 1; k >= 0; --k) {
      const PivotRecord& p = pivots_[static_cast<std::size_t>(k)];
      double acc = p.b;
      for (int j = k + 1; j < n_; ++j) {
        acc -= p.a[static_cast<std::size_t>(j - k)] *
               x[static_cast<std::size_t>(j)];
      }
      x[static_cast<std::size_t>(k)] = acc / p.a[0];
    }
    return x;
  }

  int n_;
  const Placement& placement_;
  sim::Engine engine_;
  sim::NetSim net_;
  mmps::System mmps_;
  std::vector<double> flop_ms_;
  LinearSystem system_;
  std::vector<GaussRank> ranks_;
  std::vector<PivotRecord> pivots_;     ///< in elimination order (root)
  std::vector<int> pivot_globals_;      ///< winning global rows
  SimTime finish_;
};

}  // namespace

DistributedGaussResult run_distributed_gauss(
    const Network& network, const Placement& placement,
    const PartitionVector& partition, const GaussConfig& config,
    std::uint64_t seed, const sim::NetSimParams& sim_params) {
  NP_REQUIRE(!placement.empty(), "placement must be non-empty");
  GaussRunner runner(network, placement, partition, config, seed,
                     sim_params);
  return runner.run();
}

}  // namespace netpart::apps

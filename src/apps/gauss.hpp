// Gaussian elimination with partial pivoting.
//
// Section 6 reports that the partitioning method also worked for Gaussian
// elimination, an application with *non-uniform* computational and
// communication complexity: in elimination step k only rows below the
// pivot remain active (~2(N-k) flops each) and the broadcast pivot row
// shrinks as k grows.  The annotations therefore carry per-cycle *averages*
// (the paper's model annotates the dominant phases; averaging is the
// natural reduction for non-uniform cycles):
//
//   PDU            = one matrix row (num_PDUs = N)
//   ops_per_pdu    = (2/3) N flops  (total ~2N^3/3 over N cycles x N rows)
//   topology       = broadcast (pivot row to every task)
//   bytes/message  = 8 * (N/2 + 1)  (average active row, doubles + rhs)
//
// The functional implementation really solves A x = b over MMPS with
// partial pivoting via an elect-and-broadcast protocol per step; the
// residual against the sequential solver verifies it.
#pragma once

#include <cstdint>
#include <vector>

#include "dp/partition_vector.hpp"
#include "dp/phases.hpp"
#include "net/network.hpp"
#include "sim/netsim.hpp"
#include "topo/placement.hpp"

namespace netpart::apps {

/// How the implementation interprets the partition vector (the paper's
/// Section 4: the abstract A_i is mapped by the implementation).
enum class RowMapping {
  /// Contiguous blocks of rows.  Simple, but elimination retires rows from
  /// the top, so the first ranks run out of active rows early.
  Block,
  /// Weighted-cyclic dealing: rows are dealt round-robin, each rank taking
  /// A_i of every sum(A) consecutive rows, so the active set shrinks
  /// uniformly across ranks -- the classic fix for elimination codes.
  Cyclic,
};

struct GaussConfig {
  int n = 128;  ///< system size
  RowMapping mapping = RowMapping::Block;
};

/// Annotated computation for the partitioner and executor (N cycles).
ComputationSpec make_gauss_spec(const GaussConfig& config);

/// Generate a well-conditioned dense test system (diagonally dominated,
/// deterministic from `seed`).
struct LinearSystem {
  int n = 0;
  std::vector<double> a;  ///< n x n row-major
  std::vector<double> b;  ///< right-hand side
};
LinearSystem make_test_system(int n, std::uint64_t seed);

/// Sequential reference: partial-pivoting elimination + back substitution.
std::vector<double> solve_sequential(LinearSystem system);

struct DistributedGaussResult {
  std::vector<double> x;  ///< solution
  SimTime elapsed;        ///< simulated elimination time
  std::uint64_t messages = 0;
};

/// Assign global rows to ranks under the chosen mapping.  The result has
/// one vector of global row indices per rank; rank r receives exactly
/// partition.at(r) rows either way.
std::vector<std::vector<int>> map_rows(const PartitionVector& partition,
                                       int n, RowMapping mapping);

/// Distributed row-decomposed elimination over MMPS.  Each step: every rank
/// offers its best local pivot candidate (value + full row) to rank 0,
/// which elects the global pivot and broadcasts the pivot row; all ranks
/// eliminate their active rows.  Pivoting is implicit (row flags +
/// permutation), so no physical row swaps cross the network.  Back
/// substitution happens on rank 0 after a final gather (not timed, matching
/// the paper's exclusion of startup/teardown distribution).
DistributedGaussResult run_distributed_gauss(
    const Network& network, const Placement& placement,
    const PartitionVector& partition, const GaussConfig& config,
    std::uint64_t seed = 1, const sim::NetSimParams& sim_params = {});

}  // namespace netpart::apps

// netpartd: the partition service under synthetic traffic.
//
// Long-lived daemon shape of the library: a PartitionService fronts the
// partitioner for N concurrent clients issuing a zipf-skewed request mix
// (a few hot problem specs, a long tail of cold ones) while availability
// churn bumps the epoch mid-run -- exactly the workload the decision cache,
// request coalescing, and admission control exist for.  At the end the
// service's own metrics registry reports throughput, hit rate, and
// latency tails, optionally as CSV/JSON for dashboards.
//
// Keys:
//   network  = paper | fig1 | coercion | metasystem   (default paper)
//   apps     = comma list cycled across the universe   (default stencil,sten2)
//   workers  = worker threads                          (default 4)
//   queue    = request queue capacity                  (default 64)
//   cache    = decision cache capacity                 (default 4096)
//   shards   = cache shards                            (default 8)
//   clients  = client threads                          (default 8)
//   requests = requests per client                     (default 200)
//   universe = distinct problem sizes                  (default 24)
//   zipf     = skew exponent, 0 = uniform              (default 1.1)
//   churn    = availability updates spread over the run (default 4)
//   seed     = workload seed                           (default 1)
//   model_in = saved cost model (skips calibration)
//   json_out = metrics JSON path,  csv_out = metrics CSV path
//
// Telemetry (also accepted as --trace-out FILE / --metrics-out FILE):
//   trace_out   = Chrome trace-event JSON (chrome://tracing, Perfetto)
//   metrics_out = deterministic name-ordered metrics text
// Either flag enables the global telemetry registry and appends a traced
// adaptive-repartitioning stage after the service run, so the trace shows
// the full pipeline: partitioner search, service request lifecycles, and
// an adaptive repartition with its simulated message traffic.
//
// Example:
//   netpartd clients=16 workers=4 universe=32 zipf=1.2 churn=6
//   netpartd clients=4 requests=50 --trace-out trace.json
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "analysis/preflight.hpp"
#include "apps/gauss.hpp"
#include "apps/particles.hpp"
#include "apps/reduce.hpp"
#include "apps/stencil.hpp"
#include "calib/calibrate.hpp"
#include "calib/model_io.hpp"
#include "core/decompose.hpp"
#include "exec/adaptive.hpp"
#include "net/presets.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/sim_bridge.hpp"
#include "obs/telemetry.hpp"
#include "sim/trace.hpp"
#include "svc/service.hpp"
#include "topo/placement.hpp"
#include "util/config.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace netpart {
namespace {

Network make_network(const std::string& name) {
  if (name == "paper") return presets::paper_testbed();
  if (name == "fig1") return presets::fig1_network();
  if (name == "coercion") return presets::coercion_testbed();
  if (name == "metasystem") return presets::metasystem();
  throw ConfigError("unknown network: " + name);
}

ComputationSpec resolve_spec(const svc::PartitionRequest& request) {
  const int n = static_cast<int>(request.n);
  const int iterations = request.iterations;
  if (request.spec == "stencil" || request.spec == "sten2") {
    return apps::make_stencil_spec(
        apps::StencilConfig{.n = n, .iterations = iterations,
                            .overlap = request.spec == "sten2"});
  }
  if (request.spec == "gauss") {
    return apps::make_gauss_spec(apps::GaussConfig{.n = n});
  }
  if (request.spec == "particles") {
    return apps::make_particle_spec(
        apps::ParticleConfig{.count = n, .iterations = iterations});
  }
  if (request.spec == "reduce") {
    return apps::make_reduce_spec(
        apps::ReduceConfig{.count = n, .iterations = iterations});
  }
  throw InvalidArgument("netpartd: unknown spec " + request.spec);
}

/// Zipf(s) sampler over ranks 0..k-1 by inverse CDF (deterministic: only
/// Rng::next_double is consumed, one draw per sample).
class ZipfSampler {
 public:
  ZipfSampler(int k, double s) : cdf_(static_cast<std::size_t>(k)) {
    double total = 0.0;
    for (int i = 0; i < k; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[static_cast<std::size_t>(i)] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  int draw(Rng& rng) const {
    const double u = rng.next_double();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<int>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

/// A small adaptive pipeline under a mid-run load step, appended when
/// telemetry export is on: it puts the adaptive.chunk / repartition /
/// migration spans on the simulated-time track and bridges the run's
/// (bounded) message trace into the registry so the exported file shows a
/// complete message lifecycle next to the service's wall-clock spans.
void traced_adaptive_stage(const Network& net) {
  const apps::StencilConfig cfg{.n = 1200, .iterations = 40,
                                .overlap = false};
  const ComputationSpec spec = apps::make_stencil_spec(cfg);
  const std::vector<ClusterId> order = clusters_by_speed(net);
  const ClusterId c0 = order.front();
  ProcessorConfig config(static_cast<std::size_t>(net.num_clusters()), 0);
  config[static_cast<std::size_t>(c0)] =
      std::min(6, net.cluster(c0).size());
  const Placement placement = contiguous_placement(net, config, order);
  const PartitionVector initial =
      balanced_partition(net, config, order, cfg.n);

  // Half the selected processors take on background load two simulated
  // seconds in -- enough imbalance to force at least one repartition.
  const LoadSchedule load = LoadSchedule::step(
      net, c0, config[static_cast<std::size_t>(c0)] / 2,
      SimTime::seconds(2), 0.5);

  sim::TraceLog log(1 << 16);
  ExecutionOptions exec_options;
  exec_options.load = &load;
  exec_options.tracer = log.tracer();
  const AdaptiveOptions adaptive_options{.check_interval = 5,
                                         .imbalance_threshold = 1.2,
                                         .pdu_bytes = 4 * cfg.n};
  const AdaptiveResult result = execute_adaptive(
      net, spec, placement, initial, exec_options, adaptive_options);
  obs::bridge_trace_log(log, obs::TelemetryRegistry::global());
  std::printf("\ntraced adaptive stage: %d repartitions over %s simulated "
              "ms\n", result.repartitions,
              format_double(result.elapsed.as_millis(), 0).c_str());
}

int run(const Config& args) {
  const auto trace_out = args.get("trace_out");
  const auto metrics_out = args.get("metrics_out");
  const bool telemetry = trace_out.has_value() || metrics_out.has_value();
  if (telemetry) obs::TelemetryRegistry::global().set_enabled(true);

  const Network net = make_network(args.get_or("network", "paper"));
  std::printf("%s", net.describe().c_str());

  CostModelDb db(net.num_clusters());
  if (const auto path = args.get("model_in")) {
    db = load_cost_model_file(*path);
    std::printf("loaded cost model from %s\n", path->c_str());
  } else {
    std::printf("calibrating 1-D cost model...\n");
    CalibrationParams params;
    params.topologies = {Topology::OneD};
    db = calibrate(net, params).db;
  }

  // Pre-flight: lint the network + cost model before serving.  Under
  // --check (check=1) report the diagnostics and exit without serving --
  // 0 when error-free, 1 otherwise; the default path refuses to start on
  // error-severity findings (a bad model would skew every reply).
  if (args.get_int_or("check", 0) != 0) {
    const analysis::DiagnosticSink sink = analysis::preflight(net, db);
    std::printf("%s", sink.render_text().c_str());
    return sink.clean() ? 0 : 1;
  }
  analysis::require_preflight(net, db);

  AvailabilityFeed feed(net, make_managers(net, AvailabilityPolicy{}));

  svc::ServiceOptions options;
  options.workers = static_cast<int>(args.get_int_or("workers", 4));
  options.queue_capacity =
      static_cast<std::size_t>(args.get_int_or("queue", 64));
  options.cache_capacity =
      static_cast<std::size_t>(args.get_int_or("cache", 4096));
  options.cache_shards = static_cast<int>(args.get_int_or("shards", 8));
  svc::PartitionService service(net, db, feed, resolve_spec, options);

  // The request universe: `universe` problem sizes cycled across the app
  // list, ranked by zipf popularity (rank 0 hottest).
  const int universe = static_cast<int>(args.get_int_or("universe", 24));
  const double zipf = args.get_double_or("zipf", 1.1);
  const int clients = static_cast<int>(args.get_int_or("clients", 8));
  const int per_client = static_cast<int>(args.get_int_or("requests", 200));
  const int churn_waves = static_cast<int>(args.get_int_or("churn", 4));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  NP_REQUIRE(universe >= 1 && clients >= 1 && per_client >= 1,
             "universe, clients, and requests must be positive");

  std::vector<std::string> apps;
  for (const std::string& a :
       split(args.get_or("apps", "stencil,sten2"), ',')) {
    apps.push_back(std::string(trim(a)));
  }
  std::vector<svc::PartitionRequest> mix;
  mix.reserve(static_cast<std::size_t>(universe));
  for (int k = 0; k < universe; ++k) {
    svc::PartitionRequest request;
    request.spec = apps[static_cast<std::size_t>(k) % apps.size()];
    request.n = 60 + 50 * k;
    request.iterations = 10;
    mix.push_back(std::move(request));
  }
  const ZipfSampler sampler(universe, zipf);

  std::printf("\n%d clients x %d requests over %d specs (zipf %.2f), "
              "%d workers, queue %d, cache %d/%d shards, %d churn waves\n",
              clients, per_client, universe, zipf, options.workers,
              static_cast<int>(options.queue_capacity),
              static_cast<int>(options.cache_capacity), options.cache_shards,
              churn_waves);

  std::atomic<int> clients_done{0};
  std::atomic<std::uint64_t> ok{0}, overloaded{0}, failed{0};
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      Rng rng = Rng(seed).stream(static_cast<std::uint64_t>(c) + 1);
      for (int r = 0; r < per_client; ++r) {
        const svc::PartitionRequest& request =
            mix[static_cast<std::size_t>(sampler.draw(rng))];
        const svc::ServiceReply reply = service.query(request);
        switch (reply.status) {
          case svc::ServiceStatus::Ok: ++ok; break;
          case svc::ServiceStatus::Overloaded: ++overloaded; break;
          case svc::ServiceStatus::Failed: ++failed; break;
        }
      }
      ++clients_done;
    });
  }

  // Availability churn: revoke a growing slice of the largest cluster,
  // then restore -- every wave bumps the feed's epoch and invalidates.
  std::thread churner([&] {
    const auto base = feed.read().first;
    int wave = 0;
    while (clients_done.load() < clients && wave < churn_waves) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      AvailabilitySnapshot next = base;
      if (wave % 2 == 0) {
        auto widest = std::max_element(next.available.begin(),
                                       next.available.end());
        *widest = std::max(1, *widest - 1 - wave / 2);
      }
      feed.update(std::move(next));
      ++wave;
    }
  });

  for (std::thread& t : pool) t.join();
  churner.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  auto& m = service.metrics();
  const svc::DecisionCache::Stats cache = service.cache().stats();
  const std::uint64_t requests = clients * per_client;

  Table table({"metric", "value"});
  const auto row = [&table](const std::string& k, const std::string& v) {
    table.add_row({k, v});
  };
  row("requests", std::to_string(requests));
  row("throughput rps", format_double(
          static_cast<double>(requests) / elapsed_s, 0));
  row("ok / overloaded / failed",
      std::to_string(ok.load()) + " / " + std::to_string(overloaded.load()) +
          " / " + std::to_string(failed.load()));
  row("cache hits", std::to_string(cache.hits));
  row("hit rate %", format_double(100.0 * static_cast<double>(cache.hits) /
                                      static_cast<double>(requests), 1));
  row("coalesced", std::to_string(m.counter("coalesced").value()));
  row("cold computes", std::to_string(m.counter("cold_computes").value()));
  row("epoch bumps", std::to_string(m.counter("epoch_bumps").value()));
  row("cache size / evictions / invalidated",
      std::to_string(service.cache().size()) + " / " +
          std::to_string(cache.evictions) + " / " +
          std::to_string(cache.invalidated));
  const QuantileSummary hit = m.latency("hit", 0.0, 200.0, 400).quantiles();
  const QuantileSummary cold =
      m.latency("cold", 0.0, 100000.0, 1000).quantiles();
  row("hit p50/p95/p99 us",
      format_double(hit.p50, 1) + " / " + format_double(hit.p95, 1) + " / " +
          format_double(hit.p99, 1));
  row("cold p50/p95/p99 us",
      format_double(cold.p50, 1) + " / " + format_double(cold.p95, 1) +
          " / " + format_double(cold.p99, 1));
  std::printf("\n%s\n", table.render("partition service under load").c_str());

  if (const auto path = args.get("json_out")) {
    std::ofstream out(*path);
    NP_REQUIRE(out.good(), "cannot open json_out path");
    out << m.to_json().dump(2);
    std::printf("metrics JSON -> %s\n", path->c_str());
  }
  if (const auto path = args.get("csv_out")) {
    std::ofstream out(*path);
    NP_REQUIRE(out.good(), "cannot open csv_out path");
    m.write_csv(out);
    std::printf("metrics CSV -> %s\n", path->c_str());
  }

  if (telemetry) {
    traced_adaptive_stage(net);
    if (trace_out) {
      std::ofstream out(*trace_out);
      NP_REQUIRE(out.good(), "cannot open trace_out path");
      obs::write_chrome_trace(out, obs::TelemetryRegistry::global());
      std::printf("trace -> %s (%zu spans)\n", trace_out->c_str(),
                  obs::TelemetryRegistry::global().span_count());
    }
    if (metrics_out) {
      std::ofstream out(*metrics_out);
      NP_REQUIRE(out.good(), "cannot open metrics_out path");
      out << obs::TelemetryRegistry::global().metrics_text();
      std::printf("metrics -> %s\n", metrics_out->c_str());
    }
  }
  return failed.load() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace netpart

int main(int argc, char** argv) {
  try {
    // Config speaks key=value; rewrite the conventional long options
    // --trace-out FILE / --metrics-out FILE (or --flag=FILE) first.
    std::vector<std::string> tokens;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--check") {
        tokens.push_back("check=1");
        continue;
      }
      bool rewritten = false;
      for (const auto& [flag, key] :
           {std::pair<std::string, std::string>{"--trace-out", "trace_out"},
            {"--metrics-out", "metrics_out"}}) {
        if (arg == flag && i + 1 < argc) {
          tokens.push_back(key + "=" + argv[++i]);
          rewritten = true;
          break;
        }
        if (arg.rfind(flag + "=", 0) == 0) {
          tokens.push_back(key + arg.substr(flag.size()));
          rewritten = true;
          break;
        }
      }
      if (!rewritten) tokens.push_back(std::move(arg));
    }
    return netpart::run(netpart::Config::from_args(tokens));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "netpartd: %s\n", e.what());
    return 1;
  }
}

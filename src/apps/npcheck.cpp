// npcheck: static analysis for specs, cost models, and network presets.
//
// Thin wrapper over analysis::run_npcheck -- all behaviour (flags, exit
// codes, report formats) lives in the library so the test suite can pin it
// without spawning processes.  See src/analysis/npcheck.hpp for the
// contract and DESIGN.md §11 for the diagnostic-code table.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/npcheck.hpp"

int main(int argc, char** argv) {
  try {
    const std::vector<std::string> args(argv + 1, argv + argc);
    return netpart::analysis::run_npcheck(args, std::cout, std::cerr)
        .exit_code;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "npcheck: internal error: %s\n", e.what());
    return 2;
  }
}

#include "apps/particles.hpp"

#include <algorithm>
#include <utility>

#include "mmps/coercion.hpp"
#include "mmps/system.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace netpart::apps {

namespace {

/// Spring force on particle i from its neighbours.  `left`/`right` are the
/// neighbouring positions; particles at the chain ends have one-sided
/// forces.  The arithmetic is written so the distributed version evaluates
/// the exact same expression in the same order (bit-identical results).
double chain_force(double left, double here, double right, bool has_left,
                   bool has_right, double stiffness, double rest) {
  double force = 0.0;
  if (has_left) {
    force += stiffness * ((here - left) - rest) * -1.0;
  }
  if (has_right) {
    force += stiffness * ((right - here) - rest);
  }
  return force;
}

}  // namespace

ComputationSpec make_particle_spec(const ParticleConfig& config) {
  NP_REQUIRE(config.count >= 2, "need at least two particles");
  NP_REQUIRE(config.iterations >= 1, "need at least one step");
  const int count = config.count;

  ComputationPhaseSpec forces;
  forces.name = "forces";
  forces.num_pdus = [count] { return static_cast<std::int64_t>(count); };
  forces.ops_per_pdu = [] { return 9.0; };
  forces.op_kind = OpKind::FloatingPoint;

  CommunicationPhaseSpec ghosts;
  ghosts.name = "ghosts";
  ghosts.topology = [] { return Topology::OneD; };
  ghosts.bytes_per_message = [](std::int64_t) {
    return static_cast<std::int64_t>(8);  // one boundary position
  };

  return ComputationSpec("particles", {forces}, {ghosts},
                         config.iterations);
}

ParticleState make_initial_particles(const ParticleConfig& config,
                                     std::uint64_t seed) {
  ParticleState state;
  state.position.resize(static_cast<std::size_t>(config.count));
  state.velocity.assign(static_cast<std::size_t>(config.count), 0.0);
  Rng rng(seed);
  for (int i = 0; i < config.count; ++i) {
    state.position[static_cast<std::size_t>(i)] =
        config.rest_length * i +
        0.1 * config.rest_length * (2.0 * rng.next_double() - 1.0);
  }
  return state;
}

ParticleState run_sequential_particles(const ParticleConfig& config,
                                       std::uint64_t seed) {
  ParticleState state = make_initial_particles(config, seed);
  const int n = config.count;
  std::vector<double> next_pos(state.position.size());
  for (int it = 0; it < config.iterations; ++it) {
    for (int i = 0; i < n; ++i) {
      const bool has_left = i > 0;
      const bool has_right = i < n - 1;
      const double left =
          has_left ? state.position[static_cast<std::size_t>(i - 1)] : 0.0;
      const double right =
          has_right ? state.position[static_cast<std::size_t>(i + 1)] : 0.0;
      const double f = chain_force(
          left, state.position[static_cast<std::size_t>(i)], right, has_left,
          has_right, config.stiffness, config.rest_length);
      state.velocity[static_cast<std::size_t>(i)] += f * config.dt;
      next_pos[static_cast<std::size_t>(i)] =
          state.position[static_cast<std::size_t>(i)] +
          state.velocity[static_cast<std::size_t>(i)] * config.dt;
    }
    state.position.swap(next_pos);
  }
  return state;
}

namespace {

struct ParticleRank {
  int rank = 0;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::vector<double> pos;  ///< owned positions
  std::vector<double> vel;
  std::vector<double> next_pos;
  double ghost_left = 0.0;
  double ghost_right = 0.0;
  int iter = 0;
  int ghosts_expected = 0;
  int ghosts_arrived = 0;
  bool waiting = false;
};

class ParticleRunner {
 public:
  ParticleRunner(const Network& network, const Placement& placement,
                 const PartitionVector& partition,
                 const ParticleConfig& config, std::uint64_t seed,
                 const sim::NetSimParams& sim_params)
      : config_(config),
        placement_(placement),
        net_(engine_, network, sim_params, Rng(seed ^ 0xBEEF)),
        mmps_(net_),
        flop_ms_(build_flop_ms(network, placement)) {
    partition.validate(config.count);
    const ParticleState init = make_initial_particles(config, seed);
    const auto ranges = partition.block_ranges();
    ranks_.resize(placement.size());
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      ParticleRank& pr = ranks_[r];
      pr.rank = static_cast<int>(r);
      pr.lo = ranges[r].first;
      pr.hi = ranges[r].second;
      pr.pos.assign(init.position.begin() + pr.lo,
                    init.position.begin() + pr.hi);
      pr.vel.assign(init.velocity.begin() + pr.lo,
                    init.velocity.begin() + pr.hi);
      pr.next_pos.resize(pr.pos.size());
      pr.ghosts_expected =
          (r > 0 ? 1 : 0) + (r + 1 < ranks_.size() ? 1 : 0);
    }
  }

  DistributedParticlesResult run() {
    for (ParticleRank& pr : ranks_) {
      engine_.schedule_at(SimTime::zero(),
                          [this, &pr] { start_iteration(pr); });
    }
    engine_.run();
    NP_ASSERT(mmps_.unclaimed() == 0);

    DistributedParticlesResult result;
    result.elapsed = finish_;
    result.messages = net_.messages_delivered();
    result.state.position.resize(
        static_cast<std::size_t>(config_.count));
    result.state.velocity.resize(
        static_cast<std::size_t>(config_.count));
    for (const ParticleRank& pr : ranks_) {
      std::copy(pr.pos.begin(), pr.pos.end(),
                result.state.position.begin() + pr.lo);
      std::copy(pr.vel.begin(), pr.vel.end(),
                result.state.velocity.begin() + pr.lo);
    }
    return result;
  }

 private:
  static std::vector<double> build_flop_ms(const Network& network,
                                           const Placement& placement) {
    std::vector<double> out;
    out.reserve(placement.size());
    for (const ProcessorRef& ref : placement) {
      out.push_back(
          network.cluster(ref.cluster).type().flop_time.as_millis());
    }
    return out;
  }

  void start_iteration(ParticleRank& pr) {
    if (pr.iter == config_.iterations) {
      finish_ = std::max(finish_, engine_.now());
      return;
    }
    const ProcessorRef me = placement_[static_cast<std::size_t>(pr.rank)];

    // Post ghost receives, then send our boundary positions.
    const auto install = [this, &pr](bool from_left) {
      return [this, &pr, from_left](mmps::Message msg) {
        const std::vector<double> v = mmps::decode_array<double>(msg.payload);
        NP_ASSERT(v.size() == 1);
        (from_left ? pr.ghost_left : pr.ghost_right) = v[0];
        ++pr.ghosts_arrived;
        if (pr.waiting && pr.ghosts_arrived == pr.ghosts_expected) {
          pr.waiting = false;
          integrate(pr);
        }
      };
    };
    if (pr.rank > 0) {
      mmps_.recv(me, placement_[static_cast<std::size_t>(pr.rank - 1)],
                 pr.iter, install(/*from_left=*/true));
      const double boundary[] = {pr.pos.front()};
      mmps_.send(me, placement_[static_cast<std::size_t>(pr.rank - 1)],
                 pr.iter,
                 mmps::encode_array(std::span<const double>(boundary)));
    }
    if (pr.rank + 1 < static_cast<int>(ranks_.size())) {
      mmps_.recv(me, placement_[static_cast<std::size_t>(pr.rank + 1)],
                 pr.iter, install(/*from_left=*/false));
      const double boundary[] = {pr.pos.back()};
      mmps_.send(me, placement_[static_cast<std::size_t>(pr.rank + 1)],
                 pr.iter,
                 mmps::encode_array(std::span<const double>(boundary)));
    }

    const SimTime ready = net_.host(me).busy_until();
    engine_.schedule_at(std::max(ready, engine_.now()), [this, &pr] {
      if (pr.ghosts_arrived < pr.ghosts_expected) {
        pr.waiting = true;
        return;
      }
      integrate(pr);
    });
  }

  void integrate(ParticleRank& pr) {
    const std::int64_t count = pr.hi - pr.lo;
    for (std::int64_t i = 0; i < count; ++i) {
      const std::int64_t g = pr.lo + i;
      const bool has_left = g > 0;
      const bool has_right = g < config_.count - 1;
      const double left =
          i > 0 ? pr.pos[static_cast<std::size_t>(i - 1)] : pr.ghost_left;
      const double right = i < count - 1
                               ? pr.pos[static_cast<std::size_t>(i + 1)]
                               : pr.ghost_right;
      const double f = chain_force(left, pr.pos[static_cast<std::size_t>(i)],
                                   right, has_left, has_right,
                                   config_.stiffness, config_.rest_length);
      pr.vel[static_cast<std::size_t>(i)] += f * config_.dt;
      pr.next_pos[static_cast<std::size_t>(i)] =
          pr.pos[static_cast<std::size_t>(i)] +
          pr.vel[static_cast<std::size_t>(i)] * config_.dt;
    }
    pr.pos.swap(pr.next_pos);

    const double ms = flop_ms_[static_cast<std::size_t>(pr.rank)] * 9.0 *
                      static_cast<double>(count);
    const ProcessorRef me = placement_[static_cast<std::size_t>(pr.rank)];
    const SimTime end =
        net_.host(me).reserve(engine_.now(), SimTime::millis(ms));
    ++pr.iter;
    pr.ghosts_arrived = 0;
    engine_.schedule_at(end, [this, &pr] { start_iteration(pr); });
  }

  ParticleConfig config_;
  const Placement& placement_;
  sim::Engine engine_;
  sim::NetSim net_;
  mmps::System mmps_;
  std::vector<double> flop_ms_;
  std::vector<ParticleRank> ranks_;
  SimTime finish_;
};

}  // namespace

DistributedParticlesResult run_distributed_particles(
    const Network& network, const Placement& placement,
    const PartitionVector& partition, const ParticleConfig& config,
    std::uint64_t seed, const sim::NetSimParams& sim_params) {
  NP_REQUIRE(!placement.empty(), "placement must be non-empty");
  ParticleRunner runner(network, placement, partition, config, seed,
                        sim_params);
  return runner.run();
}

}  // namespace netpart::apps

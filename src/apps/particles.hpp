// A one-dimensional particle-chain simulation (springs between neighbouring
// particles, leapfrog integration).
//
// The paper's PDU concept explicitly covers "a collection of particles in a
// particle simulation"; this application exercises that corner of the model
// and a very different cost regime from the stencil: per-cycle messages are
// a single particle position (8 bytes), so communication is latency-bound
// and the partitioner should select few, fast processors even for large
// particle counts.
//
//   PDU            = one particle (num_PDUs = count)
//   ops_per_pdu    = ~9 flops (two spring forces + leapfrog update)
//   topology       = 1-D, bytes/message = 8
#pragma once

#include <cstdint>
#include <vector>

#include "dp/partition_vector.hpp"
#include "dp/phases.hpp"
#include "net/network.hpp"
#include "sim/netsim.hpp"
#include "topo/placement.hpp"

namespace netpart::apps {

struct ParticleConfig {
  int count = 4096;     ///< number of particles
  int iterations = 50;  ///< leapfrog steps
  double dt = 0.01;
  double stiffness = 1.0;
  double rest_length = 1.0;
};

/// Annotated computation for the partitioner and executor.
ComputationSpec make_particle_spec(const ParticleConfig& config);

struct ParticleState {
  std::vector<double> position;
  std::vector<double> velocity;
};

/// Deterministic perturbed-lattice initial condition.
ParticleState make_initial_particles(const ParticleConfig& config,
                                     std::uint64_t seed);

/// Sequential leapfrog reference.
ParticleState run_sequential_particles(const ParticleConfig& config,
                                       std::uint64_t seed);

struct DistributedParticlesResult {
  ParticleState state;
  SimTime elapsed;
  std::uint64_t messages = 0;
};

/// Distributed run over MMPS: each rank owns a contiguous block of the
/// chain and exchanges its boundary particle positions with both
/// neighbours every step.  Bit-identical to the sequential reference.
DistributedParticlesResult run_distributed_particles(
    const Network& network, const Placement& placement,
    const PartitionVector& partition, const ParticleConfig& config,
    std::uint64_t seed = 5, const sim::NetSimParams& sim_params = {});

}  // namespace netpart::apps

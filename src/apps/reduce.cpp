#include "apps/reduce.hpp"

#include <memory>

#include "mmps/coercion.hpp"
#include "mmps/system.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace netpart::apps {

ComputationSpec make_reduce_spec(const ReduceConfig& config) {
  NP_REQUIRE(config.count >= 2, "need at least two values");
  const std::int64_t count = config.count;

  ComputationPhaseSpec local;
  local.name = "local-sum";
  local.num_pdus = [count] { return count; };
  local.ops_per_pdu = [] { return 1.0; };  // one add per value
  local.op_kind = OpKind::FloatingPoint;

  CommunicationPhaseSpec combine;
  combine.name = "combine";
  combine.topology = [] { return Topology::Tree; };
  combine.bytes_per_message = [](std::int64_t) {
    return std::int64_t{8};  // one double partial
  };

  return ComputationSpec("reduce", {local}, {combine}, config.iterations);
}

std::vector<double> make_reduce_input(std::int64_t count,
                                      std::uint64_t seed) {
  std::vector<double> values(static_cast<std::size_t>(count));
  Rng rng(seed);
  for (double& v : values) {
    v = 2.0 * rng.next_double() - 1.0;
  }
  return values;
}

double sequential_sum(const std::vector<double>& values) {
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc;
}

namespace {

struct ReduceRank {
  int rank = 0;
  double local = 0.0;     ///< local block sum (computed once per iteration)
  double combined = 0.0;  ///< local + children partials
  int children_expected = 0;
  int children_arrived = 0;
  int iter = 0;
  bool local_done = false;
};

class ReduceRunner {
 public:
  ReduceRunner(const Network& network, const Placement& placement,
               const PartitionVector& partition, const ReduceConfig& config,
               std::uint64_t seed, const sim::NetSimParams& sim_params)
      : config_(config),
        placement_(placement),
        net_(engine_, network, sim_params, Rng(seed ^ 0x7EE5)),
        mmps_(net_),
        flop_ms_(build_flop_ms(network, placement)) {
    partition.validate(config.count);
    const std::vector<double> input =
        make_reduce_input(config.count, seed);
    const auto ranges = partition.block_ranges();
    const int p = static_cast<int>(placement.size());
    ranks_.resize(placement.size());
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      ReduceRank& rr = ranks_[r];
      rr.rank = static_cast<int>(r);
      double sum = 0.0;
      for (std::int64_t i = ranges[r].first; i < ranges[r].second; ++i) {
        sum += input[static_cast<std::size_t>(i)];
      }
      rr.local = sum;
      const int left = 2 * rr.rank + 1;
      const int right = 2 * rr.rank + 2;
      rr.children_expected = (left < p ? 1 : 0) + (right < p ? 1 : 0);
    }
    blocks_ = ranges;
  }

  DistributedReduceResult run() {
    for (ReduceRank& rr : ranks_) {
      engine_.schedule_at(SimTime::zero(),
                          [this, &rr] { start_iteration(rr); });
    }
    engine_.run();
    NP_ASSERT(mmps_.unclaimed() == 0);
    DistributedReduceResult result;
    result.value = root_value_;
    result.elapsed = finish_;
    result.messages = net_.messages_delivered();
    return result;
  }

 private:
  static std::vector<double> build_flop_ms(const Network& network,
                                           const Placement& placement) {
    std::vector<double> out;
    out.reserve(placement.size());
    for (const ProcessorRef& ref : placement) {
      out.push_back(
          network.cluster(ref.cluster).type().flop_time.as_millis());
    }
    return out;
  }

  void start_iteration(ReduceRank& rr) {
    if (rr.iter == config_.iterations) {
      finish_ = std::max(finish_, engine_.now());
      return;
    }
    // Local block sum: one add per owned value.
    const std::int64_t count =
        blocks_[static_cast<std::size_t>(rr.rank)].second -
        blocks_[static_cast<std::size_t>(rr.rank)].first;
    const ProcessorRef me = placement_[static_cast<std::size_t>(rr.rank)];
    const SimTime end = net_.host(me).reserve(
        engine_.now(),
        SimTime::millis(flop_ms_[static_cast<std::size_t>(rr.rank)] *
                        static_cast<double>(count)));
    rr.combined = rr.local;
    rr.children_arrived = 0;
    rr.local_done = false;

    // Children partials may arrive at any time; post the receives now.
    const int p = static_cast<int>(ranks_.size());
    for (const int child : {2 * rr.rank + 1, 2 * rr.rank + 2}) {
      if (child >= p) continue;
      mmps_.recv(me, placement_[static_cast<std::size_t>(child)], rr.iter,
                 [this, &rr](mmps::Message msg) {
                   const auto v = mmps::decode_array<double>(msg.payload);
                   NP_ASSERT(v.size() == 1);
                   rr.combined += v[0];
                   ++rr.children_arrived;
                   maybe_forward(rr);
                 });
    }
    engine_.schedule_at(end, [this, &rr] {
      rr.local_done = true;
      maybe_forward(rr);
    });
  }

  /// Once the local sum and all children partials are in, forward up the
  /// tree (or record the result at the root) and begin the next iteration.
  void maybe_forward(ReduceRank& rr) {
    if (!rr.local_done || rr.children_arrived != rr.children_expected) {
      return;
    }
    const ProcessorRef me = placement_[static_cast<std::size_t>(rr.rank)];
    if (rr.rank == 0) {
      root_value_ = rr.combined;
    } else {
      const int parent = (rr.rank - 1) / 2;
      const double payload[] = {rr.combined};
      mmps_.send(me, placement_[static_cast<std::size_t>(parent)], rr.iter,
                 mmps::encode_array(std::span<const double>(payload)));
    }
    ++rr.iter;
    const SimTime ready = net_.host(me).busy_until();
    engine_.schedule_at(std::max(ready, engine_.now()),
                        [this, &rr] { start_iteration(rr); });
  }

  ReduceConfig config_;
  const Placement& placement_;
  sim::Engine engine_;
  sim::NetSim net_;
  mmps::System mmps_;
  std::vector<double> flop_ms_;
  std::vector<ReduceRank> ranks_;
  std::vector<std::pair<std::int64_t, std::int64_t>> blocks_;
  double root_value_ = 0.0;
  SimTime finish_;
};

}  // namespace

DistributedReduceResult run_distributed_reduce(
    const Network& network, const Placement& placement,
    const PartitionVector& partition, const ReduceConfig& config,
    std::uint64_t seed, const sim::NetSimParams& sim_params) {
  NP_REQUIRE(!placement.empty(), "placement must be non-empty");
  ReduceRunner runner(network, placement, partition, config, seed,
                      sim_params);
  return runner.run();
}

}  // namespace netpart::apps

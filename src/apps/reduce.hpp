// Parallel global reduction over the tree topology.
//
// A classic data parallel primitive (the related-work systems of Reeves et
// al. specialised in exactly these): each task reduces its block of values
// locally, then partial sums combine up a binary tree to rank 0.  The PDU
// is one value; communication is one 8-byte partial per tree edge per
// cycle; iterations model repeated reductions (e.g. convergence tests in an
// outer solver loop).
//
// Exercises the Tree topology end to end: calibration, estimation,
// execution, and a functional MMPS implementation whose result is compared
// against the sequential sum.
#pragma once

#include <cstdint>
#include <vector>

#include "dp/partition_vector.hpp"
#include "dp/phases.hpp"
#include "net/network.hpp"
#include "sim/netsim.hpp"
#include "topo/placement.hpp"

namespace netpart::apps {

struct ReduceConfig {
  std::int64_t count = 100000;  ///< values to reduce
  int iterations = 20;          ///< repeated reductions
};

/// Annotated computation for the partitioner and executor.
ComputationSpec make_reduce_spec(const ReduceConfig& config);

/// Deterministic test data.
std::vector<double> make_reduce_input(std::int64_t count,
                                      std::uint64_t seed);

/// Sequential reference sum (left-to-right order).
double sequential_sum(const std::vector<double>& values);

struct DistributedReduceResult {
  double value = 0.0;  ///< the tree-combined sum at rank 0
  SimTime elapsed;
  std::uint64_t messages = 0;
};

/// Functional tree reduction over MMPS.  The combination order differs
/// from sequential (tree vs linear), so the result matches up to floating
/// point reassociation, not bit-exactly.
DistributedReduceResult run_distributed_reduce(
    const Network& network, const Placement& placement,
    const PartitionVector& partition, const ReduceConfig& config,
    std::uint64_t seed = 2, const sim::NetSimParams& sim_params = {});

}  // namespace netpart::apps

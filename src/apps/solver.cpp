#include "apps/solver.hpp"

#include <algorithm>
#include <cmath>

#include "apps/stencil.hpp"
#include "mmps/coercion.hpp"
#include "mmps/system.hpp"
#include "util/error.hpp"

namespace netpart::apps {

ComputationSpec make_solver_spec(const SolverConfig& config) {
  NP_REQUIRE(config.n >= 3, "solver needs at least a 3x3 grid");
  const int n = config.n;

  ComputationPhaseSpec sweep;
  sweep.name = "sweep";
  sweep.num_pdus = [n] { return static_cast<std::int64_t>(n); };
  // 5 flops per point for the stencil + 1 for the residual accumulation.
  sweep.ops_per_pdu = [n] { return 6.0 * n; };
  sweep.op_kind = OpKind::FloatingPoint;

  CommunicationPhaseSpec borders;
  borders.name = "borders";
  borders.topology = [] { return Topology::OneD; };
  borders.bytes_per_message = [n](std::int64_t) {
    return static_cast<std::int64_t>(4) * n;
  };

  CommunicationPhaseSpec norm;
  norm.name = "norm";
  norm.topology = [] { return Topology::Tree; };
  norm.bytes_per_message = [](std::int64_t) { return std::int64_t{8}; };

  return ComputationSpec("jacobi-solver", {sweep}, {borders, norm},
                         config.iterations);
}

namespace {

/// One Jacobi sweep over rows [glo, ghi) of an (rows+2) x n local buffer
/// (ghosts at local rows 0 and rows+1); returns the residual contribution.
/// `lo` is the first owned global row.  Boundary rows/columns are fixed.
double sweep_rows(const std::vector<float>& cur, std::vector<float>& next,
                  int n, int lo, int glo, int ghi) {
  double residual = 0.0;
  for (int row = glo; row < ghi; ++row) {
    if (row == 0 || row == n - 1) continue;
    const int lr = row - lo + 1;
    const float* above = cur.data() + static_cast<std::ptrdiff_t>(lr - 1) * n;
    const float* here = cur.data() + static_cast<std::ptrdiff_t>(lr) * n;
    const float* below = cur.data() + static_cast<std::ptrdiff_t>(lr + 1) * n;
    float* out = next.data() + static_cast<std::ptrdiff_t>(lr) * n;
    out[0] = here[0];
    out[n - 1] = here[n - 1];
    for (int j = 1; j < n - 1; ++j) {
      const float v =
          0.25f * (above[j] + below[j] + here[j - 1] + here[j + 1]);
      out[j] = v;
      residual += std::abs(static_cast<double>(v) -
                           static_cast<double>(here[j]));
    }
  }
  return residual;
}

}  // namespace

std::vector<double> run_sequential_solver(const SolverConfig& config,
                                          std::vector<float>& grid) {
  const int n = config.n;
  grid = make_initial_grid(n);
  // Wrap the full grid with ghost rows so sweep_rows can be shared with
  // the distributed path (ghosts stay zero and are never read: rows 0 and
  // n-1 are fixed boundary).
  std::vector<float> cur(static_cast<std::size_t>(n + 2) * n, 0.0f);
  std::copy(grid.begin(), grid.end(), cur.begin() + n);
  std::vector<float> next = cur;
  std::vector<double> residuals;
  for (int it = 0; it < config.iterations; ++it) {
    const double r = sweep_rows(cur, next, n, /*lo=*/0, 0, n);
    // Boundary rows carry over.
    std::copy_n(cur.begin() + n, n, next.begin() + n);
    std::copy_n(cur.begin() + static_cast<std::ptrdiff_t>(n) * n, n,
                next.begin() + static_cast<std::ptrdiff_t>(n) * n);
    cur.swap(next);
    residuals.push_back(r);
  }
  std::copy_n(cur.begin() + n, static_cast<std::ptrdiff_t>(n) * n,
              grid.begin());
  return residuals;
}

namespace {

struct SolverRank {
  int rank = 0;
  int lo = 0;
  int hi = 0;
  std::vector<float> cur;
  std::vector<float> next;
  int iter = 0;
  int ghosts_expected = 0;
  int ghosts_arrived = 0;
  bool waiting_ghosts = false;
  // Norm reduction state.
  double own_residual = 0.0;
  double child_partial[2] = {0.0, 0.0};
  bool child_seen[2] = {false, false};
  int children_expected = 0;
  int children_arrived = 0;
  bool sweep_done = false;
};

class SolverRunner {
 public:
  SolverRunner(const Network& network, const Placement& placement,
               const PartitionVector& partition, const SolverConfig& config,
               const sim::NetSimParams& sim_params)
      : n_(config.n),
        iterations_(config.iterations),
        placement_(placement),
        net_(engine_, network, sim_params, Rng(23)),
        mmps_(net_),
        flop_ms_([&] {
          std::vector<double> out;
          for (const ProcessorRef& ref : placement) {
            out.push_back(
                network.cluster(ref.cluster).type().flop_time.as_millis());
          }
          return out;
        }()) {
    partition.validate(config.n);
    const std::vector<float> init = make_initial_grid(n_);
    const auto ranges = partition.block_ranges();
    const int p = static_cast<int>(placement.size());
    ranks_.resize(placement.size());
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      SolverRank& sr = ranks_[r];
      sr.rank = static_cast<int>(r);
      sr.lo = static_cast<int>(ranges[r].first);
      sr.hi = static_cast<int>(ranges[r].second);
      const int rows = sr.hi - sr.lo;
      sr.cur.assign(static_cast<std::size_t>(rows + 2) * n_, 0.0f);
      for (int row = sr.lo; row < sr.hi; ++row) {
        std::copy_n(init.begin() + static_cast<std::ptrdiff_t>(row) * n_,
                    n_,
                    sr.cur.begin() +
                        static_cast<std::ptrdiff_t>(row - sr.lo + 1) * n_);
      }
      sr.next = sr.cur;
      sr.ghosts_expected =
          (r > 0 ? 1 : 0) + (r + 1 < ranks_.size() ? 1 : 0);
      sr.children_expected = (2 * sr.rank + 1 < p ? 1 : 0) +
                             (2 * sr.rank + 2 < p ? 1 : 0);
    }
    residuals_.reserve(static_cast<std::size_t>(iterations_));
  }

  DistributedSolverResult run() {
    for (SolverRank& sr : ranks_) {
      engine_.schedule_at(SimTime::zero(),
                          [this, &sr] { start_iteration(sr); });
    }
    engine_.run();
    NP_ASSERT(mmps_.unclaimed() == 0);
    DistributedSolverResult result;
    result.elapsed = finish_;
    result.messages = net_.messages_delivered();
    result.residuals = residuals_;
    result.grid.assign(static_cast<std::size_t>(n_) * n_, 0.0f);
    for (const SolverRank& sr : ranks_) {
      for (int row = sr.lo; row < sr.hi; ++row) {
        std::copy_n(sr.cur.begin() +
                        static_cast<std::ptrdiff_t>(row - sr.lo + 1) * n_,
                    n_,
                    result.grid.begin() +
                        static_cast<std::ptrdiff_t>(row) * n_);
      }
    }
    return result;
  }

 private:
  float* row_ptr(std::vector<float>& buf, int local_row) {
    return buf.data() + static_cast<std::ptrdiff_t>(local_row) * n_;
  }

  void start_iteration(SolverRank& sr) {
    if (sr.iter == iterations_) {
      finish_ = std::max(finish_, engine_.now());
      return;
    }
    sr.ghosts_arrived = 0;
    sr.children_arrived = 0;
    sr.child_seen[0] = sr.child_seen[1] = false;
    sr.sweep_done = false;

    const ProcessorRef me = placement_[static_cast<std::size_t>(sr.rank)];
    const int rows = sr.hi - sr.lo;
    const int p = static_cast<int>(ranks_.size());

    // Norm-phase receives from tree children can arrive any time after
    // the children finish their sweeps; install handlers up front.
    for (int side = 0; side < 2; ++side) {
      const int child = 2 * sr.rank + 1 + side;
      if (child >= p) continue;
      mmps_.recv(me, placement_[static_cast<std::size_t>(child)],
                 norm_tag(sr.iter), [this, &sr, side](mmps::Message msg) {
                   const auto v = mmps::decode_array<double>(msg.payload);
                   NP_ASSERT(v.size() == 1);
                   sr.child_partial[side] = v[0];
                   sr.child_seen[side] = true;
                   ++sr.children_arrived;
                   maybe_reduce(sr);
                 });
    }

    // Halo exchange (tag parity distinguishes the phases).
    const auto install_ghost = [this, &sr](int local_row) {
      return [this, &sr, local_row](mmps::Message msg) {
        const std::vector<float> row = mmps::decode_array<float>(msg.payload);
        NP_ASSERT(static_cast<int>(row.size()) == n_);
        std::copy(row.begin(), row.end(), row_ptr(sr.cur, local_row));
        ++sr.ghosts_arrived;
        if (sr.waiting_ghosts &&
            sr.ghosts_arrived == sr.ghosts_expected) {
          sr.waiting_ghosts = false;
          do_sweep(sr);
        }
      };
    };
    if (sr.rank > 0) {
      mmps_.recv(me, placement_[static_cast<std::size_t>(sr.rank - 1)],
                 border_tag(sr.iter), install_ghost(0));
      const std::span<const float> row(row_ptr(sr.cur, 1), n_);
      mmps_.send(me, placement_[static_cast<std::size_t>(sr.rank - 1)],
                 border_tag(sr.iter), mmps::encode_array(row));
    }
    if (sr.rank + 1 < p) {
      mmps_.recv(me, placement_[static_cast<std::size_t>(sr.rank + 1)],
                 border_tag(sr.iter), install_ghost(rows + 1));
      const std::span<const float> row(row_ptr(sr.cur, rows), n_);
      mmps_.send(me, placement_[static_cast<std::size_t>(sr.rank + 1)],
                 border_tag(sr.iter), mmps::encode_array(row));
    }

    const SimTime ready = net_.host(me).busy_until();
    engine_.schedule_at(std::max(ready, engine_.now()), [this, &sr] {
      if (sr.ghosts_arrived < sr.ghosts_expected) {
        sr.waiting_ghosts = true;
        return;
      }
      do_sweep(sr);
    });
  }

  void do_sweep(SolverRank& sr) {
    const int rows = sr.hi - sr.lo;
    sr.own_residual = sweep_rows(sr.cur, sr.next, n_, sr.lo, sr.lo, sr.hi);
    if (sr.lo == 0) {
      std::copy_n(row_ptr(sr.cur, 1), n_, row_ptr(sr.next, 1));
    }
    if (sr.hi == n_) {
      std::copy_n(row_ptr(sr.cur, rows), n_, row_ptr(sr.next, rows));
    }
    sr.cur.swap(sr.next);

    const ProcessorRef me = placement_[static_cast<std::size_t>(sr.rank)];
    const double ms = flop_ms_[static_cast<std::size_t>(sr.rank)] * 6.0 *
                      n_ * rows;
    const SimTime end =
        net_.host(me).reserve(engine_.now(), SimTime::millis(ms));
    engine_.schedule_at(end, [this, &sr] {
      sr.sweep_done = true;
      maybe_reduce(sr);
    });
  }

  /// Combine own residual with children partials (fixed left-then-right
  /// order for determinism) and forward up the tree.
  void maybe_reduce(SolverRank& sr) {
    if (!sr.sweep_done || sr.children_arrived != sr.children_expected) {
      return;
    }
    double combined = sr.own_residual;
    if (sr.child_seen[0]) combined += sr.child_partial[0];
    if (sr.child_seen[1]) combined += sr.child_partial[1];

    const ProcessorRef me = placement_[static_cast<std::size_t>(sr.rank)];
    if (sr.rank == 0) {
      residuals_.push_back(combined);
    } else {
      const int parent = (sr.rank - 1) / 2;
      const double payload[] = {combined};
      mmps_.send(me, placement_[static_cast<std::size_t>(parent)],
                 norm_tag(sr.iter),
                 mmps::encode_array(std::span<const double>(payload)));
    }
    ++sr.iter;
    const SimTime ready = net_.host(me).busy_until();
    engine_.schedule_at(std::max(ready, engine_.now()),
                        [this, &sr] { start_iteration(sr); });
  }

  static std::int32_t border_tag(int iter) { return 2 * iter; }
  static std::int32_t norm_tag(int iter) { return 2 * iter + 1; }

  int n_;
  int iterations_;
  const Placement& placement_;
  sim::Engine engine_;
  sim::NetSim net_;
  mmps::System mmps_;
  std::vector<double> flop_ms_;
  std::vector<SolverRank> ranks_;
  std::vector<double> residuals_;
  SimTime finish_;
};

}  // namespace

DistributedSolverResult run_distributed_solver(
    const Network& network, const Placement& placement,
    const PartitionVector& partition, const SolverConfig& config,
    const sim::NetSimParams& sim_params) {
  NP_REQUIRE(!placement.empty(), "placement must be non-empty");
  SolverRunner runner(network, placement, partition, config, sim_params);
  return runner.run();
}

}  // namespace netpart::apps

// Iterative Jacobi solver with convergence monitoring.
//
// The stencil of Section 6 plus the piece real solvers add: a global
// residual norm every sweep.  That makes this the library's only
// application with *two* communication phases --
//
//   borders : 1-D topology, 4N bytes   (halo exchange)
//   norm    : tree topology, 8 bytes   (residual reduction)
//
// -- so the partitioner's dominant-phase rule (Section 4: only the phase
// with the largest communication complexity drives the estimate) is
// exercised by a real program: `borders` dominates, and the tree phase
// rides along.  The functional implementation runs both phases through
// MMPS and reproduces the sequential sweep + norm bit-for-bit at the root.
#pragma once

#include <cstdint>
#include <vector>

#include "dp/partition_vector.hpp"
#include "dp/phases.hpp"
#include "net/network.hpp"
#include "sim/netsim.hpp"
#include "topo/placement.hpp"

namespace netpart::apps {

struct SolverConfig {
  int n = 120;           ///< grid dimension
  int iterations = 10;   ///< sweeps (each followed by a norm reduction)
};

/// Annotated computation: one computation phase, two communication phases.
ComputationSpec make_solver_spec(const SolverConfig& config);

/// Sequential reference: returns the residual-norm series (sum over
/// interior points of |new - old| after each sweep) and leaves the final
/// grid in `grid`.
std::vector<double> run_sequential_solver(const SolverConfig& config,
                                          std::vector<float>& grid);

struct DistributedSolverResult {
  std::vector<float> grid;        ///< final grid
  std::vector<double> residuals;  ///< norm after each sweep (at rank 0)
  SimTime elapsed;
  std::uint64_t messages = 0;
};

/// Functional distributed run: halo exchange per sweep, then a tree
/// reduction of the per-rank residual contributions.
DistributedSolverResult run_distributed_solver(
    const Network& network, const Placement& placement,
    const PartitionVector& partition, const SolverConfig& config,
    const sim::NetSimParams& sim_params = {});

}  // namespace netpart::apps

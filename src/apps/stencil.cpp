#include "apps/stencil.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "exec/threaded.hpp"
#include "mmps/coercion.hpp"
#include "mmps/system.hpp"
#include "sim/faults.hpp"
#include "util/error.hpp"

namespace netpart::apps {

ComputationSpec make_stencil_spec(const StencilConfig& config) {
  NP_REQUIRE(config.n >= 3, "stencil needs at least a 3x3 grid");
  const int n = config.n;

  ComputationPhaseSpec grid;
  grid.name = "grid";
  grid.num_pdus = [n] { return static_cast<std::int64_t>(n); };
  grid.ops_per_pdu = [n] { return 5.0 * n; };
  grid.op_kind = OpKind::FloatingPoint;

  CommunicationPhaseSpec borders;
  borders.name = "borders";
  borders.topology = [] { return Topology::OneD; };
  borders.bytes_per_message = [n](std::int64_t) {
    return static_cast<std::int64_t>(4) * n;  // one row of 4-byte points
  };
  if (config.overlap) {
    borders.overlap_with = "grid";
  }

  return ComputationSpec(config.overlap ? "STEN-2" : "STEN-1", {grid},
                         {borders}, config.iterations);
}

ComputationSpec make_stencil2d_spec(const StencilConfig& config) {
  NP_REQUIRE(config.n >= 3, "stencil needs at least a 3x3 grid");
  const std::int64_t n = config.n;

  ComputationPhaseSpec grid;
  grid.name = "grid";
  grid.num_pdus = [n] { return n * n; };
  grid.ops_per_pdu = [] { return 9.0; };  // 9-point update per cell
  grid.op_kind = OpKind::FloatingPoint;

  CommunicationPhaseSpec borders;
  borders.name = "borders";
  borders.topology = [] { return Topology::TwoD; };
  borders.bytes_per_message = [](std::int64_t a_i) {
    // One side of an approximately square block of a_i cells, 4 bytes per
    // point.
    const auto side = static_cast<std::int64_t>(
        std::sqrt(static_cast<double>(a_i)) + 0.5);
    return 4 * std::max<std::int64_t>(side, 1);
  };
  if (config.overlap) {
    borders.overlap_with = "grid";
  }

  return ComputationSpec(config.overlap ? "STEN2D-2" : "STEN2D-1", {grid},
                         {borders}, config.iterations);
}

std::vector<float> make_initial_grid(int n) {
  NP_REQUIRE(n >= 3, "stencil needs at least a 3x3 grid");
  std::vector<float> grid(static_cast<std::size_t>(n) * n, 0.0f);
  for (int j = 0; j < n; ++j) {
    grid[static_cast<std::size_t>(j)] = 100.0f;  // top boundary row
  }
  return grid;
}

void sequential_sweep(std::vector<float>& grid, std::vector<float>& scratch,
                      int n) {
  NP_REQUIRE(grid.size() == static_cast<std::size_t>(n) * n,
             "grid size mismatch");
  scratch = grid;
  const auto at = [n](const std::vector<float>& g, int i, int j) {
    return g[static_cast<std::size_t>(i) * n + j];
  };
  for (int i = 1; i < n - 1; ++i) {
    for (int j = 1; j < n - 1; ++j) {
      scratch[static_cast<std::size_t>(i) * n + j] =
          0.25f * (at(grid, i - 1, j) + at(grid, i + 1, j) +
                   at(grid, i, j - 1) + at(grid, i, j + 1));
    }
  }
  grid.swap(scratch);
}

std::vector<float> run_sequential(const StencilConfig& config) {
  std::vector<float> grid = make_initial_grid(config.n);
  std::vector<float> scratch;
  for (int it = 0; it < config.iterations; ++it) {
    sequential_sweep(grid, scratch, config.n);
  }
  return grid;
}

namespace {

/// Per-rank state of the distributed stencil.  Row storage includes a ghost
/// row above and below the owned block: local row r maps to global row
/// lo + r - 1.
struct RankState {
  int rank = 0;
  int lo = 0;  ///< first owned global row
  int hi = 0;  ///< one past last owned global row
  std::vector<float> cur;   ///< (rows + 2) x n, ghosts at local 0 and rows+1
  std::vector<float> next;
  int iter = 0;
  int ghosts_expected = 0;
  int ghosts_arrived = 0;
  bool waiting = false;
};

class StencilRunner {
 public:
  StencilRunner(const Network& network, const Placement& placement,
                const PartitionVector& partition,
                const StencilConfig& config,
                const sim::NetSimParams& sim_params,
                const sim::FaultPlan* faults, SimTime fault_origin)
      : n_(config.n),
        iterations_(config.iterations),
        overlap_(config.overlap),
        placement_(placement),
        net_(engine_, network, sim_params, Rng(11)),
        mmps_(net_),
        flop_ms_(build_flop_ms(network, placement)) {
    if (faults != nullptr && !faults->empty()) {
      injector_.emplace(net_, *faults, fault_origin);
    }
    partition.validate(config.n);
    const std::vector<float> init = make_initial_grid(n_);
    const auto ranges = partition.block_ranges();
    ranks_.resize(placement.size());
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      RankState& rs = ranks_[r];
      rs.rank = static_cast<int>(r);
      rs.lo = static_cast<int>(ranges[r].first);
      rs.hi = static_cast<int>(ranges[r].second);
      const int rows = rs.hi - rs.lo;
      rs.cur.assign(static_cast<std::size_t>(rows + 2) * n_, 0.0f);
      rs.next = rs.cur;
      for (int row = rs.lo; row < rs.hi; ++row) {
        std::copy_n(init.begin() + static_cast<std::ptrdiff_t>(row) * n_, n_,
                    rs.cur.begin() +
                        static_cast<std::ptrdiff_t>(row - rs.lo + 1) * n_);
      }
      rs.ghosts_expected = (r > 0 ? 1 : 0) +
                           (r + 1 < ranks_.size() ? 1 : 0);
    }
  }

  DistributedStencilResult run() {
    if (injector_.has_value()) {
      injector_->arm();
    }
    for (RankState& rs : ranks_) {
      engine_.schedule_at(SimTime::zero(),
                          [this, &rs] { start_iteration(rs); });
    }
    engine_.run();
    NP_ASSERT(mmps_.unclaimed() == 0);
    for (const RankState& rs : ranks_) {
      NP_ASSERT(rs.iter == iterations_);
    }

    DistributedStencilResult result;
    result.elapsed = finish_;
    result.messages = net_.messages_delivered();
    result.grid.assign(static_cast<std::size_t>(n_) * n_, 0.0f);
    for (const RankState& rs : ranks_) {
      for (int row = rs.lo; row < rs.hi; ++row) {
        std::copy_n(rs.cur.begin() +
                        static_cast<std::ptrdiff_t>(row - rs.lo + 1) * n_,
                    n_,
                    result.grid.begin() +
                        static_cast<std::ptrdiff_t>(row) * n_);
      }
    }
    return result;
  }

 private:
  static std::vector<double> build_flop_ms(const Network& network,
                                           const Placement& placement) {
    std::vector<double> out;
    out.reserve(placement.size());
    for (const ProcessorRef& ref : placement) {
      out.push_back(network.cluster(ref.cluster).type().flop_time.as_millis());
    }
    return out;
  }

  float* row_ptr(std::vector<float>& buf, int local_row) {
    return buf.data() + static_cast<std::ptrdiff_t>(local_row) * n_;
  }

  void start_iteration(RankState& rs) {
    if (rs.iter == iterations_) {
      finish_ = std::max(finish_, engine_.now());
      return;
    }
    post_recvs(rs);
    send_borders(rs);
    // Resume once the host finishes initiating the sends.
    const SimTime ready =
        net_.host(placement_[static_cast<std::size_t>(rs.rank)])
            .busy_until();
    engine_.schedule_at(std::max(ready, engine_.now()), [this, &rs] {
      if (overlap_) {
        compute_then_wait(rs);
      } else {
        wait_then_compute(rs);
      }
    });
  }

  void send_borders(RankState& rs) {
    const ProcessorRef me = placement_[static_cast<std::size_t>(rs.rank)];
    const int rows = rs.hi - rs.lo;
    if (rs.rank > 0) {
      const std::span<const float> row(row_ptr(rs.cur, 1), n_);
      mmps_.send(me, placement_[static_cast<std::size_t>(rs.rank - 1)],
                 rs.iter, mmps::encode_array(row));
    }
    if (rs.rank + 1 < static_cast<int>(ranks_.size())) {
      const std::span<const float> row(row_ptr(rs.cur, rows), n_);
      mmps_.send(me, placement_[static_cast<std::size_t>(rs.rank + 1)],
                 rs.iter, mmps::encode_array(row));
    }
  }

  void post_recvs(RankState& rs) {
    const ProcessorRef me = placement_[static_cast<std::size_t>(rs.rank)];
    const int rows = rs.hi - rs.lo;
    const auto install = [this, &rs](int local_row) {
      return [this, &rs, local_row](mmps::Message msg) {
        const std::vector<float> row = mmps::decode_array<float>(msg.payload);
        NP_ASSERT(static_cast<int>(row.size()) == n_);
        std::copy(row.begin(), row.end(), row_ptr(rs.cur, local_row));
        ++rs.ghosts_arrived;
        if (rs.waiting && rs.ghosts_arrived == rs.ghosts_expected) {
          rs.waiting = false;
          compute_border_rows(rs);
        }
      };
    };
    if (rs.rank > 0) {
      mmps_.recv(me, placement_[static_cast<std::size_t>(rs.rank - 1)],
                 rs.iter, install(0));
    }
    if (rs.rank + 1 < static_cast<int>(ranks_.size())) {
      mmps_.recv(me, placement_[static_cast<std::size_t>(rs.rank + 1)],
                 rs.iter, install(rows + 1));
    }
  }

  /// STEN-1: block for ghosts, then compute the whole owned block.
  void wait_then_compute(RankState& rs) {
    if (rs.ghosts_arrived < rs.ghosts_expected) {
      rs.waiting = true;
      return;
    }
    compute_rows(rs, rs.lo, rs.hi, [this, &rs] { finish_iteration(rs); });
  }

  /// STEN-2: compute rows that need no ghosts while borders are in flight,
  /// then the two border rows once the ghosts arrive.
  void compute_then_wait(RankState& rs) {
    const int interior_lo = rs.lo + 1;
    const int interior_hi = rs.hi - 1;
    compute_rows(rs, interior_lo, interior_hi, [this, &rs] {
      if (rs.ghosts_arrived < rs.ghosts_expected) {
        rs.waiting = true;
        return;
      }
      compute_border_rows(rs);
    });
  }

  void compute_border_rows(RankState& rs) {
    if (overlap_) {
      // The interior is done; finish the first and last owned rows.
      compute_rows(rs, rs.lo, std::min(rs.lo + 1, rs.hi),
                   [this, &rs] {
                     compute_rows(rs, std::max(rs.hi - 1, rs.lo + 1), rs.hi,
                                  [this, &rs] { finish_iteration(rs); });
                   });
    } else {
      compute_rows(rs, rs.lo, rs.hi, [this, &rs] { finish_iteration(rs); });
    }
  }

  /// Relax owned global rows [glo, ghi) into `next`, charging host time at
  /// 5 flops per point, then invoke the continuation.
  void compute_rows(RankState& rs, int glo, int ghi,
                    std::function<void()> done) {
    glo = std::max(glo, rs.lo);
    ghi = std::min(ghi, rs.hi);
    int updated = 0;
    for (int row = glo; row < ghi; ++row) {
      if (row == 0 || row == n_ - 1) continue;  // fixed global boundary
      ++updated;
      const int lr = row - rs.lo + 1;
      const float* above = row_ptr(rs.cur, lr - 1);
      const float* here = row_ptr(rs.cur, lr);
      const float* below = row_ptr(rs.cur, lr + 1);
      float* out = row_ptr(rs.next, lr);
      out[0] = here[0];
      out[n_ - 1] = here[n_ - 1];
      for (int j = 1; j < n_ - 1; ++j) {
        out[j] = 0.25f * (above[j] + below[j] + here[j - 1] + here[j + 1]);
      }
    }
    const double ms =
        flop_ms_[static_cast<std::size_t>(rs.rank)] * 5.0 * n_ * updated;
    const SimTime end =
        net_.host(placement_[static_cast<std::size_t>(rs.rank)])
            .reserve(engine_.now(), SimTime::millis(ms));
    engine_.schedule_at(end, std::move(done));
  }

  void finish_iteration(RankState& rs) {
    // Rows that were not relaxed (global boundary) carry over unchanged.
    const int rows = rs.hi - rs.lo;
    if (rs.lo == 0) {
      std::copy_n(row_ptr(rs.cur, 1), n_, row_ptr(rs.next, 1));
    }
    if (rs.hi == n_) {
      std::copy_n(row_ptr(rs.cur, rows), n_, row_ptr(rs.next, rows));
    }
    rs.cur.swap(rs.next);
    ++rs.iter;
    rs.ghosts_arrived = 0;
    start_iteration(rs);
  }

  int n_;
  int iterations_;
  bool overlap_;
  const Placement& placement_;
  sim::Engine engine_;
  sim::NetSim net_;
  mmps::System mmps_;
  std::optional<sim::FaultInjector> injector_;
  std::vector<double> flop_ms_;
  std::vector<RankState> ranks_;
  SimTime finish_;
};

}  // namespace

DistributedStencilResult run_distributed_stencil(
    const Network& network, const Placement& placement,
    const PartitionVector& partition, const StencilConfig& config,
    const sim::NetSimParams& sim_params, const sim::FaultPlan* faults,
    SimTime fault_origin) {
  NP_REQUIRE(!placement.empty(), "placement must be non-empty");
  StencilRunner runner(network, placement, partition, config, sim_params,
                       faults, fault_origin);
  return runner.run();
}

ThreadedStencilResult run_threaded_stencil(const Network& network,
                                           const Placement& placement,
                                           const PartitionVector& partition,
                                           const StencilConfig& config) {
  NP_REQUIRE(!placement.empty(), "placement must be non-empty");
  partition.validate(config.n);
  const int n = config.n;
  const int p = static_cast<int>(placement.size());
  const auto ranges = partition.block_ranges();

  // Emulated slowdown per rank: extra spin work relative to the fastest
  // machine model in the placement.
  SimTime fastest = SimTime::max();
  for (const ProcessorRef& ref : placement) {
    fastest = std::min(fastest,
                       network.cluster(ref.cluster).type().flop_time);
  }
  std::vector<double> extra_factor;
  for (const ProcessorRef& ref : placement) {
    const double ratio =
        network.cluster(ref.cluster).type().flop_time.as_seconds() /
        fastest.as_seconds();
    extra_factor.push_back(ratio - 1.0);
  }

  const std::vector<float> init = make_initial_grid(n);
  ThreadedStencilResult result;
  result.grid.assign(static_cast<std::size_t>(n) * n, 0.0f);
  std::mutex grid_mutex;

  const auto t0 = std::chrono::steady_clock::now();
  threaded::run_spmd(p, [&](GlobalRank rank, threaded::Comm& comm) {
    const int lo = static_cast<int>(ranges[static_cast<std::size_t>(rank)]
                                        .first);
    const int hi = static_cast<int>(ranges[static_cast<std::size_t>(rank)]
                                        .second);
    const int rows = hi - lo;
    std::vector<float> cur(static_cast<std::size_t>(rows + 2) * n, 0.0f);
    for (int row = lo; row < hi; ++row) {
      std::copy_n(init.begin() + static_cast<std::ptrdiff_t>(row) * n, n,
                  cur.begin() +
                      static_cast<std::ptrdiff_t>(row - lo + 1) * n);
    }
    std::vector<float> next = cur;
    const auto row_at = [&](std::vector<float>& buf, int local) {
      return buf.data() + static_cast<std::ptrdiff_t>(local) * n;
    };

    for (int iter = 0; iter < config.iterations; ++iter) {
      // Exchange borders (STEN-1 structure).
      if (rank > 0) {
        comm.send(rank, rank - 1, iter,
                  mmps::encode_array(
                      std::span<const float>(row_at(cur, 1), n)));
      }
      if (rank + 1 < p) {
        comm.send(rank, rank + 1, iter,
                  mmps::encode_array(
                      std::span<const float>(row_at(cur, rows), n)));
      }
      if (rank > 0) {
        const auto ghost = mmps::decode_array<float>(
            comm.recv(rank, rank - 1, iter).payload);
        std::copy(ghost.begin(), ghost.end(), row_at(cur, 0));
      }
      if (rank + 1 < p) {
        const auto ghost = mmps::decode_array<float>(
            comm.recv(rank, rank + 1, iter).payload);
        std::copy(ghost.begin(), ghost.end(), row_at(cur, rows + 1));
      }

      // Compute (the same arithmetic as the simulator path).
      int updated = 0;
      for (int row = lo; row < hi; ++row) {
        if (row == 0 || row == n - 1) continue;
        ++updated;
        const int lr = row - lo + 1;
        const float* above = row_at(cur, lr - 1);
        const float* here = row_at(cur, lr);
        const float* below = row_at(cur, lr + 1);
        float* out = row_at(next, lr);
        out[0] = here[0];
        out[n - 1] = here[n - 1];
        for (int j = 1; j < n - 1; ++j) {
          out[j] =
              0.25f * (above[j] + below[j] + here[j - 1] + here[j + 1]);
        }
      }
      if (lo == 0) std::copy_n(row_at(cur, 1), n, row_at(next, 1));
      if (hi == n) std::copy_n(row_at(cur, rows), n, row_at(next, rows));
      cur.swap(next);

      // Emulate the slower machine models with extra spin work.
      const double extra =
          extra_factor[static_cast<std::size_t>(rank)];
      if (extra > 0.0) {
        threaded::emulate_compute(5.0 * n * updated, extra);
      }
    }

    const std::lock_guard<std::mutex> lock(grid_mutex);
    for (int row = lo; row < hi; ++row) {
      std::copy_n(cur.begin() +
                      static_cast<std::ptrdiff_t>(row - lo + 1) * n,
                  n,
                  result.grid.begin() +
                      static_cast<std::ptrdiff_t>(row) * n);
    }
  });
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return result;
}

}  // namespace netpart::apps

// The NxN iterative five-point stencil (Section 6 of the paper).
//
// Two artefacts live here:
//
//  * Annotation specs for STEN-1 (no overlap) and STEN-2 (border sends
//    overlapped with the grid computation), exactly as annotated in the
//    paper: PDU = row, 1-D topology, communication complexity 4N bytes,
//    computational complexity 5N flops per row.
//
//  * A functional distributed implementation over MMPS: real float rows are
//    exchanged and the grid relaxed, so the decomposition's numerics can be
//    verified against the sequential reference while the simulator measures
//    the same elapsed time the annotation-level executor predicts.
#pragma once

#include <cstdint>
#include <vector>

#include "dp/partition_vector.hpp"
#include "dp/phases.hpp"
#include "net/network.hpp"
#include "sim/netsim.hpp"
#include "topo/placement.hpp"

namespace netpart::sim {
struct FaultPlan;
}  // namespace netpart::sim

namespace netpart::apps {

struct StencilConfig {
  int n = 300;           ///< grid dimension (and PDU count: one PDU per row)
  int iterations = 10;   ///< paper uses 10
  bool overlap = false;  ///< false = STEN-1, true = STEN-2
};

/// Annotated computation for the partitioner and executor.
ComputationSpec make_stencil_spec(const StencilConfig& config);

/// A 9-point stencil with a two-dimensional block decomposition, annotated
/// at cell granularity: the PDU is one grid cell (num_PDUs = N^2), the
/// topology is the 2-D mesh, and the per-message border is one side of a
/// processor's (approximately square) block -- 4*sqrt(A_i) bytes.  This is
/// the paper's "b may depend on A_i" case: unlike the 1-D row code, the
/// message size shrinks as more processors join.
ComputationSpec make_stencil2d_spec(const StencilConfig& config);

/// Initial grid: top boundary row held at 100.0, everything else 0 (a
/// standard heat-plate configuration; any fixed boundary works).
std::vector<float> make_initial_grid(int n);

/// Jacobi relaxation: every interior point becomes the average of its four
/// neighbours; boundary points are fixed.  One full sweep.
void sequential_sweep(std::vector<float>& grid, std::vector<float>& scratch,
                      int n);

/// Run the sequential reference for `iterations` sweeps.
std::vector<float> run_sequential(const StencilConfig& config);

struct DistributedStencilResult {
  std::vector<float> grid;  ///< assembled final grid
  SimTime elapsed;          ///< simulated time for all iterations
  std::uint64_t messages = 0;
};

/// Execute the stencil with real data movement through MMPS on the
/// simulated network.  `partition` assigns rows to ranks (block
/// decomposition, rank-major in placement order).  For STEN-2 the interior
/// rows are computed while the borders are in flight.
///
/// `faults` (optional) injects a fault schedule into the run's simulator;
/// plan times are absolute pipeline times and `fault_origin` is where this
/// run sits on that clock.  Performance faults (slowdowns, flaps,
/// degradations) delay the run but leave the numerics bit-identical to the
/// sequential reference; crashing a placed host would stall the exchange,
/// so plans here should confine crashes to before `fault_origin`.
DistributedStencilResult run_distributed_stencil(
    const Network& network, const Placement& placement,
    const PartitionVector& partition, const StencilConfig& config,
    const sim::NetSimParams& sim_params = {},
    const sim::FaultPlan* faults = nullptr,
    SimTime fault_origin = SimTime::zero());

struct ThreadedStencilResult {
  std::vector<float> grid;  ///< assembled final grid
  double wall_ms = 0.0;     ///< host wall-clock time (informational)
};

/// Execute the stencil on the real-threads backend: one std::thread per
/// rank, blocking mailbox message passing, heterogeneity emulated by spin
/// work proportional to each processor's flop time.  The numerics are the
/// same as the simulator path, so the result is bit-identical to
/// run_sequential().  STEN-1 structure (exchange, then compute).
ThreadedStencilResult run_threaded_stencil(const Network& network,
                                           const Placement& placement,
                                           const PartitionVector& partition,
                                           const StencilConfig& config);

}  // namespace netpart::apps

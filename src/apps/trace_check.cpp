// trace_check: validate a Chrome trace-event JSON file.
//
// CI's --obs smoke stage runs `netpartd --trace-out trace.json` and then
// this tool, which parses the file with the util/json parser and verifies
// it is a well-formed trace containing every span name given on the
// command line.  Exit 0 on success; 1 with a diagnostic otherwise.
//
// With --fleet the file is treated as a merged multi-node export
// (fleetd --trace-out) and three structural invariants are checked on
// top of the basic ones:
//
//   * span lanes span more than one pid (one pid per fleet node);
//   * every non-root span's parent_span_id resolves to a recorded span
//     of the same trace_id -- parent links survive the MMPS wire hop;
//   * no child span starts before its parent within a trace.  Fleet
//     spans are stamped from the one simulated clock, so the tolerated
//     skew is zero microseconds; --skew-us N relaxes that for traces
//     merged from genuinely independent clocks.
//
// Usage: trace_check [--fleet] [--skew-us N] FILE [required-span-name...]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace {

struct SpanInfo {
  int pid = 0;
  double ts = 0.0;
  std::string name;
};

const netpart::JsonValue* arg_of(const netpart::JsonValue& event,
                                 const char* key) {
  const netpart::JsonValue* args = event.find("args");
  return args == nullptr ? nullptr : args->find(key);
}

}  // namespace

int main(int argc, char** argv) {
  using netpart::JsonValue;
  bool fleet = false;
  double skew_us = 0.0;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    const std::string flag = argv[arg];
    if (flag == "--fleet") {
      fleet = true;
      ++arg;
    } else if (flag == "--skew-us" && arg + 1 < argc) {
      skew_us = std::strtod(argv[arg + 1], nullptr);
      arg += 2;
    } else {
      std::fprintf(stderr, "trace_check: unknown flag %s\n", flag.c_str());
      return 1;
    }
  }
  if (arg >= argc) {
    std::fprintf(stderr,
                 "usage: trace_check [--fleet] [--skew-us N] FILE "
                 "[required-span-name...]\n");
    return 1;
  }
  const char* file = argv[arg++];

  std::ifstream in(file);
  if (!in.good()) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", file);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  try {
    const JsonValue root = JsonValue::parse(buffer.str());
    const JsonValue* events = root.find("traceEvents");
    if (events == nullptr) {
      std::fprintf(stderr, "trace_check: no traceEvents array\n");
      return 1;
    }

    std::set<std::string> span_names;
    std::set<int> span_pids;
    // (trace_id, span_id) -> where/when the span ran; ids are the
    // 16-hex-digit strings the exporter writes (JSON doubles cannot
    // carry a u64, so the strings are compared verbatim).
    std::map<std::pair<std::string, std::string>, SpanInfo> by_id;
    struct Link {
      std::string trace_id, span_id, parent_id;
      double ts;
      std::string name;
    };
    std::vector<Link> links;
    std::size_t spans = 0, instants = 0;
    for (std::size_t i = 0; i < events->size(); ++i) {
      const JsonValue& event = events->at(i);
      const JsonValue* ph = event.find("ph");
      const JsonValue* name = event.find("name");
      if (ph == nullptr || name == nullptr) {
        std::fprintf(stderr,
                     "trace_check: event %zu lacks ph or name\n", i);
        return 1;
      }
      if (ph->as_string() == "X") {
        ++spans;
        span_names.insert(name->as_string());
        if (event.find("ts") == nullptr || event.find("dur") == nullptr) {
          std::fprintf(stderr,
                       "trace_check: span %s lacks ts/dur\n",
                       name->as_string().c_str());
          return 1;
        }
        const JsonValue* pid = event.find("pid");
        if (pid != nullptr) span_pids.insert(static_cast<int>(pid->as_int()));
        const JsonValue* trace_id = arg_of(event, "trace_id");
        const JsonValue* span_id = arg_of(event, "span_id");
        if (trace_id != nullptr && span_id != nullptr) {
          SpanInfo info;
          info.pid = pid == nullptr ? 0 : static_cast<int>(pid->as_int());
          info.ts = event.find("ts")->as_double();
          info.name = name->as_string();
          by_id.emplace(std::make_pair(trace_id->as_string(),
                                       span_id->as_string()),
                        info);
          if (const JsonValue* parent = arg_of(event, "parent_span_id")) {
            links.push_back({trace_id->as_string(), span_id->as_string(),
                             parent->as_string(), info.ts, info.name});
          }
        }
      } else if (ph->as_string() == "i") {
        ++instants;
      }
    }

    bool ok = true;
    if (fleet) {
      if (span_pids.size() < 2) {
        std::fprintf(stderr,
                     "trace_check: fleet trace has %zu span pid lane(s); "
                     "expected one per node (>= 2)\n",
                     span_pids.size());
        ok = false;
      }
      for (const Link& link : links) {
        const auto it = by_id.find({link.trace_id, link.parent_id});
        if (it == by_id.end()) {
          std::fprintf(stderr,
                       "trace_check: span %s (trace %s) names parent %s "
                       "but no such span was recorded\n",
                       link.name.c_str(), link.trace_id.c_str(),
                       link.parent_id.c_str());
          ok = false;
          continue;
        }
        if (link.ts + skew_us < it->second.ts) {
          std::fprintf(stderr,
                       "trace_check: span %s starts %.1f us before its "
                       "parent %s (allowed skew %.1f us)\n",
                       link.name.c_str(), it->second.ts - link.ts,
                       it->second.name.c_str(), skew_us);
          ok = false;
        }
      }
    }
    for (; arg < argc; ++arg) {
      if (span_names.count(argv[arg]) == 0) {
        std::fprintf(stderr, "trace_check: missing span %s\n", argv[arg]);
        ok = false;
      }
    }
    if (!ok) return 1;
    if (fleet) {
      std::printf("trace_check: %s ok (%zu spans, %zu instants, %zu node "
                  "lanes, %zu parent links)\n",
                  file, spans, instants, span_pids.size(), links.size());
    } else {
      std::printf("trace_check: %s ok (%zu spans, %zu instants)\n", file,
                  spans, instants);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_check: %s\n", e.what());
    return 1;
  }
}

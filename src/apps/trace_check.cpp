// trace_check: validate a Chrome trace-event JSON file.
//
// CI's --obs smoke stage runs `netpartd --trace-out trace.json` and then
// this tool, which parses the file with the util/json parser and verifies
// it is a well-formed trace containing every span name given on the
// command line.  Exit 0 on success; 1 with a diagnostic otherwise.
//
// Usage: trace_check FILE [required-span-name...]
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "util/json.hpp"

int main(int argc, char** argv) {
  using netpart::JsonValue;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: trace_check FILE [required-span-name...]\n");
    return 1;
  }

  std::ifstream in(argv[1]);
  if (!in.good()) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  try {
    const JsonValue root = JsonValue::parse(buffer.str());
    const JsonValue* events = root.find("traceEvents");
    if (events == nullptr) {
      std::fprintf(stderr, "trace_check: no traceEvents array\n");
      return 1;
    }

    std::set<std::string> span_names;
    std::size_t spans = 0, instants = 0;
    for (std::size_t i = 0; i < events->size(); ++i) {
      const JsonValue& event = events->at(i);
      const JsonValue* ph = event.find("ph");
      const JsonValue* name = event.find("name");
      if (ph == nullptr || name == nullptr) {
        std::fprintf(stderr,
                     "trace_check: event %zu lacks ph or name\n", i);
        return 1;
      }
      if (ph->as_string() == "X") {
        ++spans;
        span_names.insert(name->as_string());
        if (event.find("ts") == nullptr || event.find("dur") == nullptr) {
          std::fprintf(stderr,
                       "trace_check: span %s lacks ts/dur\n",
                       name->as_string().c_str());
          return 1;
        }
      } else if (ph->as_string() == "i") {
        ++instants;
      }
    }

    bool ok = true;
    for (int a = 2; a < argc; ++a) {
      if (span_names.count(argv[a]) == 0) {
        std::fprintf(stderr, "trace_check: missing span %s\n", argv[a]);
        ok = false;
      }
    }
    if (!ok) return 1;
    std::printf("trace_check: %s ok (%zu spans, %zu instants)\n", argv[1],
                spans, instants);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_check: %s\n", e.what());
    return 1;
  }
}

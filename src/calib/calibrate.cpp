#include "calib/calibrate.hpp"

#include <utility>

#include "topo/comm_cycle.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace netpart {

namespace {

/// Delivery time (ms) of a single src -> dst message on a fresh simulator.
double measure_delivery_ms(const Network& network,
                           const CalibrationParams& params, ProcessorRef src,
                           ProcessorRef dst, std::int64_t bytes) {
  sim::Engine engine;
  sim::NetSim net(engine, network, params.sim_params,
                  Rng(params.seed).stream(0xD0));
  SimTime delivered = SimTime::zero();
  net.send(src, dst, bytes, [&] { delivered = engine.now(); });
  engine.run();
  return delivered.as_millis();
}

}  // namespace

LineFit benchmark_coercion(const Network& network, ClusterId a, ClusterId b,
                           const CalibrationParams& params) {
  NP_REQUIRE(a != b, "coercion benchmark needs two distinct clusters");
  std::vector<double> xs;
  std::vector<double> ys;
  if (!network.needs_coercion(a, b)) {
    // Same data format: the conversion routine is the identity.
    for (std::int64_t bytes : params.message_sizes) {
      xs.push_back(static_cast<double>(bytes));
      ys.push_back(0.0);
    }
    return fit_line(xs, ys);
  }
  // Time the receiver-side conversion routine standalone, as the paper's
  // offline coercion benchmark does.  The routine converts `bytes` bytes on
  // the destination host at its coercion rate.
  const ProcessorType& dst_type = network.cluster(b).type();
  for (std::int64_t bytes : params.message_sizes) {
    xs.push_back(static_cast<double>(bytes));
    ys.push_back((dst_type.coerce_per_byte * bytes).as_millis());
  }
  return fit_line(xs, ys);
}

LineFit benchmark_router(const Network& network, ClusterId a, ClusterId b,
                         const CalibrationParams& params) {
  NP_REQUIRE(a != b, "router benchmark needs two distinct clusters");
  const LineFit coerce = benchmark_coercion(network, a, b, params);

  // cross = init + occ_a + router + occ_b + recv (+ coerce); subtracting
  // the intra-cluster single-message times isolates the router up to a
  // constant, which the line fit absorbs into its intercept.  A singleton
  // cluster has no intra pair to measure; its occupancy then stays inside
  // the fit, overestimating the router conservatively.
  const bool can_intra_a = network.cluster(a).size() >= 2;
  const bool can_intra_b = network.cluster(b).size() >= 2;

  std::vector<double> xs;
  std::vector<double> ys;
  for (std::int64_t bytes : params.message_sizes) {
    const double cross = measure_delivery_ms(
        network, params, ProcessorRef{a, 0}, ProcessorRef{b, 0}, bytes);
    const double intra_a =
        can_intra_a ? measure_delivery_ms(network, params,
                                          ProcessorRef{a, 0},
                                          ProcessorRef{a, 1}, bytes)
                    : 0.0;
    const double intra_b =
        can_intra_b ? measure_delivery_ms(network, params,
                                          ProcessorRef{b, 0},
                                          ProcessorRef{b, 1}, bytes)
                    : 0.0;
    const double coerce_ms =
        coerce.intercept + coerce.slope * static_cast<double>(bytes);
    xs.push_back(static_cast<double>(bytes));
    ys.push_back(cross - intra_a - intra_b - coerce_ms);
  }
  return fit_line(xs, ys);
}

CalibrationResult calibrate(const Network& network,
                            const CalibrationParams& params_in) {
  CalibrationParams params = params_in;
  if (params.topologies.empty()) params.topologies = all_topologies();
  NP_REQUIRE(params.message_sizes.size() >= 2,
             "calibration needs >= 2 message sizes");
  NP_REQUIRE(params.cycles_per_sample >= 1,
             "calibration needs >= 1 cycle per sample");

  CalibrationResult result{CostModelDb(network.num_clusters()), {}};

  for (ClusterId c = 0; c < network.num_clusters(); ++c) {
    const int size = network.cluster(c).size();
    if (size < 2) {
      NP_LOG_WARN << "cluster " << c << " has a single processor; skipping "
                  << "intra-cluster communication calibration";
      continue;
    }
    for (Topology topo : params.topologies) {
      std::vector<Sample2D> samples;
      for (int p = 2; p <= size; ++p) {
        Placement placement;
        for (ProcessorIndex i = 0; i < p; ++i) {
          placement.push_back(ProcessorRef{c, i});
        }
        for (std::int64_t bytes : params.message_sizes) {
          sim::Engine engine;
          sim::NetSim net(engine, network, params.sim_params,
                          Rng(params.seed)
                              .stream(static_cast<std::uint64_t>(c))
                              .stream(static_cast<std::uint64_t>(p)));
          const CycleResult cycle = run_comm_cycles(
              net, placement, topo, bytes, params.cycles_per_sample);
          const double cost = cycle.elapsed_max.as_millis();
          samples.push_back(Sample2D{static_cast<double>(p),
                                     static_cast<double>(bytes), cost});
          result.samples.push_back(
              CommSample{c, topo, p, bytes, cost});
        }
      }
      // A two-processor cluster yields a single p value, which cannot
      // identify the c2/c4 terms; fall back to a line in b at that p (the
      // only operating point the model will ever be evaluated near).
      bool multiple_p = false;
      for (const Sample2D& s : samples) {
        if (s.p != samples.front().p) multiple_p = true;
      }
      Eq1Fit fit;
      if (multiple_p) {
        fit = fit_eq1(samples);
      } else {
        std::vector<double> xs;
        std::vector<double> ys;
        for (const Sample2D& s : samples) {
          xs.push_back(s.b);
          ys.push_back(s.cost);
        }
        const LineFit line = fit_line(xs, ys);
        fit.c1 = line.intercept;
        fit.c3 = line.slope;
        fit.c2 = 0.0;
        fit.c4 = 0.0;
        fit.r2 = line.r2;
      }
      NP_LOG_INFO << "calibrated cluster " << c << " " << to_string(topo)
                  << ": c1=" << fit.c1 << " c2=" << fit.c2
                  << " c3=" << fit.c3 << " c4=" << fit.c4
                  << " (r2=" << fit.r2 << ")";
      result.db.set_comm(c, topo, fit);
    }
  }

  for (ClusterId a = 0; a < network.num_clusters(); ++a) {
    for (ClusterId b = a + 1; b < network.num_clusters(); ++b) {
      result.db.set_router(a, b, benchmark_router(network, a, b, params));
      if (network.needs_coercion(a, b)) {
        result.db.set_coerce(a, b,
                             benchmark_coercion(network, a, b, params));
      }
    }
  }
  return result;
}

}  // namespace netpart

// Offline benchmarking of the communication cost functions.
//
// For every (cluster, topology) pair the calibrator runs the same
// communication-cycle programs the executor uses, over a grid of processor
// counts and message sizes, and fits Eq. 1 by ordinary least squares.
// Router and coercion costs are benchmarked per cluster pair.  This mirrors
// the paper's methodology exactly; only the testbed is a simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "calib/cost_model.hpp"
#include "net/network.hpp"
#include "sim/netsim.hpp"

namespace netpart {

struct CalibrationParams {
  /// Message sizes (bytes) in the benchmark grid.
  std::vector<std::int64_t> message_sizes = {64, 240, 480, 1200, 2400, 4800};
  /// Cycles averaged per (p, b) sample.
  int cycles_per_sample = 3;
  /// Topologies to calibrate; defaults to all supported.
  std::vector<Topology> topologies;
  /// Simulation parameters used during benchmarking (the paper benchmarks
  /// on a lightly loaded network: loss defaults to zero).
  sim::NetSimParams sim_params;
  /// Seed for the benchmarking simulator's random streams.
  std::uint64_t seed = 42;
};

/// One raw benchmark sample, exposed for fit-quality reporting.
struct CommSample {
  ClusterId cluster;
  Topology topology;
  int p;
  std::int64_t bytes;
  double cost_ms;
};

struct CalibrationResult {
  CostModelDb db;
  std::vector<CommSample> samples;
};

/// Benchmark the network and fit all cost functions.
///
/// Every cluster is swept over p = 2..size (clusters of size 1 get a
/// two-point synthetic sweep using a neighbour's shape is NOT attempted:
/// a singleton cluster has no intra-cluster communication and its fit is
/// skipped).  Router and coercion fits are produced for every cluster pair.
CalibrationResult calibrate(const Network& network,
                            const CalibrationParams& params = {});

/// Benchmark only T_router[C_a, C_b]: single-message delivery times across
/// and within clusters, differenced to isolate the router, then fitted
/// against message size.
LineFit benchmark_router(const Network& network, ClusterId a, ClusterId b,
                         const CalibrationParams& params);

/// Benchmark only T_coerce[C_a, C_b]: times the receiver-side conversion
/// routine for b-byte payloads (the paper benchmarks the coercion code
/// standalone the same way).
LineFit benchmark_coercion(const Network& network, ClusterId a, ClusterId b,
                           const CalibrationParams& params);

}  // namespace netpart

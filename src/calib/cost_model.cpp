#include "calib/cost_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace netpart {

namespace {
constexpr std::size_t kNumTopologies = 5;

std::size_t topo_index(Topology t) {
  const auto i = static_cast<std::size_t>(t);
  NP_ASSERT(i < kNumTopologies);
  return i;
}
}  // namespace

CostModelDb::CostModelDb(int num_clusters) : num_clusters_(num_clusters) {
  NP_REQUIRE(num_clusters >= 1, "cost model needs at least one cluster");
  const auto n = static_cast<std::size_t>(num_clusters);
  comm_.resize(n * kNumTopologies);
  router_.resize(n * n);
  coerce_.resize(n * n);
}

std::size_t CostModelDb::topo_slot(ClusterId c, Topology t) const {
  NP_REQUIRE(c >= 0 && c < num_clusters_, "cluster id out of range");
  return static_cast<std::size_t>(c) * kNumTopologies + topo_index(t);
}

std::size_t CostModelDb::pair_slot(ClusterId a, ClusterId b) const {
  NP_REQUIRE(a >= 0 && a < num_clusters_ && b >= 0 && b < num_clusters_,
             "cluster id out of range");
  const auto lo = static_cast<std::size_t>(std::min(a, b));
  const auto hi = static_cast<std::size_t>(std::max(a, b));
  return lo * static_cast<std::size_t>(num_clusters_) + hi;
}

void CostModelDb::set_comm(ClusterId c, Topology t, const Eq1Fit& fit) {
  comm_[topo_slot(c, t)] = fit;
}

bool CostModelDb::has_comm(ClusterId c, Topology t) const {
  return comm_[topo_slot(c, t)].has_value();
}

const Eq1Fit& CostModelDb::comm_fit(ClusterId c, Topology t) const {
  const auto& fit = comm_[topo_slot(c, t)];
  NP_REQUIRE(fit.has_value(), "no communication fit for cluster/topology; "
                              "run calibration first");
  return *fit;
}

double CostModelDb::comm_ms(ClusterId c, Topology t, double bytes,
                            double p) const {
  // p <= 1 means no inter-processor communication within the cluster.
  if (p <= 1.0) return 0.0;
  return std::abs(comm_fit(c, t).evaluate(bytes, p));
}

void CostModelDb::set_router(ClusterId a, ClusterId b, const LineFit& fit) {
  NP_REQUIRE(a != b, "router fit needs two distinct clusters");
  router_[pair_slot(a, b)] = fit;
}

void CostModelDb::set_coerce(ClusterId a, ClusterId b, const LineFit& fit) {
  NP_REQUIRE(a != b, "coercion fit needs two distinct clusters");
  coerce_[pair_slot(a, b)] = fit;
}

double CostModelDb::router_ms(ClusterId a, ClusterId b, double bytes) const {
  if (a == b) return 0.0;
  const auto& fit = router_[pair_slot(a, b)];
  NP_REQUIRE(fit.has_value(), "no router fit for cluster pair; "
                              "run calibration first");
  return std::max(0.0, fit->intercept + fit->slope * bytes);
}

bool CostModelDb::has_coerce(ClusterId a, ClusterId b) const {
  return a != b && coerce_[pair_slot(a, b)].has_value();
}

bool CostModelDb::has_router(ClusterId a, ClusterId b) const {
  return a != b && router_[pair_slot(a, b)].has_value();
}

std::optional<LineFit> CostModelDb::router_fit(ClusterId a,
                                               ClusterId b) const {
  if (a == b) return std::nullopt;
  return router_[pair_slot(a, b)];
}

std::optional<LineFit> CostModelDb::coerce_fit(ClusterId a,
                                               ClusterId b) const {
  if (a == b) return std::nullopt;
  return coerce_[pair_slot(a, b)];
}

double CostModelDb::coerce_ms(ClusterId a, ClusterId b, double bytes) const {
  if (!has_coerce(a, b)) return 0.0;
  const auto& fit = coerce_[pair_slot(a, b)];
  return std::max(0.0, fit->intercept + fit->slope * bytes);
}

}  // namespace netpart

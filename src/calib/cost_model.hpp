// Topology-specific communication cost models.
//
// The partitioner never talks to the network at runtime; it consults cost
// functions constructed offline by benchmarking (Section 3 of the paper):
//
//   T_comm[C_i, tau](b, p) = c1 + c2 p + b (c3 + c4 p)         (Eq. 1)
//   T_router[C_i, C_j](b), T_coerce[C_i, C_j](b)               (linear in b)
//
// All costs are in milliseconds, matching the paper's published constants.
// Eq. 1 fits can dip negative for small p (the paper observed this at
// P2 = 2); following the paper, evaluation returns the absolute value.
#pragma once

#include <optional>
#include <vector>

#include "net/ids.hpp"
#include "topo/topology.hpp"
#include "util/least_squares.hpp"

namespace netpart {

/// Database of fitted cost functions for one network.
class CostModelDb {
 public:
  explicit CostModelDb(int num_clusters);

  int num_clusters() const { return num_clusters_; }

  void set_comm(ClusterId c, Topology t, const Eq1Fit& fit);
  bool has_comm(ClusterId c, Topology t) const;
  /// The raw fit (throws InvalidArgument when absent).
  const Eq1Fit& comm_fit(ClusterId c, Topology t) const;

  /// Evaluate T_comm[C, tau](b, p) in msec, with the paper's absolute-value
  /// fix-up for small-p fits.
  double comm_ms(ClusterId c, Topology t, double bytes, double p) const;

  void set_router(ClusterId a, ClusterId b, const LineFit& fit);
  void set_coerce(ClusterId a, ClusterId b, const LineFit& fit);

  /// T_router[C_a, C_b](bytes) in msec; clamped at zero (a fitted intercept
  /// can be slightly negative).
  double router_ms(ClusterId a, ClusterId b, double bytes) const;

  /// T_coerce[C_a, C_b](bytes) in msec; zero when no coercion fit was
  /// recorded for the pair (same data format).
  double coerce_ms(ClusterId a, ClusterId b, double bytes) const;

  bool has_coerce(ClusterId a, ClusterId b) const;
  bool has_router(ClusterId a, ClusterId b) const;

  /// Raw fits (for persistence and reporting); nullopt when absent.
  std::optional<LineFit> router_fit(ClusterId a, ClusterId b) const;
  std::optional<LineFit> coerce_fit(ClusterId a, ClusterId b) const;

 private:
  std::size_t pair_slot(ClusterId a, ClusterId b) const;
  std::size_t topo_slot(ClusterId c, Topology t) const;

  int num_clusters_;
  std::vector<std::optional<Eq1Fit>> comm_;     // cluster x topology
  std::vector<std::optional<LineFit>> router_;  // unordered cluster pair
  std::vector<std::optional<LineFit>> coerce_;  // unordered cluster pair
};

}  // namespace netpart

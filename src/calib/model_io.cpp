#include "calib/model_io.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace netpart {

namespace {

constexpr const char* kMagic = "netpart-costmodel";
constexpr int kVersion = 1;

/// Hex-float formatting round-trips doubles exactly.
std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

double parse_double(const std::string& token) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    throw ConfigError("cost model: bad number: " + token);
  }
  return v;
}

std::int64_t parse_int(const std::string& token) {
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0') {
    throw ConfigError("cost model: bad integer: " + token);
  }
  return v;
}

}  // namespace

std::string save_cost_model(const CostModelDb& db) {
  std::ostringstream os;
  os << kMagic << ' ' << kVersion << '\n';
  os << "clusters " << db.num_clusters() << '\n';
  for (ClusterId c = 0; c < db.num_clusters(); ++c) {
    for (Topology t : all_topologies()) {
      if (!db.has_comm(c, t)) continue;
      const Eq1Fit& fit = db.comm_fit(c, t);
      os << "comm " << c << ' ' << to_string(t) << ' ' << hex_double(fit.c1)
         << ' ' << hex_double(fit.c2) << ' ' << hex_double(fit.c3) << ' '
         << hex_double(fit.c4) << ' ' << hex_double(fit.r2) << '\n';
    }
  }
  for (ClusterId a = 0; a < db.num_clusters(); ++a) {
    for (ClusterId b = a + 1; b < db.num_clusters(); ++b) {
      if (const auto fit = db.router_fit(a, b)) {
        os << "router " << a << ' ' << b << ' ' << hex_double(fit->slope)
           << ' ' << hex_double(fit->intercept) << ' '
           << hex_double(fit->r2) << '\n';
      }
      if (const auto fit = db.coerce_fit(a, b)) {
        os << "coerce " << a << ' ' << b << ' ' << hex_double(fit->slope)
           << ' ' << hex_double(fit->intercept) << ' '
           << hex_double(fit->r2) << '\n';
      }
    }
  }
  return os.str();
}

CostModelDb load_cost_model(const std::string& text) {
  std::istringstream is(text);
  std::string line;

  const auto next_tokens = [&](std::vector<std::string>& tokens) {
    while (std::getline(is, line)) {
      if (const std::size_t hash = line.find('#');
          hash != std::string::npos) {
        line.resize(hash);
      }
      std::istringstream ls(line);
      tokens.clear();
      std::string tok;
      while (ls >> tok) tokens.push_back(tok);
      if (!tokens.empty()) return true;
    }
    return false;
  };

  std::vector<std::string> tokens;
  if (!next_tokens(tokens) || tokens.size() != 2 || tokens[0] != kMagic) {
    throw ConfigError("cost model: missing header");
  }
  if (parse_int(tokens[1]) != kVersion) {
    throw ConfigError("cost model: unsupported version " + tokens[1]);
  }
  if (!next_tokens(tokens) || tokens.size() != 2 ||
      tokens[0] != "clusters") {
    throw ConfigError("cost model: missing cluster count");
  }
  CostModelDb db(static_cast<int>(parse_int(tokens[1])));

  while (next_tokens(tokens)) {
    if (tokens[0] == "comm") {
      if (tokens.size() != 8) {
        throw ConfigError("cost model: malformed comm line: " + line);
      }
      Eq1Fit fit;
      fit.c1 = parse_double(tokens[3]);
      fit.c2 = parse_double(tokens[4]);
      fit.c3 = parse_double(tokens[5]);
      fit.c4 = parse_double(tokens[6]);
      fit.r2 = parse_double(tokens[7]);
      db.set_comm(static_cast<ClusterId>(parse_int(tokens[1])),
                  topology_from_string(tokens[2]), fit);
    } else if (tokens[0] == "router" || tokens[0] == "coerce") {
      if (tokens.size() != 6) {
        throw ConfigError("cost model: malformed line: " + line);
      }
      LineFit fit;
      fit.slope = parse_double(tokens[3]);
      fit.intercept = parse_double(tokens[4]);
      fit.r2 = parse_double(tokens[5]);
      const auto a = static_cast<ClusterId>(parse_int(tokens[1]));
      const auto b = static_cast<ClusterId>(parse_int(tokens[2]));
      if (tokens[0] == "router") {
        db.set_router(a, b, fit);
      } else {
        db.set_coerce(a, b, fit);
      }
    } else {
      throw ConfigError("cost model: unknown record: " + tokens[0]);
    }
  }
  return db;
}

void save_cost_model_file(const CostModelDb& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw ConfigError("cannot open for writing: " + path);
  }
  out << save_cost_model(db);
  if (!out.flush()) {
    throw ConfigError("write failed: " + path);
  }
}

CostModelDb load_cost_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ConfigError("cannot open: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_cost_model(buffer.str());
}

}  // namespace netpart

// Persistence for calibrated cost models.
//
// Calibration is an offline step (the paper benchmarks each cluster type
// once and reuses the fitted functions at every partitioning); the database
// therefore needs a durable form.  The format is a line-oriented text file:
//
//   netpart-costmodel 1
//   clusters <K>
//   comm <cluster> <topology> <c1> <c2> <c3> <c4> <r2>
//   router <a> <b> <slope> <intercept> <r2>
//   coerce <a> <b> <slope> <intercept> <r2>
//
// '#' starts a comment.  Doubles round-trip exactly (hex float notation).
#pragma once

#include <string>

#include "calib/cost_model.hpp"

namespace netpart {

/// Serialise a database to the text format.
std::string save_cost_model(const CostModelDb& db);

/// Parse a database from the text format.  Throws ConfigError on malformed
/// input and InvalidArgument on semantic errors (bad cluster ids, etc.).
CostModelDb load_cost_model(const std::string& text);

/// File helpers (throw ConfigError on I/O failure).
void save_cost_model_file(const CostModelDb& db, const std::string& path);
CostModelDb load_cost_model_file(const std::string& path);

}  // namespace netpart

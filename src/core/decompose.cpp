#include "core/decompose.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace netpart {

PartitionVector balanced_partition(
    const Network& net, const ProcessorConfig& config,
    const std::vector<ClusterId>& cluster_order, std::int64_t num_pdus) {
  validate_config(net, config);
  NP_REQUIRE(num_pdus > 0, "num_pdus must be positive");
  const int total_ranks = config_total(config);
  NP_REQUIRE(num_pdus >= total_ranks,
             "cannot give every selected processor a PDU");

  // Per-rank speed weights 1/S_i, rank-major in cluster order; the
  // integer realisation (largest-remainder, no starvation) lives in
  // proportional_partition.
  std::vector<double> weight;
  weight.reserve(static_cast<std::size_t>(total_ranks));
  for (ClusterId c : cluster_order) {
    const int p = config[static_cast<std::size_t>(c)];
    const double s = net.cluster(c).type().flop_time.as_seconds();
    for (int i = 0; i < p; ++i) {
      weight.push_back(1.0 / s);
    }
  }
  return proportional_partition(weight, num_pdus);
}

PartitionVector equal_partition(int ranks, std::int64_t num_pdus) {
  NP_REQUIRE(ranks > 0, "need at least one rank");
  NP_REQUIRE(num_pdus >= ranks, "cannot give every rank a PDU");
  std::vector<std::int64_t> assigned(static_cast<std::size_t>(ranks),
                                     num_pdus / ranks);
  const std::int64_t remainder = num_pdus % ranks;
  for (std::int64_t r = 0; r < remainder; ++r) {
    ++assigned[static_cast<std::size_t>(r)];
  }
  return PartitionVector(std::move(assigned));
}

}  // namespace netpart

// Data-domain decomposition (Eq. 3 of the paper).
//
// Given a processor configuration, the load-balanced partition assigns each
// processor PDUs in inverse proportion to its per-operation time S_i:
//
//   A_i = num_PDUs * (1/S_i) / sum_j P_j * (1/S_j)
//
// (The published equation is typeset ambiguously; this is the form that
// reproduces every self-consistent row of Table 1, e.g. A_sparc2 =
// 2N/(2 P_1 + P_2) when S_ipc = 2 S_sparc2.)  Real PDU counts are integers:
// fractional assignments are floored and the remainder is distributed by
// largest fractional part, ties to faster processors.
#pragma once

#include <cstdint>

#include "dp/partition_vector.hpp"
#include "net/network.hpp"
#include "topo/placement.hpp"

namespace netpart {

/// Load-balanced decomposition for the processors selected by `config`,
/// ordered rank-major by `cluster_order` (matching contiguous placement).
PartitionVector balanced_partition(const Network& net,
                                   const ProcessorConfig& config,
                                   const std::vector<ClusterId>& cluster_order,
                                   std::int64_t num_pdus);

/// Equal decomposition baseline (the paper's N=1200 comparison): every rank
/// receives num_pdus / P PDUs regardless of speed, remainder to the first
/// ranks.
PartitionVector equal_partition(int ranks, std::int64_t num_pdus);

}  // namespace netpart

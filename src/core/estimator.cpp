#include "core/estimator.hpp"

#include <algorithm>

#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"

namespace netpart {

CycleEstimator::CycleEstimator(const Network& network, const CostModelDb& db,
                               const ComputationSpec& spec)
    : network_(network),
      db_(db),
      spec_(spec),
      cluster_order_(clusters_by_speed(network)) {
  NP_REQUIRE(db.num_clusters() == network.num_clusters(),
             "cost model was calibrated for a different network");
}

CycleEstimate CycleEstimator::estimate(const ProcessorConfig& config) const {
  ++evaluations_;
  static obs::Counter& evals_counter =
      obs::TelemetryRegistry::global().counter("estimator.evaluations");
  evals_counter.add(1);
  obs::Span span(obs::TelemetryRegistry::global(), "estimator.estimate",
                 "core");
  validate_config(network_, config);

  const ComputationPhaseSpec& comp = spec_.dominant_computation();
  const std::int64_t num_pdus = comp.num_pdus();
  const double ops_per_pdu = comp.ops_per_pdu();

  PartitionVector partition =
      balanced_partition(network_, config, cluster_order_, num_pdus);

  // Eq. 4: T_comp = S_i * complexity * A_i.  Load balancing makes the
  // products near-equal; integer rounding leaves a spread, and completion
  // is set by the slowest processor, so take the max.
  double t_comp = 0.0;
  {
    int rank = 0;
    for (ClusterId c : cluster_order_) {
      const ProcessorType& type = network_.cluster(c).type();
      const double s_ms = (comp.op_kind == OpKind::FloatingPoint
                               ? type.flop_time
                               : type.int_time)
                              .as_millis();
      const int p = config[static_cast<std::size_t>(c)];
      for (int i = 0; i < p; ++i, ++rank) {
        t_comp = std::max(
            t_comp, s_ms * ops_per_pdu *
                        static_cast<double>(partition.at(rank)));
      }
    }
  }

  const double t_comm = comm_cost_ms(config, partition);

  // T_overlap: the portion of T_comm hidden behind T_comp when the
  // implementation overlaps the dominant phases (STEN-2).
  const double t_overlap = spec_.dominant_phases_overlap()
                               ? std::min(t_comp, t_comm)
                               : 0.0;

  CycleEstimate out{config, std::move(partition), t_comp, t_comm, t_overlap,
                    0.0, 0.0};
  out.t_c_ms = t_comp + t_comm - t_overlap;
  out.t_elapsed_ms = out.t_c_ms * spec_.iterations();
  if (span.active()) {
    // The paper's Eq. 1 breakdown: T_c = T_comp + T_comm - T_overlap.
    span.attr("processors", JsonValue(config_total(config)));
    span.attr("t_comp_ms", JsonValue(t_comp));
    span.attr("t_comm_ms", JsonValue(t_comm));
    span.attr("t_overlap_ms", JsonValue(t_overlap));
    span.attr("t_c_ms", JsonValue(out.t_c_ms));
  }
  return out;
}

double CycleEstimator::comm_cost_ms(const ProcessorConfig& config,
                                    const PartitionVector& partition) const {
  if (spec_.communication_phases().empty()) return 0.0;
  if (config_total(config) <= 1) return 0.0;

  const CommunicationPhaseSpec& comm = spec_.dominant_communication();
  const Topology topo = comm.topology();

  // Active clusters in placement order, with the max A_i of their ranks
  // (message sizes may depend on the assignment).
  struct Active {
    ClusterId cluster;
    int p;
    std::int64_t max_a;
  };
  std::vector<Active> active;
  {
    int rank = 0;
    for (ClusterId c : cluster_order_) {
      const int p = config[static_cast<std::size_t>(c)];
      if (p == 0) continue;
      std::int64_t max_a = 0;
      for (int i = 0; i < p; ++i, ++rank) {
        max_a = std::max(max_a, partition.at(rank));
      }
      active.push_back(Active{c, p, max_a});
    }
  }
  NP_ASSERT(!active.empty());

  const bool bw_limited = is_bandwidth_limited(topo);
  const int total_p = config_total(config);

  // Router stations: under contiguous placement, messages cross between
  // consecutive active clusters (chain-like topologies) or from the root
  // cluster to every other (tree/broadcast rooted at rank 0).
  const auto adjacency = [&](std::size_t k) -> int {
    if (active.size() == 1) return 0;
    switch (topo) {
      case Topology::OneD:
      case Topology::TwoD:
        return (k > 0 ? 1 : 0) + (k + 1 < active.size() ? 1 : 0);
      case Topology::Ring:
        // Wrap-around closes the chain: every active cluster sits between
        // two boundaries.
        return 2;
      case Topology::Tree:
      case Topology::Broadcast:
        return k == 0 ? static_cast<int>(active.size()) - 1 : 1;
    }
    return 0;
  };

  // Eq. 2 / Section 3: the synchronous cost is the max over clusters; each
  // cluster's cost is evaluated at its processor count plus the routers
  // contending on its segment (the "(b, p+1)" rule).  Bandwidth-limited
  // topologies see the total offered load instead of the private one.
  //
  // A singleton cluster has no intra-cluster benchmark (nothing to
  // measure), yet its segment still carries router traffic when it joins
  // a spanning configuration; fall back to the most expensive fitted
  // cluster as a conservative proxy.
  const auto cluster_cost = [&](ClusterId c, double bytes,
                                double p_param) -> double {
    if (db_.has_comm(c, topo)) {
      return db_.comm_ms(c, topo, bytes, p_param);
    }
    double proxy = 0.0;
    bool found = false;
    for (ClusterId other = 0; other < network_.num_clusters(); ++other) {
      if (!db_.has_comm(other, topo)) continue;
      proxy = std::max(proxy, db_.comm_ms(other, topo, bytes, p_param));
      found = true;
    }
    NP_REQUIRE(found, "no communication fit for any cluster; "
                      "run calibration first");
    return proxy;
  };

  double worst = 0.0;
  for (std::size_t k = 0; k < active.size(); ++k) {
    const Active& a = active[k];
    const double bytes =
        static_cast<double>(comm.bytes_per_message(a.max_a));
    const double p_param =
        (bw_limited ? static_cast<double>(total_p)
                    : static_cast<double>(a.p)) +
        static_cast<double>(adjacency(k));
    worst = std::max(worst, cluster_cost(a.cluster, bytes, p_param));
  }

  // Per-message router and coercion penalties on the boundary exchanges.
  double penalty = 0.0;
  for (std::size_t k = 0; k + 1 < active.size(); ++k) {
    const ClusterId ca = active[k].cluster;
    const ClusterId cb = active[k + 1].cluster;
    const double bytes = static_cast<double>(comm.bytes_per_message(
        std::max(active[k].max_a, active[k + 1].max_a)));
    penalty = std::max(penalty, db_.router_ms(ca, cb, bytes) +
                                    db_.coerce_ms(ca, cb, bytes));
  }

  return worst + penalty;
}

}  // namespace netpart

#include "core/estimator.hpp"

#include <algorithm>
#include <cmath>

#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"

namespace netpart {

CycleEstimator::CycleEstimator(const Network& network, const CostModelDb& db,
                               const ComputationSpec& spec)
    : network_(network),
      db_(db),
      spec_(spec),
      cluster_order_(clusters_by_speed(network)) {
  NP_REQUIRE(db.num_clusters() == network.num_clusters(),
             "cost model was calibrated for a different network");
  dominant_comp_ = &spec.dominant_computation();
  num_pdus_ = dominant_comp_->num_pdus();
  ops_per_pdu_ = dominant_comp_->ops_per_pdu();
  phases_overlap_ = spec.dominant_phases_overlap();
  // Checked contracts (previously assumed): a non-positive PDU count makes
  // Eq. 3 meaningless, and a non-finite or negative op count poisons every
  // T_comp the search compares.  npcheck's spec lint flags these at the
  // source (NP-S003/NP-S005); this is the last line of defence for specs
  // built programmatically.
  NP_REQUIRE(num_pdus_ > 0,
             "estimator: dominant computation must have num_PDUs > 0");
  NP_REQUIRE(std::isfinite(ops_per_pdu_) && ops_per_pdu_ >= 0.0,
             "estimator: ops per PDU must be finite and non-negative");
  NP_REQUIRE(spec.iterations() >= 1,
             "estimator: spec iterations must be >= 1");
  if (!spec.communication_phases().empty()) {
    dominant_comm_ = &spec.dominant_communication();
    comm_topology_ = dominant_comm_->topology();
    comm_bw_limited_ = is_bandwidth_limited(comm_topology_);
    has_fit_.resize(static_cast<std::size_t>(network.num_clusters()), 0);
    for (ClusterId c = 0; c < network.num_clusters(); ++c) {
      if (db.has_comm(c, comm_topology_)) {
        has_fit_[static_cast<std::size_t>(c)] = 1;
        fitted_clusters_.push_back(c);
      }
    }
  }
}

CycleEstimate CycleEstimator::estimate(const ProcessorConfig& config) const {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  if (!obs::TelemetryRegistry::global_enabled()) {
    // Disabled-telemetry cost: the one relaxed load above.  The
    // `estimator.evaluations` counter is batched per search by the
    // partitioners instead of bumped here per evaluation.
    return estimate_impl(config);
  }
  obs::Span span(obs::TelemetryRegistry::global(), "estimator.estimate",
                 "core");
  CycleEstimate out = estimate_impl(config);
  if (span.active()) {
    // The paper's Eq. 1 breakdown: T_c = T_comp + T_comm - T_overlap.
    span.attr("processors", JsonValue(config_total(config)));
    span.attr("t_comp_ms", JsonValue(out.t_comp_ms));
    span.attr("t_comm_ms", JsonValue(out.t_comm_ms));
    span.attr("t_overlap_ms", JsonValue(out.t_overlap_ms));
    span.attr("t_c_ms", JsonValue(out.t_c_ms));
  }
  return out;
}

CycleEstimate CycleEstimator::estimate_impl(
    const ProcessorConfig& config) const {
  validate_config(network_, config);

  PartitionVector partition =
      balanced_partition(network_, config, cluster_order_, num_pdus_);

  // Eq. 4: T_comp = S_i * complexity * A_i.  Load balancing makes the
  // products near-equal; integer rounding leaves a spread, and completion
  // is set by the slowest processor, so take the max.
  double t_comp = 0.0;
  {
    int rank = 0;
    for (ClusterId c : cluster_order_) {
      const ProcessorType& type = network_.cluster(c).type();
      const double s_ms = (dominant_comp_->op_kind == OpKind::FloatingPoint
                               ? type.flop_time
                               : type.int_time)
                              .as_millis();
      const int p = config[static_cast<std::size_t>(c)];
      for (int i = 0; i < p; ++i, ++rank) {
        t_comp = std::max(
            t_comp, s_ms * ops_per_pdu_ *
                        static_cast<double>(partition.at(rank)));
      }
    }
  }

  const double t_comm = comm_cost_ms(config, partition);

  // T_overlap: the portion of T_comm hidden behind T_comp when the
  // implementation overlaps the dominant phases (STEN-2).
  const double t_overlap =
      phases_overlap_ ? std::min(t_comp, t_comm) : 0.0;

  CycleEstimate out{config, std::move(partition), t_comp, t_comm, t_overlap,
                    0.0, 0.0};
  out.t_c_ms = t_comp + t_comm - t_overlap;
  out.t_elapsed_ms = out.t_c_ms * spec_.iterations();
  return out;
}

FastEstimate CycleEstimator::estimate_into(const ProcessorConfig& config,
                                           EstimatorScratch& scratch) const {
  ++scratch.evaluations;
  validate_config(network_, config);

  // Active clusters in placement (rank-major) order.  clear() + push_back
  // on retained capacity: no allocation once the buffers have grown to the
  // network's cluster count.
  scratch.group_weights.clear();
  scratch.group_sizes.clear();
  scratch.group_clusters.clear();
  int total_p = 0;
  for (ClusterId c : cluster_order_) {
    const int p = config[static_cast<std::size_t>(c)];
    if (p == 0) continue;
    const double s = network_.cluster(c).type().flop_time.as_seconds();
    scratch.group_weights.push_back(1.0 / s);
    scratch.group_sizes.push_back(p);
    scratch.group_clusters.push_back(c);
    total_p += p;
  }
  // Mirror balanced_partition()'s preconditions (validate_config already
  // guarantees total_p > 0).
  NP_REQUIRE(num_pdus_ > 0, "num_pdus must be positive");
  NP_REQUIRE(num_pdus_ >= total_p,
             "cannot give every selected processor a PDU");

  const std::size_t groups = scratch.group_clusters.size();
  scratch.shares.resize(groups);
  scratch.max_a.resize(groups);
  if (proportional_group_shares(scratch.group_weights, scratch.group_sizes,
                                num_pdus_, scratch.shares)) {
    for (std::size_t g = 0; g < groups; ++g) {
      scratch.max_a[g] =
          scratch.shares[g].base + (scratch.shares[g].extras > 0 ? 1 : 0);
    }
  } else {
    // Starvation repair engaged (extreme speed skew): the closed form
    // cannot reproduce the donor-stealing loop, so materialise the real
    // Eq. 3 vector once and take the per-cluster maxima from it.  Rare and
    // allocating -- correctness over speed on this branch.
    const PartitionVector partition =
        balanced_partition(network_, config, cluster_order_, num_pdus_);
    int rank = 0;
    for (std::size_t g = 0; g < groups; ++g) {
      std::int64_t max_a = 0;
      for (int i = 0; i < scratch.group_sizes[g]; ++i, ++rank) {
        max_a = std::max(max_a, partition.at(rank));
      }
      scratch.max_a[g] = max_a;
    }
  }

  // Eq. 4 per cluster: within a homogeneous cluster the max over ranks of
  // s_ms * ops * A is the value at the cluster's max A (multiplication by
  // a non-negative constant is monotone, so this is the exact same double
  // the rank scan produces).
  double t_comp = 0.0;
  for (std::size_t g = 0; g < groups; ++g) {
    const ProcessorType& type =
        network_.cluster(scratch.group_clusters[g]).type();
    const double s_ms = (dominant_comp_->op_kind == OpKind::FloatingPoint
                             ? type.flop_time
                             : type.int_time)
                            .as_millis();
    t_comp = std::max(t_comp, s_ms * ops_per_pdu_ *
                                  static_cast<double>(scratch.max_a[g]));
  }

  double t_comm = 0.0;
  if (dominant_comm_ != nullptr && total_p > 1) {
    t_comm = comm_cost_from_groups(scratch.group_clusters.data(),
                                   scratch.group_sizes.data(),
                                   scratch.max_a.data(), groups, total_p);
  }

  const double t_overlap =
      phases_overlap_ ? std::min(t_comp, t_comm) : 0.0;

  FastEstimate out{t_comp, t_comm, t_overlap, 0.0, 0.0};
  out.t_c_ms = t_comp + t_comm - t_overlap;
  out.t_elapsed_ms = out.t_c_ms * spec_.iterations();
  return out;
}

double CycleEstimator::cluster_cost_ms(ClusterId c, double bytes,
                                       double p_param) const {
  if (has_fit_[static_cast<std::size_t>(c)]) {
    return db_.comm_ms(c, comm_topology_, bytes, p_param);
  }
  // A singleton cluster has no intra-cluster benchmark (nothing to
  // measure), yet its segment still carries router traffic when it joins
  // a spanning configuration; fall back to the most expensive fitted
  // cluster as a conservative proxy.  The fitted-cluster list is resolved
  // once, in the constructor, instead of rescanning has_comm per call.
  NP_REQUIRE(!fitted_clusters_.empty(),
             "no communication fit for any cluster; run calibration first");
  double proxy = 0.0;
  for (ClusterId other : fitted_clusters_) {
    proxy = std::max(proxy, db_.comm_ms(other, comm_topology_, bytes,
                                        p_param));
  }
  return proxy;
}

double CycleEstimator::comm_cost_from_groups(const ClusterId* clusters,
                                             const int* sizes,
                                             const std::int64_t* max_a,
                                             std::size_t num_groups,
                                             int total_p) const {
  NP_ASSERT(num_groups > 0);
  const CommunicationPhaseSpec& comm = *dominant_comm_;
  const Topology topo = comm_topology_;

  // Router stations: under contiguous placement, messages cross between
  // consecutive active clusters (chain-like topologies) or from the root
  // cluster to every other (tree/broadcast rooted at rank 0).
  const auto adjacency = [&](std::size_t k) -> int {
    if (num_groups == 1) return 0;
    switch (topo) {
      case Topology::OneD:
      case Topology::TwoD:
        return (k > 0 ? 1 : 0) + (k + 1 < num_groups ? 1 : 0);
      case Topology::Ring:
        // Wrap-around closes the chain: every active cluster sits between
        // two boundaries.
        return 2;
      case Topology::Tree:
      case Topology::Broadcast:
        return k == 0 ? static_cast<int>(num_groups) - 1 : 1;
    }
    return 0;
  };

  // Eq. 2 / Section 3: the synchronous cost is the max over clusters; each
  // cluster's cost is evaluated at its processor count plus the routers
  // contending on its segment (the "(b, p+1)" rule).  Bandwidth-limited
  // topologies see the total offered load instead of the private one.
  double worst = 0.0;
  for (std::size_t k = 0; k < num_groups; ++k) {
    const double bytes =
        static_cast<double>(comm.bytes_per_message(max_a[k]));
    const double p_param =
        (comm_bw_limited_ ? static_cast<double>(total_p)
                          : static_cast<double>(sizes[k])) +
        static_cast<double>(adjacency(k));
    worst = std::max(worst, cluster_cost_ms(clusters[k], bytes, p_param));
  }

  // Per-message router and coercion penalties on the boundary exchanges.
  double penalty = 0.0;
  for (std::size_t k = 0; k + 1 < num_groups; ++k) {
    const ClusterId ca = clusters[k];
    const ClusterId cb = clusters[k + 1];
    const double bytes = static_cast<double>(
        comm.bytes_per_message(std::max(max_a[k], max_a[k + 1])));
    penalty = std::max(penalty, db_.router_ms(ca, cb, bytes) +
                                    db_.coerce_ms(ca, cb, bytes));
  }

  return worst + penalty;
}

double CycleEstimator::comm_cost_ms(const ProcessorConfig& config,
                                    const PartitionVector& partition) const {
  if (dominant_comm_ == nullptr) return 0.0;
  const int total_p = config_total(config);
  if (total_p <= 1) return 0.0;

  // Active clusters in placement order, with the max A_i of their ranks
  // (message sizes may depend on the assignment); the Eq. 1/2/5 math is
  // shared with the fast path via comm_cost_from_groups.
  std::vector<ClusterId> clusters;
  std::vector<int> sizes;
  std::vector<std::int64_t> max_a;
  {
    int rank = 0;
    for (ClusterId c : cluster_order_) {
      const int p = config[static_cast<std::size_t>(c)];
      if (p == 0) continue;
      std::int64_t cluster_max = 0;
      for (int i = 0; i < p; ++i, ++rank) {
        cluster_max = std::max(cluster_max, partition.at(rank));
      }
      clusters.push_back(c);
      sizes.push_back(p);
      max_a.push_back(cluster_max);
    }
  }
  NP_ASSERT(!clusters.empty());
  return comm_cost_from_groups(clusters.data(), sizes.data(), max_a.data(),
                               clusters.size(), total_p);
}

}  // namespace netpart

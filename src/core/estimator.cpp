#include "core/estimator.hpp"

#include <algorithm>
#include <cmath>

#include "dp/rank_kernel.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"

namespace netpart {

namespace {
/// Process-unique identities for BatchScratch binding.  Stack-allocated
/// estimators can reuse addresses, so pointers cannot tell two apart.
std::atomic<std::uint64_t> g_next_binding_id{1};

/// The memoised bytes_per_message lookup shared by the lane engine and the
/// delta path: the dominant communication phase's callback (a
/// std::function, the one indirect call the batch cannot hoist) is
/// deterministic for the estimator's lifetime, so caching by A_i is exact.
/// Direct-indexed table when num_PDUs is small (one load, no hashing),
/// direct-mapped hash memo otherwise; both are cleared on rebinding.
inline std::int64_t memoized_bytes(const CommunicationPhaseSpec& comm,
                                   BatchScratch& batch, std::int64_t a) {
  if (!batch.bytes_cache.empty()) {
    std::int64_t bytes = batch.bytes_cache[static_cast<std::size_t>(a)];
    if (bytes >= 0) return bytes;
    bytes = comm.bytes_per_message(a);
    batch.bytes_cache[static_cast<std::size_t>(a)] = bytes;
    return bytes;
  }
  const auto slot = static_cast<std::size_t>(
      (static_cast<std::uint64_t>(a) * 0x9E3779B97F4A7C15ull) >>
      (64 - BatchScratch::kBytesMemoBits));
  if (batch.memo_key[slot] == a + 1) return batch.memo_val[slot];
  const std::int64_t bytes = comm.bytes_per_message(a);
  batch.memo_key[slot] = a + 1;
  batch.memo_val[slot] = bytes;
  return bytes;
}

}  // namespace

CycleEstimator::CycleEstimator(const Network& network, const CostModelDb& db,
                               const ComputationSpec& spec)
    : network_(network),
      db_(db),
      spec_(spec),
      cluster_order_(clusters_by_speed(network)) {
  NP_REQUIRE(db.num_clusters() == network.num_clusters(),
             "cost model was calibrated for a different network");
  dominant_comp_ = &spec.dominant_computation();
  num_pdus_ = dominant_comp_->num_pdus();
  ops_per_pdu_ = dominant_comp_->ops_per_pdu();
  phases_overlap_ = spec.dominant_phases_overlap();
  // Checked contracts (previously assumed): a non-positive PDU count makes
  // Eq. 3 meaningless, and a non-finite or negative op count poisons every
  // T_comp the search compares.  npcheck's spec lint flags these at the
  // source (NP-S003/NP-S005); this is the last line of defence for specs
  // built programmatically.
  NP_REQUIRE(num_pdus_ > 0,
             "estimator: dominant computation must have num_PDUs > 0");
  NP_REQUIRE(std::isfinite(ops_per_pdu_) && ops_per_pdu_ >= 0.0,
             "estimator: ops per PDU must be finite and non-negative");
  NP_REQUIRE(spec.iterations() >= 1,
             "estimator: spec iterations must be >= 1");
  if (!spec.communication_phases().empty()) {
    dominant_comm_ = &spec.dominant_communication();
    comm_topology_ = dominant_comm_->topology();
    comm_bw_limited_ = is_bandwidth_limited(comm_topology_);
    has_fit_.resize(static_cast<std::size_t>(network.num_clusters()), 0);
    for (ClusterId c = 0; c < network.num_clusters(); ++c) {
      if (db.has_comm(c, comm_topology_)) {
        has_fit_[static_cast<std::size_t>(c)] = 1;
        fitted_clusters_.push_back(c);
      }
    }
  }
  order_pos_.resize(static_cast<std::size_t>(network.num_clusters()), 0);
  for (std::size_t i = 0; i < cluster_order_.size(); ++i) {
    order_pos_[static_cast<std::size_t>(cluster_order_[i])] =
        static_cast<int>(i);
  }
  binding_id_ = g_next_binding_id.fetch_add(1, std::memory_order_relaxed);
}

CycleEstimate CycleEstimator::estimate(const ProcessorConfig& config) const {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  if (!obs::TelemetryRegistry::global_enabled()) {
    // Disabled-telemetry cost: the one relaxed load above.  The
    // `estimator.evaluations` counter is batched per search by the
    // partitioners instead of bumped here per evaluation.
    return estimate_impl(config);
  }
  obs::Span span(obs::TelemetryRegistry::global(), "estimator.estimate",
                 "core");
  CycleEstimate out = estimate_impl(config);
  if (span.active()) {
    // The paper's Eq. 1 breakdown: T_c = T_comp + T_comm - T_overlap.
    span.attr("processors", JsonValue(config_total(config)));
    span.attr("t_comp_ms", JsonValue(out.t_comp_ms));
    span.attr("t_comm_ms", JsonValue(out.t_comm_ms));
    span.attr("t_overlap_ms", JsonValue(out.t_overlap_ms));
    span.attr("t_c_ms", JsonValue(out.t_c_ms));
  }
  return out;
}

CycleEstimate CycleEstimator::estimate_impl(
    const ProcessorConfig& config) const {
  validate_config(network_, config);

  PartitionVector partition =
      balanced_partition(network_, config, cluster_order_, num_pdus_);

  // Eq. 4: T_comp = S_i * complexity * A_i.  Load balancing makes the
  // products near-equal; integer rounding leaves a spread, and completion
  // is set by the slowest processor, so take the max.
  double t_comp = 0.0;
  {
    int rank = 0;
    for (ClusterId c : cluster_order_) {
      const ProcessorType& type = network_.cluster(c).type();
      const double s_ms = (dominant_comp_->op_kind == OpKind::FloatingPoint
                               ? type.flop_time
                               : type.int_time)
                              .as_millis();
      const int p = config[static_cast<std::size_t>(c)];
      for (int i = 0; i < p; ++i, ++rank) {
        t_comp = std::max(
            t_comp, s_ms * ops_per_pdu_ *
                        static_cast<double>(partition.at(rank)));
      }
    }
  }

  const double t_comm = comm_cost_ms(config, partition);

  // T_overlap: the portion of T_comm hidden behind T_comp when the
  // implementation overlaps the dominant phases (STEN-2).
  const double t_overlap =
      phases_overlap_ ? std::min(t_comp, t_comm) : 0.0;

  CycleEstimate out{config, std::move(partition), t_comp, t_comm, t_overlap,
                    0.0, 0.0};
  out.t_c_ms = t_comp + t_comm - t_overlap;
  out.t_elapsed_ms = out.t_c_ms * spec_.iterations();
  return out;
}

FastEstimate CycleEstimator::estimate_into(const ProcessorConfig& config,
                                           EstimatorScratch& scratch) const {
  ++scratch.evaluations;
  validate_config(network_, config);

  // Active clusters in placement (rank-major) order.  clear() + push_back
  // on retained capacity: no allocation once the buffers have grown to the
  // network's cluster count.
  scratch.group_weights.clear();
  scratch.group_sizes.clear();
  scratch.group_clusters.clear();
  int total_p = 0;
  for (ClusterId c : cluster_order_) {
    const int p = config[static_cast<std::size_t>(c)];
    if (p == 0) continue;
    const double s = network_.cluster(c).type().flop_time.as_seconds();
    scratch.group_weights.push_back(1.0 / s);
    scratch.group_sizes.push_back(p);
    scratch.group_clusters.push_back(c);
    total_p += p;
  }
  // Mirror balanced_partition()'s preconditions (validate_config already
  // guarantees total_p > 0).
  NP_REQUIRE(num_pdus_ > 0, "num_pdus must be positive");
  NP_REQUIRE(num_pdus_ >= total_p,
             "cannot give every selected processor a PDU");

  const std::size_t groups = scratch.group_clusters.size();
  scratch.shares.resize(groups);
  scratch.max_a.resize(groups);
  if (proportional_group_shares(scratch.group_weights, scratch.group_sizes,
                                num_pdus_, scratch.shares)) {
    for (std::size_t g = 0; g < groups; ++g) {
      scratch.max_a[g] =
          scratch.shares[g].base + (scratch.shares[g].extras > 0 ? 1 : 0);
    }
  } else {
    // Starvation repair engaged (extreme speed skew): the closed form
    // cannot reproduce the donor-stealing loop, so materialise the real
    // Eq. 3 vector once and take the per-cluster maxima from it.  Rare and
    // allocating -- correctness over speed on this branch.
    const PartitionVector partition =
        balanced_partition(network_, config, cluster_order_, num_pdus_);
    int rank = 0;
    for (std::size_t g = 0; g < groups; ++g) {
      std::int64_t max_a = 0;
      for (int i = 0; i < scratch.group_sizes[g]; ++i, ++rank) {
        max_a = std::max(max_a, partition.at(rank));
      }
      scratch.max_a[g] = max_a;
    }
  }

  // Eq. 4 per cluster: within a homogeneous cluster the max over ranks of
  // s_ms * ops * A is the value at the cluster's max A (multiplication by
  // a non-negative constant is monotone, so this is the exact same double
  // the rank scan produces).
  double t_comp = 0.0;
  for (std::size_t g = 0; g < groups; ++g) {
    const ProcessorType& type =
        network_.cluster(scratch.group_clusters[g]).type();
    const double s_ms = (dominant_comp_->op_kind == OpKind::FloatingPoint
                             ? type.flop_time
                             : type.int_time)
                            .as_millis();
    t_comp = std::max(t_comp, s_ms * ops_per_pdu_ *
                                  static_cast<double>(scratch.max_a[g]));
  }

  double t_comm = 0.0;
  if (dominant_comm_ != nullptr && total_p > 1) {
    t_comm = comm_cost_from_groups(scratch.group_clusters.data(),
                                   scratch.group_sizes.data(),
                                   scratch.max_a.data(), groups, total_p);
  }

  const double t_overlap =
      phases_overlap_ ? std::min(t_comp, t_comm) : 0.0;

  FastEstimate out{t_comp, t_comm, t_overlap, 0.0, 0.0};
  out.t_c_ms = t_comp + t_comm - t_overlap;
  out.t_elapsed_ms = out.t_c_ms * spec_.iterations();
  return out;
}

void CycleEstimator::ensure_batch_bound(BatchScratch& batch) const {
  if (batch.bound_id == binding_id_) return;
  const auto k = static_cast<std::size_t>(network_.num_clusters());

  batch.inv_s.resize(k);
  batch.comp_ms.resize(k);
  batch.capacity.resize(k);
  for (ClusterId c = 0; c < network_.num_clusters(); ++c) {
    const auto ci = static_cast<std::size_t>(c);
    const ProcessorType& type = network_.cluster(c).type();
    // The exact doubles estimate_into computes per evaluation: the Eq. 3
    // weight always uses the flop rate, T_comp the dominant op kind's.
    // estimate_into evaluates s_ms * ops_per_pdu * A left to right, so the
    // s_ms * ops_per_pdu prefix is a loop-invariant product the binding
    // can fold without changing a bit of the final T_comp.
    batch.inv_s[ci] = 1.0 / type.flop_time.as_seconds();
    batch.comp_ms[ci] = (dominant_comp_->op_kind == OpKind::FloatingPoint
                             ? type.flop_time
                             : type.int_time)
                            .as_millis() *
                        ops_per_pdu_;
    batch.capacity[ci] = network_.cluster(c).size();
  }

  batch.has_fit.assign(k, 0);
  batch.fit.assign(k, Eq1Fit{});
  batch.router_i.assign(k * k, 0.0);
  batch.router_s.assign(k * k, 0.0);
  batch.coerce_i.assign(k * k, 0.0);
  batch.coerce_s.assign(k * k, 0.0);
  batch.has_router.assign(k * k, 0);
  if (dominant_comm_ != nullptr) {
    for (ClusterId c = 0; c < network_.num_clusters(); ++c) {
      const auto ci = static_cast<std::size_t>(c);
      if (has_fit_[ci]) {
        batch.has_fit[ci] = 1;
        batch.fit[ci] = db_.comm_fit(c, comm_topology_);
      }
    }
    for (ClusterId a = 0; a < network_.num_clusters(); ++a) {
      for (ClusterId b = 0; b < network_.num_clusters(); ++b) {
        if (a == b) continue;
        const std::size_t slot =
            static_cast<std::size_t>(a) * k + static_cast<std::size_t>(b);
        if (const auto rf = db_.router_fit(a, b)) {
          batch.has_router[slot] = 1;
          batch.router_i[slot] = rf->intercept;
          batch.router_s[slot] = rf->slope;
        }
        if (const auto cf = db_.coerce_fit(a, b)) {
          // Absent coercion stays {0, 0}: max(0, 0 + 0*b) reproduces
          // coerce_ms()'s literal 0.0 return bitwise.
          batch.coerce_i[slot] = cf->intercept;
          batch.coerce_s[slot] = cf->slope;
        }
      }
    }
  }

  constexpr auto lanes = static_cast<std::size_t>(BatchScratch::kLanes);
  batch.group_w.resize(lanes * k);
  batch.group_p.resize(lanes * k);
  batch.group_c.resize(lanes * k);
  batch.share_base.resize(lanes * k);
  batch.share_frac.resize(lanes * k);
  batch.ranks_before.resize(lanes * k);
  batch.group_bytes.resize(lanes * k);
  batch.max_a.resize(lanes * k);
  // A different estimator means a different spec: the bytes caches keyed
  // by the old spec's callback are poison, not a warm start.
  if (dominant_comm_ != nullptr && num_pdus_ <= BatchScratch::kBytesDirectMax) {
    batch.bytes_cache.assign(static_cast<std::size_t>(num_pdus_) + 1, -1);
    batch.memo_key.clear();
    batch.memo_val.clear();
  } else {
    batch.bytes_cache.clear();
    batch.memo_key.assign(std::size_t{1} << BatchScratch::kBytesMemoBits, 0);
    batch.memo_val.assign(std::size_t{1} << BatchScratch::kBytesMemoBits, 0);
  }
  batch.bound_id = binding_id_;
}

void CycleEstimator::estimate_lanes(const ProcessorConfig* configs,
                                    FastEstimate* out,
                                    EstimatorScratch& scratch) const {
  BatchScratch& batch = scratch.batch;
  constexpr int kLanes = BatchScratch::kLanes;
  const auto k = static_cast<std::size_t>(network_.num_clusters());
  const ClusterId* order = cluster_order_.data();
  const double* inv_s = batch.inv_s.data();
  const double* comp_ms = batch.comp_ms.data();
  const int* capacity = batch.capacity.data();

  // Stage A, gather pass: one loop per lane validates (validate_config's
  // checks and messages) and collects the active groups in placement
  // order.  Integer-only; the float work is deferred to the chain pass
  // below so its loop body stays small.
  int lane_groups[kLanes];
  int lane_total[kLanes];
  double weight_sum[kLanes];
  for (int lane = 0; lane < kLanes; ++lane) {
    const ProcessorConfig& config = configs[lane];
    NP_REQUIRE(config.size() == k, "configuration must name every cluster");
    const int* cfg = config.data();
    const std::size_t base = static_cast<std::size_t>(lane) * k;
    double* gw = &batch.group_w[base];
    int* gp = &batch.group_p[base];
    ClusterId* gc = &batch.group_c[base];
    int total = 0;
    int groups = 0;
    double sum = 0.0;
    for (std::size_t oi = 0; oi < k; ++oi) {
      const auto c = static_cast<std::size_t>(order[oi]);
      const int p = cfg[c];
      NP_REQUIRE(p >= 0 && p <= capacity[c],
                 "configuration exceeds cluster capacity");
      // Branch-free compaction: always store, advance only on p > 0 (an
      // idle cluster's slot is overwritten by the next active one).  p == 0
      // is data-dependent -- a skip branch here mispredicts constantly.
      const double w = inv_s[c];
      gw[groups] = w;
      gp[groups] = p;
      gc[groups] = order[oi];
      groups += static_cast<int>(p != 0);
      total += p;
      // Eq. 3 weight sum: the repeated adds reproduce estimate_into's
      // rank-major sum bitwise -- same values, same order.
      for (int i = 0; i < p; ++i) sum += w;
    }
    NP_REQUIRE(total > 0,
               "configuration must select at least one processor");
    NP_REQUIRE(num_pdus_ >= total,
               "cannot give every selected processor a PDU");
    lane_groups[lane] = groups;
    lane_total[lane] = total;
    weight_sum[lane] = sum;
  }

  // Stage B per lane: closed-form shares (proportional_group_shares
  // inlined over the SoA buffers, rank tiebreaks as branch-free arithmetic
  // -- the fraction comparisons are data-dependent and would mistrain the
  // branch predictor), then Eq. 4 maxima and Eq. 1/2/5 communication over
  // the bound coefficient tables.  A lane the closed form cannot serve
  // (starvation repair) replays through the scalar path, which counts
  // itself.
  const double pdus = static_cast<double>(num_pdus_);
  const bool has_comm = dominant_comm_ != nullptr;
  const Topology topo = comm_topology_;
  const bool bw_limited = comm_bw_limited_;
  std::int64_t* share_base = batch.share_base.data();
  double* share_frac = batch.share_frac.data();
  double* group_bytes = batch.group_bytes.data();
  const char* has_fit = batch.has_fit.data();
  const Eq1Fit* fit = batch.fit.data();
  // Memoised bytes_per_message: the sole std::function call per group the
  // batch cannot precompute (memoized_bytes above, shared with the delta
  // path).
  const auto bytes_for = [&](std::int64_t a) {
    return memoized_bytes(*dominant_comm_, batch, a);
  };
  // Stage B runs stage-major: all lanes advance through each small stage
  // together, so the eight per-lane dependency chains (share divisions,
  // rank tiebreaks, the Eq. 4/5 max folds) sit side by side inside the
  // out-of-order window.  Lane-major Stage B -- one lane's full
  // ~hundred-instruction chain retiring before the next lane starts --
  // leaves the window holding a single serial chain and measures ~40%
  // slower on the hotpath bench.
  std::int64_t lane_remainder[kLanes];
  double lane_tcomp[kLanes];
  unsigned starved_mask = 0;

  // B1: the closed-form share divisions (proportional_group_shares'
  // division pass, bitwise).  Division throughput is the floor here; the
  // independent lanes keep the divider fed, and InvariantDivider turns the
  // per-group divisions into one reciprocal per lane plus two FMAs per
  // group where the toolchain has hardware FMA (bitwise by Markstein's
  // correction; plain division otherwise -- see dp/rank_kernel.hpp).
  for (int lane = 0; lane < kLanes; ++lane) {
    const std::size_t base = static_cast<std::size_t>(lane) * k;
    const double* gw = &batch.group_w[base];
    const int* gp = &batch.group_p[base];
    std::int64_t* sb = &share_base[base];
    double* sf = &share_frac[base];
    const InvariantDivider div(weight_sum[lane]);
    const int groups = lane_groups[lane];
    std::int64_t used = 0;
    for (int g = 0; g < groups; ++g) {
      const double ideal = div.divide(pdus * gw[g]);
      const auto whole = static_cast<std::int64_t>(ideal);
      sb[g] = whole;
      sf[g] = ideal - static_cast<double>(whole);
      used += whole * gp[g];
    }
    lane_remainder[lane] = num_pdus_ - used;
    NP_ASSERT(lane_remainder[lane] >= 0 &&
              lane_remainder[lane] <= lane_total[lane]);
  }

  // B2: largest-remainder extras -> per-group max A_i and starvation,
  // with the Eq. 4 computation maximum folded in (max_a is in a register
  // the moment it is stored; a separate pass would reload it).  The rank
  // counts come from the branchless sorting-network kernel (<= 4 groups;
  // quadratic branch-free pass above) -- the old O(G^2) compare loop here
  // was the dominant term of the batched per-eval profile.
  std::int64_t* ranks_before = batch.ranks_before.data();
  for (int lane = 0; lane < kLanes; ++lane) {
    const std::size_t base = static_cast<std::size_t>(lane) * k;
    const int* gp = &batch.group_p[base];
    const ClusterId* gc = &batch.group_c[base];
    const std::int64_t* sb = &share_base[base];
    const double* sf = &share_frac[base];
    std::int64_t* max_a = &batch.max_a[base];
    std::int64_t* rb = &ranks_before[base];
    const std::int64_t remainder = lane_remainder[lane];
    const int groups = lane_groups[lane];
    largest_remainder_ranks(sf, gp, groups, rb);
    int starved = 0;
    double t_comp = 0.0;
    for (int g = 0; g < groups; ++g) {
      // extras = clamp(remainder - ranks_before, 0, P_g), but only its
      // sign (an extra exists) and saturation (the group filled up) are
      // consumed, so two comparisons replace the clamp.
      const std::int64_t d = remainder - rb[g];
      starved |= static_cast<int>(sb[g] == 0) &
                 static_cast<int>(d < gp[g]);
      const std::int64_t a = sb[g] + static_cast<std::int64_t>(d > 0);
      max_a[g] = a;
      t_comp = std::max(t_comp, comp_ms[static_cast<std::size_t>(gc[g])] *
                                    static_cast<double>(a));
    }
    lane_tcomp[lane] = t_comp;
    starved_mask |= static_cast<unsigned>(starved) << lane;
  }

  // B3: Eq. 2/5 communication (worst synchronous cluster, then boundary
  // router/coercion penalties), the Eq. 6 combination, and the result
  // stores.  Starved lanes are skipped -- their shares are invalid.
  const double iterations = static_cast<double>(spec_.iterations());
  int scored = 0;
  for (int lane = 0; lane < kLanes; ++lane) {
    if (((starved_mask >> lane) & 1u) != 0) continue;
    const std::size_t base = static_cast<std::size_t>(lane) * k;
    const int* gp = &batch.group_p[base];
    const ClusterId* gc = &batch.group_c[base];
    const std::int64_t* max_a = &batch.max_a[base];
    double* gb = &group_bytes[base];
    const int groups = lane_groups[lane];
    const int total_p = lane_total[lane];
    double t_comm = 0.0;
    if (has_comm && total_p > 1) {
      double worst = 0.0;
      for (int g = 0; g < groups; ++g) {
        const double bytes = static_cast<double>(bytes_for(max_a[g]));
        gb[g] = bytes;
        int adj = 0;
        if (groups > 1) {
          switch (topo) {
            case Topology::OneD:
            case Topology::TwoD:
              adj = (g > 0 ? 1 : 0) + (g + 1 < groups ? 1 : 0);
              break;
            case Topology::Ring:
              adj = 2;
              break;
            case Topology::Tree:
            case Topology::Broadcast:
              adj = g == 0 ? groups - 1 : 1;
              break;
          }
        }
        const double p_param =
            (bw_limited ? static_cast<double>(total_p)
                        : static_cast<double>(gp[g])) +
            static_cast<double>(adj);
        const auto c = static_cast<std::size_t>(gc[g]);
        double cost;
        if (has_fit[c]) {
          // db_.comm_ms over the by-value fit: same p <= 1 early-out,
          // same |Eq. 1| evaluation, without the optional deref or slot
          // checks.
          cost = p_param <= 1.0
                     ? 0.0
                     : std::abs(fit[c].evaluate(bytes, p_param));
        } else {
          cost = cluster_cost_ms(gc[g], bytes, p_param);  // proxy (rare)
        }
        worst = std::max(worst, cost);
      }
      double penalty = 0.0;
      for (int g = 0; g + 1 < groups; ++g) {
        const ClusterId ca = gc[g];
        const ClusterId cb = gc[g + 1];
        // bytes_for(max(a, b)) is the bytes of whichever neighbour has
        // the larger max A_i -- already computed (and cast) above.
        const double bytes =
            max_a[g] >= max_a[g + 1] ? gb[g] : gb[g + 1];
        const std::size_t slot =
            static_cast<std::size_t>(ca) * k + static_cast<std::size_t>(cb);
        const double router =
            batch.has_router[slot]
                ? std::max(0.0, batch.router_i[slot] +
                                    batch.router_s[slot] * bytes)
                : db_.router_ms(ca, cb, bytes);  // throws exactly like scalar
        const double coerce = std::max(
            0.0, batch.coerce_i[slot] + batch.coerce_s[slot] * bytes);
        penalty = std::max(penalty, router + coerce);
      }
      t_comm = worst + penalty;
    }
    const double t_comp = lane_tcomp[lane];
    const double t_overlap =
        phases_overlap_ ? std::min(t_comp, t_comm) : 0.0;
    FastEstimate& fe = out[lane];
    fe.t_comp_ms = t_comp;
    fe.t_comm_ms = t_comm;
    fe.t_overlap_ms = t_overlap;
    fe.t_c_ms = t_comp + t_comm - t_overlap;
    fe.t_elapsed_ms = fe.t_c_ms * iterations;
    ++scored;
  }
  scratch.evaluations += static_cast<std::uint64_t>(scored);
  scratch.batch_evaluations += static_cast<std::uint64_t>(scored);

  // Starved lanes (extreme speed skew, rare): the closed form cannot
  // reproduce the donor-stealing repair, so replay through the scalar
  // path, which counts itself.
  for (int lane = 0; starved_mask != 0 && lane < kLanes; ++lane) {
    if (((starved_mask >> lane) & 1u) != 0) {
      out[lane] = estimate_into(configs[lane], scratch);
    }
  }
}

void CycleEstimator::estimate_batch(const ProcessorConfig* configs,
                                    std::size_t count, FastEstimate* out,
                                    EstimatorScratch& scratch) const {
  ensure_batch_bound(scratch.batch);
  constexpr auto lanes = static_cast<std::size_t>(BatchScratch::kLanes);
  std::size_t i = 0;
  for (; i + lanes <= count; i += lanes) {
    estimate_lanes(configs + i, out + i, scratch);
  }
  // Scalar remainder lane: fewer candidates than a lane group is left.
  for (; i < count; ++i) {
    out[i] = estimate_into(configs[i], scratch);
  }
}

void CycleEstimator::rebuild_delta_cache(DeltaScratch& d,
                                         EstimatorScratch& scratch) const {
  const BatchScratch& batch = scratch.batch;
  const auto k = static_cast<std::size_t>(network_.num_clusters());
  // Patched-lane staging: at most every cluster active, +1 slack so the
  // insertion case never reallocates mid-evaluation.
  d.lane_w.resize(k + 1);
  d.lane_p.resize(k + 1);
  d.lane_c.resize(k + 1);
  d.lane_base.resize(k + 1);
  d.lane_frac.resize(k + 1);
  d.lane_rb.resize(k + 1);
  d.lane_max_a.resize(k + 1);
  d.lane_bytes.resize(k + 1);
  d.group_w.clear();
  d.group_p.clear();
  d.group_c.clear();
  d.prefix_w.clear();
  int total = 0;
  double sum = 0.0;
  for (ClusterId c : cluster_order_) {
    const int p = d.config[static_cast<std::size_t>(c)];
    if (p == 0) continue;
    const double w = batch.inv_s[static_cast<std::size_t>(c)];
    d.prefix_w.push_back(sum);
    d.group_w.push_back(w);
    d.group_p.push_back(p);
    d.group_c.push_back(c);
    // Eq. 3 weight sum: rank-major repeated adds, so every prefix is the
    // exact double the from-scratch gather reaches at that group.
    for (int i = 0; i < p; ++i) sum += w;
    total += p;
  }
  d.prefix_w.push_back(sum);
  d.total_p = total;
}

FastEstimate CycleEstimator::bind_delta(const ProcessorConfig& config,
                                        DeltaScratch& d,
                                        EstimatorScratch& scratch) const {
  // estimate_into validates and counts the baseline evaluation; the bound
  // batch tables supply the per-cluster constants the cache keeps.
  const FastEstimate out = estimate_into(config, scratch);
  ensure_batch_bound(scratch.batch);
  d.config = config;
  d.bound_id = binding_id_;
  rebuild_delta_cache(d, scratch);
  return out;
}

FastEstimate CycleEstimator::estimate_delta(ClusterId cluster, int delta,
                                            DeltaScratch& d,
                                            EstimatorScratch& scratch) const {
  NP_REQUIRE(d.bound_id == binding_id_,
             "delta scratch is not bound to this estimator "
             "(call bind_delta first)");
  ensure_batch_bound(scratch.batch);
  BatchScratch& batch = scratch.batch;
  const auto k = static_cast<std::size_t>(network_.num_clusters());
  const auto ci = static_cast<std::size_t>(cluster);
  NP_REQUIRE(ci < k, "cluster id out of range");
  const int moved_p = d.config[ci] + delta;
  NP_REQUIRE(moved_p >= 0 && moved_p <= batch.capacity[ci],
             "configuration exceeds cluster capacity");
  const int total = d.total_p + delta;
  NP_REQUIRE(total > 0, "configuration must select at least one processor");
  NP_REQUIRE(num_pdus_ >= total,
             "cannot give every selected processor a PDU");

  // Patched gather: groups strictly before the moved cluster in placement
  // order are the baseline's, byte for byte; the Eq. 3 weight-sum chain
  // resumes from the cached partial at the splice point, so the full sum
  // is the exact double a from-scratch gather of the moved configuration
  // produces.
  const int baseline_groups = static_cast<int>(d.group_c.size());
  const int pos = order_pos_[ci];
  int j = 0;
  while (j < baseline_groups &&
         order_pos_[static_cast<std::size_t>(d.group_c[j])] < pos) {
    ++j;
  }
  const bool was_active = j < baseline_groups && d.group_c[j] == cluster;
  double* lw = d.lane_w.data();
  int* lp = d.lane_p.data();
  ClusterId* lc = d.lane_c.data();
  for (int g = 0; g < j; ++g) {
    lw[g] = d.group_w[static_cast<std::size_t>(g)];
    lp[g] = d.group_p[static_cast<std::size_t>(g)];
    lc[g] = d.group_c[static_cast<std::size_t>(g)];
  }
  int groups = j;
  double sum = d.prefix_w[static_cast<std::size_t>(j)];
  if (moved_p > 0) {
    const double w = batch.inv_s[ci];
    lw[groups] = w;
    lp[groups] = moved_p;
    lc[groups] = cluster;
    ++groups;
    for (int i = 0; i < moved_p; ++i) sum += w;
  }
  for (int g = j + (was_active ? 1 : 0); g < baseline_groups; ++g) {
    const double w = d.group_w[static_cast<std::size_t>(g)];
    const int p = d.group_p[static_cast<std::size_t>(g)];
    lw[groups] = w;
    lp[groups] = p;
    lc[groups] = d.group_c[static_cast<std::size_t>(g)];
    ++groups;
    for (int i = 0; i < p; ++i) sum += w;
  }

  // Shares, rank kernel, starvation, Eq. 4 fold: the single-lane mirror of
  // estimate_lanes' Stage B (same kernels, same bitwise contract).
  const double pdus = static_cast<double>(num_pdus_);
  const InvariantDivider div(sum);
  std::int64_t* lb = d.lane_base.data();
  double* lf = d.lane_frac.data();
  std::int64_t used = 0;
  for (int g = 0; g < groups; ++g) {
    const double ideal = div.divide(pdus * lw[g]);
    const auto whole = static_cast<std::int64_t>(ideal);
    lb[g] = whole;
    lf[g] = ideal - static_cast<double>(whole);
    used += whole * lp[g];
  }
  const std::int64_t remainder = num_pdus_ - used;
  NP_ASSERT(remainder >= 0 && remainder <= total);

  largest_remainder_ranks(lf, lp, groups, d.lane_rb.data());
  const std::int64_t* rb = d.lane_rb.data();
  std::int64_t* la = d.lane_max_a.data();
  const double* comp_ms = batch.comp_ms.data();
  int starved = 0;
  double t_comp = 0.0;
  for (int g = 0; g < groups; ++g) {
    const std::int64_t dd = remainder - rb[g];
    starved |= static_cast<int>(lb[g] == 0) & static_cast<int>(dd < lp[g]);
    const std::int64_t a = lb[g] + static_cast<std::int64_t>(dd > 0);
    la[g] = a;
    t_comp = std::max(t_comp, comp_ms[static_cast<std::size_t>(lc[g])] *
                                  static_cast<double>(a));
  }
  if (starved != 0) {
    // Starvation repair (extreme speed skew, rare): the closed form cannot
    // reproduce the donor-stealing loop; replay the moved configuration
    // through the scalar path, which counts itself.
    d.moved = d.config;
    d.moved[ci] = moved_p;
    return estimate_into(d.moved, scratch);
  }
  ++scratch.evaluations;
  ++scratch.delta_evaluations;

  // Eq. 2/5 communication over the bound coefficient tables (the
  // single-lane mirror of Stage B3).
  double t_comm = 0.0;
  if (dominant_comm_ != nullptr && total > 1) {
    const Topology topo = comm_topology_;
    const bool bw_limited = comm_bw_limited_;
    const char* has_fit = batch.has_fit.data();
    const Eq1Fit* fit = batch.fit.data();
    double* gb = d.lane_bytes.data();
    double worst = 0.0;
    for (int g = 0; g < groups; ++g) {
      const double bytes =
          static_cast<double>(memoized_bytes(*dominant_comm_, batch, la[g]));
      gb[g] = bytes;
      int adj = 0;
      if (groups > 1) {
        switch (topo) {
          case Topology::OneD:
          case Topology::TwoD:
            adj = (g > 0 ? 1 : 0) + (g + 1 < groups ? 1 : 0);
            break;
          case Topology::Ring:
            adj = 2;
            break;
          case Topology::Tree:
          case Topology::Broadcast:
            adj = g == 0 ? groups - 1 : 1;
            break;
        }
      }
      const double p_param =
          (bw_limited ? static_cast<double>(total)
                      : static_cast<double>(lp[g])) +
          static_cast<double>(adj);
      const auto c = static_cast<std::size_t>(lc[g]);
      double cost;
      if (has_fit[c]) {
        cost = p_param <= 1.0
                   ? 0.0
                   : std::abs(fit[c].evaluate(bytes, p_param));
      } else {
        cost = cluster_cost_ms(lc[g], bytes, p_param);  // proxy (rare)
      }
      worst = std::max(worst, cost);
    }
    double penalty = 0.0;
    for (int g = 0; g + 1 < groups; ++g) {
      const ClusterId ca = lc[g];
      const ClusterId cb = lc[g + 1];
      const double bytes = la[g] >= la[g + 1] ? gb[g] : gb[g + 1];
      const std::size_t slot =
          static_cast<std::size_t>(ca) * k + static_cast<std::size_t>(cb);
      const double router =
          batch.has_router[slot]
              ? std::max(0.0, batch.router_i[slot] +
                                  batch.router_s[slot] * bytes)
              : db_.router_ms(ca, cb, bytes);
      const double coerce = std::max(
          0.0, batch.coerce_i[slot] + batch.coerce_s[slot] * bytes);
      penalty = std::max(penalty, router + coerce);
    }
    t_comm = worst + penalty;
  }

  const double t_overlap = phases_overlap_ ? std::min(t_comp, t_comm) : 0.0;
  FastEstimate out{t_comp, t_comm, t_overlap, 0.0, 0.0};
  out.t_c_ms = t_comp + t_comm - t_overlap;
  out.t_elapsed_ms = out.t_c_ms * spec_.iterations();
  return out;
}

void CycleEstimator::commit_delta(ClusterId cluster, int delta,
                                  DeltaScratch& d,
                                  EstimatorScratch& scratch) const {
  NP_REQUIRE(d.bound_id == binding_id_,
             "delta scratch is not bound to this estimator "
             "(call bind_delta first)");
  ensure_batch_bound(scratch.batch);
  const auto ci = static_cast<std::size_t>(cluster);
  NP_REQUIRE(ci < d.config.size(), "cluster id out of range");
  const int moved_p = d.config[ci] + delta;
  NP_REQUIRE(moved_p >= 0 && moved_p <= scratch.batch.capacity[ci],
             "configuration exceeds cluster capacity");
  d.config[ci] = moved_p;
  rebuild_delta_cache(d, scratch);
}

double CycleEstimator::cluster_cost_ms(ClusterId c, double bytes,
                                       double p_param) const {
  if (has_fit_[static_cast<std::size_t>(c)]) {
    return db_.comm_ms(c, comm_topology_, bytes, p_param);
  }
  // A singleton cluster has no intra-cluster benchmark (nothing to
  // measure), yet its segment still carries router traffic when it joins
  // a spanning configuration; fall back to the most expensive fitted
  // cluster as a conservative proxy.  The fitted-cluster list is resolved
  // once, in the constructor, instead of rescanning has_comm per call.
  NP_REQUIRE(!fitted_clusters_.empty(),
             "no communication fit for any cluster; run calibration first");
  double proxy = 0.0;
  for (ClusterId other : fitted_clusters_) {
    proxy = std::max(proxy, db_.comm_ms(other, comm_topology_, bytes,
                                        p_param));
  }
  return proxy;
}

double CycleEstimator::comm_cost_from_groups(const ClusterId* clusters,
                                             const int* sizes,
                                             const std::int64_t* max_a,
                                             std::size_t num_groups,
                                             int total_p) const {
  NP_ASSERT(num_groups > 0);
  const CommunicationPhaseSpec& comm = *dominant_comm_;
  const Topology topo = comm_topology_;

  // Router stations: under contiguous placement, messages cross between
  // consecutive active clusters (chain-like topologies) or from the root
  // cluster to every other (tree/broadcast rooted at rank 0).
  const auto adjacency = [&](std::size_t k) -> int {
    if (num_groups == 1) return 0;
    switch (topo) {
      case Topology::OneD:
      case Topology::TwoD:
        return (k > 0 ? 1 : 0) + (k + 1 < num_groups ? 1 : 0);
      case Topology::Ring:
        // Wrap-around closes the chain: every active cluster sits between
        // two boundaries.
        return 2;
      case Topology::Tree:
      case Topology::Broadcast:
        return k == 0 ? static_cast<int>(num_groups) - 1 : 1;
    }
    return 0;
  };

  // Eq. 2 / Section 3: the synchronous cost is the max over clusters; each
  // cluster's cost is evaluated at its processor count plus the routers
  // contending on its segment (the "(b, p+1)" rule).  Bandwidth-limited
  // topologies see the total offered load instead of the private one.
  double worst = 0.0;
  for (std::size_t k = 0; k < num_groups; ++k) {
    const double bytes =
        static_cast<double>(comm.bytes_per_message(max_a[k]));
    const double p_param =
        (comm_bw_limited_ ? static_cast<double>(total_p)
                          : static_cast<double>(sizes[k])) +
        static_cast<double>(adjacency(k));
    worst = std::max(worst, cluster_cost_ms(clusters[k], bytes, p_param));
  }

  // Per-message router and coercion penalties on the boundary exchanges.
  double penalty = 0.0;
  for (std::size_t k = 0; k + 1 < num_groups; ++k) {
    const ClusterId ca = clusters[k];
    const ClusterId cb = clusters[k + 1];
    const double bytes = static_cast<double>(
        comm.bytes_per_message(std::max(max_a[k], max_a[k + 1])));
    penalty = std::max(penalty, db_.router_ms(ca, cb, bytes) +
                                    db_.coerce_ms(ca, cb, bytes));
  }

  return worst + penalty;
}

double CycleEstimator::comm_cost_ms(const ProcessorConfig& config,
                                    const PartitionVector& partition) const {
  if (dominant_comm_ == nullptr) return 0.0;
  const int total_p = config_total(config);
  if (total_p <= 1) return 0.0;

  // Active clusters in placement order, with the max A_i of their ranks
  // (message sizes may depend on the assignment); the Eq. 1/2/5 math is
  // shared with the fast path via comm_cost_from_groups.
  std::vector<ClusterId> clusters;
  std::vector<int> sizes;
  std::vector<std::int64_t> max_a;
  {
    int rank = 0;
    for (ClusterId c : cluster_order_) {
      const int p = config[static_cast<std::size_t>(c)];
      if (p == 0) continue;
      std::int64_t cluster_max = 0;
      for (int i = 0; i < p; ++i, ++rank) {
        cluster_max = std::max(cluster_max, partition.at(rank));
      }
      clusters.push_back(c);
      sizes.push_back(p);
      max_a.push_back(cluster_max);
    }
  }
  NP_ASSERT(!clusters.empty());
  return comm_cost_from_groups(clusters.data(), sizes.data(), max_a.data(),
                               clusters.size(), total_p);
}

}  // namespace netpart

// Runtime cost estimation (Eqs. 3-6 of the paper).
//
// For a candidate processor configuration the estimator computes the
// load-balanced partition vector (Eq. 3) and the per-cycle elapsed time
//
//   T_c = T_comp + T_comm - T_overlap                  (Eq. 6)
//   T_comp[p_i] = S_i * computational_complexity * A_i (Eq. 4)
//   T_comm      = from the fitted cost functions       (Eqs. 1, 2, 5)
//   T_overlap   = min(T_comp, T_comm) when the dominant phases overlap
//
// using only the program callbacks and the offline-calibrated cost model --
// no network activity happens at estimation time.
//
// Two evaluation paths:
//
//   * estimate() -- the reference path: materialises the full Eq. 3
//     partition vector and scans it rank by rank.  One heap-allocating
//     call per evaluation; keep for results (the caller gets the
//     PartitionVector) and as ground truth.
//   * estimate_into() -- the fast path the searches hammer: Eq. 3 is
//     evaluated in closed form per *cluster* (a balanced partition hands a
//     homogeneous cluster only the floor/ceiling of its ideal share, see
//     proportional_group_shares), so no per-rank vector exists and a
//     steady-state evaluation allocates nothing.  Results are bitwise
//     identical to estimate() -- the property tier asserts this.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "calib/cost_model.hpp"
#include "core/decompose.hpp"
#include "dp/phases.hpp"
#include "net/network.hpp"
#include "topo/placement.hpp"

namespace netpart {

/// Cost breakdown for one processor configuration.
struct CycleEstimate {
  ProcessorConfig config;
  PartitionVector partition;  ///< rank-major in the estimator's cluster order
  double t_comp_ms = 0.0;
  double t_comm_ms = 0.0;
  double t_overlap_ms = 0.0;
  double t_c_ms = 0.0;        ///< objective: estimated elapsed time per cycle
  double t_elapsed_ms = 0.0;  ///< iterations * t_c (startup excluded)
};

/// estimate_into()'s result: the cost breakdown without the materialised
/// partition vector (searches only compare t_c; the winner is materialised
/// once, via estimate(), for the returned PartitionResult).
struct FastEstimate {
  double t_comp_ms = 0.0;
  double t_comm_ms = 0.0;
  double t_overlap_ms = 0.0;
  double t_c_ms = 0.0;
  double t_elapsed_ms = 0.0;
};

/// Reusable buffers for CycleEstimator::estimate_into() and the search
/// drivers.  Strictly one owner thread at a time -- never share a scratch
/// across threads (the svc worker pool keeps one per worker, the parallel
/// exhaustive search one per shard).  Buffers grow to the network's cluster
/// count on first use and are then reused: steady-state evaluations perform
/// zero heap allocations.
struct EstimatorScratch {
  /// Fast-path evaluations recorded through this scratch.  Search drivers
  /// read the delta across a search and merge it into the estimator's
  /// evaluations() plus the batched `estimator.evaluations` counter.
  std::uint64_t evaluations = 0;

  // Internal buffers (estimator + partitioner use; sizes are per-network).
  std::vector<double> group_weights;     ///< 1/S_i per active cluster
  std::vector<int> group_sizes;          ///< P_i per active cluster
  std::vector<ClusterId> group_clusters; ///< active cluster ids, rank order
  std::vector<GroupShare> shares;        ///< closed-form Eq. 3 shares
  std::vector<std::int64_t> max_a;       ///< per active cluster max A_i
  std::vector<double> objective_cache;   ///< ClusterObjective memo (NaN=empty)
};

class CycleEstimator {
 public:
  /// All referenced objects must outlive the estimator.  Dominant phases
  /// and the communication-fit inventory are resolved here, once: the
  /// spec's callbacks must be deterministic for the estimator's lifetime
  /// (they always were in practice -- the searches assume a fixed
  /// objective).
  CycleEstimator(const Network& network, const CostModelDb& db,
                 const ComputationSpec& spec);

  /// Evaluate one configuration (reference path).  Throws InvalidArgument
  /// for configurations that exceed cluster capacities or select nothing.
  CycleEstimate estimate(const ProcessorConfig& config) const;

  /// Allocation-free evaluation of one configuration through `scratch`.
  /// Bitwise identical to estimate() on every cost field.  Thread-safe for
  /// concurrent calls with distinct scratches; bumps scratch.evaluations
  /// instead of this estimator's counter (callers merge, see
  /// merge_evaluations()).
  FastEstimate estimate_into(const ProcessorConfig& config,
                             EstimatorScratch& scratch) const;

  /// Clusters ordered fastest-first; partition vectors and placements are
  /// rank-major in this order.
  const std::vector<ClusterId>& cluster_order() const {
    return cluster_order_;
  }

  /// Number of evaluations so far -- the paper's K*log2 P overhead metric
  /// counts these.  estimate() bumps it directly; fast-path evaluations
  /// arrive batched via merge_evaluations().
  std::uint64_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }

  /// Fold `n` scratch-counted fast-path evaluations into evaluations().
  void merge_evaluations(std::uint64_t n) const {
    evaluations_.fetch_add(n, std::memory_order_relaxed);
  }

  const ComputationSpec& spec() const { return spec_; }
  const Network& network() const { return network_; }

 private:
  CycleEstimate estimate_impl(const ProcessorConfig& config) const;
  double comm_cost_ms(const ProcessorConfig& config,
                      const PartitionVector& partition) const;
  /// Shared Eq. 1/2/5 evaluation once the per-cluster max A_i are known.
  /// `clusters`/`sizes`/`max_a` describe the active clusters in placement
  /// order; total_p is config_total(config).
  double comm_cost_from_groups(const ClusterId* clusters, const int* sizes,
                               const std::int64_t* max_a,
                               std::size_t num_groups, int total_p) const;
  /// T_comm[C](b, p) with the singleton-cluster proxy fallback resolved
  /// against the constructor-memoized fitted-cluster list.
  double cluster_cost_ms(ClusterId c, double bytes, double p_param) const;

  const Network& network_;
  const CostModelDb& db_;
  const ComputationSpec& spec_;
  std::vector<ClusterId> cluster_order_;

  // Constructor-resolved invariants of the spec and cost model: the hot
  // path must not re-run phase-dominance scans, callback invocations with
  // fixed results, or the per-call "which clusters have a fit" rescan.
  const ComputationPhaseSpec* dominant_comp_ = nullptr;
  std::int64_t num_pdus_ = 0;
  double ops_per_pdu_ = 0.0;
  const CommunicationPhaseSpec* dominant_comm_ = nullptr;  // null: no comm
  Topology comm_topology_ = Topology::OneD;
  bool comm_bw_limited_ = false;
  bool phases_overlap_ = false;
  std::vector<ClusterId> fitted_clusters_;  ///< has_comm(c, topo), id order
  std::vector<char> has_fit_;               ///< per cluster, dominant topo

  mutable std::atomic<std::uint64_t> evaluations_{0};
};

}  // namespace netpart

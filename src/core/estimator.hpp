// Runtime cost estimation (Eqs. 3-6 of the paper).
//
// For a candidate processor configuration the estimator computes the
// load-balanced partition vector (Eq. 3) and the per-cycle elapsed time
//
//   T_c = T_comp + T_comm - T_overlap                  (Eq. 6)
//   T_comp[p_i] = S_i * computational_complexity * A_i (Eq. 4)
//   T_comm      = from the fitted cost functions       (Eqs. 1, 2, 5)
//   T_overlap   = min(T_comp, T_comm) when the dominant phases overlap
//
// using only the program callbacks and the offline-calibrated cost model --
// no network activity happens at estimation time.
#pragma once

#include <cstdint>
#include <vector>

#include "calib/cost_model.hpp"
#include "core/decompose.hpp"
#include "dp/phases.hpp"
#include "net/network.hpp"
#include "topo/placement.hpp"

namespace netpart {

/// Cost breakdown for one processor configuration.
struct CycleEstimate {
  ProcessorConfig config;
  PartitionVector partition;  ///< rank-major in the estimator's cluster order
  double t_comp_ms = 0.0;
  double t_comm_ms = 0.0;
  double t_overlap_ms = 0.0;
  double t_c_ms = 0.0;        ///< objective: estimated elapsed time per cycle
  double t_elapsed_ms = 0.0;  ///< iterations * t_c (startup excluded)
};

class CycleEstimator {
 public:
  /// All referenced objects must outlive the estimator.
  CycleEstimator(const Network& network, const CostModelDb& db,
                 const ComputationSpec& spec);

  /// Evaluate one configuration.  Throws InvalidArgument for configurations
  /// that exceed cluster capacities or select nothing.
  CycleEstimate estimate(const ProcessorConfig& config) const;

  /// Clusters ordered fastest-first; partition vectors and placements are
  /// rank-major in this order.
  const std::vector<ClusterId>& cluster_order() const {
    return cluster_order_;
  }

  /// Number of estimate() calls so far -- the paper's K*log2(P) overhead
  /// metric counts these.
  std::uint64_t evaluations() const { return evaluations_; }

  const ComputationSpec& spec() const { return spec_; }
  const Network& network() const { return network_; }

 private:
  double comm_cost_ms(const ProcessorConfig& config,
                      const PartitionVector& partition) const;

  const Network& network_;
  const CostModelDb& db_;
  const ComputationSpec& spec_;
  std::vector<ClusterId> cluster_order_;
  mutable std::uint64_t evaluations_ = 0;
};

}  // namespace netpart

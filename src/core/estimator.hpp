// Runtime cost estimation (Eqs. 3-6 of the paper).
//
// For a candidate processor configuration the estimator computes the
// load-balanced partition vector (Eq. 3) and the per-cycle elapsed time
//
//   T_c = T_comp + T_comm - T_overlap                  (Eq. 6)
//   T_comp[p_i] = S_i * computational_complexity * A_i (Eq. 4)
//   T_comm      = from the fitted cost functions       (Eqs. 1, 2, 5)
//   T_overlap   = min(T_comp, T_comm) when the dominant phases overlap
//
// using only the program callbacks and the offline-calibrated cost model --
// no network activity happens at estimation time.
//
// Four evaluation paths:
//
//   * estimate() -- the reference path: materialises the full Eq. 3
//     partition vector and scans it rank by rank.  One heap-allocating
//     call per evaluation; keep for results (the caller gets the
//     PartitionVector) and as ground truth.
//   * estimate_into() -- the scalar fast path: Eq. 3 is evaluated in
//     closed form per *cluster* (a balanced partition hands a homogeneous
//     cluster only the floor/ceiling of its ideal share, see
//     proportional_group_shares), so no per-rank vector exists and a
//     steady-state evaluation allocates nothing.  Results are bitwise
//     identical to estimate() -- the property tier asserts this.
//   * estimate_batch() -- the batched engine the searches hammer: up to
//     BatchScratch::kLanes candidate configurations advance through each
//     evaluation stage together over struct-of-arrays scratch, so the
//     long dependent float chains (the Eq. 3 weight sum above all) run as
//     independent per-lane chains the hardware can overlap.  A batch that
//     is not a whole number of lanes finishes on a scalar remainder lane
//     (estimate_into).  Every lane is bitwise identical to estimate_into()
//     -- the differential property tier asserts this across batch sizes.
//   * estimate_delta() -- the incremental path the hill climb and the
//     adaptive repartition scorer run on: a configuration one +/-1 move
//     away from a cached baseline (bind_delta) is scored by reusing the
//     baseline's validation, active-group gather, and weight-sum prefix,
//     recomputing only the Eq. 3 shares and the Eq. 4/5 folds.  Bitwise
//     identical to estimate_into() on the moved configuration.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "calib/cost_model.hpp"
#include "core/decompose.hpp"
#include "dp/phases.hpp"
#include "net/network.hpp"
#include "topo/placement.hpp"

namespace netpart {

/// Cost breakdown for one processor configuration.
struct CycleEstimate {
  ProcessorConfig config;
  PartitionVector partition;  ///< rank-major in the estimator's cluster order
  double t_comp_ms = 0.0;
  double t_comm_ms = 0.0;
  double t_overlap_ms = 0.0;
  double t_c_ms = 0.0;        ///< objective: estimated elapsed time per cycle
  double t_elapsed_ms = 0.0;  ///< iterations * t_c (startup excluded)
};

/// estimate_into()'s result: the cost breakdown without the materialised
/// partition vector (searches only compare t_c; the winner is materialised
/// once, via estimate(), for the returned PartitionResult).
struct FastEstimate {
  double t_comp_ms = 0.0;
  double t_comm_ms = 0.0;
  double t_overlap_ms = 0.0;
  double t_c_ms = 0.0;
  double t_elapsed_ms = 0.0;
};

/// Struct-of-arrays scratch for CycleEstimator::estimate_batch().  One
/// batch advances up to kLanes candidate configurations through every
/// evaluation stage together; per-stage buffers are lane-interleaved so the
/// per-config dependent chains become independent per-lane chains.  The
/// per-cluster constant tables (weights, op times, fitted coefficients) are
/// bound to one estimator on first use and rebuilt only when a different
/// estimator borrows the scratch -- steady-state batches with a fixed
/// estimator perform zero heap allocations.
struct BatchScratch {
  /// Lane width: candidate configurations evaluated per SoA pass.  The
  /// per-lane dependent chains (Eq. 3 weight sum, share divisions) are
  /// mutually independent across lanes; sixteen of them keep the divider
  /// and the out-of-order window fed while amortising each stage's loop
  /// setup (bounds loads, pointer arithmetic, the starved-mask fold) over
  /// twice the work of the original 8-wide engine.  The per-lane state the
  /// stages keep live is a handful of scalars, so 16 lanes still fit the
  /// register file comfortably; widening further showed no gain on the
  /// hotpath bench while growing the scratch footprint.
  static constexpr int kLanes = 16;

  /// Identity of the estimator the constant tables below were built for
  /// (CycleEstimator::binding_id(); 0 = unbound).  Address comparison is
  /// not enough: a stack-constructed estimator can reuse the address of a
  /// dead one (the svc workers do exactly that, one estimator per cold
  /// request).
  std::uint64_t bound_id = 0;

  // Per-cluster constants, resolved once per binding (indexed by ClusterId).
  std::vector<double> inv_s;       ///< Eq. 3 weight 1/S_i (flop seconds)
  std::vector<double> comp_ms;     ///< Eq. 4 prefix s_ms * ops_per_pdu
  std::vector<int> capacity;       ///< cluster sizes (validation)
  std::vector<char> has_fit;       ///< dominant-topology comm fit present
  std::vector<Eq1Fit> fit;         ///< by-value Eq. 1 fits (where has_fit)
  std::vector<double> router_i, router_s;  ///< per ordered pair, K*K
  std::vector<double> coerce_i, coerce_s;  ///< zero when no coercion fit
  std::vector<char> has_router;

  // SoA lane state (lane-major, stride = cluster count).  Scalar per-lane
  // values (group counts, totals, weight sums) live on estimate_lanes()'s
  // stack; only the variable-length per-group state needs heap room.
  std::vector<double> group_w;     ///< active-group Eq. 3 weights
  std::vector<int> group_p;        ///< active-group processor counts
  std::vector<ClusterId> group_c;  ///< active-group cluster ids
  std::vector<std::int64_t> share_base;  ///< Eq. 3 floor shares
  std::vector<double> share_frac;        ///< matching fractional parts
  std::vector<std::int64_t> ranks_before;  ///< rank-kernel output per lane
  std::vector<double> group_bytes; ///< per-group message bytes (as double)
  std::vector<std::int64_t> max_a; ///< per-lane per-group max A_i

  /// Memo for the dominant communication phase's bytes_per_message
  /// callback (a std::function, the one indirect call the batch cannot
  /// hoist).  Spec callbacks are fixed for the estimator's lifetime, so
  /// caching by A_i is exact.  For the common case (num_PDUs small enough)
  /// `bytes_cache` is indexed directly by A_i (-1 = empty): one load per
  /// group, no hashing, no collisions.  Above kBytesDirectMax PDUs the
  /// direct table would outgrow the data cache, so a direct-mapped hash
  /// memo takes over.  Both are cleared on rebinding.
  static constexpr std::int64_t kBytesDirectMax = std::int64_t{1} << 16;
  std::vector<std::int64_t> bytes_cache;  ///< [0, num_pdus]; empty if large
  static constexpr int kBytesMemoBits = 9;
  std::vector<std::int64_t> memo_key;  ///< A_i + 1; 0 = empty
  std::vector<std::int64_t> memo_val;
};

/// Cached baseline for CycleEstimator::estimate_delta(): one evaluated
/// configuration plus the gather-stage state a single +/-1 rescoring can
/// reuse.  A move changes the Eq. 3 weight sum, hence every group's ideal
/// share -- so the divisions and the rank kernel must rerun -- but the
/// validation scan, the active-group gather, and the weight-sum prefix up
/// to the moved cluster are pure functions of the baseline and are served
/// from this cache.  Bound to one (estimator, baseline) pair via
/// bind_delta(); rebind after the estimator or the baseline changes by any
/// path other than commit_delta().
struct DeltaScratch {
  /// Estimator the cache belongs to (CycleEstimator::binding_id();
  /// 0 = unbound).
  std::uint64_t bound_id = 0;

  ProcessorConfig config;  ///< the cached baseline configuration
  int total_p = 0;         ///< config_total(config)

  // Active groups of the baseline in placement (rank-major) order -- the
  // gather pass estimate_into performs per evaluation, done once here.
  std::vector<double> group_w;
  std::vector<int> group_p;
  std::vector<ClusterId> group_c;

  /// Eq. 3 weight-sum partials: prefix_w[g] is the sum over the ranks of
  /// groups 0..g-1 in the exact rank-major repeated-add order (float
  /// addition is not associative; resuming the chain at the moved group
  /// from this partial reproduces the from-scratch sum bitwise).
  /// prefix_w[groups] is the full baseline sum.
  std::vector<double> prefix_w;

  // Patched-lane staging (the moved configuration's groups and shares).
  // Sized to the cluster count + 1 on first bind; steady-state delta
  // evaluations allocate nothing.
  std::vector<double> lane_w;
  std::vector<int> lane_p;
  std::vector<ClusterId> lane_c;
  std::vector<std::int64_t> lane_base;
  std::vector<double> lane_frac;
  std::vector<std::int64_t> lane_rb;
  std::vector<std::int64_t> lane_max_a;
  std::vector<double> lane_bytes;

  /// Staging for the starvation fallback (the rare configuration the
  /// closed form cannot serve replays through estimate_into on this
  /// buffer, keeping the fallback allocation-free too).
  ProcessorConfig moved;
};

/// Reusable buffers for CycleEstimator::estimate_into() /
/// estimate_batch() and the search drivers.  Strictly one owner thread at
/// a time -- never share a scratch across threads (the svc worker pool
/// keeps one per worker, the work-stealing exhaustive sweep one per
/// worker).  Buffers grow to the network's cluster count on first use and
/// are then reused: steady-state evaluations perform zero heap
/// allocations.
struct EstimatorScratch {
  /// Fast-path evaluations recorded through this scratch.  Search drivers
  /// read the delta across a search and merge it into the estimator's
  /// evaluations() plus the batched `estimator.evaluations` counter.
  std::uint64_t evaluations = 0;

  /// Of `evaluations`, how many ran through estimate_batch()'s lane engine
  /// (the scalar remainder lane and starve fallbacks count as plain
  /// fast-path evaluations).  Drivers fold the delta into the
  /// `estimator.batch_evals` telemetry counter.
  std::uint64_t batch_evaluations = 0;

  /// Of `evaluations`, how many ran through estimate_delta()'s patched
  /// single-lane path (the starvation fallback replays through
  /// estimate_into and counts as a plain fast-path evaluation).  Drivers
  /// fold the delta into the `estimator.delta_evals` telemetry counter.
  std::uint64_t delta_evaluations = 0;

  // Internal buffers (estimator + partitioner use; sizes are per-network).
  std::vector<double> group_weights;     ///< 1/S_i per active cluster
  std::vector<int> group_sizes;          ///< P_i per active cluster
  std::vector<ClusterId> group_clusters; ///< active cluster ids, rank order
  std::vector<GroupShare> shares;        ///< closed-form Eq. 3 shares
  std::vector<std::int64_t> max_a;       ///< per active cluster max A_i
  std::vector<double> objective_cache;   ///< ClusterObjective memo (NaN=empty)

  /// Lane-parallel engine state (see BatchScratch).  Embedded here so every
  /// existing scratch owner -- svc workers above all -- reuses warm batch
  /// buffers without new plumbing.
  BatchScratch batch;

  /// Delta-evaluation baseline cache (see DeltaScratch).  Embedded so the
  /// hill climb and the adaptive repartition scorer reuse warm buffers
  /// through the scratch they already hold.
  DeltaScratch delta;

  /// Candidate/result staging for batched search drivers (start-set
  /// assembly, linear-scan prefills).  Reused across searches.
  std::vector<ProcessorConfig> batch_configs;
  std::vector<FastEstimate> batch_results;
};

class CycleEstimator {
 public:
  /// All referenced objects must outlive the estimator.  Dominant phases
  /// and the communication-fit inventory are resolved here, once: the
  /// spec's callbacks must be deterministic for the estimator's lifetime
  /// (they always were in practice -- the searches assume a fixed
  /// objective).
  CycleEstimator(const Network& network, const CostModelDb& db,
                 const ComputationSpec& spec);

  /// Evaluate one configuration (reference path).  Throws InvalidArgument
  /// for configurations that exceed cluster capacities or select nothing.
  CycleEstimate estimate(const ProcessorConfig& config) const;

  /// Allocation-free evaluation of one configuration through `scratch`.
  /// Bitwise identical to estimate() on every cost field.  Thread-safe for
  /// concurrent calls with distinct scratches; bumps scratch.evaluations
  /// instead of this estimator's counter (callers merge, see
  /// merge_evaluations()).
  FastEstimate estimate_into(const ProcessorConfig& config,
                             EstimatorScratch& scratch) const;

  /// Evaluate `count` configurations through the lane-parallel engine:
  /// whole groups of BatchScratch::kLanes advance through the SoA stages
  /// together, the remainder finishes on a scalar lane (estimate_into).
  /// out[i] is bitwise identical to estimate_into(configs[i], scratch) on
  /// every cost field, for every batch size including 0 and 1.
  /// Allocation-free once `scratch` has warmed up against this estimator.
  /// Thread-safe for concurrent calls with distinct scratches.
  void estimate_batch(const ProcessorConfig* configs, std::size_t count,
                      FastEstimate* out, EstimatorScratch& scratch) const;

  /// Cache `config` as `d`'s delta baseline and return its estimate
  /// (bitwise estimate_into; counts one evaluation).  Subsequent
  /// estimate_delta()/commit_delta() calls against `d` are valid until the
  /// estimator or the baseline changes by any other path.
  FastEstimate bind_delta(const ProcessorConfig& config, DeltaScratch& d,
                          EstimatorScratch& scratch) const;

  /// Score baseline-with-one-move -- the configuration equal to `d`'s
  /// baseline except cluster `cluster` gains `delta` processors -- without
  /// touching the baseline.  Bitwise identical to estimate_into() on the
  /// moved configuration (the property tier asserts this across randomised
  /// move sequences), at a fraction of the cost: validation, the
  /// active-group gather, and the weight-sum prefix before the moved
  /// cluster come from the cache; only the share divisions, the rank
  /// kernel, and the Eq. 4/5 folds rerun.  Throws InvalidArgument exactly
  /// where estimate_into would (capacity exceeded, nothing selected, more
  /// ranks than PDUs).  Moves that empty or activate a cluster are
  /// supported; a move the closed form cannot serve (starvation repair)
  /// replays through estimate_into transparently.
  FastEstimate estimate_delta(ClusterId cluster, int delta, DeltaScratch& d,
                              EstimatorScratch& scratch) const;

  /// Apply a move to `d`'s cached baseline: the baseline becomes the moved
  /// configuration and the gather cache is refreshed.  No evaluation is
  /// performed (the caller already holds the move's estimate from
  /// estimate_delta).
  void commit_delta(ClusterId cluster, int delta, DeltaScratch& d,
                    EstimatorScratch& scratch) const;

  /// Identity for BatchScratch binding (never 0; see
  /// BatchScratch::bound_id).
  std::uint64_t binding_id() const { return binding_id_; }

  /// Clusters ordered fastest-first; partition vectors and placements are
  /// rank-major in this order.
  const std::vector<ClusterId>& cluster_order() const {
    return cluster_order_;
  }

  /// Number of evaluations so far -- the paper's K*log2 P overhead metric
  /// counts these.  estimate() bumps it directly; fast-path evaluations
  /// arrive batched via merge_evaluations().
  std::uint64_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }

  /// Fold `n` scratch-counted fast-path evaluations into evaluations().
  void merge_evaluations(std::uint64_t n) const {
    evaluations_.fetch_add(n, std::memory_order_relaxed);
  }

  const ComputationSpec& spec() const { return spec_; }
  const Network& network() const { return network_; }

 private:
  CycleEstimate estimate_impl(const ProcessorConfig& config) const;
  /// Rebuild `batch`'s per-cluster constant tables when it is bound to a
  /// different estimator (allocates); no-op on the steady-state path.
  void ensure_batch_bound(BatchScratch& batch) const;
  /// One full lane group (BatchScratch::kLanes configurations) through the
  /// SoA stages; lanes the closed form cannot serve divert to
  /// estimate_into.
  void estimate_lanes(const ProcessorConfig* configs, FastEstimate* out,
                      EstimatorScratch& scratch) const;
  /// Rebuild `d`'s gather cache (active groups, weight-sum prefixes) from
  /// d.config.  Reads the bound per-cluster tables in scratch.batch.
  void rebuild_delta_cache(DeltaScratch& d, EstimatorScratch& scratch) const;
  double comm_cost_ms(const ProcessorConfig& config,
                      const PartitionVector& partition) const;
  /// Shared Eq. 1/2/5 evaluation once the per-cluster max A_i are known.
  /// `clusters`/`sizes`/`max_a` describe the active clusters in placement
  /// order; total_p is config_total(config).
  double comm_cost_from_groups(const ClusterId* clusters, const int* sizes,
                               const std::int64_t* max_a,
                               std::size_t num_groups, int total_p) const;
  /// T_comm[C](b, p) with the singleton-cluster proxy fallback resolved
  /// against the constructor-memoized fitted-cluster list.
  double cluster_cost_ms(ClusterId c, double bytes, double p_param) const;

  const Network& network_;
  const CostModelDb& db_;
  const ComputationSpec& spec_;
  std::vector<ClusterId> cluster_order_;
  std::vector<int> order_pos_;  ///< cluster id -> index in cluster_order_

  // Constructor-resolved invariants of the spec and cost model: the hot
  // path must not re-run phase-dominance scans, callback invocations with
  // fixed results, or the per-call "which clusters have a fit" rescan.
  const ComputationPhaseSpec* dominant_comp_ = nullptr;
  std::int64_t num_pdus_ = 0;
  double ops_per_pdu_ = 0.0;
  const CommunicationPhaseSpec* dominant_comm_ = nullptr;  // null: no comm
  Topology comm_topology_ = Topology::OneD;
  bool comm_bw_limited_ = false;
  bool phases_overlap_ = false;
  std::vector<ClusterId> fitted_clusters_;  ///< has_comm(c, topo), id order
  std::vector<char> has_fit_;               ///< per cluster, dominant topo
  std::uint64_t binding_id_ = 0;            ///< process-unique, never 0

  mutable std::atomic<std::uint64_t> evaluations_{0};
};

}  // namespace netpart

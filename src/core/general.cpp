#include "core/general.hpp"

#include <limits>
#include <set>

#include "obs/telemetry.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace netpart {

namespace {

/// Hill-climb from `config` with +/-1 moves until a local minimum; returns
/// the local minimum's objective value and mutates `config` in place.
/// Evaluations run on the estimator's fast path through `scratch` (the
/// caller reads scratch.evaluations for the budget accounting).
double hill_climb(const CycleEstimator& estimator,
                  const AvailabilitySnapshot& snapshot,
                  ProcessorConfig& config, std::uint64_t budget,
                  std::uint64_t* evaluations, EstimatorScratch& scratch) {
  const auto evaluate = [&](const ProcessorConfig& c) {
    ++*evaluations;
    return estimator.estimate_into(c, scratch).t_c_ms;
  };

  double current = evaluate(config);
  bool improved = true;
  while (improved && *evaluations < budget) {
    improved = false;
    ProcessorConfig best_neighbor;
    double best_value = current;
    for (std::size_t c = 0; c < config.size(); ++c) {
      for (const int delta : {+1, -1}) {
        ProcessorConfig candidate = config;
        candidate[c] += delta;
        if (candidate[c] < 0 || candidate[c] > snapshot.available[c]) {
          continue;
        }
        if (config_total(candidate) == 0) continue;
        const double value = evaluate(candidate);
        if (value < best_value - 1e-12) {
          best_value = value;
          best_neighbor = std::move(candidate);
        }
      }
    }
    if (!best_neighbor.empty()) {
      config = std::move(best_neighbor);
      current = best_value;
      improved = true;
    }
  }
  return current;
}

}  // namespace

PartitionResult general_partition(const CycleEstimator& estimator,
                                  const AvailabilitySnapshot& snapshot,
                                  const GeneralPartitionOptions& options) {
  const Network& net = estimator.network();
  NP_REQUIRE(static_cast<int>(snapshot.available.size()) ==
                 net.num_clusters(),
             "availability snapshot does not match the network");
  NP_REQUIRE(snapshot.total() > 0, "no processors available");
  std::uint64_t evaluations = 0;
  EstimatorScratch scratch;

  // Deterministic starting points.
  std::set<ProcessorConfig> starts;
  const PartitionResult heuristic_start =
      partition(estimator, snapshot, {}, &scratch);
  starts.insert(heuristic_start.config);
  starts.insert(config_all_available(snapshot));
  for (ClusterId c = 0; c < net.num_clusters(); ++c) {
    const int n = snapshot.available[static_cast<std::size_t>(c)];
    if (n == 0) continue;
    ProcessorConfig single(snapshot.available.size(), 0);
    single[static_cast<std::size_t>(c)] = n;
    starts.insert(std::move(single));
  }

  // Random starts widen the basin coverage.
  Rng rng(options.seed);
  for (int s = 0; s < options.random_starts; ++s) {
    ProcessorConfig config(snapshot.available.size(), 0);
    int total = 0;
    for (std::size_t c = 0; c < config.size(); ++c) {
      config[c] = static_cast<int>(
          rng.next_int(0, snapshot.available[c]));
      total += config[c];
    }
    if (total == 0) continue;
    starts.insert(std::move(config));
  }

  ProcessorConfig best_config;
  double best_value = std::numeric_limits<double>::infinity();
  for (const ProcessorConfig& start : starts) {
    ProcessorConfig config = start;
    const double value =
        hill_climb(estimator, snapshot, config, options.max_evaluations,
                   &evaluations, scratch);
    if (value < best_value) {
      best_value = value;
      best_config = std::move(config);
    }
  }
  NP_ASSERT(!best_config.empty());
  NP_LOG_DEBUG << "general partitioner: T_c=" << best_value << "ms from "
               << starts.size() << " starts";

  // Fold the climb's fast-path evaluations into the estimator's tally and
  // the batched counter (partition() above already accounted for its own;
  // +1 covers the final reference materialisation).
  estimator.merge_evaluations(evaluations);
  obs::TelemetryRegistry::global()
      .counter("estimator.evaluations")
      .add(evaluations + 1);
  return PartitionResult{
      best_config, estimator.estimate(best_config),
      contiguous_placement(net, best_config, estimator.cluster_order()),
      estimator.cluster_order(),
      heuristic_start.evaluations + evaluations + 1};
}

}  // namespace netpart

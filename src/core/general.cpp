#include "core/general.hpp"

#include <limits>
#include <set>

#include "obs/telemetry.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace netpart {

namespace {

/// Hill-climb from `config` with +/-1 moves until a local minimum; returns
/// the local minimum's objective value and mutates `config` in place.
/// Each round's whole +/-1 neighborhood (at most 2K configs) is scored in
/// one estimate_batch pass; the winner is then chosen scanning the results
/// in the scalar climb's probe order (cluster ascending, +1 before -1), so
/// move sequences -- and evaluation counts -- match the scalar climb
/// exactly.  The caller reads scratch.evaluations for budget accounting.
double hill_climb(const CycleEstimator& estimator,
                  const AvailabilitySnapshot& snapshot,
                  ProcessorConfig& config, std::uint64_t budget,
                  std::uint64_t* evaluations, EstimatorScratch& scratch) {
  auto& neighbors = scratch.batch_configs;
  auto& results = scratch.batch_results;
  const std::size_t max_neighbors = 2 * config.size();
  if (neighbors.size() < max_neighbors) neighbors.resize(max_neighbors);
  if (results.size() < max_neighbors) results.resize(max_neighbors);

  ++*evaluations;
  double current = estimator.estimate_into(config, scratch).t_c_ms;
  bool improved = true;
  while (improved && *evaluations < budget) {
    improved = false;
    std::size_t n = 0;
    for (std::size_t c = 0; c < config.size(); ++c) {
      for (const int delta : {+1, -1}) {
        const int moved = config[c] + delta;
        if (moved < 0 || moved > snapshot.available[c]) continue;
        ProcessorConfig& candidate = neighbors[n];
        candidate = config;
        candidate[c] = moved;
        if (config_total(candidate) == 0) continue;
        ++n;
      }
    }
    estimator.estimate_batch(neighbors.data(), n, results.data(), scratch);
    *evaluations += n;
    std::size_t best_neighbor = n;
    double best_value = current;
    for (std::size_t i = 0; i < n; ++i) {
      if (results[i].t_c_ms < best_value - 1e-12) {
        best_value = results[i].t_c_ms;
        best_neighbor = i;
      }
    }
    if (best_neighbor != n) {
      config = neighbors[best_neighbor];
      current = best_value;
      improved = true;
    }
  }
  return current;
}

}  // namespace

PartitionResult general_partition(const CycleEstimator& estimator,
                                  const AvailabilitySnapshot& snapshot,
                                  const GeneralPartitionOptions& options) {
  const Network& net = estimator.network();
  NP_REQUIRE(static_cast<int>(snapshot.available.size()) ==
                 net.num_clusters(),
             "availability snapshot does not match the network");
  NP_REQUIRE(snapshot.total() > 0, "no processors available");
  std::uint64_t evaluations = 0;
  EstimatorScratch scratch;

  // Deterministic starting points.
  std::set<ProcessorConfig> starts;
  const PartitionResult heuristic_start =
      partition(estimator, snapshot, {}, &scratch);
  starts.insert(heuristic_start.config);
  starts.insert(config_all_available(snapshot));
  for (ClusterId c = 0; c < net.num_clusters(); ++c) {
    const int n = snapshot.available[static_cast<std::size_t>(c)];
    if (n == 0) continue;
    ProcessorConfig single(snapshot.available.size(), 0);
    single[static_cast<std::size_t>(c)] = n;
    starts.insert(std::move(single));
  }

  // Random starts widen the basin coverage.
  Rng rng(options.seed);
  for (int s = 0; s < options.random_starts; ++s) {
    ProcessorConfig config(snapshot.available.size(), 0);
    int total = 0;
    for (std::size_t c = 0; c < config.size(); ++c) {
      config[c] = static_cast<int>(
          rng.next_int(0, snapshot.available[c]));
      total += config[c];
    }
    if (total == 0) continue;
    starts.insert(std::move(config));
  }

  ProcessorConfig best_config;
  double best_value = std::numeric_limits<double>::infinity();
  for (const ProcessorConfig& start : starts) {
    ProcessorConfig config = start;
    const double value =
        hill_climb(estimator, snapshot, config, options.max_evaluations,
                   &evaluations, scratch);
    if (value < best_value) {
      best_value = value;
      best_config = std::move(config);
    }
  }
  NP_ASSERT(!best_config.empty());
  NP_LOG_DEBUG << "general partitioner: T_c=" << best_value << "ms from "
               << starts.size() << " starts";

  // Fold the climb's fast-path evaluations into the estimator's tally and
  // the batched counter (partition() above already accounted for its own;
  // +1 covers the final reference materialisation).
  estimator.merge_evaluations(evaluations);
  obs::TelemetryRegistry::global()
      .counter("estimator.evaluations")
      .add(evaluations + 1);
  obs::TelemetryRegistry::global()
      .counter("estimator.batch_evals")
      .add(scratch.batch_evaluations);
  return PartitionResult{
      best_config, estimator.estimate(best_config),
      contiguous_placement(net, best_config, estimator.cluster_order()),
      estimator.cluster_order(),
      heuristic_start.evaluations + evaluations + 1};
}

}  // namespace netpart

#include "core/general.hpp"

#include <algorithm>
#include <limits>

#include "obs/telemetry.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace netpart {

namespace {

/// Hill-climb from `config` with +/-1 moves until a local minimum; returns
/// the local minimum's objective value and mutates `config` in place.
/// Every candidate is one move away from the current configuration, so
/// each is scored through estimate_delta against the bound baseline --
/// validation, gather, and the weight-sum prefix are reused instead of
/// recomputed 2K times per round.  Probing order (cluster ascending, +1
/// before -1) and the strict improvement bar match the original batched
/// climb, so move sequences -- and evaluation counts -- are unchanged.
/// The caller reads scratch.evaluations for budget accounting.
double hill_climb(const CycleEstimator& estimator,
                  const AvailabilitySnapshot& snapshot,
                  ProcessorConfig& config, std::uint64_t budget,
                  std::uint64_t* evaluations, EstimatorScratch& scratch) {
  DeltaScratch& d = scratch.delta;
  ++*evaluations;
  double current = estimator.bind_delta(config, d, scratch).t_c_ms;
  int total = config_total(config);
  bool improved = true;
  while (improved && *evaluations < budget) {
    improved = false;
    int best_cluster = -1;
    int best_delta = 0;
    double best_value = current;
    for (std::size_t c = 0; c < config.size(); ++c) {
      for (const int delta : {+1, -1}) {
        const int moved = config[c] + delta;
        if (moved < 0 || moved > snapshot.available[c]) continue;
        if (total + delta == 0) continue;
        const double value =
            estimator
                .estimate_delta(static_cast<ClusterId>(c), delta, d, scratch)
                .t_c_ms;
        ++*evaluations;
        if (value < best_value - 1e-12) {
          best_value = value;
          best_cluster = static_cast<int>(c);
          best_delta = delta;
        }
      }
    }
    if (best_cluster >= 0) {
      estimator.commit_delta(static_cast<ClusterId>(best_cluster),
                             best_delta, d, scratch);
      config[static_cast<std::size_t>(best_cluster)] += best_delta;
      total += best_delta;
      current = best_value;
      improved = true;
    }
  }
  return current;
}

}  // namespace

PartitionResult general_partition(const CycleEstimator& estimator,
                                  const AvailabilitySnapshot& snapshot,
                                  const GeneralPartitionOptions& options,
                                  EstimatorScratch* scratch) {
  const Network& net = estimator.network();
  NP_REQUIRE(static_cast<int>(snapshot.available.size()) ==
                 net.num_clusters(),
             "availability snapshot does not match the network");
  NP_REQUIRE(snapshot.total() > 0, "no processors available");
  std::uint64_t evaluations = 0;
  EstimatorScratch local_scratch;
  EstimatorScratch& sc = scratch != nullptr ? *scratch : local_scratch;
  const std::uint64_t batch_evals_before = sc.batch_evaluations;
  const std::uint64_t delta_evals_before = sc.delta_evaluations;

  // Deterministic starting points, staged in the scratch's reusable
  // config buffer (assignment into a retained ProcessorConfig reuses its
  // capacity, so a warm scratch assembles the start set allocation-free).
  auto& starts = sc.batch_configs;
  std::size_t num_starts = 0;
  const auto add_start = [&](const ProcessorConfig& config) {
    if (starts.size() <= num_starts) starts.resize(num_starts + 1);
    starts[num_starts++] = config;
  };
  const PartitionResult heuristic_start =
      partition(estimator, snapshot, {}, &sc);
  add_start(heuristic_start.config);
  add_start(config_all_available(snapshot));
  {
    ProcessorConfig single(snapshot.available.size(), 0);
    for (ClusterId c = 0; c < net.num_clusters(); ++c) {
      const int n = snapshot.available[static_cast<std::size_t>(c)];
      if (n == 0) continue;
      std::fill(single.begin(), single.end(), 0);
      single[static_cast<std::size_t>(c)] = n;
      add_start(single);
    }

    // Random starts widen the basin coverage.
    Rng rng(options.seed);
    for (int s = 0; s < options.random_starts; ++s) {
      int total = 0;
      for (std::size_t c = 0; c < single.size(); ++c) {
        single[c] =
            static_cast<int>(rng.next_int(0, snapshot.available[c]));
        total += single[c];
      }
      if (total == 0) continue;
      add_start(single);
    }
  }
  // Sorted + deduplicated: the exact sequence the former std::set visited,
  // without its per-node allocations.
  std::sort(starts.begin(), starts.begin() + num_starts);
  num_starts = static_cast<std::size_t>(
      std::unique(starts.begin(), starts.begin() + num_starts) -
      starts.begin());

  ProcessorConfig best_config;
  ProcessorConfig config;
  double best_value = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < num_starts; ++s) {
    config = starts[s];
    const double value =
        hill_climb(estimator, snapshot, config, options.max_evaluations,
                   &evaluations, sc);
    if (value < best_value) {
      best_value = value;
      std::swap(best_config, config);
    }
  }
  NP_ASSERT(!best_config.empty());
  NP_LOG_DEBUG << "general partitioner: T_c=" << best_value << "ms from "
               << num_starts << " starts";

  // Fold the climb's fast-path evaluations into the estimator's tally and
  // the per-path counters (partition() above already accounted for its
  // own; +1 covers the final reference materialisation).  Deltas, not
  // totals: a caller-provided scratch carries counts from prior searches.
  estimator.merge_evaluations(evaluations);
  obs::TelemetryRegistry::global()
      .counter("estimator.evaluations")
      .add(evaluations + 1);
  obs::TelemetryRegistry::global()
      .counter("estimator.batch_evals")
      .add(sc.batch_evaluations - batch_evals_before);
  obs::TelemetryRegistry::global()
      .counter("estimator.delta_evals")
      .add(sc.delta_evaluations - delta_evals_before);
  return PartitionResult{
      best_config, estimator.estimate(best_config),
      contiguous_placement(net, best_config, estimator.cluster_order()),
      estimator.cluster_order(),
      heuristic_start.evaluations + evaluations + 1};
}

}  // namespace netpart

// The general partitioning problem (Section 5).
//
// The published heuristic is biased toward communication locality: clusters
// are ordered by speed, considered one at a time, and abandoned at the
// first partial allocation.  The paper notes that the general problem --
// where extra cross-segment bandwidth can beat locality, and T_c(p) may
// have several minima -- "requires that a system of nonlinear equations be
// solved" and that heuristics for it were still being explored.
//
// This module supplies that exploration: a multi-start local search over
// full configurations.  Starting points are the locality heuristic's
// answer, the all-available configuration, each single-cluster
// configuration, and a few random draws; each start hill-climbs with
// +/-1-processor moves until no move improves T_c.  No unimodality or
// ordering assumption is made, so it also copes with multi-minima curves.
// The cost stays polynomial: O(starts * K * P) evaluations worst case,
// against the exponential exhaustive search.
#pragma once

#include <cstdint>

#include "core/partitioner.hpp"
#include "util/rng.hpp"

namespace netpart {

struct GeneralPartitionOptions {
  /// Random starting configurations in addition to the deterministic ones.
  int random_starts = 4;
  std::uint64_t seed = 1;
  /// Safety valve on objective evaluations.
  std::uint64_t max_evaluations = 100000;
};

/// Multi-start local search over the full configuration space.  Never
/// returns a configuration worse than the locality heuristic's (it is one
/// of the starting points).  Each start's +/-1 neighbourhood is scored
/// through the estimator's delta path (estimate_delta against the current
/// climb position), so a probe costs a fraction of a from-scratch
/// evaluation.  Pass a long-lived `scratch` to reuse warm buffers across
/// searches (the bench and service drivers do); nullptr uses a call-local
/// one.
PartitionResult general_partition(
    const CycleEstimator& estimator, const AvailabilitySnapshot& snapshot,
    const GeneralPartitionOptions& options = {},
    EstimatorScratch* scratch = nullptr);

}  // namespace netpart

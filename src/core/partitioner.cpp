#include "core/partitioner.hpp"

#include <limits>

#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace netpart {

namespace {

/// Memoizing objective for one cluster's search: f(p) = T_c with this
/// cluster set to p processors and everything else fixed.
class ClusterObjective {
 public:
  ClusterObjective(const CycleEstimator& estimator, ProcessorConfig config,
                   ClusterId cluster)
      : estimator_(estimator),
        config_(std::move(config)),
        cluster_(cluster),
        cache_(static_cast<std::size_t>(
                   estimator.network().cluster(cluster).size()) +
               1) {}

  double operator()(int p) {
    auto& slot = cache_[static_cast<std::size_t>(p)];
    if (!slot) {
      config_[static_cast<std::size_t>(cluster_)] = p;
      slot = estimator_.estimate(config_).t_c_ms;
    }
    return *slot;
  }

 private:
  const CycleEstimator& estimator_;
  ProcessorConfig config_;
  ClusterId cluster_;
  std::vector<std::optional<double>> cache_;
};

/// Locate the argmin of a discrete unimodal function on [lo, hi] by binary
/// search (the paper's Fig. 3 assumption: a single global minimum).
int unimodal_argmin(ClusterObjective& f, int lo, int hi,
                    std::uint64_t& steps) {
  while (lo < hi) {
    ++steps;
    const int mid = lo + (hi - lo) / 2;
    if (f(mid) <= f(mid + 1)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

/// Plain scan, robust to multiple minima.
int linear_argmin(ClusterObjective& f, int lo, int hi) {
  int best = lo;
  for (int p = lo + 1; p <= hi; ++p) {
    if (f(p) < f(best)) best = p;
  }
  return best;
}

}  // namespace

PartitionResult partition(const CycleEstimator& estimator,
                          const AvailabilitySnapshot& snapshot,
                          const PartitionOptions& options) {
  const Network& net = estimator.network();
  NP_REQUIRE(static_cast<int>(snapshot.available.size()) ==
                 net.num_clusters(),
             "availability snapshot does not match the network");
  NP_REQUIRE(snapshot.total() > 0, "no processors available");

  auto& telemetry = obs::TelemetryRegistry::global();
  static obs::Counter& calls_counter = telemetry.counter("partitioner.calls");
  static obs::Counter& steps_counter =
      telemetry.counter("partitioner.binary_search_steps");
  static obs::Counter& evals_counter =
      telemetry.counter("partitioner.cost_model_evals");
  calls_counter.add(1);
  obs::Span search_span(telemetry, "partition.search", "core");

  const std::uint64_t evals_before = estimator.evaluations();
  ProcessorConfig config(static_cast<std::size_t>(net.num_clusters()), 0);
  bool any_selected = false;
  std::uint64_t search_steps = 0;

  for (ClusterId c : estimator.cluster_order()) {
    const int n = snapshot.available[static_cast<std::size_t>(c)];
    if (n == 0) continue;

    const std::uint64_t cluster_evals_before = estimator.evaluations();
    obs::Span cluster_span(telemetry, "partition.cluster", "core");
    ClusterObjective f(estimator, config, c);
    // The Fig. 3 unimodality assumption covers p >= 1; "use none of this
    // cluster" (p = 0, only legal once something is selected) sits off the
    // curve -- it removes the router crossing entirely -- so it is compared
    // against the valley minimum explicitly rather than searched.
    int best = options.search == PartitionOptions::Search::Binary
                   ? unimodal_argmin(f, 1, n, search_steps)
                   : linear_argmin(f, 1, n);
    if (any_selected && f(0) <= f(best)) {
      best = 0;
    }
    config[static_cast<std::size_t>(c)] = best;
    if (best > 0) any_selected = true;

    if (cluster_span.active()) {
      cluster_span.attr("cluster", JsonValue(static_cast<std::int64_t>(c)));
      cluster_span.attr("available", JsonValue(n));
      cluster_span.attr("chosen", JsonValue(best));
      cluster_span.attr("evaluations",
                        JsonValue(estimator.evaluations() -
                                  cluster_evals_before));
    }
    if (options.stop_at_partial_cluster && best < n) {
      // Communication locality rule: a partially used cluster means the
      // granularity limit was reached; remoter processors cannot help.
      break;
    }
  }
  NP_ASSERT(any_selected);

  PartitionResult result{
      config, estimator.estimate(config),
      contiguous_placement(net, config, estimator.cluster_order()),
      estimator.cluster_order(), estimator.evaluations() - evals_before};
  steps_counter.add(search_steps);
  evals_counter.add(result.evaluations);
  if (search_span.active()) {
    search_span.attr("evaluations", JsonValue(result.evaluations));
    search_span.attr("binary_search_steps", JsonValue(search_steps));
    search_span.attr("t_c_ms", JsonValue(result.estimate.t_c_ms));
  }
  NP_LOG_DEBUG << "partitioner chose config with T_c="
               << result.estimate.t_c_ms << "ms after " << result.evaluations
               << " evaluations";
  return result;
}

PartitionResult exhaustive_partition(const CycleEstimator& estimator,
                                     const AvailabilitySnapshot& snapshot) {
  const Network& net = estimator.network();
  NP_REQUIRE(static_cast<int>(snapshot.available.size()) ==
                 net.num_clusters(),
             "availability snapshot does not match the network");
  NP_REQUIRE(snapshot.total() > 0, "no processors available");

  const std::uint64_t evals_before = estimator.evaluations();
  ProcessorConfig config(static_cast<std::size_t>(net.num_clusters()), 0);
  ProcessorConfig best_config;
  double best_tc = std::numeric_limits<double>::infinity();

  // Odometer enumeration of the product space.
  while (true) {
    if (config_total(config) > 0) {
      const double tc = estimator.estimate(config).t_c_ms;
      if (tc < best_tc) {
        best_tc = tc;
        best_config = config;
      }
    }
    std::size_t digit = 0;
    while (digit < config.size()) {
      if (config[digit] <
          snapshot.available[digit]) {
        ++config[digit];
        break;
      }
      config[digit] = 0;
      ++digit;
    }
    if (digit == config.size()) break;
  }
  NP_ASSERT(!best_config.empty());

  return PartitionResult{
      best_config, estimator.estimate(best_config),
      contiguous_placement(net, best_config, estimator.cluster_order()),
      estimator.cluster_order(), estimator.evaluations() - evals_before};
}

ProcessorConfig config_single_fastest_cluster(
    const CycleEstimator& estimator, const AvailabilitySnapshot& snapshot) {
  ProcessorConfig config(snapshot.available.size(), 0);
  for (ClusterId c : estimator.cluster_order()) {
    const int n = snapshot.available[static_cast<std::size_t>(c)];
    if (n > 0) {
      config[static_cast<std::size_t>(c)] = n;
      return config;
    }
  }
  throw InvalidArgument("no processors available");
}

ProcessorConfig config_all_available(const AvailabilitySnapshot& snapshot) {
  NP_REQUIRE(snapshot.total() > 0, "no processors available");
  return snapshot.available;
}

}  // namespace netpart

#include "core/partitioner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "analysis/race/annotations.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace netpart {

namespace {

/// Memoizing objective for one cluster's search: f(p) = T_c with this
/// cluster set to p processors and everything else fixed.  Borrows the
/// caller's config (saving/restoring the searched digit) and caches in
/// scratch.objective_cache, so constructing one allocates nothing once the
/// scratch has warmed up.
class ClusterObjective {
 public:
  ClusterObjective(const CycleEstimator& estimator, ProcessorConfig& config,
                   ClusterId cluster, EstimatorScratch& scratch)
      : estimator_(estimator),
        config_(config),
        cluster_(cluster),
        saved_(config[static_cast<std::size_t>(cluster)]),
        cache_(scratch.objective_cache),
        scratch_(scratch) {
    cache_.assign(static_cast<std::size_t>(
                      estimator.network().cluster(cluster).size()) +
                      1,
                  std::numeric_limits<double>::quiet_NaN());
  }

  ~ClusterObjective() {
    config_[static_cast<std::size_t>(cluster_)] = saved_;
  }

  ClusterObjective(const ClusterObjective&) = delete;
  ClusterObjective& operator=(const ClusterObjective&) = delete;

  double operator()(int p) {
    double& slot = cache_[static_cast<std::size_t>(p)];
    if (std::isnan(slot)) {
      config_[static_cast<std::size_t>(cluster_)] = p;
      slot = estimator_.estimate_into(config_, scratch_).t_c_ms;
    }
    return slot;
  }

  /// Batch-score f(lo..hi) into the memo through estimate_batch: the
  /// linear scan's probe set is known up front, so the lane engine can
  /// overlap the evaluations.  Exactly hi-lo+1 evaluations, bitwise the
  /// values the scalar scan would have cached.  (Binary search stays
  /// scalar -- it probes adaptively.)
  void prefill(int lo, int hi) {
    auto& candidates = scratch_.batch_configs;
    auto& results = scratch_.batch_results;
    const auto n = static_cast<std::size_t>(hi - lo + 1);
    if (candidates.size() < n) candidates.resize(n);
    if (results.size() < n) results.resize(n);
    for (int p = lo; p <= hi; ++p) {
      ProcessorConfig& candidate = candidates[static_cast<std::size_t>(p - lo)];
      candidate = config_;
      candidate[static_cast<std::size_t>(cluster_)] = p;
    }
    estimator_.estimate_batch(candidates.data(), n, results.data(),
                              scratch_);
    for (int p = lo; p <= hi; ++p) {
      cache_[static_cast<std::size_t>(p)] =
          results[static_cast<std::size_t>(p - lo)].t_c_ms;
    }
  }

 private:
  const CycleEstimator& estimator_;
  ProcessorConfig& config_;
  ClusterId cluster_;
  int saved_;
  std::vector<double>& cache_;
  EstimatorScratch& scratch_;
};

/// Locate the argmin of a discrete unimodal function on [lo, hi] by binary
/// search (the paper's Fig. 3 assumption: a single global minimum).
int unimodal_argmin(ClusterObjective& f, int lo, int hi,
                    std::uint64_t& steps) {
  while (lo < hi) {
    ++steps;
    const int mid = lo + (hi - lo) / 2;
    if (f(mid) <= f(mid + 1)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

/// Plain scan, robust to multiple minima.  The whole domain is scored in
/// one batched pass first; the scan then reads the memo.  Strict < keeps
/// the first minimum, exactly like the scalar scan did.
int linear_argmin(ClusterObjective& f, int lo, int hi) {
  f.prefill(lo, hi);
  int best = lo;
  for (int p = lo + 1; p <= hi; ++p) {
    if (f(p) < f(best)) best = p;
  }
  return best;
}

}  // namespace

PartitionResult partition(const CycleEstimator& estimator,
                          const AvailabilitySnapshot& snapshot,
                          const PartitionOptions& options,
                          EstimatorScratch* scratch) {
  const Network& net = estimator.network();
  NP_REQUIRE(static_cast<int>(snapshot.available.size()) ==
                 net.num_clusters(),
             "availability snapshot does not match the network");
  NP_REQUIRE(snapshot.total() > 0, "no processors available");

  auto& telemetry = obs::TelemetryRegistry::global();
  static obs::Counter& calls_counter = telemetry.counter("partitioner.calls");
  static obs::Counter& steps_counter =
      telemetry.counter("partitioner.binary_search_steps");
  static obs::Counter& evals_counter =
      telemetry.counter("partitioner.cost_model_evals");
  static obs::Counter& estimator_evals_counter =
      telemetry.counter("estimator.evaluations");
  calls_counter.add(1);
  obs::Span search_span(telemetry, "partition.search", "core");

  EstimatorScratch local_scratch;
  EstimatorScratch& sc = scratch != nullptr ? *scratch : local_scratch;
  const std::uint64_t evals_before = sc.evaluations;
  ProcessorConfig config(static_cast<std::size_t>(net.num_clusters()), 0);
  bool any_selected = false;
  std::uint64_t search_steps = 0;

  for (ClusterId c : estimator.cluster_order()) {
    const int n = snapshot.available[static_cast<std::size_t>(c)];
    if (n == 0) continue;

    const std::uint64_t cluster_evals_before = sc.evaluations;
    obs::Span cluster_span(telemetry, "partition.cluster", "core");
    int best;
    {
      // The objective borrows `config` and restores the searched digit on
      // destruction; commit the winner only after it is gone.
      ClusterObjective f(estimator, config, c, sc);
      // The Fig. 3 unimodality assumption covers p >= 1; "use none of this
      // cluster" (p = 0, only legal once something is selected) sits off
      // the curve -- it removes the router crossing entirely -- so it is
      // compared against the valley minimum explicitly rather than
      // searched.
      best = options.search == PartitionOptions::Search::Binary
                 ? unimodal_argmin(f, 1, n, search_steps)
                 : linear_argmin(f, 1, n);
      if (any_selected && f(0) <= f(best)) {
        best = 0;
      }
    }
    config[static_cast<std::size_t>(c)] = best;
    if (best > 0) any_selected = true;

    if (cluster_span.active()) {
      cluster_span.attr("cluster", JsonValue(static_cast<std::int64_t>(c)));
      cluster_span.attr("available", JsonValue(n));
      cluster_span.attr("chosen", JsonValue(best));
      cluster_span.attr("evaluations",
                        JsonValue(sc.evaluations - cluster_evals_before));
    }
    if (options.stop_at_partial_cluster && best < n) {
      // Communication locality rule: a partially used cluster means the
      // granularity limit was reached; remoter processors cannot help.
      break;
    }
  }
  NP_ASSERT(any_selected);

  // Materialise the winner once via the reference path (callers get the
  // full partition vector); +1 accounts for it in the evaluation tally.
  const std::uint64_t fast_evals = sc.evaluations - evals_before;
  estimator.merge_evaluations(fast_evals);
  PartitionResult result{
      config, estimator.estimate(config),
      contiguous_placement(net, config, estimator.cluster_order()),
      estimator.cluster_order(), fast_evals + 1};
  steps_counter.add(search_steps);
  evals_counter.add(result.evaluations);
  estimator_evals_counter.add(result.evaluations);
  if (search_span.active()) {
    search_span.attr("evaluations", JsonValue(result.evaluations));
    search_span.attr("binary_search_steps", JsonValue(search_steps));
    search_span.attr("t_c_ms", JsonValue(result.estimate.t_c_ms));
  }
  NP_LOG_DEBUG << "partitioner chose config with T_c="
               << result.estimate.t_c_ms << "ms after " << result.evaluations
               << " evaluations";
  return result;
}

namespace {

/// One work-stealing sweep worker's state and result.
struct SweepWorker {
  EstimatorScratch scratch;
  ProcessorConfig best_config;
  double best_tc = std::numeric_limits<double>::infinity();
  std::uint64_t best_index = ~std::uint64_t{0};
  std::uint64_t chunks = 0;  ///< chunks claimed from the shared cursor
  std::exception_ptr error;
};

/// Work-stealing sweep: workers repeatedly claim [begin, begin+chunk)
/// index ranges off one atomic cursor until the space is drained, so a
/// worker that lands on cheap configurations simply claims more chunks
/// instead of idling (the static sharding this replaces stalled on the
/// slowest shard).  Index i maps to the mixed-radix odometer state with
/// digit d (cluster d) equal to i / prod(N_0+1 .. N_{d-1}+1) mod (N_d+1)
/// -- digit 0 least significant, matching the serial odometer's increment
/// order.  Within a chunk, valid configurations are gathered into lane
/// groups and scored through estimate_batch.
///
/// Determinism: fetch_add hands each worker strictly increasing begins and
/// indices increase within a chunk, so strict < keeps each worker's
/// first-minimum; the (t_c, index) lexicographic merge in
/// exhaustive_partition then recovers the globally first minimum whatever
/// the steal interleaving was.
void run_sweep_worker(const CycleEstimator& estimator,
                      const AvailabilitySnapshot& snapshot,
                      std::atomic<std::uint64_t>& cursor,
                      std::uint64_t space, std::uint64_t chunk,
                      std::uint64_t chaos_yield_seed, SweepWorker& worker) {
  try {
    constexpr int kLanes = BatchScratch::kLanes;
    ProcessorConfig config(snapshot.available.size(), 0);
    auto& lane_configs = worker.scratch.batch_configs;
    auto& lane_results = worker.scratch.batch_results;
    if (lane_configs.size() < static_cast<std::size_t>(kLanes)) {
      lane_configs.resize(static_cast<std::size_t>(kLanes));
    }
    if (lane_results.size() < static_cast<std::size_t>(kLanes)) {
      lane_results.resize(static_cast<std::size_t>(kLanes));
    }
    std::uint64_t lane_index[kLanes];
    for (;;) {
      NP_ATOMIC_RMW(&cursor, "core.sweep.cursor");
      const std::uint64_t begin =
          cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= space) break;
      const std::uint64_t end = std::min(begin + chunk, space);
      NP_WRITE(&worker, "core.sweep.worker_slot");
      ++worker.chunks;
      if (chaos_yield_seed != 0) {
        // Seeded schedule perturbation for the chaos/TSan tier: yield on a
        // deterministic-per-chunk pattern so steal interleavings vary
        // between thread counts and runs without any real randomness.
        std::uint64_t h =
            (chaos_yield_seed ^ begin) * 0x9E3779B97F4A7C15ull;
        h ^= h >> 31;
        if ((h & 3) == 0) std::this_thread::yield();
      }

      std::uint64_t idx = begin;
      for (std::size_t d = 0; d < config.size(); ++d) {
        const auto radix =
            static_cast<std::uint64_t>(snapshot.available[d]) + 1;
        config[d] = static_cast<int>(idx % radix);
        idx /= radix;
      }
      std::uint64_t i = begin;
      while (i < end) {
        int gathered = 0;
        while (i < end && gathered < kLanes) {
          if (config_total(config) > 0) {
            lane_configs[static_cast<std::size_t>(gathered)] = config;
            lane_index[gathered] = i;
            ++gathered;
          }
          ++i;
          std::size_t digit = 0;
          while (digit < config.size()) {
            if (config[digit] < snapshot.available[digit]) {
              ++config[digit];
              break;
            }
            config[digit] = 0;
            ++digit;
          }
        }
        estimator.estimate_batch(lane_configs.data(),
                                 static_cast<std::size_t>(gathered),
                                 lane_results.data(), worker.scratch);
        for (int j = 0; j < gathered; ++j) {
          const double tc = lane_results[static_cast<std::size_t>(j)].t_c_ms;
          // Strict improvement keeps the first (lowest-index) minimum the
          // worker has seen, which is what the serial scan returns on ties.
          if (tc < worker.best_tc) {
            NP_WRITE(&worker, "core.sweep.worker_slot");
            worker.best_tc = tc;
            worker.best_config = lane_configs[static_cast<std::size_t>(j)];
            worker.best_index = lane_index[j];
          }
        }
      }
    }
  } catch (...) {
    NP_WRITE(&worker, "core.sweep.worker_slot");
    worker.error = std::current_exception();
  }
}

}  // namespace

PartitionResult exhaustive_partition(const CycleEstimator& estimator,
                                     const AvailabilitySnapshot& snapshot,
                                     const ExhaustiveOptions& options) {
  const Network& net = estimator.network();
  NP_REQUIRE(static_cast<int>(snapshot.available.size()) ==
                 net.num_clusters(),
             "availability snapshot does not match the network");
  NP_REQUIRE(snapshot.total() > 0, "no processors available");

  auto& telemetry = obs::TelemetryRegistry::global();
  static obs::Counter& calls_counter = telemetry.counter("partitioner.calls");
  static obs::Counter& evals_counter =
      telemetry.counter("partitioner.cost_model_evals");
  static obs::Counter& estimator_evals_counter =
      telemetry.counter("estimator.evaluations");
  calls_counter.add(1);
  obs::Span span(telemetry, "partition.exhaustive", "core");

  // Size of the product space, with an overflow guard: the sweep is the
  // validation oracle for small-to-medium networks, not an algorithm for
  // astronomically wide ones.
  std::uint64_t space = 1;
  for (int n : snapshot.available) {
    const auto radix = static_cast<std::uint64_t>(n) + 1;
    NP_REQUIRE(space <= (std::uint64_t{1} << 62) / radix,
               "configuration space too large for exhaustive enumeration");
    space *= radix;
  }

  int threads = options.threads;
  if (threads <= 0) {
    // Auto: one worker per hardware thread, but below a few thousand
    // evaluations per worker the spawn cost dominates any speedup.
    constexpr std::uint64_t kMinWorkerWork = 2048;
    threads = static_cast<int>(std::min<std::uint64_t>(
        std::max(1u, std::thread::hardware_concurrency()),
        std::max<std::uint64_t>(1, space / kMinWorkerWork)));
  }
  threads = static_cast<int>(std::min<std::uint64_t>(
      static_cast<std::uint64_t>(threads), space));

  // Chunk size for the steal cursor: small enough that every worker gets
  // many claims (load balance), large enough to amortise the fetch_add and
  // odometer re-seed.  Rounded up to the lane width so full chunks decode
  // into whole lane groups.
  std::uint64_t chunk = options.chunk;
  if (chunk == 0) {
    chunk = std::clamp<std::uint64_t>(
        space / (static_cast<std::uint64_t>(threads) * 8) + 1, 64, 16384);
  }
  constexpr auto kLanes = static_cast<std::uint64_t>(BatchScratch::kLanes);
  chunk = (chunk + kLanes - 1) / kLanes * kLanes;

  std::vector<SweepWorker> workers(static_cast<std::size_t>(threads));
  std::atomic<std::uint64_t> cursor{0};
  if (threads == 1) {
    run_sweep_worker(estimator, snapshot, cursor, space, chunk,
                     options.chaos_yield_seed, workers[0]);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers.size());
    // The cursor doubles as the npracer fork/join token: worker-slot
    // writes in the pool are ordered before the merge loop's reads only
    // through this fork -> start ... end -> join chain.
    NP_THREAD_FORK(&cursor, "core.sweep.pool");
    for (auto& worker : workers) {
      pool.emplace_back([&estimator, &snapshot, &cursor, space, chunk,
                         &options, &worker] {
        NP_THREAD_START(&cursor, "core.sweep.pool");
        run_sweep_worker(estimator, snapshot, cursor, space, chunk,
                         options.chaos_yield_seed, worker);
        NP_THREAD_END(&cursor, "core.sweep.pool");
      });
    }
    for (auto& t : pool) t.join();
    NP_THREAD_JOIN(&cursor, "core.sweep.pool");
  }

  ProcessorConfig best_config;
  double best_tc = std::numeric_limits<double>::infinity();
  std::uint64_t best_index = ~std::uint64_t{0};
  std::uint64_t total_evals = 0;
  std::uint64_t total_batch_evals = 0;
  std::uint64_t steals = 0;
  for (auto& worker : workers) {
    NP_READ(&worker, "core.sweep.worker_slot");
    if (worker.error) std::rethrow_exception(worker.error);
    total_evals += worker.scratch.evaluations;
    total_batch_evals += worker.scratch.batch_evaluations;
    // A worker's first claim is its own assignment; each further claim is
    // a steal from the shared remainder of the space.
    if (worker.chunks > 1) steals += worker.chunks - 1;
    // Workers claim chunks in arbitrary interleavings, so enumeration
    // order across workers is lost; (t_c, index) lexicographic merge
    // recovers the globally first minimum -- bit-identical to serial.
    if (worker.best_tc < best_tc ||
        (worker.best_tc == best_tc && worker.best_index < best_index)) {
      best_tc = worker.best_tc;
      best_config = worker.best_config;
      best_index = worker.best_index;
    }
  }
  NP_ASSERT(!best_config.empty());
  estimator.merge_evaluations(total_evals);
  static obs::Counter& steals_counter =
      telemetry.counter("partitioner.steals");
  static obs::Counter& batch_evals_counter =
      telemetry.counter("estimator.batch_evals");
  steals_counter.add(steals);
  batch_evals_counter.add(total_batch_evals);

  PartitionResult result{
      best_config, estimator.estimate(best_config),
      contiguous_placement(net, best_config, estimator.cluster_order()),
      estimator.cluster_order(), total_evals + 1};
  evals_counter.add(result.evaluations);
  estimator_evals_counter.add(result.evaluations);
  if (span.active()) {
    span.attr("threads", JsonValue(threads));
    span.attr("space", JsonValue(static_cast<std::int64_t>(space)));
    span.attr("chunk", JsonValue(static_cast<std::int64_t>(chunk)));
    span.attr("steals", JsonValue(static_cast<std::int64_t>(steals)));
    span.attr("evaluations", JsonValue(result.evaluations));
    span.attr("t_c_ms", JsonValue(result.estimate.t_c_ms));
  }
  NP_LOG_DEBUG << "exhaustive sweep of " << space << " configs on "
               << threads << " threads chose T_c=" << result.estimate.t_c_ms
               << "ms";
  return result;
}

ProcessorConfig config_single_fastest_cluster(
    const CycleEstimator& estimator, const AvailabilitySnapshot& snapshot) {
  ProcessorConfig config(snapshot.available.size(), 0);
  for (ClusterId c : estimator.cluster_order()) {
    const int n = snapshot.available[static_cast<std::size_t>(c)];
    if (n > 0) {
      config[static_cast<std::size_t>(c)] = n;
      return config;
    }
  }
  throw InvalidArgument("no processors available");
}

ProcessorConfig config_all_available(const AvailabilitySnapshot& snapshot) {
  NP_REQUIRE(snapshot.total() > 0, "no processors available");
  return snapshot.available;
}

}  // namespace netpart

// The runtime partitioning algorithm (Section 5 of the paper).
//
// The heuristic orders clusters by instruction rate and considers them
// fastest-first, preferring processor power and communication locality over
// additional cross-segment bandwidth.  Within each cluster it locates the
// minimum of the unimodal T_c(p) curve (Fig. 3) by binary search, assuming
// all previously chosen clusters stay allocated.  A cluster that is not
// fully used ends the search: remote processors cannot pay off when local
// ones already don't.
//
// Worst case the objective is recomputed K*log2(P) times (K clusters,
// P total processors); the evaluations field of the result reports the
// actual count.  Both searches run on the estimator's allocation-free fast
// path (estimate_into); pass a long-lived EstimatorScratch to make repeated
// searches allocation-free end to end.
#pragma once

#include <cstdint>
#include <optional>

#include "core/estimator.hpp"
#include "net/availability.hpp"
#include "topo/placement.hpp"

namespace netpart {

struct PartitionOptions {
  enum class Search {
    Binary,  ///< the paper's O(log P) unimodal search
    Linear,  ///< scan every p (validation / multi-minima safety)
  };
  Search search = Search::Binary;

  /// The paper's locality rule: stop considering further clusters as soon
  /// as a cluster is left partially used.  Disable to keep trying remaining
  /// clusters (an ablation of the heuristic).
  bool stop_at_partial_cluster = true;
};

struct ExhaustiveOptions {
  /// Worker threads for the product-space sweep.  0 = one per hardware
  /// thread; 1 = serial (useful as the determinism reference).  The sweep
  /// is deterministic at every thread count: ties on T_c resolve to the
  /// lowest enumeration index, exactly like the serial scan.
  int threads = 0;

  /// Enumeration indices claimed per steal from the shared cursor.  0 =
  /// auto (space / (8 * threads), clamped to [64, 16384]).  Always rounded
  /// up to the estimator's batch lane width.  Small chunks stress the
  /// work-stealing protocol (useful in tests); large chunks amortise the
  /// atomic claim.  Any value yields the same result -- chunking affects
  /// schedule, not the (t_c, index) merge.
  std::uint64_t chunk = 0;

  /// Nonzero: inject deterministic pseudo-random yields into workers'
  /// claim loops (keyed by seed ^ chunk begin) to perturb steal
  /// interleavings.  Used by the TSan/chaos determinism tests; leave 0 in
  /// production.
  std::uint64_t chaos_yield_seed = 0;
};

struct PartitionResult {
  ProcessorConfig config;        ///< chosen P_i per cluster
  CycleEstimate estimate;        ///< cost breakdown of the chosen config
  Placement placement;           ///< contiguous, fastest cluster first
  std::vector<ClusterId> cluster_order;
  std::uint64_t evaluations = 0; ///< objective evaluations spent searching
};

/// Run the partitioning heuristic.  `snapshot` provides the available
/// processor counts N_i from the cluster managers.  Throws InvalidArgument
/// when no processor is available.  `scratch` (optional) supplies reusable
/// evaluation buffers; callers that search repeatedly (the service's
/// workers, the benches) keep one per thread so steady-state searches do
/// not allocate.
PartitionResult partition(const CycleEstimator& estimator,
                          const AvailabilitySnapshot& snapshot,
                          const PartitionOptions& options = {},
                          EstimatorScratch* scratch = nullptr);

/// Reference partitioner: exhaustively enumerate every configuration
/// (0..N_i per cluster) and return the estimator's argmin.  Exponential in
/// the cluster count; used to validate the heuristic in ablation studies.
/// `options.threads` workers drain the space via chunked work stealing
/// (an atomic cursor over odometer index ranges), each scoring lane groups
/// through estimate_batch with its own scratch; worker minima are merged
/// lexicographically by (T_c, enumeration index), so the chosen
/// configuration is bitwise identical at every thread count and chunk
/// size.
PartitionResult exhaustive_partition(const CycleEstimator& estimator,
                                     const AvailabilitySnapshot& snapshot,
                                     const ExhaustiveOptions& options = {});

/// Baseline configurations for comparisons.
ProcessorConfig config_single_fastest_cluster(
    const CycleEstimator& estimator, const AvailabilitySnapshot& snapshot);
ProcessorConfig config_all_available(const AvailabilitySnapshot& snapshot);

}  // namespace netpart

// Callback types for program annotations.
//
// The partitioner learns about the application exclusively through callback
// functions (Section 4 of the paper): they distill the computation and
// communication structure of the implementation and may depend on problem
// parameters (such as the stencil's N) that are only known at runtime.
#pragma once

#include <cstdint>
#include <functional>

#include "topo/topology.hpp"

namespace netpart {

/// Total primitive data units in the decomposed domain (the paper's
/// num_PDUs).  For the row-decomposed NxN stencil this returns N.
using NumPdusCallback = std::function<std::int64_t()>;

/// Computational complexity: operations executed per PDU in one cycle of a
/// computation phase (5N flops per row for the 5-point stencil).
using ComplexityCallback = std::function<double()>;

/// Communication complexity: bytes transmitted per message in one cycle of
/// a communication phase.  It may depend on the number of PDUs assigned to
/// the sending processor (A_i); the stencil's border exchange does not
/// (always 4N bytes), but e.g. block-column codes do.
using CommBytesCallback = std::function<std::int64_t(std::int64_t a_i)>;

/// The communication topology of a phase.
using TopologyCallback = std::function<Topology()>;

}  // namespace netpart

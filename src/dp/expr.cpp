#include "dp/expr.hpp"

#include <cctype>
#include <cmath>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace netpart {

namespace {

class NumberExpr final : public Expr {
 public:
  explicit NumberExpr(double value) : value_(value) {}
  double evaluate(const ExprEnv&) const override { return value_; }
  void collect_variables(std::set<std::string>&) const override {}
  std::string to_string() const override {
    std::string s = std::to_string(value_);
    // Trim trailing zeros for readability.
    while (s.find('.') != std::string::npos &&
           (s.back() == '0' || s.back() == '.')) {
      const char c = s.back();
      s.pop_back();
      if (c == '.') break;
    }
    return s;
  }

 private:
  double value_;
};

class VarExpr final : public Expr {
 public:
  explicit VarExpr(std::string name) : name_(std::move(name)) {}
  double evaluate(const ExprEnv& env) const override {
    const auto it = env.find(name_);
    if (it == env.end()) {
      throw InvalidArgument("unbound variable in annotation expression: " +
                            name_);
    }
    return it->second;
  }
  void collect_variables(std::set<std::string>& out) const override {
    out.insert(name_);
  }
  std::string to_string() const override { return name_; }

 private:
  std::string name_;
};

class UnaryExpr final : public Expr {
 public:
  explicit UnaryExpr(ExprPtr inner) : inner_(std::move(inner)) {}
  double evaluate(const ExprEnv& env) const override {
    return -inner_->evaluate(env);
  }
  void collect_variables(std::set<std::string>& out) const override {
    inner_->collect_variables(out);
  }
  std::string to_string() const override {
    return "(-" + inner_->to_string() + ")";
  }

 private:
  ExprPtr inner_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(char op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  double evaluate(const ExprEnv& env) const override {
    const double a = lhs_->evaluate(env);
    const double b = rhs_->evaluate(env);
    switch (op_) {
      case '+':
        return a + b;
      case '-':
        return a - b;
      case '*':
        return a * b;
      case '/':
        if (b == 0.0) {
          throw InvalidArgument("division by zero in annotation "
                                "expression");
        }
        return a / b;
    }
    throw LogicError("unknown operator");
  }
  void collect_variables(std::set<std::string>& out) const override {
    lhs_->collect_variables(out);
    rhs_->collect_variables(out);
  }
  std::string to_string() const override {
    // Built with += rather than one operator+ chain: gcc 12's -Wrestrict
    // fires a false positive on the chained temporaries under -O2.
    std::string out = "(";
    out += lhs_->to_string();
    out += ' ';
    out += op_;
    out += ' ';
    out += rhs_->to_string();
    out += ')';
    return out;
  }

 private:
  char op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class CallExpr final : public Expr {
 public:
  CallExpr(std::string name, std::vector<ExprPtr> args)
      : name_(std::move(name)), args_(std::move(args)) {}
  double evaluate(const ExprEnv& env) const override {
    const auto arg = [&](std::size_t i) {
      return args_[i]->evaluate(env);
    };
    if (name_ == "sqrt" && args_.size() == 1) {
      const double v = arg(0);
      NP_REQUIRE(v >= 0.0, "sqrt of a negative annotation value");
      return std::sqrt(v);
    }
    if (name_ == "min" && args_.size() == 2) {
      return std::min(arg(0), arg(1));
    }
    if (name_ == "max" && args_.size() == 2) {
      return std::max(arg(0), arg(1));
    }
    if (name_ == "ceil" && args_.size() == 1) return std::ceil(arg(0));
    if (name_ == "floor" && args_.size() == 1) return std::floor(arg(0));
    if (name_ == "log2" && args_.size() == 1) {
      const double v = arg(0);
      NP_REQUIRE(v > 0.0, "log2 of a non-positive annotation value");
      return std::log2(v);
    }
    throw InvalidArgument("unknown function or arity in annotation "
                          "expression: " + name_);
  }
  void collect_variables(std::set<std::string>& out) const override {
    for (const ExprPtr& arg : args_) arg->collect_variables(out);
  }
  std::string to_string() const override {
    std::string out = name_ + "(";
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (i > 0) out += ", ";
      out += args_[i]->to_string();
    }
    return out + ")";
  }

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
};

/// Recursive-descent parser over a string view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ExprPtr parse() {
    ExprPtr e = expr();
    skip_space();
    if (pos_ != text_.size()) {
      fail("unexpected trailing input");
    }
    return e;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ExprError("expression error at offset " + std::to_string(pos_) +
                        ": " + what + " in '" + std::string(text_) + "'",
                    pos_);
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char peek() {
    skip_space();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  ExprPtr expr() {
    ExprPtr lhs = term();
    while (true) {
      if (eat('+')) {
        lhs = std::make_shared<BinaryExpr>('+', lhs, term());
      } else if (eat('-')) {
        lhs = std::make_shared<BinaryExpr>('-', lhs, term());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr term() {
    ExprPtr lhs = factor();
    while (true) {
      if (eat('*')) {
        lhs = std::make_shared<BinaryExpr>('*', lhs, factor());
      } else if (eat('/')) {
        lhs = std::make_shared<BinaryExpr>('/', lhs, factor());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr factor() {
    if (eat('-')) {
      return std::make_shared<UnaryExpr>(factor());
    }
    return primary();
  }

  ExprPtr primary() {
    skip_space();
    if (eat('(')) {
      ExprPtr inner = expr();
      if (!eat(')')) fail("expected ')'");
      return inner;
    }
    if (pos_ >= text_.size()) fail("unexpected end of expression");
    const char c = text_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return number();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return identifier();
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  ExprPtr number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' ||
            ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      fail("bad numeric literal '" + token + "'");
    }
    return std::make_shared<NumberExpr>(value);
  }

  ExprPtr identifier() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    std::string name(text_.substr(start, pos_ - start));
    if (peek() == '(') {
      eat('(');
      std::vector<ExprPtr> args;
      if (peek() != ')') {
        args.push_back(expr());
        while (eat(',')) {
          args.push_back(expr());
        }
      }
      if (!eat(')')) fail("expected ')' after arguments");
      return std::make_shared<CallExpr>(std::move(name), std::move(args));
    }
    return std::make_shared<VarExpr>(std::move(name));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::set<std::string> expr_variables(const Expr& expr) {
  std::set<std::string> out;
  expr.collect_variables(out);
  return out;
}

ExprPtr parse_expr(std::string_view text) {
  return Parser(text).parse();
}

double evaluate_expr(std::string_view text, const ExprEnv& env) {
  return parse_expr(text)->evaluate(env);
}

}  // namespace netpart

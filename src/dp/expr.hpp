// Arithmetic expressions over problem parameters.
//
// The paper's annotations "may depend on problem parameters such as the
// problem size (e.g., N)"; its future work is compiler-generated callbacks.
// This module is the target representation for that: a small expression
// language over named variables (N, A, ...) that compiles to the callback
// signature the partitioner consumes.
//
// Grammar (standard precedence, left associative):
//   expr    := term (('+' | '-') term)*
//   term    := factor (('*' | '/') factor)*
//   factor  := '-' factor | primary
//   primary := number | identifier | identifier '(' args ')' | '(' expr ')'
//   args    := expr (',' expr)*
//
// Functions: sqrt(x), min(x, y), max(x, y), ceil(x), floor(x), log2(x).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>

namespace netpart {

/// Variable bindings for evaluation.
using ExprEnv = std::map<std::string, double, std::less<>>;

/// A parsed expression; immutable and shareable.
class Expr {
 public:
  virtual ~Expr() = default;

  /// Evaluate under the bindings.  Unknown identifiers and division by
  /// zero throw InvalidArgument.
  virtual double evaluate(const ExprEnv& env) const = 0;

  /// Round-trippable rendering (fully parenthesised).
  virtual std::string to_string() const = 0;
};

using ExprPtr = std::shared_ptr<const Expr>;

/// Parse an expression; throws ConfigError with position information on
/// syntax errors.
ExprPtr parse_expr(std::string_view text);

/// Convenience: parse and evaluate in one step.
double evaluate_expr(std::string_view text, const ExprEnv& env);

}  // namespace netpart

// Arithmetic expressions over problem parameters.
//
// The paper's annotations "may depend on problem parameters such as the
// problem size (e.g., N)"; its future work is compiler-generated callbacks.
// This module is the target representation for that: a small expression
// language over named variables (N, A, ...) that compiles to the callback
// signature the partitioner consumes.
//
// Grammar (standard precedence, left associative):
//   expr    := term (('+' | '-') term)*
//   term    := factor (('*' | '/') factor)*
//   factor  := '-' factor | primary
//   primary := number | identifier | identifier '(' args ')' | '(' expr ')'
//   args    := expr (',' expr)*
//
// Functions: sqrt(x), min(x, y), max(x, y), ceil(x), floor(x), log2(x).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace netpart {

/// Variable bindings for evaluation.
using ExprEnv = std::map<std::string, double, std::less<>>;

/// Syntax error from parse_expr.  Derives from ConfigError (so existing
/// handlers keep working) and carries the byte offset of the failure within
/// the parsed text -- the spec parser turns that into a line:column
/// location instead of the bare "parse error" it used to report.
class ExprError : public ConfigError {
 public:
  ExprError(const std::string& what, std::size_t offset)
      : ConfigError(what), offset_(offset) {}

  /// Byte offset into the text handed to parse_expr.
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// A parsed expression; immutable and shareable.
class Expr {
 public:
  virtual ~Expr() = default;

  /// Evaluate under the bindings.  Unknown identifiers and division by
  /// zero throw InvalidArgument.
  virtual double evaluate(const ExprEnv& env) const = 0;

  /// Round-trippable rendering (fully parenthesised).
  virtual std::string to_string() const = 0;

  /// Add every variable the expression references to `out` (static
  /// analysis: undefined / unused variable checks walk the tree without
  /// evaluating it).
  virtual void collect_variables(std::set<std::string>& out) const = 0;
};

using ExprPtr = std::shared_ptr<const Expr>;

/// All variables referenced anywhere in the expression.
std::set<std::string> expr_variables(const Expr& expr);

/// Parse an expression; throws ExprError (a ConfigError) with the byte
/// offset of the failure on syntax errors.
ExprPtr parse_expr(std::string_view text);

/// Convenience: parse and evaluate in one step.
double evaluate_expr(std::string_view text, const ExprEnv& env);

}  // namespace netpart

#include "dp/partition_vector.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "dp/rank_kernel.hpp"
#include "util/error.hpp"

namespace netpart {

PartitionVector::PartitionVector(std::vector<std::int64_t> per_rank)
    : per_rank_(std::move(per_rank)) {
  NP_REQUIRE(!per_rank_.empty(), "partition vector must be non-empty");
  for (std::int64_t a : per_rank_) {
    NP_REQUIRE(a >= 0, "partition entries must be non-negative");
  }
}

std::int64_t PartitionVector::at(int rank) const {
  NP_REQUIRE(rank >= 0 && rank < num_ranks(), "rank out of range");
  return per_rank_[static_cast<std::size_t>(rank)];
}

std::int64_t PartitionVector::total() const {
  return std::accumulate(per_rank_.begin(), per_rank_.end(),
                         std::int64_t{0});
}

void PartitionVector::validate(std::int64_t num_pdus) const {
  NP_REQUIRE(total() == num_pdus,
             "partition vector must cover the whole data domain");
  for (std::int64_t a : per_rank_) {
    NP_REQUIRE(a > 0, "every selected processor must receive work");
  }
}

std::vector<std::pair<std::int64_t, std::int64_t>>
PartitionVector::block_ranges() const {
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
  ranges.reserve(per_rank_.size());
  std::int64_t offset = 0;
  for (std::int64_t a : per_rank_) {
    ranges.emplace_back(offset, offset + a);
    offset += a;
  }
  return ranges;
}

PartitionVector proportional_partition(std::span<const double> weights,
                                       std::int64_t num_pdus) {
  NP_REQUIRE(!weights.empty(), "need at least one rank");
  NP_REQUIRE(num_pdus >= static_cast<std::int64_t>(weights.size()),
             "cannot give every rank a PDU");
  double weight_sum = 0.0;
  for (double w : weights) {
    NP_REQUIRE(w > 0.0, "weights must be positive");
    weight_sum += w;
  }

  std::vector<std::int64_t> assigned(weights.size());
  std::vector<std::pair<double, std::size_t>> fractional;
  std::int64_t used = 0;
  for (std::size_t r = 0; r < weights.size(); ++r) {
    const double ideal =
        static_cast<double>(num_pdus) * weights[r] / weight_sum;
    assigned[r] = static_cast<std::int64_t>(ideal);
    used += assigned[r];
    fractional.emplace_back(ideal - static_cast<double>(assigned[r]), r);
  }
  std::stable_sort(
      fractional.begin(), fractional.end(),
      [](const auto& a, const auto& b) { return a.first > b.first; });
  std::int64_t remainder = num_pdus - used;
  NP_ASSERT(remainder >= 0 &&
            remainder <= static_cast<std::int64_t>(weights.size()));
  for (std::size_t k = 0; remainder > 0; ++k, --remainder) {
    ++assigned[fractional[k % fractional.size()].second];
  }

  // With extreme weight skew the rounding can starve a rank; steal single
  // PDUs from the largest assignments.
  for (std::size_t r = 0; r < assigned.size(); ++r) {
    while (assigned[r] == 0) {
      const auto donor = std::max_element(assigned.begin(), assigned.end());
      NP_ASSERT(*donor > 1);
      --*donor;
      ++assigned[r];
    }
  }
  return PartitionVector(std::move(assigned));
}

bool proportional_group_shares(std::span<const double> group_weights,
                               std::span<const int> group_sizes,
                               std::int64_t num_pdus,
                               std::span<GroupShare> out) {
  NP_REQUIRE(!group_weights.empty(), "need at least one rank");
  NP_REQUIRE(group_weights.size() == group_sizes.size() &&
                 group_weights.size() == out.size(),
             "group spans must have equal lengths");

  // The weight sum must reproduce proportional_partition()'s summation
  // order exactly (rank-major repeated adds): float addition is not
  // associative, and the per-rank ideal shares divide by this sum.
  std::int64_t total_ranks = 0;
  double weight_sum = 0.0;
  for (std::size_t g = 0; g < group_weights.size(); ++g) {
    NP_REQUIRE(group_sizes[g] >= 1, "groups must be non-empty");
    NP_REQUIRE(group_weights[g] > 0.0, "weights must be positive");
    total_ranks += group_sizes[g];
    for (int i = 0; i < group_sizes[g]; ++i) weight_sum += group_weights[g];
  }
  NP_REQUIRE(num_pdus >= total_ranks, "cannot give every rank a PDU");

  // Every rank of a group computes the identical ideal share, so floor and
  // fractional part collapse to one value per group.
  std::int64_t used = 0;
  for (std::size_t g = 0; g < group_weights.size(); ++g) {
    const double ideal =
        static_cast<double>(num_pdus) * group_weights[g] / weight_sum;
    out[g].base = static_cast<std::int64_t>(ideal);
    out[g].frac = ideal - static_cast<double>(out[g].base);
    out[g].extras = 0;
    used += out[g].base * group_sizes[g];
  }
  const std::int64_t remainder = num_pdus - used;
  NP_ASSERT(remainder >= 0 && remainder <= total_ranks);

  // Largest-remainder distribution: the stable per-rank sort (frac
  // descending, original rank order on ties) never interleaves two groups,
  // so group g's ranks are preceded by exactly the ranks of groups with a
  // strictly larger frac, plus equal-frac groups appearing earlier.  The
  // count comes from the branchless rank kernel (sorting network up to 4
  // groups, quadratic pass above); both paths are allocation-free, and the
  // <= 4 staging below keeps this function's span-only signature.
  const std::size_t n = group_weights.size();
  std::int64_t ranks_before_small[4];
  const std::int64_t* ranks_before = nullptr;
  if (n <= 4) {
    double frac[4];
    int sizes[4];
    for (std::size_t g = 0; g < n; ++g) {
      frac[g] = out[g].frac;
      sizes[g] = group_sizes[g];
    }
    largest_remainder_ranks(frac, sizes, static_cast<int>(n),
                            ranks_before_small);
    ranks_before = ranks_before_small;
  }
  for (std::size_t g = 0; g < n; ++g) {
    std::int64_t before;
    if (ranks_before != nullptr) {
      before = ranks_before[g];
    } else {
      // > 4 groups: the quadratic pass, inline over the AoS shares so no
      // scratch buffer is needed.
      before = 0;
      for (std::size_t h = 0; h < n; ++h) {
        if (h == g) continue;
        if (out[h].frac > out[g].frac ||
            (out[h].frac == out[g].frac && h < g)) {
          before += group_sizes[h];
        }
      }
    }
    const std::int64_t extras =
        std::clamp<std::int64_t>(remainder - before, 0, group_sizes[g]);
    out[g].extras = static_cast<int>(extras);
    if (out[g].base == 0 && extras < group_sizes[g]) {
      return false;  // a rank would starve; caller must materialise
    }
  }
  return true;
}

std::string PartitionVector::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < per_rank_.size(); ++i) {
    if (i > 0) os << ' ';
    os << per_rank_[i];
  }
  return os.str();
}

}  // namespace netpart

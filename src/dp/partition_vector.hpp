// The partition vector (Section 4 of the paper).
//
//   A_i = number of PDUs assigned to processor p_i,   sum A_i = num_PDUs
//
// The implementation is responsible for interpreting the abstract partition:
// for the row-decomposed stencil, rank i receives the block of A_i
// consecutive rows following rank i-1's block (block_ranges()).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace netpart {

class PartitionVector {
 public:
  /// `per_rank[i]` is A_i; entries must be non-negative.
  explicit PartitionVector(std::vector<std::int64_t> per_rank);

  int num_ranks() const { return static_cast<int>(per_rank_.size()); }
  std::int64_t at(int rank) const;
  const std::vector<std::int64_t>& values() const { return per_rank_; }

  /// sum A_i.
  std::int64_t total() const;

  /// Throws InvalidArgument unless total() == num_pdus and every rank has
  /// at least one PDU (a rank with zero PDUs should not have been selected).
  void validate(std::int64_t num_pdus) const;

  /// Contiguous block decomposition: rank i owns PDUs
  /// [ranges[i].first, ranges[i].second).
  std::vector<std::pair<std::int64_t, std::int64_t>> block_ranges() const;

  /// "60 0" / "171 86" style rendering used by the Table 1 bench.
  std::string to_string() const;

 private:
  std::vector<std::int64_t> per_rank_;
};

/// Divide `num_pdus` PDUs across ranks in proportion to positive `weights`
/// (largest-remainder rounding, remainder to the largest fractional parts,
/// ties to earlier ranks).  Every rank receives at least one PDU; requires
/// num_pdus >= weights.size().  This is the integer realisation of the
/// paper's Eq. 3 -- the caller chooses the weights (1/S_i for nominal
/// speeds, observed rates for dynamic repartitioning).
PartitionVector proportional_partition(std::span<const double> weights,
                                       std::int64_t num_pdus);

/// One group of consecutive ranks sharing a single weight (a homogeneous
/// cluster in Eq. 3's balanced partition).  `extras` of the group's ranks
/// receive `base + 1` PDUs and the rest receive `base`; largest-remainder
/// order gives the extras to the group's earliest ranks.  `frac` is the
/// group's fractional share, kept so callers can audit the rounding.
struct GroupShare {
  std::int64_t base = 0;
  int extras = 0;
  double frac = 0.0;
};

/// Closed form of proportional_partition() for ranks grouped by equal
/// weight: a balanced partition hands each group only the floor or ceiling
/// of its ideal share, so the per-group min/max are computable without
/// materialising the per-rank vector.  Groups are rank-contiguous in the
/// given order and must all be non-empty with positive weights.
///
/// Writes one GroupShare per group into `out` (sized == group count) and
/// returns true; the implied per-rank values are then bitwise identical to
/// proportional_partition() on the expanded weights.  Returns false when
/// the rounding would starve a rank (extreme weight skew) -- the closed
/// form does not reproduce proportional_partition()'s donor-stealing
/// repair, so the caller must fall back to materialising.  Allocation-free.
bool proportional_group_shares(std::span<const double> group_weights,
                               std::span<const int> group_sizes,
                               std::int64_t num_pdus,
                               std::span<GroupShare> out);

}  // namespace netpart

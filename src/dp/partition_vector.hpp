// The partition vector (Section 4 of the paper).
//
//   A_i = number of PDUs assigned to processor p_i,   sum A_i = num_PDUs
//
// The implementation is responsible for interpreting the abstract partition:
// for the row-decomposed stencil, rank i receives the block of A_i
// consecutive rows following rank i-1's block (block_ranges()).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace netpart {

class PartitionVector {
 public:
  /// `per_rank[i]` is A_i; entries must be non-negative.
  explicit PartitionVector(std::vector<std::int64_t> per_rank);

  int num_ranks() const { return static_cast<int>(per_rank_.size()); }
  std::int64_t at(int rank) const;
  const std::vector<std::int64_t>& values() const { return per_rank_; }

  /// sum A_i.
  std::int64_t total() const;

  /// Throws InvalidArgument unless total() == num_pdus and every rank has
  /// at least one PDU (a rank with zero PDUs should not have been selected).
  void validate(std::int64_t num_pdus) const;

  /// Contiguous block decomposition: rank i owns PDUs
  /// [ranges[i].first, ranges[i].second).
  std::vector<std::pair<std::int64_t, std::int64_t>> block_ranges() const;

  /// "60 0" / "171 86" style rendering used by the Table 1 bench.
  std::string to_string() const;

 private:
  std::vector<std::int64_t> per_rank_;
};

/// Divide `num_pdus` PDUs across ranks in proportion to positive `weights`
/// (largest-remainder rounding, remainder to the largest fractional parts,
/// ties to earlier ranks).  Every rank receives at least one PDU; requires
/// num_pdus >= weights.size().  This is the integer realisation of the
/// paper's Eq. 3 -- the caller chooses the weights (1/S_i for nominal
/// speeds, observed rates for dynamic repartitioning).
PartitionVector proportional_partition(std::span<const double> weights,
                                       std::int64_t num_pdus);

}  // namespace netpart

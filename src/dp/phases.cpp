#include "dp/phases.hpp"

#include <set>

#include "util/error.hpp"

namespace netpart {

ComputationSpec::ComputationSpec(
    std::string name, std::vector<ComputationPhaseSpec> computation,
    std::vector<CommunicationPhaseSpec> communication, int iterations)
    : name_(std::move(name)),
      computation_(std::move(computation)),
      communication_(std::move(communication)),
      iterations_(iterations) {
  NP_REQUIRE(!computation_.empty(),
             "a data parallel computation needs a computation phase");
  NP_REQUIRE(iterations_ >= 1, "iterations must be positive");

  std::set<std::string> names;
  for (const ComputationPhaseSpec& p : computation_) {
    NP_REQUIRE(!p.name.empty(), "computation phase needs a name");
    NP_REQUIRE(p.num_pdus != nullptr && p.ops_per_pdu != nullptr,
               "computation phase needs num_pdus and complexity callbacks");
    NP_REQUIRE(names.insert(p.name).second, "duplicate phase name: " + p.name);
  }
  for (const CommunicationPhaseSpec& p : communication_) {
    NP_REQUIRE(!p.name.empty(), "communication phase needs a name");
    NP_REQUIRE(p.topology != nullptr && p.bytes_per_message != nullptr,
               "communication phase needs topology and complexity callbacks");
    NP_REQUIRE(names.insert(p.name).second, "duplicate phase name: " + p.name);
    if (!p.overlap_with.empty()) {
      bool found = false;
      for (const ComputationPhaseSpec& c : computation_) {
        if (c.name == p.overlap_with) found = true;
      }
      NP_REQUIRE(found, "overlap annotation references unknown computation "
                        "phase: " + p.overlap_with);
    }
  }

  // The callbacks must agree on the data domain: all computation phases
  // decompose the same PDU set.
  const std::int64_t pdus = computation_.front().num_pdus();
  NP_REQUIRE(pdus > 0, "num_pdus must be positive");
  for (const ComputationPhaseSpec& p : computation_) {
    NP_REQUIRE(p.num_pdus() == pdus,
               "all computation phases must share one PDU domain");
  }
}

const ComputationPhaseSpec& ComputationSpec::dominant_computation() const {
  const ComputationPhaseSpec* best = &computation_.front();
  double best_complexity = -1.0;
  for (const ComputationPhaseSpec& p : computation_) {
    const double complexity =
        static_cast<double>(p.num_pdus()) * p.ops_per_pdu();
    if (complexity > best_complexity) {
      best_complexity = complexity;
      best = &p;
    }
  }
  return *best;
}

const CommunicationPhaseSpec& ComputationSpec::dominant_communication()
    const {
  NP_REQUIRE(!communication_.empty(),
             "computation has no communication phases");
  const std::int64_t pdus = num_pdus();
  const CommunicationPhaseSpec* best = &communication_.front();
  std::int64_t best_bytes = -1;
  for (const CommunicationPhaseSpec& p : communication_) {
    const std::int64_t bytes = p.bytes_per_message(pdus);
    if (bytes > best_bytes) {
      best_bytes = bytes;
      best = &p;
    }
  }
  return *best;
}

bool ComputationSpec::dominant_phases_overlap() const {
  if (communication_.empty()) return false;
  const CommunicationPhaseSpec& comm = dominant_communication();
  return !comm.overlap_with.empty() &&
         comm.overlap_with == dominant_computation().name;
}

std::int64_t ComputationSpec::num_pdus() const {
  return dominant_computation().num_pdus();
}

}  // namespace netpart

// Computation and communication phases with their annotations.
//
// A data parallel computation is a repeating sequence of computation and
// communication phases.  Each phase carries the annotations of Section 4;
// the partitioning algorithm only consults the *dominant* phases (largest
// computational / communication complexity).
#pragma once

#include <string>
#include <vector>

#include "dp/callbacks.hpp"

namespace netpart {

/// Which instruction rate a computation phase exercises.
enum class OpKind { FloatingPoint, Integer };

struct ComputationPhaseSpec {
  std::string name;
  NumPdusCallback num_pdus;
  ComplexityCallback ops_per_pdu;
  OpKind op_kind = OpKind::FloatingPoint;
};

struct CommunicationPhaseSpec {
  std::string name;
  TopologyCallback topology;
  CommBytesCallback bytes_per_message;
  /// Name of the computation phase this phase overlaps with; empty when the
  /// implementation does not overlap (STEN-1).
  std::string overlap_with;
};

/// The annotated structure of one data parallel computation.
class ComputationSpec {
 public:
  ComputationSpec(std::string name,
                  std::vector<ComputationPhaseSpec> computation,
                  std::vector<CommunicationPhaseSpec> communication,
                  int iterations);

  const std::string& name() const { return name_; }
  int iterations() const { return iterations_; }

  const std::vector<ComputationPhaseSpec>& computation_phases() const {
    return computation_;
  }
  const std::vector<CommunicationPhaseSpec>& communication_phases() const {
    return communication_;
  }

  /// The computation phase with the largest per-cycle complexity
  /// (num_pdus * ops_per_pdu), evaluated through the callbacks.
  const ComputationPhaseSpec& dominant_computation() const;

  /// The communication phase with the largest communication complexity.
  /// Complexities that depend on A_i are compared at a_i = num_pdus (the
  /// single-processor upper bound).
  const CommunicationPhaseSpec& dominant_communication() const;

  /// Whether the dominant communication phase overlaps the dominant
  /// computation phase (drives the T_overlap term).
  bool dominant_phases_overlap() const;

  /// num_pdus of the dominant computation phase.
  std::int64_t num_pdus() const;

 private:
  std::string name_;
  std::vector<ComputationPhaseSpec> computation_;
  std::vector<CommunicationPhaseSpec> communication_;
  int iterations_;
};

}  // namespace netpart

// Branchless kernels for the largest-remainder rounding of Eq. 3.
//
// proportional_partition() realises the ideal (fractional) Eq. 3 shares as
// integers by handing the leftover PDUs to the ranks with the largest
// fractional parts, stable on ties.  Everything the closed-form evaluators
// need from that sort is one number per group: how many ranks precede the
// group in the frac-descending order ("ranks_before") -- the remainder is
// then compared against it to decide whether the group receives an extra.
//
// Two implementations of that count, bitwise-identical by construction
// (both implement the same exact-double comparisons; the differential tier
// in tests/property_test.cpp asserts equality over every tie pattern):
//
//   * largest_remainder_ranks() -- the hot entry point.  For <= 4 groups
//     (every paper testbed, and the 4-cluster bench preset) it sorts the
//     (frac, index) keys through a 5-comparator sorting network of
//     conditional moves -- no data-dependent branch anywhere, so the
//     mistrained-predictor cost of the old quadratic compare loop (the
//     dominant term of the batched per-eval profile) disappears.  Above 4
//     groups it falls back to the quadratic pass.
//   * detail::largest_remainder_ranks_general() -- the branch-free O(G^2)
//     pass, kept as the any-size fallback and as the differential oracle.
//
// Also here: InvariantDivider, the reciprocal-multiply division used by the
// batched share stage (see the class comment for the bitwise contract).
#pragma once

#include <cmath>
#include <cstdint>

namespace netpart {

namespace detail {

/// ranks_before[g] = sum of sizes[h] over groups h that precede g in the
/// stable frac-descending order: frac[h] > frac[g], or frac[h] == frac[g]
/// with h < g.  Branch-free |/& arithmetic -- the fraction comparisons are
/// data-dependent coin flips, and short-circuit evaluation would plant an
/// unpredictable branch in the hottest loop of the engine.  Quadratic in
/// the group count; any size.
inline void largest_remainder_ranks_general(const double* frac,
                                            const int* sizes, int groups,
                                            std::int64_t* ranks_before) {
  for (int g = 0; g < groups; ++g) {
    const double fg = frac[g];
    std::int64_t before = 0;
    for (int h = 0; h < groups; ++h) {
      // At h == g both clauses are false, so the self-term contributes
      // nothing and needs no explicit skip.
      const double fh = frac[h];
      const auto ahead = static_cast<std::int64_t>(fh > fg) |
                         (static_cast<std::int64_t>(fh == fg) &
                          static_cast<std::int64_t>(h < g));
      before += ahead * sizes[h];
    }
    ranks_before[g] = before;
  }
}

}  // namespace detail

/// Largest-remainder rank counts (see file comment).  Preconditions:
/// groups >= 1, sizes[g] >= 0, and frac[g] in [0, 1) -- the fractional
/// part of a finite non-negative ideal share, which is what both callers
/// (proportional_group_shares and the batched Stage B) compute.  Writes
/// exactly `groups` entries of ranks_before.
inline void largest_remainder_ranks(const double* frac, const int* sizes,
                                    int groups,
                                    std::int64_t* ranks_before) {
  if (groups > 4) {
    detail::largest_remainder_ranks_general(frac, sizes, groups,
                                            ranks_before);
    return;
  }
  // Pad to a fixed 4 lanes.  The sentinel frac -1.0 is strictly below
  // every real fractional part (they live in [0, 1)), so dead lanes sort
  // last; their size 0 keeps them out of every prefix sum.
  double f[4];
  int idx[4];
  std::int64_t p[4];
  for (int g = 0; g < 4; ++g) {
    const bool live = g < groups;
    f[g] = live ? frac[g] : -1.0;
    idx[g] = g;
    p[g] = live ? static_cast<std::int64_t>(sizes[g]) : 0;
  }
  // 5-comparator sorting network for 4 keys: (0,1)(2,3)(0,2)(1,3)(1,2).
  // Order: frac descending, index ascending on equal fracs -- exactly the
  // stable sort proportional_partition performs.  Keys are unique (the
  // index breaks every tie), so the network's output order is the stable
  // order even though the network itself is not stable.  Each comparator
  // is a predicated swap (conditional moves, no branch).
  const auto cswap = [&](int a, int b) {
    const bool sw = (f[a] < f[b]) | ((f[a] == f[b]) & (idx[a] > idx[b]));
    const double fa = sw ? f[b] : f[a];
    const double fb = sw ? f[a] : f[b];
    const int ia = sw ? idx[b] : idx[a];
    const int ib = sw ? idx[a] : idx[b];
    const std::int64_t pa = sw ? p[b] : p[a];
    const std::int64_t pb = sw ? p[a] : p[b];
    f[a] = fa;
    f[b] = fb;
    idx[a] = ia;
    idx[b] = ib;
    p[a] = pa;
    p[b] = pb;
  };
  cswap(0, 1);
  cswap(2, 3);
  cswap(0, 2);
  cswap(1, 3);
  cswap(1, 2);
  // Exclusive prefix sum over the sorted sizes, scattered back to input
  // order.  Dead lanes land in out[idx >= groups], which exists only in
  // the local staging -- callers get exactly `groups` entries.
  std::int64_t out[4];
  std::int64_t before = 0;
  for (int k = 0; k < 4; ++k) {
    out[idx[k]] = before;
    before += p[k];
  }
  for (int g = 0; g < groups; ++g) ranks_before[g] = out[g];
}

/// True when InvariantDivider runs its fused reciprocal-multiply path;
/// false on toolchains without hardware FMA, where it degrades to plain
/// division (see below).  Exposed so tests can assert the active path's
/// bitwise contract.
#if defined(__FMA__) || defined(__ARM_FEATURE_FMA)
inline constexpr bool kInvariantDividerFused = true;
#else
inline constexpr bool kInvariantDividerFused = false;
#endif

/// Division by a loop-invariant divisor, as the batched share stage needs
/// it: one real division (the reciprocal) amortised over a whole group of
/// numerators, each served by two FMAs.
///
/// Bitwise contract: divide(x) == x / d exactly.  With hardware FMA this
/// holds by Markstein's round-to-nearest correction: r = RN(1/d) is the
/// correctly rounded reciprocal, q0 = RN(x*r) is within an ulp of the
/// quotient, and the residual rem = fma(-d, q0, x) is exact, so
/// fma(rem, r, q0) rounds to RN(x/d) for normal x/d -- the range Eq. 3
/// shares live in (num_pdus * weight over a positive weight sum).  Without
/// hardware FMA the correction would go through libm's software fma --
/// slower than the division it replaces and, worse, a libm soft-fma is not
/// guaranteed exact on every platform; that configuration falls back to
/// plain division at compile time (kInvariantDividerFused == false), which
/// is trivially bitwise.  The property tier asserts divide(x) == x / d on
/// whichever path is compiled in.
struct InvariantDivider {
  double d;
  double r;  ///< RN(1/d), correctly rounded by IEEE division

  explicit InvariantDivider(double divisor)
      : d(divisor), r(1.0 / divisor) {}

  double divide(double x) const {
    if constexpr (kInvariantDividerFused) {
      const double q0 = x * r;
      const double rem = std::fma(-d, q0, x);
      return std::fma(rem, r, q0);
    } else {
      return x / d;
    }
  }
};

}  // namespace netpart

#include "dp/spec_parser.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace netpart {

SpecTemplate::SpecTemplate(std::string name,
                           std::map<std::string, double> params,
                           ExprPtr iterations,
                           std::vector<ComputePhase> compute,
                           std::vector<CommPhase> comm)
    : name_(std::move(name)),
      params_(std::move(params)),
      iterations_(std::move(iterations)),
      compute_(std::move(compute)),
      comm_(std::move(comm)) {
  NP_REQUIRE(!name_.empty(), "spec needs a computation name");
  NP_REQUIRE(iterations_ != nullptr, "spec needs an iterations count");
  NP_REQUIRE(!compute_.empty(), "spec needs a computation phase");
  for (const ComputePhase& p : compute_) {
    NP_REQUIRE(p.pdus != nullptr && p.ops != nullptr,
               "compute phase '" + p.name + "' needs pdus and ops");
  }
  for (const CommPhase& p : comm_) {
    NP_REQUIRE(p.bytes != nullptr,
               "comm phase '" + p.name + "' needs bytes");
  }
}

ComputationSpec SpecTemplate::instantiate(
    const std::map<std::string, double>& overrides) const {
  ExprEnv env;
  for (const auto& [key, value] : params_) env[key] = value;
  for (const auto& [key, value] : overrides) {
    NP_REQUIRE(params_.count(key) > 0,
               "override for undeclared param: " + key);
    env[key] = value;
  }

  const double iters = iterations_->evaluate(env);
  NP_REQUIRE(iters >= 1.0, "iterations must be at least 1");

  std::vector<ComputationPhaseSpec> compute;
  for (const ComputePhase& p : compute_) {
    ComputationPhaseSpec spec;
    spec.name = p.name;
    spec.op_kind = p.op_kind;
    spec.num_pdus = [expr = p.pdus, env] {
      return static_cast<std::int64_t>(expr->evaluate(env) + 0.5);
    };
    spec.ops_per_pdu = [expr = p.ops, env] { return expr->evaluate(env); };
    compute.push_back(std::move(spec));
  }

  std::vector<CommunicationPhaseSpec> comm;
  for (const CommPhase& p : comm_) {
    CommunicationPhaseSpec spec;
    spec.name = p.name;
    spec.overlap_with = p.overlap_with;
    spec.topology = [topo = p.topology] { return topo; };
    spec.bytes_per_message = [expr = p.bytes, env](std::int64_t a_i) {
      ExprEnv bound = env;
      bound["A"] = static_cast<double>(a_i);
      return static_cast<std::int64_t>(expr->evaluate(bound) + 0.5);
    };
    comm.push_back(std::move(spec));
  }

  return ComputationSpec(name_, std::move(compute), std::move(comm),
                         static_cast<int>(iters + 0.5));
}

namespace {

struct Line {
  int number;
  std::vector<std::string> tokens;
};

[[noreturn]] void fail(int line, const std::string& what) {
  throw ConfigError("spec line " + std::to_string(line) + ": " + what);
}

std::vector<Line> tokenize(const std::string& text) {
  std::vector<Line> lines;
  int number = 0;
  for (const std::string& raw : split(text, '\n')) {
    ++number;
    std::string_view view = raw;
    if (const std::size_t hash = view.find('#');
        hash != std::string_view::npos) {
      view = view.substr(0, hash);
    }
    std::istringstream is{std::string(view)};
    std::vector<std::string> tokens;
    std::string token;
    while (is >> token) tokens.push_back(token);
    if (!tokens.empty()) lines.push_back(Line{number, std::move(tokens)});
  }
  return lines;
}

/// Join tokens [from..end) back into one expression string.
std::string join_expr(const Line& line, std::size_t from) {
  if (from >= line.tokens.size()) {
    fail(line.number, "expected an expression");
  }
  std::string out;
  for (std::size_t i = from; i < line.tokens.size(); ++i) {
    if (i > from) out += ' ';
    out += line.tokens[i];
  }
  return out;
}

}  // namespace

SpecTemplate parse_spec(const std::string& text) {
  std::string name;
  std::map<std::string, double> params;
  ExprPtr iterations;
  std::vector<SpecTemplate::ComputePhase> compute;
  std::vector<SpecTemplate::CommPhase> comm;

  enum class Section { Top, Compute, Comm };
  Section section = Section::Top;

  for (const Line& line : tokenize(text)) {
    const std::string& kw = line.tokens[0];

    if (kw == "computation") {
      if (line.tokens.size() != 2) fail(line.number, "computation <name>");
      name = line.tokens[1];
      section = Section::Top;
    } else if (kw == "param") {
      if (line.tokens.size() != 3) {
        fail(line.number, "param <name> <default>");
      }
      char* end = nullptr;
      const double v = std::strtod(line.tokens[2].c_str(), &end);
      if (end != line.tokens[2].c_str() + line.tokens[2].size()) {
        fail(line.number, "bad param default: " + line.tokens[2]);
      }
      params[line.tokens[1]] = v;
    } else if (kw == "iterations") {
      iterations = parse_expr(join_expr(line, 1));
    } else if (kw == "phase") {
      if (line.tokens.size() != 3 ||
          (line.tokens[1] != "compute" && line.tokens[1] != "comm")) {
        fail(line.number, "phase compute|comm <name>");
      }
      if (line.tokens[1] == "compute") {
        compute.push_back(SpecTemplate::ComputePhase{
            line.tokens[2], nullptr, nullptr, OpKind::FloatingPoint});
        section = Section::Compute;
      } else {
        comm.push_back(SpecTemplate::CommPhase{
            line.tokens[2], Topology::OneD, nullptr, ""});
        section = Section::Comm;
      }
    } else if (section == Section::Compute) {
      if (compute.empty()) fail(line.number, "no open compute phase");
      SpecTemplate::ComputePhase& phase = compute.back();
      if (kw == "pdus") {
        phase.pdus = parse_expr(join_expr(line, 1));
      } else if (kw == "ops") {
        phase.ops = parse_expr(join_expr(line, 1));
      } else if (kw == "opkind") {
        if (line.tokens.size() != 2) fail(line.number, "opkind float|int");
        if (line.tokens[1] == "float") {
          phase.op_kind = OpKind::FloatingPoint;
        } else if (line.tokens[1] == "int") {
          phase.op_kind = OpKind::Integer;
        } else {
          fail(line.number, "opkind float|int");
        }
      } else {
        fail(line.number, "unknown compute-phase key: " + kw);
      }
    } else if (section == Section::Comm) {
      if (comm.empty()) fail(line.number, "no open comm phase");
      SpecTemplate::CommPhase& phase = comm.back();
      if (kw == "topology") {
        if (line.tokens.size() != 2) fail(line.number, "topology <name>");
        phase.topology = topology_from_string(line.tokens[1]);
      } else if (kw == "bytes") {
        phase.bytes = parse_expr(join_expr(line, 1));
      } else if (kw == "overlap") {
        if (line.tokens.size() != 2) {
          fail(line.number, "overlap <compute-phase>");
        }
        phase.overlap_with = line.tokens[1];
      } else {
        fail(line.number, "unknown comm-phase key: " + kw);
      }
    } else {
      fail(line.number, "unknown directive: " + kw);
    }
  }

  return SpecTemplate(std::move(name), std::move(params),
                      std::move(iterations), std::move(compute),
                      std::move(comm));
}

SpecTemplate parse_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ConfigError("cannot open spec file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_spec(buffer.str());
}

}  // namespace netpart

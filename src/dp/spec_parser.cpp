#include "dp/spec_parser.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace netpart {

SpecTemplate::SpecTemplate(std::string name,
                           std::map<std::string, double> params,
                           ExprPtr iterations,
                           std::vector<ComputePhase> compute,
                           std::vector<CommPhase> comm)
    : name_(std::move(name)),
      params_(std::move(params)),
      iterations_(std::move(iterations)),
      compute_(std::move(compute)),
      comm_(std::move(comm)) {
  NP_REQUIRE(!name_.empty(), "spec needs a computation name");
  NP_REQUIRE(iterations_ != nullptr, "spec needs an iterations count");
  NP_REQUIRE(!compute_.empty(), "spec needs a computation phase");
  for (const ComputePhase& p : compute_) {
    NP_REQUIRE(p.pdus != nullptr && p.ops != nullptr,
               "compute phase '" + p.name + "' needs pdus and ops");
  }
  for (const CommPhase& p : comm_) {
    NP_REQUIRE(p.bytes != nullptr,
               "comm phase '" + p.name + "' needs bytes");
  }
}

ComputationSpec SpecTemplate::instantiate(
    const std::map<std::string, double>& overrides) const {
  ExprEnv env;
  for (const auto& [key, value] : params_) env[key] = value;
  for (const auto& [key, value] : overrides) {
    NP_REQUIRE(params_.count(key) > 0,
               "override for undeclared param: " + key);
    env[key] = value;
  }

  const double iters = iterations_->evaluate(env);
  NP_REQUIRE(iters >= 1.0, "iterations must be at least 1");

  std::vector<ComputationPhaseSpec> compute;
  for (const ComputePhase& p : compute_) {
    ComputationPhaseSpec spec;
    spec.name = p.name;
    spec.op_kind = p.op_kind;
    spec.num_pdus = [expr = p.pdus, env] {
      return static_cast<std::int64_t>(expr->evaluate(env) + 0.5);
    };
    spec.ops_per_pdu = [expr = p.ops, env] { return expr->evaluate(env); };
    compute.push_back(std::move(spec));
  }

  std::vector<CommunicationPhaseSpec> comm;
  for (const CommPhase& p : comm_) {
    CommunicationPhaseSpec spec;
    spec.name = p.name;
    spec.overlap_with = p.overlap_with;
    spec.topology = [topo = p.topology] { return topo; };
    spec.bytes_per_message = [expr = p.bytes, env](std::int64_t a_i) {
      ExprEnv bound = env;
      bound["A"] = static_cast<double>(a_i);
      return static_cast<std::int64_t>(expr->evaluate(bound) + 0.5);
    };
    comm.push_back(std::move(spec));
  }

  return ComputationSpec(name_, std::move(compute), std::move(comm),
                         static_cast<int>(iters + 0.5));
}

namespace {

/// One whitespace-separated token with its 1-based source position.
struct Token {
  std::string text;
  SpecLoc loc;
};

struct Line {
  int number = 0;
  std::vector<Token> tokens;
};

[[noreturn]] void fail(SpecLoc loc, const std::string& what) {
  throw SpecParseError("spec line " + std::to_string(loc.line) + ", col " +
                           std::to_string(loc.column) + ": " + what,
                       loc);
}

[[noreturn]] void fail(const Line& line, const std::string& what) {
  fail(line.tokens.empty() ? SpecLoc{line.number, 1}
                           : line.tokens.front().loc,
       what);
}

/// Column-tracking tokenizer: splits on whitespace, strips '#' comments,
/// and records the 1-based (line, column) of every token.
std::vector<Line> tokenize(const std::string& text) {
  std::vector<Line> lines;
  int number = 0;
  for (const std::string& raw : split(text, '\n')) {
    ++number;
    std::string_view view = raw;
    if (const std::size_t hash = view.find('#');
        hash != std::string_view::npos) {
      view = view.substr(0, hash);
    }
    Line line{number, {}};
    std::size_t i = 0;
    while (i < view.size()) {
      if (std::isspace(static_cast<unsigned char>(view[i]))) {
        ++i;
        continue;
      }
      const std::size_t start = i;
      while (i < view.size() &&
             !std::isspace(static_cast<unsigned char>(view[i]))) {
        ++i;
      }
      line.tokens.push_back(
          Token{std::string(view.substr(start, i - start)),
                SpecLoc{number, static_cast<int>(start) + 1}});
    }
    if (!line.tokens.empty()) lines.push_back(std::move(line));
  }
  return lines;
}

/// Join tokens [from..end) back into one expression string and parse it.
/// An ExprError's byte offset is translated into the spec's line:column.
struct LocatedExpr {
  ExprPtr expr;
  SpecLoc loc;
};

LocatedExpr parse_line_expr(const Line& line, std::size_t from) {
  if (from >= line.tokens.size()) {
    fail(SpecLoc{line.number,
                 line.tokens.back().loc.column +
                     static_cast<int>(line.tokens.back().text.size())},
         "expected an expression after '" + line.tokens.back().text + "'");
  }
  std::string text;
  // Offset of each byte of `text` back to its source column: token texts
  // are contiguous in `text` with single-space joins, so a source column
  // is reconstructed from the byte offset and the recorded token columns.
  std::vector<int> columns;
  for (std::size_t i = from; i < line.tokens.size(); ++i) {
    if (i > from) {
      text += ' ';
      columns.push_back(line.tokens[i].loc.column - 1);
    }
    for (std::size_t b = 0; b < line.tokens[i].text.size(); ++b) {
      columns.push_back(line.tokens[i].loc.column + static_cast<int>(b));
    }
    text += line.tokens[i].text;
  }
  try {
    return LocatedExpr{parse_expr(text), line.tokens[from].loc};
  } catch (const ExprError& e) {
    const int column = e.offset() < columns.size()
                           ? columns[e.offset()]
                           : columns.empty() ? line.tokens[from].loc.column
                                             : columns.back() + 1;
    fail(SpecLoc{line.number, column}, e.what());
  }
}

}  // namespace

SpecTemplate parse_spec(const std::string& text) {
  std::string name;
  std::map<std::string, double> params;
  std::map<std::string, SpecLoc> param_locs;
  ExprPtr iterations;
  SpecLoc iterations_loc;
  std::vector<SpecTemplate::ComputePhase> compute;
  std::vector<SpecTemplate::CommPhase> comm;

  enum class Section { Top, Compute, Comm };
  Section section = Section::Top;

  for (const Line& line : tokenize(text)) {
    const std::string& kw = line.tokens[0].text;

    if (kw == "computation") {
      if (line.tokens.size() != 2) fail(line, "computation <name>");
      name = line.tokens[1].text;
      section = Section::Top;
    } else if (kw == "param") {
      if (line.tokens.size() != 3) {
        fail(line, "param <name> <default>");
      }
      const std::string& literal = line.tokens[2].text;
      char* end = nullptr;
      const double v = std::strtod(literal.c_str(), &end);
      if (end != literal.c_str() + literal.size()) {
        fail(line.tokens[2].loc, "bad param default: " + literal);
      }
      params[line.tokens[1].text] = v;
      param_locs[line.tokens[1].text] = line.tokens[1].loc;
    } else if (kw == "iterations") {
      const LocatedExpr e = parse_line_expr(line, 1);
      iterations = e.expr;
      iterations_loc = e.loc;
    } else if (kw == "phase") {
      if (line.tokens.size() != 3 || (line.tokens[1].text != "compute" &&
                                      line.tokens[1].text != "comm")) {
        fail(line, "phase compute|comm <name>");
      }
      if (line.tokens[1].text == "compute") {
        SpecTemplate::ComputePhase phase;
        phase.name = line.tokens[2].text;
        phase.loc = line.tokens[0].loc;
        compute.push_back(std::move(phase));
        section = Section::Compute;
      } else {
        SpecTemplate::CommPhase phase;
        phase.name = line.tokens[2].text;
        phase.loc = line.tokens[0].loc;
        comm.push_back(std::move(phase));
        section = Section::Comm;
      }
    } else if (section == Section::Compute) {
      if (compute.empty()) fail(line, "no open compute phase");
      SpecTemplate::ComputePhase& phase = compute.back();
      if (kw == "pdus") {
        const LocatedExpr e = parse_line_expr(line, 1);
        phase.pdus = e.expr;
        phase.pdus_loc = e.loc;
      } else if (kw == "ops") {
        const LocatedExpr e = parse_line_expr(line, 1);
        phase.ops = e.expr;
        phase.ops_loc = e.loc;
      } else if (kw == "opkind") {
        if (line.tokens.size() != 2) fail(line, "opkind float|int");
        if (line.tokens[1].text == "float") {
          phase.op_kind = OpKind::FloatingPoint;
        } else if (line.tokens[1].text == "int") {
          phase.op_kind = OpKind::Integer;
        } else {
          fail(line.tokens[1].loc, "opkind float|int");
        }
      } else {
        fail(line, "unknown compute-phase key: " + kw);
      }
    } else if (section == Section::Comm) {
      if (comm.empty()) fail(line, "no open comm phase");
      SpecTemplate::CommPhase& phase = comm.back();
      if (kw == "topology") {
        if (line.tokens.size() != 2) fail(line, "topology <name>");
        phase.topology = topology_from_string(line.tokens[1].text);
        phase.topology_loc = line.tokens[1].loc;
      } else if (kw == "bytes") {
        const LocatedExpr e = parse_line_expr(line, 1);
        phase.bytes = e.expr;
        phase.bytes_loc = e.loc;
      } else if (kw == "overlap") {
        if (line.tokens.size() != 2) {
          fail(line, "overlap <compute-phase>");
        }
        phase.overlap_with = line.tokens[1].text;
        phase.overlap_loc = line.tokens[1].loc;
      } else {
        fail(line, "unknown comm-phase key: " + kw);
      }
    } else {
      fail(line, "unknown directive: " + kw);
    }
  }

  // Structural pre-checks with locations: the constructor would reject
  // these too, but it cannot say *where* -- the old "parse error with no
  // position" failure mode this parser no longer has.
  for (const SpecTemplate::ComputePhase& p : compute) {
    if (p.pdus == nullptr) {
      throw SpecStructureError(
          "spec line " + std::to_string(p.loc.line) + ": compute phase '" +
          p.name + "' is missing a pdus annotation", p.loc);
    }
    if (p.ops == nullptr) {
      throw SpecStructureError(
          "spec line " + std::to_string(p.loc.line) + ": compute phase '" +
          p.name + "' is missing an ops annotation", p.loc);
    }
  }
  for (const SpecTemplate::CommPhase& p : comm) {
    if (p.bytes == nullptr) {
      throw SpecStructureError(
          "spec line " + std::to_string(p.loc.line) + ": comm phase '" +
          p.name + "' is missing a bytes annotation", p.loc);
    }
  }

  SpecTemplate tmpl(std::move(name), std::move(params),
                    std::move(iterations), std::move(compute),
                    std::move(comm));
  tmpl.set_source_locs(std::move(param_locs), iterations_loc);
  return tmpl;
}

SpecTemplate parse_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ConfigError("cannot open spec file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_spec(buffer.str());
}

}  // namespace netpart

// Annotation specification files ("compiler-generated callbacks").
//
// Section 4 leaves the mechanism for producing annotations open and the
// paper's future work points at compiler generation.  This parser is that
// mechanism's front half: a declarative spec compiled into the callback
// functions the partitioner consumes.  Example (the paper's stencil):
//
//   # five-point stencil, row decomposition, STEN-1
//   computation sten1
//   param N 300
//   iterations 10
//
//   phase compute grid
//     pdus N
//     ops 5*N
//
//   phase comm borders
//     topology 1-D
//     bytes 4*N
//
// Expressions (see dp/expr.hpp) may reference any declared param; `bytes`
// may additionally reference A, the sending processor's PDU assignment
// (the paper's "b may depend on A_i").  `overlap <compute-phase>` marks an
// overlapped communication phase; `opkind int` selects the integer
// instruction rate.  Params are defaults, overridable at instantiation
// ("N" from the command line, say).
//
// Every token carries its source position, and every declaration in the
// parsed template remembers where it came from: parse errors report
// line:column, and the static-analysis pass (analysis/spec_lint) anchors
// its diagnostics to real locations.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dp/expr.hpp"
#include "dp/phases.hpp"
#include "util/error.hpp"

namespace netpart {

/// A position in a spec file: 1-based line and column (0 = unknown).
struct SpecLoc {
  int line = 0;
  int column = 0;

  bool known() const { return line > 0; }
};

/// Malformed spec input.  Derives from ConfigError (existing handlers keep
/// working) and carries the structured source location so tooling can
/// report `file:line:col` instead of the old bare "parse error".
class SpecParseError : public ConfigError {
 public:
  SpecParseError(const std::string& what, SpecLoc loc)
      : ConfigError(what), loc_(loc) {}

  SpecLoc loc() const { return loc_; }

 private:
  SpecLoc loc_;
};

/// A structurally incomplete spec (e.g. a compute phase without an ops
/// annotation).  Derives from InvalidArgument -- the pre-location error
/// type for this failure class -- and adds the declaration site.
class SpecStructureError : public InvalidArgument {
 public:
  SpecStructureError(const std::string& what, SpecLoc loc)
      : InvalidArgument(what), loc_(loc) {}

  SpecLoc loc() const { return loc_; }

 private:
  SpecLoc loc_;
};

/// A parsed, parameterised computation description.
class SpecTemplate {
 public:
  struct ComputePhase {
    std::string name;
    ExprPtr pdus;
    ExprPtr ops;
    OpKind op_kind = OpKind::FloatingPoint;
    SpecLoc loc;       ///< the `phase compute` line
    SpecLoc pdus_loc;  ///< the pdus expression
    SpecLoc ops_loc;   ///< the ops expression
  };
  struct CommPhase {
    std::string name;
    Topology topology = Topology::OneD;
    ExprPtr bytes;
    std::string overlap_with;
    SpecLoc loc;          ///< the `phase comm` line
    SpecLoc bytes_loc;    ///< the bytes expression
    SpecLoc overlap_loc;  ///< the overlap target token
    SpecLoc topology_loc; ///< the topology name token
  };
  /// A declared parameter: default value plus declaration site.
  struct Param {
    double value = 0.0;
    SpecLoc loc;
  };

  SpecTemplate(std::string name, std::map<std::string, double> params,
               ExprPtr iterations, std::vector<ComputePhase> compute,
               std::vector<CommPhase> comm);

  const std::string& name() const { return name_; }
  const std::map<std::string, double>& params() const { return params_; }

  /// Bind parameters (defaults overridden by `overrides`) and compile the
  /// expressions into a ComputationSpec.  Throws on unbound variables or
  /// non-positive pdus/iterations.
  ComputationSpec instantiate(
      const std::map<std::string, double>& overrides = {}) const;

  // --- static-analysis surface (analysis/spec_lint) ---------------------
  const std::vector<ComputePhase>& compute_phases() const {
    return compute_;
  }
  const std::vector<CommPhase>& comm_phases() const { return comm_; }
  const ExprPtr& iterations_expr() const { return iterations_; }
  /// Declaration sites; keyed like params().  Entries may be absent for
  /// templates constructed programmatically (locations default-unknown).
  const std::map<std::string, SpecLoc>& param_locs() const {
    return param_locs_;
  }
  SpecLoc iterations_loc() const { return iterations_loc_; }

  /// Attach declaration sites (the parser calls this; hand-built templates
  /// may skip it and lint diagnostics fall back to location-less output).
  void set_source_locs(std::map<std::string, SpecLoc> param_locs,
                       SpecLoc iterations_loc) {
    param_locs_ = std::move(param_locs);
    iterations_loc_ = iterations_loc;
  }

 private:
  std::string name_;
  std::map<std::string, double> params_;
  ExprPtr iterations_;
  std::vector<ComputePhase> compute_;
  std::vector<CommPhase> comm_;
  std::map<std::string, SpecLoc> param_locs_;
  SpecLoc iterations_loc_;
};

/// Parse a spec file's contents.  Throws SpecParseError (a ConfigError)
/// with line:column positions on malformed input.
SpecTemplate parse_spec(const std::string& text);

/// Parse from a file path.
SpecTemplate parse_spec_file(const std::string& path);

}  // namespace netpart

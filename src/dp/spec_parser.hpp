// Annotation specification files ("compiler-generated callbacks").
//
// Section 4 leaves the mechanism for producing annotations open and the
// paper's future work points at compiler generation.  This parser is that
// mechanism's front half: a declarative spec compiled into the callback
// functions the partitioner consumes.  Example (the paper's stencil):
//
//   # five-point stencil, row decomposition, STEN-1
//   computation sten1
//   param N 300
//   iterations 10
//
//   phase compute grid
//     pdus N
//     ops 5*N
//
//   phase comm borders
//     topology 1-D
//     bytes 4*N
//
// Expressions (see dp/expr.hpp) may reference any declared param; `bytes`
// may additionally reference A, the sending processor's PDU assignment
// (the paper's "b may depend on A_i").  `overlap <compute-phase>` marks an
// overlapped communication phase; `opkind int` selects the integer
// instruction rate.  Params are defaults, overridable at instantiation
// ("N" from the command line, say).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dp/expr.hpp"
#include "dp/phases.hpp"

namespace netpart {

/// A parsed, parameterised computation description.
class SpecTemplate {
 public:
  struct ComputePhase {
    std::string name;
    ExprPtr pdus;
    ExprPtr ops;
    OpKind op_kind = OpKind::FloatingPoint;
  };
  struct CommPhase {
    std::string name;
    Topology topology = Topology::OneD;
    ExprPtr bytes;
    std::string overlap_with;
  };

  SpecTemplate(std::string name, std::map<std::string, double> params,
               ExprPtr iterations, std::vector<ComputePhase> compute,
               std::vector<CommPhase> comm);

  const std::string& name() const { return name_; }
  const std::map<std::string, double>& params() const { return params_; }

  /// Bind parameters (defaults overridden by `overrides`) and compile the
  /// expressions into a ComputationSpec.  Throws on unbound variables or
  /// non-positive pdus/iterations.
  ComputationSpec instantiate(
      const std::map<std::string, double>& overrides = {}) const;

 private:
  std::string name_;
  std::map<std::string, double> params_;
  ExprPtr iterations_;
  std::vector<ComputePhase> compute_;
  std::vector<CommPhase> comm_;
};

/// Parse a spec file's contents.  Throws ConfigError with line numbers on
/// malformed input.
SpecTemplate parse_spec(const std::string& text);

/// Parse from a file path.
SpecTemplate parse_spec_file(const std::string& path);

}  // namespace netpart

#include "exec/adaptive.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <string>

#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "sim/faults.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace netpart {

namespace {

/// Wrap a pipeline-clock tracer for a run whose simulator restarts at
/// local time 0: shift every event by the run's pipeline-time origin.
sim::Tracer shifted_tracer(const sim::Tracer& sink, SimTime origin) {
  return [&sink, origin](const sim::TraceEvent& event) {
    sim::TraceEvent shifted = event;
    shifted.at = origin + event.at;
    sink(shifted);
  };
}

/// Simulate moving the PDU deltas between ranks and return the elapsed
/// redistribution time.  Surplus ranks ship blocks to deficit ranks,
/// matched greedily in rank order (blocks are contiguous, so adjacent
/// transfers dominate in practice).
SimTime redistribute(const Network& network, const Placement& placement,
                     const PartitionVector& from, const PartitionVector& to,
                     std::int64_t pdu_bytes,
                     const ExecutionOptions& exec_options, SimTime origin) {
  if (pdu_bytes <= 0) return SimTime::zero();
  struct Delta {
    int rank;
    std::int64_t count;
  };
  std::deque<Delta> surplus;
  std::deque<Delta> deficit;
  for (int r = 0; r < from.num_ranks(); ++r) {
    const std::int64_t d = from.at(r) - to.at(r);
    if (d > 0) surplus.push_back({r, d});
    if (d < 0) deficit.push_back({r, -d});
  }
  if (surplus.empty()) return SimTime::zero();

  sim::Engine engine;
  sim::NetSim net(engine, network, exec_options.sim_params,
                  Rng(exec_options.seed ^ 0x5EED));
  if (exec_options.tracer) {
    net.set_tracer(shifted_tracer(exec_options.tracer, origin));
  }
  // The PDUs travel over the same (possibly degraded) network: arm the
  // fault plan at the pipeline time the redistribution starts.
  std::optional<sim::FaultInjector> injector;
  if (exec_options.faults != nullptr && !exec_options.faults->empty()) {
    injector.emplace(net, *exec_options.faults, origin);
    injector->arm();
  }
  int outstanding = 0;
  while (!surplus.empty()) {
    Delta& s = surplus.front();
    NP_ASSERT(!deficit.empty());
    Delta& d = deficit.front();
    const std::int64_t moved = std::min(s.count, d.count);
    ++outstanding;
    net.send(placement[static_cast<std::size_t>(s.rank)],
             placement[static_cast<std::size_t>(d.rank)],
             moved * pdu_bytes, [&outstanding] { --outstanding; });
    s.count -= moved;
    d.count -= moved;
    if (s.count == 0) surplus.pop_front();
    if (d.count == 0) deficit.pop_front();
  }
  // One event at a time: run() would also drain fault events scheduled
  // past the last transfer's completion.
  while (outstanding > 0 && !engine.idle() &&
         engine.now() < exec_options.budget) {
    engine.step();
  }
  if (outstanding != 0) {
    throw ExecutionStalled("PDU redistribution could not complete (" +
                           std::to_string(outstanding) +
                           " transfers undelivered)");
  }
  return engine.now();
}

AdaptiveResult run_chunked(const Network& network,
                           const ComputationSpec& spec,
                           const Placement& placement,
                           const PartitionVector& initial,
                           const ExecutionOptions& exec_options,
                           const AdaptiveOptions& adaptive_options,
                           bool adapt) {
  NP_REQUIRE(adaptive_options.check_interval >= 1,
             "check interval must be positive");
  NP_REQUIRE(adaptive_options.imbalance_threshold > 1.0,
             "imbalance threshold must exceed 1");

  auto& telemetry = obs::TelemetryRegistry::global();
  static obs::Counter& chunks_counter = telemetry.counter("adaptive.chunks");
  static obs::Counter& repartitions_counter =
      telemetry.counter("adaptive.repartitions");
  static obs::Counter& fault_counter =
      telemetry.counter("adaptive.fault_responses");

  AdaptiveResult result{SimTime::zero(), SimTime::zero(), 0, initial, 0};
  PartitionVector current = initial;
  int iterations_left = spec.iterations();
  int chunk_index = 0;

  while (iterations_left > 0) {
    const int chunk =
        std::min(adaptive_options.check_interval, iterations_left);
    const ComputationSpec chunk_spec(spec.name(), spec.computation_phases(),
                                     spec.communication_phases(), chunk);
    ExecutionOptions options = exec_options;
    options.load_time_origin = exec_options.load_time_origin + result.elapsed;
    options.pdu_bytes = 0;  // the scatter happened before iteration 0
    options.seed = exec_options.seed + static_cast<std::uint64_t>(
                                           997 * chunk_index);
    const SimTime chunk_start = options.load_time_origin;
    if (exec_options.tracer) {
      options.tracer = shifted_tracer(exec_options.tracer, chunk_start);
    }
    const ExecutionResult run =
        execute(network, chunk_spec, placement, current, options);
    chunks_counter.add(1);
    {
      obs::Span chunk_span(telemetry, "adaptive.chunk", chunk_start, "exec");
      if (chunk_span.active()) {
        chunk_span.attr("chunk", JsonValue(chunk_index));
        chunk_span.attr("iterations", JsonValue(chunk));
      }
      chunk_span.end_at(chunk_start + run.elapsed);
    }
    result.elapsed += run.elapsed;
    result.messages_delivered += run.messages_delivered;
    iterations_left -= chunk;
    ++chunk_index;
    if (!adapt || iterations_left == 0) continue;

    // Fault notification: a plan event inside the chunk's window changed
    // the effective network, so the imbalance gate is bypassed and the
    // partition recomputed from what this chunk actually observed.
    const bool disturbed =
        exec_options.faults != nullptr &&
        exec_options.faults->disturbs(chunk_start,
                                      chunk_start + run.elapsed);

    // Observed per-PDU service times reveal the *effective* speeds.
    SimTime busy_min = SimTime::max();
    SimTime busy_max = SimTime::zero();
    std::vector<double> rate(run.rank_busy.size());
    for (std::size_t r = 0; r < run.rank_busy.size(); ++r) {
      busy_min = std::min(busy_min, run.rank_busy[r]);
      busy_max = std::max(busy_max, run.rank_busy[r]);
      const double busy_ms = std::max(run.rank_busy[r].as_millis(), 1e-6);
      rate[r] = static_cast<double>(current.at(static_cast<int>(r))) /
                busy_ms;  // PDUs per ms of observed service
    }
    if (!disturbed &&
        busy_max.as_millis() <
            adaptive_options.imbalance_threshold *
                std::max(busy_min.as_millis(), 1e-9)) {
      continue;  // balanced enough
    }

    PartitionVector next = [&] {
      if (adaptive_options.client != nullptr) {
        std::optional<PartitionVector> provided =
            adaptive_options.client->repartition(rate, current.total());
        if (provided.has_value() &&
            provided->num_ranks() == current.num_ranks() &&
            provided->total() == current.total()) {
          return std::move(*provided);
        }
      }
      return proportional_partition(rate, current.total());
    }();
    if (disturbed) {
      ++result.fault_responses;
      fault_counter.add(1);
      result.first_fault_response =
          std::min(result.first_fault_response,
                   exec_options.load_time_origin + result.elapsed);
    }
    if (next.values() == current.values()) continue;
    const SimTime decision_at = exec_options.load_time_origin + result.elapsed;
    obs::Span repartition_span(telemetry, "adaptive.repartition", decision_at,
                               "exec");
    if (repartition_span.active()) {
      repartition_span.attr("trigger",
                            JsonValue(disturbed ? "fault" : "imbalance"));
      repartition_span.attr("chunk", JsonValue(chunk_index));
    }
    obs::Span migration_span(telemetry, "adaptive.migration", decision_at,
                             "exec");
    const SimTime moved = redistribute(network, placement, current, next,
                                       adaptive_options.pdu_bytes,
                                       exec_options, decision_at);
    if (migration_span.active()) {
      migration_span.attr("moved_ms", JsonValue(moved.as_millis()));
    }
    migration_span.end_at(decision_at + moved);
    repartition_span.end_at(decision_at + moved);
    result.elapsed += moved;
    result.redistribution_time += moved;
    ++result.repartitions;
    repartitions_counter.add(1);
    NP_LOG_DEBUG << "repartitioned after chunk " << chunk_index << ": ["
                 << current.to_string() << "] -> [" << next.to_string()
                 << "] (+" << moved.as_millis() << "ms)";
    current = std::move(next);
  }

  result.final_partition = std::move(current);
  return result;
}

}  // namespace

AdaptiveResult execute_adaptive(const Network& network,
                                const ComputationSpec& spec,
                                const Placement& placement,
                                const PartitionVector& initial,
                                const ExecutionOptions& exec_options,
                                const AdaptiveOptions& adaptive_options) {
  return run_chunked(network, spec, placement, initial, exec_options,
                     adaptive_options, /*adapt=*/true);
}

RecoveryReport evaluate_recovery(const PartitionVector& achieved,
                                 std::span<const double> ms_per_pdu) {
  NP_REQUIRE(static_cast<int>(ms_per_pdu.size()) == achieved.num_ranks(),
             "need one per-PDU time per rank");
  std::vector<double> rate(ms_per_pdu.size());
  for (std::size_t r = 0; r < ms_per_pdu.size(); ++r) {
    NP_REQUIRE(ms_per_pdu[r] > 0.0, "per-PDU times must be positive");
    rate[r] = 1.0 / ms_per_pdu[r];
  }
  RecoveryReport report{0.0, 0.0, 1.0,
                        proportional_partition(rate, achieved.total())};
  const auto cycle_ms = [&ms_per_pdu](const PartitionVector& p) {
    double worst = 0.0;
    for (int r = 0; r < p.num_ranks(); ++r) {
      worst = std::max(worst, static_cast<double>(p.at(r)) *
                                  ms_per_pdu[static_cast<std::size_t>(r)]);
    }
    return worst;
  };
  report.achieved_ms = cycle_ms(achieved);
  report.oracle_ms = cycle_ms(report.oracle);
  report.ratio = report.achieved_ms / std::max(report.oracle_ms, 1e-12);
  return report;
}

ConfigRecoveryReport evaluate_config_recovery(
    const CycleEstimator& estimator, const AvailabilitySnapshot& snapshot,
    const ProcessorConfig& achieved, const ExhaustiveOptions& options) {
  ConfigRecoveryReport report;
  report.achieved_t_c_ms = estimator.estimate(achieved).t_c_ms;
  const PartitionResult oracle =
      exhaustive_partition(estimator, snapshot, options);
  report.oracle_t_c_ms = oracle.estimate.t_c_ms;
  report.oracle_config = oracle.config;
  report.oracle_evaluations = oracle.evaluations;
  report.ratio =
      report.achieved_t_c_ms / std::max(report.oracle_t_c_ms, 1e-12);

  // Local +/-1 repair off the achieved configuration, on the delta path:
  // 2K probes against the bound baseline instead of 2K from-scratch
  // evaluations.  Probe order and the strict improvement bar match the
  // general partitioner's climb.
  EstimatorScratch scratch;
  DeltaScratch& d = scratch.delta;
  estimator.bind_delta(achieved, d, scratch);
  const int total = config_total(achieved);
  double best_value = report.achieved_t_c_ms;
  int best_cluster = -1;
  int best_delta = 0;
  for (std::size_t c = 0; c < achieved.size(); ++c) {
    for (const int delta : {+1, -1}) {
      const int moved = achieved[c] + delta;
      if (moved < 0 || moved > snapshot.available[c]) continue;
      if (total + delta == 0) continue;
      const double value =
          estimator.estimate_delta(static_cast<ClusterId>(c), delta, d,
                                   scratch)
              .t_c_ms;
      if (value < best_value - 1e-12) {
        best_value = value;
        best_cluster = static_cast<int>(c);
        best_delta = delta;
      }
    }
  }
  report.local_best_t_c_ms = best_value;
  report.local_best_config = achieved;
  report.locally_optimal = best_cluster < 0;
  if (best_cluster >= 0) {
    report.local_best_config[static_cast<std::size_t>(best_cluster)] +=
        best_delta;
  }
  estimator.merge_evaluations(scratch.evaluations);
  return report;
}

AdaptiveResult execute_static_chunked(
    const Network& network, const ComputationSpec& spec,
    const Placement& placement, const PartitionVector& initial,
    const ExecutionOptions& exec_options,
    const AdaptiveOptions& adaptive_options) {
  return run_chunked(network, spec, placement, initial, exec_options,
                     adaptive_options, /*adapt=*/false);
}

}  // namespace netpart

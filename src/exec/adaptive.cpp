#include "exec/adaptive.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"
#include "util/log.hpp"

namespace netpart {

namespace {

/// Simulate moving the PDU deltas between ranks and return the elapsed
/// redistribution time.  Surplus ranks ship blocks to deficit ranks,
/// matched greedily in rank order (blocks are contiguous, so adjacent
/// transfers dominate in practice).
SimTime redistribute(const Network& network, const Placement& placement,
                     const PartitionVector& from, const PartitionVector& to,
                     std::int64_t pdu_bytes,
                     const ExecutionOptions& exec_options) {
  if (pdu_bytes <= 0) return SimTime::zero();
  struct Delta {
    int rank;
    std::int64_t count;
  };
  std::deque<Delta> surplus;
  std::deque<Delta> deficit;
  for (int r = 0; r < from.num_ranks(); ++r) {
    const std::int64_t d = from.at(r) - to.at(r);
    if (d > 0) surplus.push_back({r, d});
    if (d < 0) deficit.push_back({r, -d});
  }
  if (surplus.empty()) return SimTime::zero();

  sim::Engine engine;
  sim::NetSim net(engine, network, exec_options.sim_params,
                  Rng(exec_options.seed ^ 0x5EED));
  int outstanding = 0;
  while (!surplus.empty()) {
    Delta& s = surplus.front();
    NP_ASSERT(!deficit.empty());
    Delta& d = deficit.front();
    const std::int64_t moved = std::min(s.count, d.count);
    ++outstanding;
    net.send(placement[static_cast<std::size_t>(s.rank)],
             placement[static_cast<std::size_t>(d.rank)],
             moved * pdu_bytes, [&outstanding] { --outstanding; });
    s.count -= moved;
    d.count -= moved;
    if (s.count == 0) surplus.pop_front();
    if (d.count == 0) deficit.pop_front();
  }
  engine.run();
  NP_ASSERT(outstanding == 0);
  return engine.now();
}

AdaptiveResult run_chunked(const Network& network,
                           const ComputationSpec& spec,
                           const Placement& placement,
                           const PartitionVector& initial,
                           const ExecutionOptions& exec_options,
                           const AdaptiveOptions& adaptive_options,
                           bool adapt) {
  NP_REQUIRE(adaptive_options.check_interval >= 1,
             "check interval must be positive");
  NP_REQUIRE(adaptive_options.imbalance_threshold > 1.0,
             "imbalance threshold must exceed 1");

  AdaptiveResult result{SimTime::zero(), SimTime::zero(), 0, initial, 0};
  PartitionVector current = initial;
  int iterations_left = spec.iterations();
  int chunk_index = 0;

  while (iterations_left > 0) {
    const int chunk =
        std::min(adaptive_options.check_interval, iterations_left);
    const ComputationSpec chunk_spec(spec.name(), spec.computation_phases(),
                                     spec.communication_phases(), chunk);
    ExecutionOptions options = exec_options;
    options.load_time_origin = exec_options.load_time_origin + result.elapsed;
    options.pdu_bytes = 0;  // the scatter happened before iteration 0
    options.seed = exec_options.seed + static_cast<std::uint64_t>(
                                           997 * chunk_index);
    const ExecutionResult run =
        execute(network, chunk_spec, placement, current, options);
    result.elapsed += run.elapsed;
    result.messages_delivered += run.messages_delivered;
    iterations_left -= chunk;
    ++chunk_index;
    if (!adapt || iterations_left == 0) continue;

    // Observed per-PDU service times reveal the *effective* speeds.
    SimTime busy_min = SimTime::max();
    SimTime busy_max = SimTime::zero();
    std::vector<double> rate(run.rank_busy.size());
    for (std::size_t r = 0; r < run.rank_busy.size(); ++r) {
      busy_min = std::min(busy_min, run.rank_busy[r]);
      busy_max = std::max(busy_max, run.rank_busy[r]);
      const double busy_ms = std::max(run.rank_busy[r].as_millis(), 1e-6);
      rate[r] = static_cast<double>(current.at(static_cast<int>(r))) /
                busy_ms;  // PDUs per ms of observed service
    }
    if (busy_max.as_millis() <
        adaptive_options.imbalance_threshold *
            std::max(busy_min.as_millis(), 1e-9)) {
      continue;  // balanced enough
    }

    PartitionVector next = proportional_partition(rate, current.total());
    if (next.values() == current.values()) continue;
    const SimTime moved =
        redistribute(network, placement, current, next,
                     adaptive_options.pdu_bytes, exec_options);
    result.elapsed += moved;
    result.redistribution_time += moved;
    ++result.repartitions;
    NP_LOG_DEBUG << "repartitioned after chunk " << chunk_index << ": ["
                 << current.to_string() << "] -> [" << next.to_string()
                 << "] (+" << moved.as_millis() << "ms)";
    current = std::move(next);
  }

  result.final_partition = std::move(current);
  return result;
}

}  // namespace

AdaptiveResult execute_adaptive(const Network& network,
                                const ComputationSpec& spec,
                                const Placement& placement,
                                const PartitionVector& initial,
                                const ExecutionOptions& exec_options,
                                const AdaptiveOptions& adaptive_options) {
  return run_chunked(network, spec, placement, initial, exec_options,
                     adaptive_options, /*adapt=*/true);
}

AdaptiveResult execute_static_chunked(
    const Network& network, const ComputationSpec& spec,
    const Placement& placement, const PartitionVector& initial,
    const ExecutionOptions& exec_options,
    const AdaptiveOptions& adaptive_options) {
  return run_chunked(network, spec, placement, initial, exec_options,
                     adaptive_options, /*adapt=*/false);
}

}  // namespace netpart

// Dynamic repartitioning (the paper's Section 7 future work).
//
// "A strategy to handle load imbalance due to processor sharing is also the
//  subject of future work.  One possibility is to dynamically recompute the
//  partition vector in the event of load imbalance."
//
// The adaptive executor implements exactly that: the computation runs in
// chunks of `check_interval` iterations; after each chunk the per-rank busy
// times are inspected, and when the slowest rank exceeds the fastest by
// `imbalance_threshold` the partition vector is recomputed from the
// *observed* per-PDU rates (nominal speeds are stale once another user
// moves in).  Redistribution is not free: the surplus PDUs travel from
// over-loaded to under-loaded ranks through the simulated network, and that
// time is part of the total.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "core/partitioner.hpp"
#include "exec/executor.hpp"

namespace netpart {

/// External provider of repartition decisions.
///
/// By default the adaptive executor recomputes Eq. 3 inline from the
/// observed per-rank rates.  A long-lived deployment instead routes the
/// decision through the partition service (svc::AdaptiveServiceClient),
/// which caches, deduplicates, and meters the computation.  Returning
/// nullopt -- service overloaded, decision rejected -- falls back to the
/// inline rule, so adaptation never blocks on the service being healthy.
class RepartitionClient {
 public:
  virtual ~RepartitionClient() = default;

  /// Next partition for ranks with the given observed PDU rates (PDUs per
  /// ms of service time); the result must assign exactly `total_pdus`.
  virtual std::optional<PartitionVector> repartition(
      std::span<const double> rates, std::int64_t total_pdus) = 0;
};

struct AdaptiveOptions {
  /// Iterations per chunk between imbalance checks.
  int check_interval = 5;
  /// Repartition when max/min per-rank busy time exceeds this.
  double imbalance_threshold = 1.25;
  /// Bytes per PDU, used both for redistribution traffic and the startup
  /// scatter cost (0 = migration is free, not recommended).
  std::int64_t pdu_bytes = 0;
  /// Repartition decision provider; nullptr = inline Eq. 3.  Must outlive
  /// the execution.
  RepartitionClient* client = nullptr;
};

struct AdaptiveResult {
  SimTime elapsed;                 ///< total, including redistributions
  SimTime redistribution_time;     ///< time spent moving PDUs
  int repartitions = 0;            ///< how many times Eq. 3 was redone
  PartitionVector final_partition; ///< assignment after the last chunk
  std::uint64_t messages_delivered = 0;
  /// Repartitions forced by a fault notification (a fault plan disturbing
  /// the chunk's window) rather than by the imbalance threshold.
  int fault_responses = 0;
  /// Absolute pipeline time of the first fault-forced repartition
  /// (SimTime::max() if none happened): the detection-to-reaction latency
  /// is this minus the fault's onset time.
  SimTime first_fault_response = SimTime::max();
};

/// How close the adaptive executor's final partition is to the oracle
/// re-partition for the *effective* (post-fault) per-rank speeds.
struct RecoveryReport {
  /// Estimated cycle compute time max_r(A_r * ms_per_pdu_r) of the
  /// achieved partition on the degraded network.
  double achieved_ms = 0.0;
  /// Same for the oracle: proportional_partition of the effective rates.
  double oracle_ms = 0.0;
  /// achieved / oracle; 1.0 is a perfect recovery, the chaos tier asserts
  /// an upper bound on this.
  double ratio = 1.0;
  PartitionVector oracle;
};

/// Score a recovered partition against the oracle re-partition, given the
/// effective per-PDU service time of each rank on the degraded network
/// (nominal per-PDU time x fault slowdown x load slowdown).
RecoveryReport evaluate_recovery(const PartitionVector& achieved,
                                 std::span<const double> ms_per_pdu);

/// Configuration-level analogue of RecoveryReport: scores an achieved
/// processor configuration against the exhaustive oracle over the degraded
/// availability snapshot, on the full T_c objective (not just T_comp).
struct ConfigRecoveryReport {
  double achieved_t_c_ms = 0.0;  ///< estimator's T_c of the achieved config
  double oracle_t_c_ms = 0.0;    ///< T_c of the exhaustive argmin
  /// achieved / oracle; 1.0 means the recovered configuration is optimal
  /// for what is left of the network.
  double ratio = 1.0;
  ProcessorConfig oracle_config;
  std::uint64_t oracle_evaluations = 0;  ///< sweep size (cost of the oracle)

  // Local +/-1 repair, scored through the estimator's delta path with the
  // achieved configuration as the bound baseline.  One move is the unit of
  // migration-cost-aware adaptation (a repartition that moves one
  // processor's worth of PDUs), so "does any single move help, and how
  // much" is the cheap signal the adaptive loop can act on without paying
  // for the exhaustive oracle.
  double local_best_t_c_ms = 0.0;   ///< best T_c within one +/-1 move
  ProcessorConfig local_best_config;  ///< the move's configuration
  /// True when no single +/-1 move improves the achieved configuration
  /// (always true when achieved == oracle: a global optimum is locally
  /// optimal).
  bool locally_optimal = false;
};

/// Score a post-fault configuration against the exhaustive ground truth.
/// The sweep runs on the estimator's fast path, sharded per
/// `options.threads` (see exhaustive_partition) -- wide snapshots that used
/// to make the oracle impractical in tests are now seconds-scale.
ConfigRecoveryReport evaluate_config_recovery(
    const CycleEstimator& estimator, const AvailabilitySnapshot& snapshot,
    const ProcessorConfig& achieved, const ExhaustiveOptions& options = {});

/// Run `spec` with dynamic repartitioning.  The initial partition should be
/// the static Eq. 3 decomposition; the adaptive loop takes it from there.
AdaptiveResult execute_adaptive(const Network& network,
                                const ComputationSpec& spec,
                                const Placement& placement,
                                const PartitionVector& initial,
                                const ExecutionOptions& exec_options,
                                const AdaptiveOptions& adaptive_options);

/// Reference point: the same chunked execution without repartitioning
/// (isolates the adaptation benefit from chunking artefacts).
AdaptiveResult execute_static_chunked(
    const Network& network, const ComputationSpec& spec,
    const Placement& placement, const PartitionVector& initial,
    const ExecutionOptions& exec_options,
    const AdaptiveOptions& adaptive_options);

}  // namespace netpart

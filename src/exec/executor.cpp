#include "exec/executor.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <utility>

#include "exec/schedule.hpp"
#include "sim/faults.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace netpart {

namespace {

struct TaskState {
  GlobalRank rank = 0;
  std::size_t step = 0;
  int iteration = 0;
  SimTime compute_time;  ///< accumulated computation-phase time
  /// Messages arrived per (communication phase, iteration), not yet
  /// consumed by a Receive step.
  std::map<std::pair<std::size_t, int>, int> arrived;
  bool waiting = false;
  std::pair<std::size_t, int> wait_key{0, 0};
  int wait_needed = 0;
  bool done = false;
  SimTime finish;
};

class Runner {
 public:
  Runner(const Network& network, const ComputationSpec& spec,
         const Placement& placement, const PartitionVector& partition,
         const ExecutionOptions& options)
      : network_(network),
        spec_(spec),
        placement_(placement),
        partition_(partition),
        options_(options),
        net_(engine_, network, options.sim_params, Rng(options.seed)),
        jitter_rng_(Rng(options.seed).stream(0xC0FFEE)),
        schedule_(default_schedule(spec)) {
    if (options_.tracer) net_.set_tracer(options_.tracer);
    NP_REQUIRE(!placement_.empty(), "placement must be non-empty");
    NP_REQUIRE(partition_.num_ranks() ==
                   static_cast<int>(placement_.size()),
               "partition vector must align with the placement");
    partition_.validate(spec_.num_pdus());
    tasks_.resize(placement_.size());
    for (std::size_t r = 0; r < tasks_.size(); ++r) {
      tasks_[r].rank = static_cast<GlobalRank>(r);
    }
  }

  ExecutionResult run() {
    if (options_.faults != nullptr && !options_.faults->empty()) {
      injector_.emplace(net_, *options_.faults, options_.load_time_origin);
      injector_->arm();
    }

    // Optional startup scatter: rank 0 distributes every rank's block.
    // Driven one event at a time: with an armed injector, run() would also
    // execute fault events scheduled past the scatter's completion.
    SimTime start = SimTime::zero();
    if (options_.pdu_bytes > 0 && tasks_.size() > 1) {
      int remaining = static_cast<int>(tasks_.size()) - 1;
      for (std::size_t r = 1; r < tasks_.size(); ++r) {
        net_.send(placement_[0], placement_[r],
                  partition_.at(static_cast<int>(r)) * options_.pdu_bytes,
                  [&remaining] { --remaining; });
      }
      while (remaining > 0 && !engine_.idle() &&
             engine_.now() < options_.budget) {
        engine_.step();
      }
      if (remaining != 0) {
        throw ExecutionStalled("startup scatter could not complete (" +
                               std::to_string(remaining) +
                               " transfers undelivered)");
      }
      start = engine_.now();
    }

    for (TaskState& task : tasks_) {
      engine_.schedule_at(start, [this, &task] { advance(task); });
    }
    engine_.run_until(options_.budget);

    ExecutionResult result;
    result.startup = start;
    result.elapsed = SimTime::zero();
    int unfinished = 0;
    for (const TaskState& task : tasks_) {
      if (!task.done) ++unfinished;
    }
    if (unfinished > 0) {
      throw ExecutionStalled(std::to_string(unfinished) +
                             " rank(s) did not finish within the "
                             "execution budget");
    }
    for (const TaskState& task : tasks_) {
      result.rank_finish.push_back(task.finish - start);
      result.elapsed = std::max(result.elapsed, task.finish - start);
    }
    for (const ProcessorRef& ref : placement_) {
      result.rank_busy.push_back(net_.host(ref).total_busy());
    }
    for (const TaskState& task : tasks_) {
      result.rank_compute.push_back(task.compute_time);
    }
    result.iteration_finish = std::move(iteration_finish_);
    for (SimTime& t : result.iteration_finish) t -= start;
    for (SegmentId s = 0; s < network_.num_segments(); ++s) {
      result.segment_busy.push_back(net_.channel(s).total_busy());
    }
    result.messages_delivered = net_.messages_delivered();
    result.retransmissions = net_.retransmissions();
    return result;
  }

 private:
  /// Execute the task's schedule until it blocks or finishes.  Called from
  /// engine events at the task's ready time.
  void advance(TaskState& task) {
    const int p = static_cast<int>(placement_.size());
    while (true) {
      if (task.step == schedule_.size()) {
        task.step = 0;
        record_iteration_done(task.iteration);
        ++task.iteration;
        if (task.iteration == spec_.iterations()) {
          task.done = true;
          task.finish = engine_.now();
          return;
        }
      }
      const Step& step = schedule_[task.step];
      switch (step.kind) {
        case StepKind::Compute: {
          const ComputationPhaseSpec& phase =
              spec_.computation_phases()[step.phase];
          const SimTime duration = compute_duration(task, phase);
          task.compute_time += duration;
          const SimTime end = net_.host(placement_ref(task.rank))
                                  .reserve(engine_.now(), duration);
          ++task.step;
          engine_.schedule_at(end, [this, &task] { advance(task); });
          return;
        }
        case StepKind::Send: {
          const CommunicationPhaseSpec& phase =
              spec_.communication_phases()[step.phase];
          const std::int64_t bytes =
              phase.bytes_per_message(partition_.at(task.rank));
          const auto key = std::make_pair(step.phase, task.iteration);
          for (GlobalRank n :
               send_neighbors(phase.topology(), task.rank, p)) {
            TaskState& receiver = tasks_[static_cast<std::size_t>(n)];
            net_.send(placement_ref(task.rank), placement_ref(n), bytes,
                      [this, &receiver, key] { deliver(receiver, key); });
          }
          ++task.step;
          // The asynchronous sends cost initiation time on the host; the
          // task resumes once its own CPU is free again.
          const SimTime ready =
              net_.host(placement_ref(task.rank)).busy_until();
          if (ready > engine_.now()) {
            engine_.schedule_at(ready, [this, &task] { advance(task); });
            return;
          }
          break;
        }
        case StepKind::Receive: {
          const CommunicationPhaseSpec& phase =
              spec_.communication_phases()[step.phase];
          const int needed = static_cast<int>(
              recv_neighbors(phase.topology(), task.rank, p).size());
          const auto key = std::make_pair(step.phase, task.iteration);
          const auto it = task.arrived.find(key);
          const int have = it == task.arrived.end() ? 0 : it->second;
          if (have >= needed) {
            if (it != task.arrived.end()) task.arrived.erase(it);
            ++task.step;
            break;
          }
          task.waiting = true;
          task.wait_key = key;
          task.wait_needed = needed;
          return;
        }
      }
    }
  }

  void deliver(TaskState& receiver, std::pair<std::size_t, int> key) {
    const int have = ++receiver.arrived[key];
    if (receiver.waiting && receiver.wait_key == key &&
        have >= receiver.wait_needed) {
      receiver.waiting = false;
      receiver.arrived.erase(key);
      ++receiver.step;
      advance(receiver);
    }
  }

  SimTime compute_duration(TaskState& task,
                           const ComputationPhaseSpec& phase) {
    const ProcessorType& type =
        network_.cluster(placement_ref(task.rank).cluster).type();
    const SimTime per_op = phase.op_kind == OpKind::FloatingPoint
                               ? type.flop_time
                               : type.int_time;
    double duration_ms = per_op.as_millis() * phase.ops_per_pdu() *
                         static_cast<double>(partition_.at(task.rank));
    if (options_.compute_jitter > 0.0) {
      const double factor =
          1.0 + jitter_rng_.next_gaussian(options_.compute_jitter);
      duration_ms *= std::max(0.5, factor);
    }
    if (options_.load != nullptr) {
      // CPU sharing with background users: a loaded processor delivers a
      // (1 - load) fraction of its cycles to the task.
      duration_ms *= options_.load->slowdown(
          placement_ref(task.rank),
          options_.load_time_origin + engine_.now());
    }
    return SimTime::millis(duration_ms);
  }

  ProcessorRef placement_ref(GlobalRank rank) const {
    return placement_[static_cast<std::size_t>(rank)];
  }

  /// Track when the last rank finishes each iteration.
  void record_iteration_done(int iteration) {
    const auto i = static_cast<std::size_t>(iteration);
    if (iteration_done_.size() <= i) {
      iteration_done_.resize(i + 1, 0);
      iteration_finish_.resize(i + 1, SimTime::zero());
    }
    if (++iteration_done_[i] == static_cast<int>(tasks_.size())) {
      iteration_finish_[i] = engine_.now();
    }
  }

  const Network& network_;
  const ComputationSpec& spec_;
  const Placement& placement_;
  const PartitionVector& partition_;
  ExecutionOptions options_;
  sim::Engine engine_;
  sim::NetSim net_;
  std::optional<sim::FaultInjector> injector_;
  Rng jitter_rng_;
  std::vector<Step> schedule_;
  std::vector<TaskState> tasks_;
  std::vector<int> iteration_done_;
  std::vector<SimTime> iteration_finish_;
};

}  // namespace

ExecutionResult execute(const Network& network, const ComputationSpec& spec,
                        const Placement& placement,
                        const PartitionVector& partition,
                        const ExecutionOptions& options) {
  Runner runner(network, spec, placement, partition, options);
  return runner.run();
}

double average_elapsed_ms(const Network& network, const ComputationSpec& spec,
                          const Placement& placement,
                          const PartitionVector& partition,
                          const ExecutionOptions& options, int runs) {
  NP_REQUIRE(runs >= 1, "need at least one run");
  RunningStats stats;
  for (int r = 0; r < runs; ++r) {
    ExecutionOptions opts = options;
    opts.seed = options.seed + static_cast<std::uint64_t>(r);
    stats.add(execute(network, spec, placement, partition, opts)
                  .elapsed.as_millis());
  }
  return stats.mean();
}

}  // namespace netpart

// SPMD execution on the simulated network.
//
// The executor instantiates one task per selected processor, gives each its
// slice of the partition vector, and drives the per-iteration schedule of
// compute / send / receive steps through the discrete-event simulator.  The
// measured elapsed time is the Table 2 instrument: unlike the estimator it
// observes real contention, router hops, coercion, retransmissions, and the
// pipeline effects of overlap -- nothing is assumed synchronous.
#pragma once

#include <cstdint>
#include <vector>

#include "dp/partition_vector.hpp"
#include "dp/phases.hpp"
#include "exec/load.hpp"
#include "sim/netsim.hpp"
#include "topo/placement.hpp"
#include "util/error.hpp"

namespace netpart {

namespace sim {
struct FaultPlan;
}  // namespace sim

/// Thrown when an execution cannot finish: a fault plan (crash, permanent
/// partition with give_up_after_max_rounds) or the sim-time budget left
/// some rank's work undeliverable.
class ExecutionStalled : public Error {
 public:
  explicit ExecutionStalled(const std::string& what) : Error(what) {}
};

struct ExecutionOptions {
  sim::NetSimParams sim_params;
  std::uint64_t seed = 7;
  /// Multiplicative gaussian jitter on compute-phase durations (stddev as a
  /// fraction of the duration); 0 keeps runs exactly deterministic.
  double compute_jitter = 0.0;
  /// Time-varying background load; nullptr = unloaded processors.  Must
  /// outlive the execution.
  const LoadSchedule* load = nullptr;
  /// Offset added to simulation time when querying the load schedule (the
  /// adaptive executor runs in chunks that each restart at sim time 0).
  SimTime load_time_origin;
  /// When > 0, measure the initial data distribution: rank 0 scatters
  /// A_i * pdu_bytes to every other rank before iteration 0, reported as
  /// ExecutionResult::startup (the paper's T_startup, which its timings
  /// exclude and ours then also excludes from `elapsed`).
  std::int64_t pdu_bytes = 0;
  /// Fault schedule injected into this run's simulator; nullptr = benign.
  /// Plan times are absolute pipeline times -- load_time_origin maps them
  /// onto this run's local clock, exactly as for the load schedule.  Must
  /// outlive the execution.
  const sim::FaultPlan* faults = nullptr;
  /// Sim-time bound on this run's local clock; if any rank has not
  /// finished by then, execute() throws ExecutionStalled instead of
  /// running (or hanging) forever.
  SimTime budget = SimTime::max();
  /// Observer for this run's simulator trace events (see sim/trace.hpp).
  /// Event timestamps are on the run's local clock; callers that stitch
  /// chunks together (the adaptive executor) shift them by the chunk's
  /// pipeline-time origin before forwarding.  Empty = no tracing.
  sim::Tracer tracer;
};

struct ExecutionResult {
  /// Elapsed time for all iterations (initial data distribution excluded,
  /// matching the paper's timings).
  SimTime elapsed;
  /// T_startup: time of the initial scatter (zero unless
  /// ExecutionOptions::pdu_bytes was set).
  SimTime startup;
  /// Per-rank completion times.
  std::vector<SimTime> rank_finish;
  /// Per-rank host busy time (load-balance diagnostics).
  std::vector<SimTime> rank_busy;
  /// Per-rank time spent purely in computation phases; rank_busy minus
  /// this is messaging overhead, and elapsed minus rank_compute is that
  /// rank's communication exposure + waiting.
  std::vector<SimTime> rank_compute;
  /// Time each iteration completed on the last rank (cycle-time series:
  /// differences approximate the estimator's T_c).
  std::vector<SimTime> iteration_finish;
  /// Channel busy time per network segment (utilisation = busy / elapsed
  /// identifies bandwidth-bound configurations).
  std::vector<SimTime> segment_busy;
  std::uint64_t messages_delivered = 0;
  std::uint64_t retransmissions = 0;

  double elapsed_ms() const { return elapsed.as_millis(); }
};

/// Execute `spec` over the given placement and partition.  The partition
/// vector must be rank-aligned with the placement and cover the PDU domain.
ExecutionResult execute(const Network& network, const ComputationSpec& spec,
                        const Placement& placement,
                        const PartitionVector& partition,
                        const ExecutionOptions& options = {});

/// Convenience: average elapsed over `runs` executions with different seeds
/// (the paper reports averages over multiple runs).
double average_elapsed_ms(const Network& network, const ComputationSpec& spec,
                          const Placement& placement,
                          const PartitionVector& partition,
                          const ExecutionOptions& options, int runs);

}  // namespace netpart

#include "exec/load.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace netpart {

void LoadSchedule::add(ProcessorRef ref, SimTime from, double load) {
  NP_REQUIRE(load >= 0.0, "load must be non-negative");
  Entry entry{ref, from, std::min(load, 0.9)};
  const auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), entry,
      [](const Entry& a, const Entry& b) {
        if (a.ref.cluster != b.ref.cluster) {
          return a.ref.cluster < b.ref.cluster;
        }
        if (a.ref.index != b.ref.index) return a.ref.index < b.ref.index;
        return a.from < b.from;
      });
  entries_.insert(pos, entry);
}

double LoadSchedule::load(ProcessorRef ref, SimTime t) const {
  double current = 0.0;
  for (const Entry& e : entries_) {
    if (e.ref == ref && e.from <= t) {
      current = e.load;  // entries are sorted by time within a ref
    }
  }
  return current;
}

double LoadSchedule::slowdown(ProcessorRef ref, SimTime t) const {
  return 1.0 / (1.0 - load(ref, t));
}

LoadSchedule LoadSchedule::step(const Network& net, ClusterId cluster,
                                ProcessorIndex first_index, SimTime when,
                                double load) {
  LoadSchedule schedule;
  const Cluster& c = net.cluster(cluster);
  for (ProcessorIndex i = first_index; i < c.size(); ++i) {
    schedule.add(ProcessorRef{cluster, i}, when, load);
  }
  return schedule;
}

LoadSchedule LoadSchedule::random_walk(const Network& net, Rng rng,
                                       double mean_load, SimTime interval,
                                       SimTime horizon) {
  NP_REQUIRE(interval > SimTime::zero(), "interval must be positive");
  LoadSchedule schedule;
  for (SimTime t = SimTime::zero(); t < horizon; t += interval) {
    for (ClusterId c = 0; c < net.num_clusters(); ++c) {
      for (ProcessorIndex i = 0; i < net.cluster(c).size(); ++i) {
        const double draw =
            mean_load == 0.0 ? 0.0 : rng.next_exponential(mean_load);
        schedule.add(ProcessorRef{c, i}, t, std::min(draw, 0.9));
      }
    }
  }
  return schedule;
}

}  // namespace netpart

// Time-varying background load.
//
// The paper assumes load fluctuation is small once the available processors
// are chosen, and names "dynamically recompute the partition vector in the
// event of load imbalance" as future work.  This module provides the
// antagonist for that extension: a piecewise-constant per-processor load
// schedule.  A processor under load l runs user computation at a (1 - l)
// fraction of its nominal speed (CPU sharing with other users).
#pragma once

#include <vector>

#include "net/ids.hpp"
#include "net/network.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace netpart {

class LoadSchedule {
 public:
  LoadSchedule() = default;

  /// Set `ref`'s load to `load` (clamped to [0, 0.9]) from `from` onward,
  /// until a later entry overrides it.
  void add(ProcessorRef ref, SimTime from, double load);

  /// Background load of `ref` at time `t`; 0 when never set.
  double load(ProcessorRef ref, SimTime t) const;

  /// Slowdown factor at time `t`: nominal duration is multiplied by
  /// 1 / (1 - load).
  double slowdown(ProcessorRef ref, SimTime t) const;

  bool empty() const { return entries_.empty(); }

  /// A step schedule: at `when`, every processor of `cluster` with index
  /// >= first_index takes on `load`.  Models another user starting work on
  /// part of a cluster.
  static LoadSchedule step(const Network& net, ClusterId cluster,
                           ProcessorIndex first_index, SimTime when,
                           double load);

  /// A drifting schedule: every `interval`, every processor's load takes a
  /// fresh draw from a bounded exponential with the given mean.
  static LoadSchedule random_walk(const Network& net, Rng rng,
                                  double mean_load, SimTime interval,
                                  SimTime horizon);

 private:
  struct Entry {
    ProcessorRef ref;
    SimTime from;
    double load;
  };
  std::vector<Entry> entries_;  // kept sorted by (ref, from)
};

}  // namespace netpart

#include "exec/schedule.hpp"

#include <sstream>

#include "util/error.hpp"

namespace netpart {

std::vector<Step> default_schedule(const ComputationSpec& spec) {
  std::vector<Step> steps;
  const auto& comps = spec.computation_phases();
  const auto& comms = spec.communication_phases();

  // All sends are posted up front, in declaration order; non-overlapped
  // phases complete (receive) before computation begins.
  for (std::size_t i = 0; i < comms.size(); ++i) {
    steps.push_back(Step{StepKind::Send, i});
  }
  for (std::size_t i = 0; i < comms.size(); ++i) {
    if (comms[i].overlap_with.empty()) {
      steps.push_back(Step{StepKind::Receive, i});
    }
  }
  // Computation phases in declaration order, each followed by the receives
  // of the communication phases overlapping it.
  for (std::size_t c = 0; c < comps.size(); ++c) {
    steps.push_back(Step{StepKind::Compute, c});
    for (std::size_t i = 0; i < comms.size(); ++i) {
      if (comms[i].overlap_with == comps[c].name) {
        steps.push_back(Step{StepKind::Receive, i});
      }
    }
  }
  return steps;
}

std::string to_string(const std::vector<Step>& schedule,
                      const ComputationSpec& spec) {
  std::ostringstream os;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (i > 0) os << ' ';
    const Step& s = schedule[i];
    switch (s.kind) {
      case StepKind::Send:
        os << "send(" << spec.communication_phases()[s.phase].name << ')';
        break;
      case StepKind::Receive:
        os << "recv(" << spec.communication_phases()[s.phase].name << ')';
        break;
      case StepKind::Compute:
        os << "compute(" << spec.computation_phases()[s.phase].name << ')';
        break;
    }
  }
  return os.str();
}

}  // namespace netpart

// Per-iteration task schedules.
//
// The executor runs each task through a sequence of steps per iteration.
// The schedule is derived from the phase annotations: an overlapped
// communication phase splits around its computation phase
// (async sends -> compute -> blocking receives, the STEN-2 pattern), while
// a non-overlapped phase completes before computation starts (STEN-1).
#pragma once

#include <string>
#include <vector>

#include "dp/phases.hpp"

namespace netpart {

enum class StepKind {
  Send,     ///< post asynchronous sends to all send-neighbours
  Receive,  ///< block until all recv-neighbours' messages arrive
  Compute,  ///< local computation on the assigned PDUs
};

struct Step {
  StepKind kind;
  /// Index into the spec's communication_phases() (Send/Receive) or
  /// computation_phases() (Compute).
  std::size_t phase;
};

/// Derive the per-iteration schedule from the annotations.
std::vector<Step> default_schedule(const ComputationSpec& spec);

/// Human-readable rendering for diagnostics ("send(borders) compute(grid)
/// recv(borders)").
std::string to_string(const std::vector<Step>& schedule,
                      const ComputationSpec& spec);

}  // namespace netpart

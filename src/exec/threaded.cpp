#include "exec/threaded.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include "util/error.hpp"

namespace netpart::threaded {

Comm::Comm(int num_ranks) {
  NP_REQUIRE(num_ranks >= 1, "need at least one rank");
  boxes_.reserve(static_cast<std::size_t>(num_ranks));
  for (int i = 0; i < num_ranks; ++i) {
    boxes_.push_back(std::make_unique<Box>());
  }
}

void Comm::send(GlobalRank from, GlobalRank to, std::int32_t tag,
                std::vector<std::byte> payload) {
  NP_REQUIRE(to >= 0 && to < size(), "bad destination rank");
  NP_REQUIRE(from >= 0 && from < size(), "bad source rank");
  Box& box = *boxes_[static_cast<std::size_t>(to)];
  {
    const std::lock_guard<std::mutex> lock(box.mutex);
    box.queues[{from, tag}].push_back(
        Message{from, tag, std::move(payload)});
  }
  box.ready.notify_all();
}

Message Comm::recv(GlobalRank me, GlobalRank from, std::int32_t tag) {
  NP_REQUIRE(me >= 0 && me < size(), "bad receiver rank");
  Box& box = *boxes_[static_cast<std::size_t>(me)];
  std::unique_lock<std::mutex> lock(box.mutex);
  auto& queue = box.queues[{from, tag}];
  box.ready.wait(lock, [&] { return !queue.empty(); });
  Message msg = std::move(queue.front());
  queue.pop_front();
  return msg;
}

void Comm::barrier() {
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  const std::uint64_t generation = barrier_generation_;
  if (++barrier_waiting_ == size()) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock,
                   [&] { return barrier_generation_ != generation; });
}

void run_spmd(int num_ranks, const RankBody& body) {
  NP_REQUIRE(num_ranks >= 1, "need at least one rank");
  NP_REQUIRE(body != nullptr, "rank body required");
  Comm comm(num_ranks);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks));
  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (GlobalRank r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        body(r, comm);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void emulate_compute(double ops, double speed_factor) {
  NP_REQUIRE(speed_factor > 0.0, "speed factor must be positive");
  // ~4 flops per loop body; volatile sink keeps the optimiser honest.
  const auto iterations =
      static_cast<std::int64_t>(ops * speed_factor / 4.0);
  double acc = 1.0;
  for (std::int64_t i = 0; i < iterations; ++i) {
    acc = acc * 1.0000001 + 0.0000001;
    acc = acc - static_cast<double>(i & 1) * 1e-12;
  }
  static std::atomic<double> sink{0.0};
  sink.store(acc, std::memory_order_relaxed);
}

}  // namespace netpart::threaded

// Real-threads SPMD backend.
//
// The simulator is the *measurement* instrument; this backend demonstrates
// that the same partition drives a real parallel execution.  Each rank is
// a std::thread; message passing goes through in-memory mailboxes with
// blocking receives (the MMPS programming model on shared memory);
// heterogeneous processor speeds are emulated by charging each rank
// calibrated spin work per operation.  Wall-clock numbers are
// informational only -- on an oversubscribed machine the scheduler decides
// -- but the data movement and synchronisation are real, so functional
// results can be verified against the sequential references.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "net/ids.hpp"

namespace netpart::threaded {

/// A tagged message between ranks.
struct Message {
  GlobalRank source = 0;
  std::int32_t tag = 0;
  std::vector<std::byte> payload;
};

/// Blocking mailbox communicator shared by all ranks of one job.
class Comm {
 public:
  explicit Comm(int num_ranks);

  int size() const { return static_cast<int>(boxes_.size()); }

  /// Asynchronous send (never blocks; mailboxes are unbounded).
  void send(GlobalRank from, GlobalRank to, std::int32_t tag,
            std::vector<std::byte> payload);

  /// Blocking receive matching (from, tag), in send order per key.
  Message recv(GlobalRank me, GlobalRank from, std::int32_t tag);

  /// Rendezvous of all ranks (reusable).
  void barrier();

 private:
  struct Box {
    std::mutex mutex;
    std::condition_variable ready;
    std::map<std::pair<GlobalRank, std::int32_t>, std::deque<Message>>
        queues;
  };
  std::vector<std::unique_ptr<Box>> boxes_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;
};

/// The body a rank executes; `rank` identifies it, `comm` connects it.
using RankBody = std::function<void(GlobalRank rank, Comm& comm)>;

/// Launch `num_ranks` threads over `body` and join them.  Exceptions in a
/// body are rethrown (first one wins) after all threads join.
void run_spmd(int num_ranks, const RankBody& body);

/// Spin-work emulation of a slower processor: performs `ops` abstract
/// operations' worth of arithmetic, scaled by `speed_factor` (1.0 = the
/// fastest machine model; 2.0 = half speed, double work).
void emulate_compute(double ops, double speed_factor);

}  // namespace netpart::threaded

#include "fleet/driver.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace netpart::fleet {

svc::PartitionRequest workload_request(int key_index) {
  svc::PartitionRequest request;
  request.kind = svc::PartitionRequest::Kind::Partition;
  request.spec = "stencil";
  // Distinct problem sizes give distinct request keys (and thus distinct
  // ring positions) without varying anything else.
  request.n = 256 + key_index;
  request.iterations = 4;
  return request;
}

Fleet::ColdPath synthetic_cold_path(const Network& net) {
  const int clusters = net.num_clusters();
  return [clusters](const svc::PartitionRequest& request) {
    svc::PartitionDecision d;
    d.partition =
        PartitionVector(std::vector<std::int64_t>{std::max<std::int64_t>(
            request.n, 0)});
    d.config.assign(static_cast<std::size_t>(clusters), 0);
    d.config.front() = 1;
    d.placement = {ProcessorRef{0, 0}};
    d.t_c_ms = static_cast<double>(request.n) * 0.01 +
               static_cast<double>(request.iterations) * 0.1;
    d.evaluations = 1;
    return d;
  };
}

WorkloadResult run_workload(Fleet& fleet, const WorkloadOptions& options) {
  NP_REQUIRE(options.requests >= 1, "workload needs at least one request");
  NP_REQUIRE(options.distinct_keys >= 1,
             "workload needs at least one distinct key");
  sim::Engine& engine = fleet.net().engine();

  // Zipf CDF over the key universe (inverse-CDF draws below).
  std::vector<double> cdf(static_cast<std::size_t>(options.distinct_keys));
  double total = 0.0;
  for (int i = 0; i < options.distinct_keys; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), options.zipf_s);
    cdf[static_cast<std::size_t>(i)] = total;
  }
  for (double& c : cdf) c /= total;

  Rng rng = Rng(options.seed).stream(/*salt=*/0x667765656c74);  // "fleet"
  WorkloadResult result;
  int completed = 0;
  double latency_sum_ms = 0.0;
  const SimTime t0 = engine.now();
  SimTime last_done = t0;
  const std::vector<NodeId> ids = fleet.node_ids();

  for (int k = 0; k < options.requests; ++k) {
    engine.schedule_after(options.arrival_period * k, [&, k] {
      // Round-robin entry over the nodes alive right now (a client whose
      // frontend died retries the next one).
      NodeId entry = -1;
      for (std::size_t i = 0; i < ids.size(); ++i) {
        const NodeId candidate =
            ids[(static_cast<std::size_t>(k) + i) % ids.size()];
        if (fleet.node_alive(candidate)) {
          entry = candidate;
          break;
        }
      }
      if (entry < 0) {
        ++result.failed;
        ++completed;
        return;
      }
      const double u = rng.next_double();
      const int idx = static_cast<int>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      ++result.submitted;
      fleet.submit(workload_request(idx), entry, [&](const FleetReply& r) {
        ++completed;
        if (r.ok) {
          ++result.ok;
        } else {
          ++result.failed;
        }
        if (r.cache_hit) ++result.hit_replies;
        result.max_failovers = std::max(result.max_failovers, r.failovers);
        latency_sum_ms += r.latency.as_millis();
        result.max_latency_ms =
            std::max(result.max_latency_ms, r.latency.as_millis());
        last_done = std::max(last_done, engine.now());
      });
    });
  }

  while (completed < options.requests && engine.step()) {
  }

  result.elapsed = last_done - t0;
  const double seconds = result.elapsed.as_seconds();
  result.rps = seconds > 0.0 ? static_cast<double>(result.ok) / seconds : 0.0;
  result.mean_latency_ms =
      result.ok + result.failed > 0
          ? latency_sum_ms / static_cast<double>(result.ok + result.failed)
          : 0.0;
  return result;
}

}  // namespace netpart::fleet

// Deterministic fleet workloads (the engine behind apps/fleetd and
// bench_fleet).
//
// A workload is an open-loop arrival process: request k enters the fleet
// at k * arrival_period, at an entry node chosen round-robin over the
// nodes alive at that moment (a client retrying a different frontend).
// Request shapes are drawn zipf-skewed from a small universe, so a hot
// head of keys crosses the replication threshold while the tail stays
// cold -- the regime where replicated caches matter.
//
// Everything runs on the discrete-event engine: run_workload() steps the
// engine until every submitted request has completed (the fleet's
// periodic control loops keep the event queue non-empty forever, so
// "queue drained" is never the stop condition).
#pragma once

#include <cstdint>

#include "fleet/fleet.hpp"
#include "util/rng.hpp"

namespace netpart::fleet {

struct WorkloadOptions {
  int requests = 200;
  /// Distinct request shapes (the zipf universe).
  int distinct_keys = 32;
  /// Zipf skew exponent (1.0+ concentrates on a hot head).
  double zipf_s = 1.1;
  SimTime arrival_period = SimTime::micros(400);
  std::uint64_t seed = 1;
};

struct WorkloadResult {
  std::uint64_t submitted = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t hit_replies = 0;  ///< replies served from a cache
  int max_failovers = 0;          ///< worst failover chain on one request
  /// First arrival to last completion, simulated.
  SimTime elapsed = SimTime::zero();
  double rps = 0.0;  ///< ok / elapsed, simulated requests per second
  double mean_latency_ms = 0.0;
  double max_latency_ms = 0.0;
};

/// The canonical request shape for zipf index `key_index` (a stencil
/// partition whose problem size encodes the index, so distinct indices
/// produce distinct routing keys).
svc::PartitionRequest workload_request(int key_index);

/// A deterministic cold path for fleet drivers: decision shape derived
/// from the request alone (no estimator run -- the modelled cost lives in
/// FleetOptions::cold_service).
Fleet::ColdPath synthetic_cold_path(const Network& net);

/// Run `options.requests` arrivals through a started fleet; returns when
/// the last one completes.  Deterministic for a given (fleet, options).
WorkloadResult run_workload(Fleet& fleet, const WorkloadOptions& options);

}  // namespace netpart::fleet

#include "fleet/fleet.hpp"

#include <algorithm>
#include <utility>

#include "net/builder.hpp"
#include "net/presets.hpp"
#include "util/error.hpp"

namespace netpart::fleet {

namespace {

// Per-hop attribution range: cache hits land near 100 us, failover chains
// accumulate hundreds of ms of RTO; 2 s of headroom keeps both in-bucket.
constexpr double kHopLoUs = 0.0;
constexpr double kHopHiUs = 2.0e6;
constexpr std::size_t kHopBuckets = 1000;

}  // namespace

Network make_fleet_network(int nodes, int processors_per_cluster) {
  NP_REQUIRE(nodes >= 1, "fleet needs at least one node");
  NP_REQUIRE(processors_per_cluster >= 1,
             "fleet clusters need at least one processor");
  NetworkBuilder builder;
  for (int c = 0; c < nodes; ++c) {
    builder.add_cluster("node" + std::to_string(c), presets::sparc2(),
                        processors_per_cluster);
  }
  return builder.build();
}

Fleet::Fleet(sim::NetSim& net, FleetOptions options, ColdPath cold_path)
    : net_(net),
      mmps_(net),
      options_(std::move(options)),
      cold_path_(std::move(cold_path)),
      signature_(svc::network_signature(net.network())),
      ctr_forwards_(obs::TelemetryRegistry::global().counter("fleet.forwards")),
      ctr_failovers_(
          obs::TelemetryRegistry::global().counter("fleet.failovers")),
      ctr_gossip_rounds_(
          obs::TelemetryRegistry::global().counter("fleet.gossip_rounds")),
      ctr_replications_(
          obs::TelemetryRegistry::global().counter("fleet.replications")),
      telemetry_(std::make_unique<obs::TelemetryRegistry>(
          /*enabled=*/false)),  // histograms only; no spans at fleet level
      hop_route_us_(telemetry_->latency("fleet.request.route_us", kHopLoUs,
                                        kHopHiUs, kHopBuckets)),
      hop_forward_us_(telemetry_->latency("fleet.request.forward_us",
                                          kHopLoUs, kHopHiUs, kHopBuckets)),
      hop_compute_us_(telemetry_->latency("fleet.request.compute_us",
                                          kHopLoUs, kHopHiUs, kHopBuckets)),
      hop_reply_us_(telemetry_->latency("fleet.request.reply_us", kHopLoUs,
                                        kHopHiUs, kHopBuckets)),
      hop_total_us_(telemetry_->latency("fleet.request.total_us", kHopLoUs,
                                        kHopHiUs, kHopBuckets)) {
  NP_REQUIRE(options_.replication >= 1, "replication factor must be >= 1");
  NP_REQUIRE(cold_path_ != nullptr, "fleet needs a cold path");
  const int clusters = net_.network().num_clusters();
  NP_REQUIRE(options_.replication <= clusters,
             "replication factor exceeds fleet size");
  // A process that opted into tracing gets fleet traces too; the per-node
  // registries are the recording surface either way.
  options_.tracing =
      options_.tracing || obs::TelemetryRegistry::global_enabled();
  options_.node.tracing = options_.tracing;
  options_.node.trace_seed = options_.trace_seed;
  std::vector<NodeId> ids;
  ids.reserve(clusters);
  for (int c = 0; c < clusters; ++c) ids.push_back(c);
  const SimTime now = net_.engine().now();
  nodes_.reserve(clusters);
  for (NodeId id : ids) {
    nodes_.push_back(std::make_unique<FleetNode>(id, ids, now, options_.peer,
                                                 options_.node));
  }
}

std::vector<NodeId> Fleet::node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& n : nodes_) ids.push_back(n->id());
  return ids;
}

FleetNode& Fleet::node(NodeId id) {
  NP_REQUIRE(id >= 0 && id < static_cast<NodeId>(nodes_.size()),
             "unknown fleet node id");
  return *nodes_[id];
}

const FleetNode& Fleet::node(NodeId id) const {
  return const_cast<Fleet*>(this)->node(id);
}

bool Fleet::node_alive(NodeId id) const {
  return net_.host(host_of(id)).alive();
}

NodeId Fleet::first_alive() const {
  for (const auto& n : nodes_) {
    if (node_alive(n->id())) return n->id();
  }
  return -1;
}

std::uint64_t Fleet::routing_key(const svc::PartitionRequest& request) const {
  // Epoch 0: routing must be stable across epoch bumps (an epoch changes
  // what is cached, not where a key lives).
  return svc::request_key(request, signature_, /*epoch=*/0);
}

// --- control-plane loops ---------------------------------------------------

void Fleet::start() {
  if (running_) return;
  running_ = true;
  if (!armed_) {
    armed_ = true;
    for (const auto& n : nodes_) {
      arm_heartbeat(n->id());
      arm_gossip(n->id());
      arm_forward(n->id());
      arm_replicate(n->id());
    }
  }
  net_.engine().schedule_after(options_.heartbeat_period,
                               [this] { heartbeat_round(); });
  net_.engine().schedule_after(options_.gossip_period,
                               [this] { gossip_round(); });
}

void Fleet::stop() { running_ = false; }

void Fleet::heartbeat_round() {
  if (!running_) return;
  const SimTime now = net_.engine().now();
  for (const auto& n : nodes_) {
    if (!node_alive(n->id())) continue;
    n->peers().tick(now);
    for (const auto& peer : nodes_) {
      if (peer->id() == n->id()) continue;
      if (n->peers().health(peer->id()) == PeerHealth::Dead) continue;
      mmps_.send(host_of(n->id()), host_of(peer->id()), kHeartbeatTag,
                 encode_announce({n->id(), n->epoch()}));
      ++stats_.heartbeats;
    }
  }
  net_.engine().schedule_after(options_.heartbeat_period,
                               [this] { heartbeat_round(); });
}

void Fleet::gossip_round() {
  if (!running_) return;
  ++stats_.gossip_rounds;
  ctr_gossip_rounds_.add();
  for (const auto& n : nodes_) {
    if (!node_alive(n->id())) continue;
    // Ring successor by ascending node id among this node's live view --
    // the same successor rule the availability token ring uses, so the
    // epoch walks the same ring the paper's protocol does.
    const std::vector<NodeId> members = n->peers().ring_members();
    if (members.size() < 2) continue;
    const auto it =
        std::upper_bound(members.begin(), members.end(), n->id());
    const NodeId successor = it == members.end() ? members.front() : *it;
    mmps_.send(host_of(n->id()), host_of(successor), kGossipTag,
               encode_announce({n->id(), n->epoch()}));
    ++stats_.gossip_messages;
  }
  net_.engine().schedule_after(options_.gossip_period,
                               [this] { gossip_round(); });
}

void Fleet::observe_announce(NodeId at, const EpochAnnounce& announce) {
  FleetNode& n = node(at);
  n.peers().record_heartbeat(announce.from, net_.engine().now());
  if (n.observe_epoch(announce.epoch)) ++stats_.epoch_adoptions;
}

void Fleet::arm_heartbeat(NodeId n) {
  mmps_.recv_any(host_of(n), kHeartbeatTag, [this, n](mmps::Message msg) {
    arm_heartbeat(n);
    observe_announce(n, decode_announce(msg.payload));
  });
}

void Fleet::arm_gossip(NodeId n) {
  mmps_.recv_any(host_of(n), kGossipTag, [this, n](mmps::Message msg) {
    arm_gossip(n);
    observe_announce(n, decode_announce(msg.payload));
  });
}

void Fleet::arm_replicate(NodeId n) {
  mmps_.recv_any(host_of(n), kReplicateTag, [this, n](mmps::Message msg) {
    arm_replicate(n);
    ReplicateEnvelope envelope = decode_replicate(msg.payload);
    // A push computed under an older epoch than this node's is already
    // stale; dropping it here is the same rule invalidate_before applies.
    const bool accepted = envelope.decision.epoch >= node(n).epoch();
    // Materialise the carried context as a point span on the replica's
    // lane: the owner minted this identity when it pushed, so the merged
    // trace shows serve -> replicate edges across nodes.
    const SimTime now = net_.engine().now();
    record_node_span(n, "fleet.replicate", envelope.trace, now, now,
                     {{"accepted", JsonValue(accepted)}});
    if (!accepted) return;
    node(n).cache().insert(std::make_shared<svc::PartitionDecision>(
        std::move(envelope.decision)));
    ++stats_.replica_inserts;
  });
}

void Fleet::arm_forward(NodeId n) {
  mmps_.recv_any(host_of(n), kForwardTag, [this, n](mmps::Message msg) {
    arm_forward(n);
    const ForwardEnvelope envelope = decode_forward(msg.payload);
    WireWriter reply;
    try {
      const SimTime received = net_.engine().now();
      const Served served =
          serve_at(n, envelope.request, envelope.routing_key,
                   /*owner_side=*/true, envelope.trace);
      // Receive and ready stamps ride the reply so the relay can split
      // forward-wire, owner-compute, and reply-wire time (sim clocks are
      // globally consistent, so the stamps need no skew correction).
      reply.u8(1)
          .u8(served.hit ? 1 : 0)
          .f64(received.as_micros())
          .f64(served.ready_at.as_micros());
      encode_decision_into(reply, *served.decision);
      net_.engine().schedule_at(
          served.ready_at,
          [this, n, from = envelope.from, tag = envelope.reply_tag,
           bytes = reply.take()]() mutable {
            mmps_.send(host_of(n), host_of(from), tag, std::move(bytes));
          });
    } catch (const Error&) {
      // Cold path rejected the request: report failure immediately so the
      // relay does not burn its RTO on a non-crash.
      reply.u8(0).u8(0);
      mmps_.send(host_of(n), host_of(envelope.from), envelope.reply_tag,
                 reply.take());
    }
  });
}

// --- request path ----------------------------------------------------------

Fleet::Served Fleet::serve_at(NodeId at, const svc::PartitionRequest& request,
                              std::uint64_t routing_key, bool owner_side,
                              const obs::TraceContext& parent) {
  FleetNode& n = node(at);
  const SimTime began = net_.engine().now();
  const std::uint64_t key = svc::request_key(request, signature_, n.epoch());
  Served served;
  served.ctx = n.child_of(parent);
  served.decision = n.cache().lookup(key);
  served.hit = served.decision != nullptr;
  if (served.hit) {
    ++stats_.hits;
    n.metrics().hits.add();
    if (owner_side && n.record_hit(key, routing_key)) {
      replicate(at, routing_key, served.decision, served.ctx);
    }
  } else {
    ++stats_.misses;
    n.metrics().misses.add();
    svc::PartitionDecision d = cold_path_(request);
    d.key = key;
    d.epoch = n.epoch();
    auto decision = std::make_shared<const svc::PartitionDecision>(
        std::move(d));
    n.cache().insert(decision);
    served.decision = std::move(decision);
  }
  n.metrics().serves.add();
  served.ready_at = net_.host(host_of(at))
                        .reserve(net_.engine().now(),
                                 served.hit ? options_.hit_service
                                            : options_.cold_service);
  record_node_span(at, "fleet.serve", served.ctx, began, served.ready_at,
                   {{"hit", JsonValue(served.hit)}});
  return served;
}

void Fleet::replicate(NodeId owner, std::uint64_t routing_key,
                      const std::shared_ptr<const svc::PartitionDecision>& d,
                      const obs::TraceContext& parent) {
  FleetNode& o = node(owner);
  const std::vector<NodeId> replicas =
      o.ring().replicas(routing_key, options_.replication);
  for (NodeId replica : replicas) {
    if (replica == owner) continue;
    WireWriter w;
    encode_trace_context_into(w, o.child_of(parent));
    encode_decision_into(w, *d);
    mmps_.send(host_of(owner), host_of(replica), kReplicateTag, w.take());
    ++stats_.replications_pushed;
    ctr_replications_.add();
  }
}

void Fleet::submit(const svc::PartitionRequest& request, NodeId entry,
                   ReplyCallback done) {
  ++stats_.requests;
  auto a = std::make_shared<Attempt>();
  a->request = request;
  a->routing_key = routing_key(request);
  a->entry = entry;
  a->started = net_.engine().now();
  a->done = std::move(done);
  FleetNode& e = node(entry);
  e.metrics().requests.add();
  a->trace = e.new_root();
  a->targets = e.ring().replicas(a->routing_key, options_.replication);
  NP_REQUIRE(!a->targets.empty(), "empty routing ring at entry node");

  // Read-your-replica fast path: the entry is not the owner but holds a
  // replicated copy -- serve it without a network round trip.  peek() is
  // stats-neutral, so a miss here costs nothing.
  if (a->targets.front() != entry &&
      std::find(a->targets.begin(), a->targets.end(), entry) !=
          a->targets.end()) {
    const std::uint64_t key =
        svc::request_key(request, signature_, e.epoch());
    if (auto decision = e.cache().peek(key)) {
      ++stats_.hits;
      ++stats_.replica_serves;
      e.metrics().hits.add();
      e.metrics().serves.add();
      const SimTime ready = net_.host(host_of(entry))
                                .reserve(a->started, options_.hit_service);
      record_node_span(entry, "fleet.serve", e.child_of(a->trace),
                       a->started, ready,
                       {{"hit", JsonValue(true)},
                        {"replica", JsonValue(true)}});
      hop_route_us_.record(0.0);
      hop_compute_us_.record((ready - a->started).as_micros());
      net_.engine().schedule_at(ready, [this, a, decision] {
        finish(a, /*ok=*/true, /*hit=*/true, a->entry, decision);
      });
      return;
    }
  }
  try_next(a);
}

void Fleet::try_next(const AttemptPtr& a) {
  FleetNode& e = node(a->entry);
  while (a->next_target < a->targets.size()) {
    const NodeId target = a->targets[a->next_target++];
    if (e.peers().health(target) == PeerHealth::Dead) continue;
    if (target == a->entry) {
      // The entry is (or has become, after failovers) the acting owner.
      try {
        const SimTime began = net_.engine().now();
        const Served served =
            serve_at(a->entry, a->request, a->routing_key,
                     /*owner_side=*/true, a->trace);
        ++stats_.local_serves;
        // Local attribution: route = failover wait before this serve,
        // compute = the host-reserved service time; no wire hops.
        hop_route_us_.record((began - a->started).as_micros());
        hop_compute_us_.record((served.ready_at - began).as_micros());
        net_.engine().schedule_at(served.ready_at, [this, a, served] {
          finish(a, /*ok=*/true, served.hit, a->entry, served.decision);
        });
      } catch (const Error&) {
        finish(a, /*ok=*/false, /*hit=*/false, a->entry, nullptr);
      }
      return;
    }
    forward_to(a, target);
    return;
  }
  finish(a, /*ok=*/false, /*hit=*/false, -1, nullptr);
}

void Fleet::forward_to(const AttemptPtr& a, NodeId target) {
  const std::int32_t reply_tag = next_reply_tag_++;
  FleetNode& e = node(a->entry);
  const obs::TraceContext fwd_ctx = e.child_of(a->trace);
  const SimTime sent = net_.engine().now();
  a->forward_sent = sent;
  ForwardEnvelope envelope;
  envelope.from = a->entry;
  envelope.routing_key = a->routing_key;
  envelope.reply_tag = reply_tag;
  envelope.trace = fwd_ctx;  // the owner's serve becomes this span's child
  envelope.request = a->request;
  mmps_.send(host_of(a->entry), host_of(target), kForwardTag,
             encode_forward(envelope));
  ++stats_.forwards;
  ctr_forwards_.add();
  e.metrics().forwards.add();
  mmps_.recv_with_timeout(
      host_of(a->entry), host_of(target), reply_tag, options_.forward_timeout,
      [this, a, target, fwd_ctx, sent](mmps::Message msg) {
        WireReader r(msg.payload);
        const bool ok = r.u8() != 0;
        const bool hit = r.u8() != 0;
        const SimTime now = net_.engine().now();
        record_node_span(a->entry, "fleet.forward", fwd_ctx, sent, now,
                         {{"target", JsonValue(static_cast<double>(target))},
                          {"ok", JsonValue(ok)}});
        if (!ok) {
          finish(a, /*ok=*/false, /*hit=*/false, target, nullptr);
          return;
        }
        // Owner-side stamps (sim clock, globally consistent) split the
        // round trip into its hops.
        const double received_us = r.f64();
        const double ready_us = r.f64();
        hop_route_us_.record((sent - a->started).as_micros());
        hop_forward_us_.record(received_us - sent.as_micros());
        hop_compute_us_.record(ready_us - received_us);
        hop_reply_us_.record(now.as_micros() - ready_us);
        finish(a, /*ok=*/true, hit, target,
               std::make_shared<svc::PartitionDecision>(
                   decode_decision_from(r)));
      },
      [this, a, target, fwd_ctx, sent] {
        // RTO expired: treat the silent owner as failed for this request
        // and reroute to the next replica.  The peer table catches up via
        // its own silence thresholds / the token ring's dead reports.
        ++stats_.failovers;
        ++a->failovers;
        ctr_failovers_.add();
        const SimTime now = net_.engine().now();
        record_node_span(a->entry, "fleet.forward", fwd_ctx, sent, now,
                         {{"target", JsonValue(static_cast<double>(target))},
                          {"ok", JsonValue(false)},
                          {"outcome", JsonValue("timeout")}});
        FleetNode& entry_node = node(a->entry);
        if (entry_node.telemetry().enabled()) {
          obs::InstantRecord rec;
          rec.name = "fleet.failover";
          rec.category = "fleet";
          rec.sim_clock = true;
          rec.ts_us = now.as_micros();
          rec.attrs = {{"entry", JsonValue(static_cast<double>(a->entry))},
                       {"target", JsonValue(static_cast<double>(target))}};
          entry_node.telemetry().record_instant(std::move(rec));
        }
        try_next(a);
      });
}

void Fleet::finish(const AttemptPtr& a, bool ok, bool hit, NodeId served_by,
                   std::shared_ptr<const svc::PartitionDecision> decision) {
  if (ok) {
    ++stats_.ok;
  } else {
    ++stats_.failed;
  }
  FleetReply reply;
  reply.ok = ok;
  reply.cache_hit = hit;
  reply.served_by = served_by;
  reply.failovers = a->failovers;
  reply.latency = net_.engine().now() - a->started;
  reply.decision = std::move(decision);
  if (ok) {
    hop_total_us_.record(reply.latency.as_micros());
    node(a->entry).metrics().request_us.record(reply.latency.as_micros());
  }
  record_node_span(a->entry, "fleet.request", a->trace, a->started,
                   net_.engine().now(),
                   {{"ok", JsonValue(ok)},
                    {"hit", JsonValue(hit)},
                    {"served_by", JsonValue(static_cast<double>(served_by))},
                    {"failovers",
                     JsonValue(static_cast<double>(a->failovers))}});
  if (a->done) a->done(reply);
}

void Fleet::record_node_span(NodeId at, const char* name,
                             const obs::TraceContext& ctx, SimTime start,
                             SimTime end, obs::AttrList attrs) {
  FleetNode& n = node(at);
  if (!n.telemetry().enabled()) return;
  obs::SpanRecord rec;
  rec.name = name;
  rec.category = "fleet";
  rec.sim_clock = true;
  rec.tid = 0;  // the fleet control plane is one simulated thread per node
  rec.start_us = start.as_micros();
  const double dur = end.as_micros() - start.as_micros();
  rec.dur_us = dur > 0.0 ? dur : 0.0;
  rec.trace_id = ctx.trace_id;
  rec.span_id = ctx.span_id;
  rec.parent_span_id = ctx.parent_span_id;
  rec.attrs = std::move(attrs);
  n.telemetry().record_span(std::move(rec));
}

// --- epochs and failure reports --------------------------------------------

void Fleet::announce_epoch(NodeId at, std::uint64_t epoch) {
  if (!node_alive(at)) return;
  if (node(at).observe_epoch(epoch)) ++stats_.epoch_adoptions;
}

void Fleet::report_dead_peers(const std::vector<ClusterId>& dead) {
  for (const auto& n : nodes_) {
    if (!node_alive(n->id())) continue;
    for (ClusterId d : dead) n->peers().report_dead(d);
  }
}

double Fleet::warm_fraction_for(NodeId dead) {
  FleetNode& d = node(dead);
  const auto hot = d.hot_entries();
  if (hot.empty()) return 1.0;
  int warm = 0;
  for (const auto& [cache_key, route] : hot) {
    // The designated failover target is the first surviving replica in
    // the dead node's own (pre-crash) ring order.
    const std::vector<NodeId> replicas =
        d.ring().replicas(route, options_.replication);
    for (NodeId replica : replicas) {
      if (replica == dead || !node_alive(replica)) continue;
      if (node(replica).cache().peek(cache_key) != nullptr) ++warm;
      break;
    }
  }
  return static_cast<double>(warm) / static_cast<double>(hot.size());
}

}  // namespace netpart::fleet

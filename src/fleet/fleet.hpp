// The netpartd fleet: N partition-service nodes over MMPS (DESIGN.md §12).
//
// One Fleet owns one simulated network with one FleetNode per cluster
// (the node process runs on processor {c, 0}, the same host the
// fault-tolerant availability protocol uses as cluster manager).  Every
// cross-node interaction is an MMPS message on the simulated network, so
// crashes, slowdowns, and partitions injected by the PR 1 FaultInjector
// hit the fleet's control plane exactly as they hit application traffic.
//
// Request path (submit):
//   entry node --ring--> owner.  If entry IS the owner (or a replica with
//   the entry warm), it serves locally; otherwise it forwards the request
//   and waits on a per-forward reply tag with an RTO.  A timeout reroutes
//   to the next replica in ring order (a failover); when every candidate
//   is exhausted the request fails.
//
// Epoch path (announce_epoch + gossip rounds):
//   an epoch enters at one node and propagates ring-wise -- each alive
//   node pushes its newest epoch to its ring successor once per gossip
//   round, so an epoch observed anywhere reaches every alive node within
//   N-1 rounds (heartbeats piggyback epochs too, which only accelerates).
//
// Replication path:
//   the owner counts hits per key; at the hot threshold it pushes the
//   decision to the key's R-1 replicas, so a crash mid-epoch degrades to
//   a cache-warm failover instead of a cold recompute.
//
// Tracing (DESIGN.md §13): with FleetOptions::tracing on (or process-wide
// tracing enabled), every submit opens a `fleet.request` root span at its
// entry node; each forward attempt is a `fleet.forward` child whose
// context rides the wire, the owner's `fleet.serve` is a true child of
// that forward, and replication pushes materialise `fleet.replicate`
// spans on the replicas -- one connected trace per request, across nodes.
// Successful requests also feed the fleet-level per-hop attribution
// histograms (`fleet.request.route_us` / `forward_us` / `compute_us` /
// `reply_us` / `total_us`), which are recorded whether or not span
// tracing is on: attribution is metrics, not trace payload.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fleet/node.hpp"
#include "fleet/wire.hpp"
#include "mmps/system.hpp"
#include "obs/telemetry.hpp"
#include "sim/netsim.hpp"

namespace netpart::fleet {

/// MMPS control tags, placed below the manager protocol's -101..-104 so
/// the two control planes can share a System without tag collisions.
/// Forward replies use positive per-forward tags from a counter.
inline constexpr std::int32_t kHeartbeatTag = -201;
inline constexpr std::int32_t kGossipTag = -202;
inline constexpr std::int32_t kForwardTag = -203;
inline constexpr std::int32_t kReplicateTag = -204;

struct FleetOptions {
  /// Copies of each entry: the owner plus replication-1 ring successors.
  int replication = 2;
  NodeOptions node;
  PeerTableOptions peer;
  /// Period of the all-pairs heartbeat loop.
  SimTime heartbeat_period = SimTime::millis(100);
  /// Period of the ring-wise epoch gossip loop.
  SimTime gossip_period = SimTime::millis(50);
  /// CPU cost a node charges to serve a cached decision.
  SimTime hit_service = SimTime::micros(80);
  /// CPU cost a node charges to compute a decision cold.
  SimTime cold_service = SimTime::millis(2);
  /// RTO on a forwarded request before rerouting to the next replica.
  SimTime forward_timeout = SimTime::millis(250);
  /// Record fleet spans into the per-node registries.  OR'd with
  /// obs::TelemetryRegistry::global_enabled() at construction, so a
  /// process that opted into tracing gets fleet traces without extra
  /// plumbing.
  bool tracing = false;
  /// Seed of the fleet's deterministic trace-id streams (per-node stream
  /// = node id); same seed + same workload = byte-identical exports.
  std::uint64_t trace_seed = 1;
};

struct FleetStats {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t hits = 0;           ///< cache hits (any node)
  std::uint64_t misses = 0;         ///< cache misses -> cold computes
  std::uint64_t forwards = 0;       ///< requests relayed to a remote owner
  std::uint64_t local_serves = 0;   ///< served by the entry node itself
  std::uint64_t replica_serves = 0; ///< entry served from a replicated copy
  std::uint64_t failovers = 0;      ///< forward timeouts rerouted
  std::uint64_t replications_pushed = 0;  ///< hot pushes sent (per replica)
  std::uint64_t replica_inserts = 0;      ///< pushes accepted and cached
  std::uint64_t gossip_rounds = 0;
  std::uint64_t gossip_messages = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t epoch_adoptions = 0;      ///< observe_epoch() adoptions
};

/// The outcome of one submitted request, delivered to the submit callback
/// at the simulated time the answer is in the client's hands.
struct FleetReply {
  bool ok = false;
  bool cache_hit = false;
  NodeId served_by = -1;
  int failovers = 0;
  SimTime latency = SimTime::zero();
  std::shared_ptr<const svc::PartitionDecision> decision;
};

/// A homogeneous fleet network: `nodes` single-segment sparc2 clusters of
/// `processors_per_cluster` machines each, joined by a router.  Cluster c
/// hosts fleet node c on processor {c, 0}.
Network make_fleet_network(int nodes, int processors_per_cluster = 2);

class Fleet {
 public:
  /// The cold path: computes the decision for a request the cache cannot
  /// answer.  Runs at the owning node; its CPU cost is modelled by
  /// FleetOptions::cold_service, not measured.
  using ColdPath = std::function<svc::PartitionDecision(
      const svc::PartitionRequest&)>;
  using ReplyCallback = std::function<void(const FleetReply&)>;

  /// One FleetNode per cluster of `net.network()`.  The Fleet posts
  /// receive handlers on construction-independent start(); it must
  /// outlive the engine run.
  Fleet(sim::NetSim& net, FleetOptions options, ColdPath cold_path);

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  /// Arm the control plane: per-node receive loops plus the periodic
  /// heartbeat and gossip loops, first firing one period from now.
  void start();
  /// Stop scheduling new periodic rounds (already-scheduled events drain).
  void stop();

  /// Submit a request at `entry`; `done` fires once, at the simulated
  /// completion time, with the outcome.
  void submit(const svc::PartitionRequest& request, NodeId entry,
              ReplyCallback done);

  /// A new availability epoch enters the fleet at node `at` (the node
  /// that observed the feed bump); gossip spreads it from there.
  void announce_epoch(NodeId at, std::uint64_t epoch);

  /// Feed the availability token ring's findings into every live peer
  /// table (ProtocolResult::dead from mmps/manager_protocol).
  void report_dead_peers(const std::vector<ClusterId>& dead);

  /// Failover-warmth audit: the fraction of `dead`'s hot entries already
  /// present on the first surviving replica of each entry's key.  1.0
  /// when the dead node had no hot entries.
  double warm_fraction_for(NodeId dead);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  std::vector<NodeId> node_ids() const;
  FleetNode& node(NodeId id);
  const FleetNode& node(NodeId id) const;
  bool node_alive(NodeId id) const;
  /// Lowest-id alive node (the canonical entry point for drivers).
  NodeId first_alive() const;

  std::uint64_t signature() const { return signature_; }
  std::uint64_t routing_key(const svc::PartitionRequest& request) const;
  const FleetStats& stats() const { return stats_; }
  const FleetOptions& options() const { return options_; }
  sim::NetSim& net() { return net_; }
  const sim::NetSim& net() const { return net_; }
  mmps::System& mmps() { return mmps_; }

  /// Fleet-level registry holding the per-hop `fleet.request.*`
  /// attribution histograms (per-node spans/counters live on each
  /// FleetNode's registry; FleetTelemetry merges both).
  obs::TelemetryRegistry& telemetry() { return *telemetry_; }
  const obs::TelemetryRegistry& telemetry() const { return *telemetry_; }

 private:
  /// One in-flight submit: the candidate targets in ring order and the
  /// cursor over them.  Shared by the chained engine events.
  struct Attempt {
    svc::PartitionRequest request;
    std::uint64_t routing_key = 0;
    NodeId entry = -1;
    std::vector<NodeId> targets;
    std::size_t next_target = 0;
    int failovers = 0;
    SimTime started = SimTime::zero();
    /// Root context of this request's trace (invalid when tracing is off).
    obs::TraceContext trace;
    /// Send time of the most recent forward (per-hop route attribution).
    SimTime forward_sent = SimTime::zero();
    ReplyCallback done;
  };
  using AttemptPtr = std::shared_ptr<Attempt>;

  /// A locally served request: the answer plus the host-reserved time at
  /// which it is ready.
  struct Served {
    std::shared_ptr<const svc::PartitionDecision> decision;
    bool hit = false;
    SimTime ready_at = SimTime::zero();
    /// The serving node's `fleet.serve` span context (replication pushes
    /// parent under it).
    obs::TraceContext ctx;
  };

  static ProcessorRef host_of(NodeId id) { return ProcessorRef{id, 0}; }

  /// Serve at node `at` (cache lookup, cold path on miss, CPU charge);
  /// owner_side enables hit counting and hot replication.  The serve span
  /// is recorded as a child of `parent` (the request root for local
  /// serves, the relayed forward context for remote ones).
  Served serve_at(NodeId at, const svc::PartitionRequest& request,
                  std::uint64_t routing_key, bool owner_side,
                  const obs::TraceContext& parent);

  /// Advance `a` to its next target: serve locally, forward, or fail.
  void try_next(const AttemptPtr& a);
  void forward_to(const AttemptPtr& a, NodeId target);
  void finish(const AttemptPtr& a, bool ok, bool hit, NodeId served_by,
              std::shared_ptr<const svc::PartitionDecision> decision);

  /// Push `decision` (hot at `owner` under `routing_key`) to its
  /// replicas, parented under the owner's serve span `parent`.
  void replicate(NodeId owner, std::uint64_t routing_key,
                 const std::shared_ptr<const svc::PartitionDecision>& d,
                 const obs::TraceContext& parent);

  /// Record a sim-clock span into node `at`'s registry (no-op when that
  /// registry is not recording).
  void record_node_span(NodeId at, const char* name,
                        const obs::TraceContext& ctx, SimTime start,
                        SimTime end, obs::AttrList attrs);

  /// Re-arming receive loops for the four control tags at node `n`.
  void arm_heartbeat(NodeId n);
  void arm_gossip(NodeId n);
  void arm_forward(NodeId n);
  void arm_replicate(NodeId n);

  void heartbeat_round();
  void gossip_round();
  void observe_announce(NodeId at, const EpochAnnounce& announce);

  sim::NetSim& net_;
  mmps::System mmps_;
  FleetOptions options_;
  ColdPath cold_path_;
  std::uint64_t signature_ = 0;
  std::vector<std::unique_ptr<FleetNode>> nodes_;  // by NodeId == index
  FleetStats stats_;
  bool running_ = false;
  bool armed_ = false;  ///< receive loops are self-re-arming: post once
  std::int32_t next_reply_tag_ = 1;

  // Global counters (resolved once; relaxed adds afterwards).
  obs::Counter& ctr_forwards_;
  obs::Counter& ctr_failovers_;
  obs::Counter& ctr_gossip_rounds_;
  obs::Counter& ctr_replications_;

  // Fleet-level registry + per-hop attribution histograms (declared after
  // the registry they borrow from).
  std::unique_ptr<obs::TelemetryRegistry> telemetry_;
  obs::LatencyHistogram& hop_route_us_;
  obs::LatencyHistogram& hop_forward_us_;
  obs::LatencyHistogram& hop_compute_us_;
  obs::LatencyHistogram& hop_reply_us_;
  obs::LatencyHistogram& hop_total_us_;
};

}  // namespace netpart::fleet

#include "fleet/fleet_telemetry.hpp"

#include <algorithm>
#include <sstream>

#include "util/string_util.hpp"

namespace netpart::fleet {

namespace {

/// Split into lines (no trailing empties), for the lexicographic merge.
std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    if (end > begin) lines.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

}  // namespace

void FleetTelemetry::sync_loss_counters() {
  const std::uint64_t dropped = fleet_.net().messages_dropped();
  fleet_.telemetry()
      .counter("sim.messages_dropped")
      .add(dropped - synced_net_dropped_);
  synced_net_dropped_ = dropped;

  synced_record_dropped_.resize(
      static_cast<std::size_t>(fleet_.num_nodes()), 0);
  for (NodeId id : fleet_.node_ids()) {
    obs::TelemetryRegistry& reg = fleet_.node(id).telemetry();
    const std::uint64_t node_dropped = reg.dropped_records();
    std::uint64_t& synced =
        synced_record_dropped_[static_cast<std::size_t>(id)];
    reg.counter("obs.records.dropped").add(node_dropped - synced);
    synced = node_dropped;
  }
}

std::vector<obs::TraceLane> FleetTelemetry::lanes() const {
  std::vector<obs::TraceLane> lanes;
  lanes.reserve(static_cast<std::size_t>(fleet_.num_nodes()));
  for (NodeId id : fleet_.node_ids()) {
    lanes.push_back(obs::TraceLane{"node" + std::to_string(id),
                                   &fleet_.node(id).telemetry()});
  }
  return lanes;
}

std::string FleetTelemetry::merged_metrics_text() {
  sync_loss_counters();
  std::vector<std::string> lines =
      split_lines(fleet_.telemetry().metrics_text());
  for (NodeId id : fleet_.node_ids()) {
    const std::string dim = "node=" + std::to_string(id);
    const std::vector<std::string> node_lines =
        split_lines(fleet_.node(id).telemetry().metrics_text(dim));
    lines.insert(lines.end(), node_lines.begin(), node_lines.end());
  }
  // One global lexicographic order: same metric's per-node rows group
  // together regardless of which registry produced them.
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

JsonValue FleetTelemetry::merged_chrome_trace() {
  sync_loss_counters();
  return obs::chrome_trace_json(lanes());
}

std::vector<NodeHealth> FleetTelemetry::health() const {
  std::vector<NodeHealth> out;
  const std::vector<NodeId> ids = fleet_.node_ids();
  out.reserve(ids.size());
  for (NodeId id : ids) {
    FleetNode& n = fleet_.node(id);
    NodeHealth h;
    h.id = id;
    h.alive = fleet_.node_alive(id);
    h.requests = n.metrics().requests.value();
    h.forwards = n.metrics().forwards.value();
    h.serves = n.metrics().serves.value();
    const QuantileSummary q = n.metrics().request_us.quantiles();
    h.p50_us = q.p50;
    h.p99_us = q.p99;
    if (h.requests > 0) {
      h.forward_ratio = static_cast<double>(h.forwards) /
                        static_cast<double>(h.requests);
    }
    const std::uint64_t hits = n.metrics().hits.value();
    const std::uint64_t misses = n.metrics().misses.value();
    if (hits + misses > 0) {
      h.warm_fraction =
          static_cast<double>(hits) / static_cast<double>(hits + misses);
    }
    for (NodeId peer : ids) {
      if (peer == id) continue;
      if (n.peers().health(peer) == PeerHealth::Dead) ++h.dead_peers;
    }
    out.push_back(h);
  }
  return out;
}

std::string FleetTelemetry::health_text() const {
  std::string out;
  for (const NodeHealth& h : health()) {
    out += "node " + std::to_string(h.id) +
           " alive=" + (h.alive ? std::string("1") : std::string("0")) +
           " requests=" + std::to_string(h.requests) +
           " forwards=" + std::to_string(h.forwards) +
           " serves=" + std::to_string(h.serves) +
           " p50_us=" + format_double(h.p50_us, 3) +
           " p99_us=" + format_double(h.p99_us, 3) +
           " forward_ratio=" + format_double(h.forward_ratio, 3) +
           " warm_fraction=" + format_double(h.warm_fraction, 3) +
           " dead_peers=" + std::to_string(h.dead_peers) + "\n";
  }
  return out;
}

JsonValue FleetTelemetry::health_json() const {
  JsonValue nodes = JsonValue::array();
  for (const NodeHealth& h : health()) {
    nodes.push(JsonValue::object()
                   .set("id", static_cast<std::int64_t>(h.id))
                   .set("alive", h.alive)
                   .set("requests", h.requests)
                   .set("forwards", h.forwards)
                   .set("serves", h.serves)
                   .set("p50_us", h.p50_us)
                   .set("p99_us", h.p99_us)
                   .set("forward_ratio", h.forward_ratio)
                   .set("warm_fraction", h.warm_fraction)
                   .set("dead_peers", h.dead_peers));
  }
  return JsonValue::object().set("nodes", std::move(nodes));
}

}  // namespace netpart::fleet

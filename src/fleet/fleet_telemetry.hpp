// Fleet-wide telemetry aggregation (see DESIGN.md §13).
//
// Every FleetNode records into its own TelemetryRegistry -- the honest
// model of a real deployment, where no node can read another's metrics
// process.  FleetTelemetry is the collector a driver runs *after* (or
// between) sim runs: it snapshots every node's registry plus the Fleet's
// per-hop attribution registry and merges them into single deterministic
// artifacts:
//
//   * merged_metrics_text() -- one name-ordered dump; fleet-level rows
//     render plain (`latency fleet.request.route_us ...`), per-node rows
//     carry a `{node=N}` dimension.  Byte-identical for identical seeded
//     runs.
//   * merged_chrome_trace() -- one Chrome-trace JSON with one pid lane
//     per node (pid kLanePidBase + node id), so a forwarded request reads
//     as connected spans hopping across swimlanes.
//   * health() / health_text() / health_json() -- per-node SLO summary:
//     p50/p99 request latency, forward ratio, cache warm fraction,
//     dead-peer count.
//
// Loss surfacing: merging first folds the simulator's message-drop count
// and each registry's ring-buffer truncation count into counters
// (`sim.messages_dropped`, `obs.records.dropped`), tracked by delta so
// repeated exports never double-count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "obs/chrome_trace.hpp"
#include "util/json.hpp"

namespace netpart::fleet {

/// One node's health/SLO summary (health(), rendered by health_text()).
struct NodeHealth {
  NodeId id = -1;
  bool alive = false;
  std::uint64_t requests = 0;   ///< submits that entered here
  std::uint64_t forwards = 0;   ///< requests this node relayed out
  std::uint64_t serves = 0;     ///< decisions produced here
  double p50_us = 0.0;          ///< entry-side request latency
  double p99_us = 0.0;
  double forward_ratio = 0.0;   ///< forwards / requests (0 when idle)
  double warm_fraction = 0.0;   ///< hits / (hits + misses) (0 when idle)
  int dead_peers = 0;           ///< peers this node's table calls Dead
};

class FleetTelemetry {
 public:
  explicit FleetTelemetry(Fleet& fleet) : fleet_(fleet) {}

  FleetTelemetry(const FleetTelemetry&) = delete;
  FleetTelemetry& operator=(const FleetTelemetry&) = delete;

  /// Fold current loss totals into counters (delta-tracked; safe to call
  /// any number of times).  The merge entry points call it themselves.
  void sync_loss_counters();

  /// One lane per node for the multi-lane Chrome export (lane i = node i,
  /// named to match make_fleet_network's cluster names).
  std::vector<obs::TraceLane> lanes() const;

  /// Name-ordered merged metrics dump: fleet-level rows plain, per-node
  /// rows with a `{node=N}` dimension.  Deterministic for a deterministic
  /// run.
  std::string merged_metrics_text();

  /// Merged multi-lane Chrome trace (chrome_trace.hpp rules).
  JsonValue merged_chrome_trace();

  std::vector<NodeHealth> health() const;
  /// One line per node: `node <id> alive=1 requests=57 p50_us=... ...`.
  std::string health_text() const;
  JsonValue health_json() const;

 private:
  Fleet& fleet_;
  std::uint64_t synced_net_dropped_ = 0;
  std::vector<std::uint64_t> synced_record_dropped_;
};

}  // namespace netpart::fleet

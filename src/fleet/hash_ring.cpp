#include "fleet/hash_ring.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace netpart::fleet {

namespace {

/// FNV-1a over short structured inputs is nearly affine: two vnodes of the
/// same node differ in a handful of output bits, so the raw digests cluster
/// into per-node lattices instead of interleaving around the ring (measured:
/// one node of four owned ~90% of the key space).  A SplitMix64-style
/// finalizer avalanches every input bit across the word and restores the
/// uniform spread consistent hashing depends on.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Ring position of virtual node `v` of `node`.  Domain-tagged so a node id
/// can never collide with a request key that happens to share its bits.
std::uint64_t vnode_hash(NodeId node, int v) {
  Fnv1a h;
  h.str("fleet.vnode").i32(node).i32(v);
  return mix64(h.value());
}

/// Request keys are already FNV-1a outputs, but they share the ring with
/// vnode hashes; the finalizing round also keeps the two families
/// independent.
std::uint64_t key_hash(std::uint64_t key) {
  Fnv1a h;
  h.str("fleet.key").u64(key);
  return mix64(h.value());
}

}  // namespace

HashRing::HashRing(const std::vector<NodeId>& nodes, int vnodes_per_node) {
  NP_REQUIRE(vnodes_per_node >= 1, "ring needs at least one vnode per node");
  nodes_ = nodes;
  std::sort(nodes_.begin(), nodes_.end());
  NP_REQUIRE(std::adjacent_find(nodes_.begin(), nodes_.end()) ==
                 nodes_.end(),
             "ring nodes must be distinct");
  points_.reserve(nodes_.size() * static_cast<std::size_t>(vnodes_per_node));
  for (NodeId node : nodes_) {
    for (int v = 0; v < vnodes_per_node; ++v) {
      points_.push_back(Point{vnode_hash(node, v), node});
    }
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a,
                                               const Point& b) {
    if (a.hash != b.hash) return a.hash < b.hash;
    return a.node < b.node;  // full-collision tie: lower id wins, stably
  });
}

std::size_t HashRing::lower_bound_index(std::uint64_t key) const {
  NP_REQUIRE(!points_.empty(), "owner lookup on an empty ring");
  const std::uint64_t h = key_hash(key);
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t value) { return p.hash < value; });
  if (it == points_.end()) return 0;  // wrap past the last point
  return static_cast<std::size_t>(it - points_.begin());
}

NodeId HashRing::owner(std::uint64_t key) const {
  return points_[lower_bound_index(key)].node;
}

std::vector<NodeId> HashRing::replicas(std::uint64_t key,
                                       int replicas) const {
  NP_REQUIRE(replicas >= 1, "replication factor must be >= 1");
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(replicas));
  std::size_t i = lower_bound_index(key);
  for (std::size_t seen = 0;
       seen < points_.size() && static_cast<int>(out.size()) < replicas;
       ++seen) {
    const NodeId node = points_[(i + seen) % points_.size()].node;
    if (std::find(out.begin(), out.end(), node) == out.end()) {
      out.push_back(node);
    }
  }
  return out;
}

}  // namespace netpart::fleet

// Consistent-hash routing for the netpartd fleet (see DESIGN.md §12).
//
// Every PartitionRequest already has a canonical FNV-1a key (svc/request);
// the ring maps that key space onto fleet nodes so all N nodes agree on
// which node owns a request without any coordination.  Each node is hashed
// onto the ring at `vnodes` points (virtual nodes smooth the per-node key
// share from O(1/sqrt(V)) skew down to a few percent); a key is owned by
// the first point clockwise from the key's hash, and replicated on the
// next R-1 *distinct* nodes after the owner, so losing one node moves only
// its own arc to the successors instead of reshuffling the whole space.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ids.hpp"

namespace netpart::fleet {

/// Fleet nodes are named by the cluster whose manager host they run on
/// (one netpartd node per cluster of the fleet network).
using NodeId = ClusterId;

class HashRing {
 public:
  /// An empty ring owns nothing (owner() on it is an error).
  HashRing() = default;

  /// Hash each node onto the ring at `vnodes_per_node` points.  Nodes must
  /// be distinct; order does not matter (the ring is order-independent by
  /// construction -- two peers that agree on the member *set* agree on
  /// every routing decision).
  HashRing(const std::vector<NodeId>& nodes, int vnodes_per_node);

  bool empty() const { return points_.empty(); }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const std::vector<NodeId>& nodes() const { return nodes_; }

  /// The node owning `key`: first ring point at or clockwise after the
  /// key's hash.
  NodeId owner(std::uint64_t key) const;

  /// The owner plus the next `replicas - 1` distinct nodes in ring order
  /// (fewer when the ring has fewer nodes).  replicas >= 1.
  std::vector<NodeId> replicas(std::uint64_t key, int replicas) const;

  /// Position of the first ring point at or after the key's (re-mixed)
  /// hash -- exposed so tests can pin the wrap-around behaviour.
  std::size_t lower_bound_index(std::uint64_t key) const;

 private:
  struct Point {
    std::uint64_t hash;
    NodeId node;
  };

  std::vector<Point> points_;  // sorted by (hash, node)
  std::vector<NodeId> nodes_;  // member set, ascending
};

}  // namespace netpart::fleet

#include "fleet/node.hpp"

#include <algorithm>

namespace netpart::fleet {

FleetNode::FleetNode(NodeId id, const std::vector<NodeId>& nodes,
                     SimTime now, const PeerTableOptions& peer_options,
                     const NodeOptions& options)
    : id_(id),
      options_(options),
      peers_(nodes, id, now, peer_options),
      cache_(options.cache_capacity, options.cache_shards) {}

bool FleetNode::observe_epoch(std::uint64_t epoch) {
  if (epoch <= epoch_) return false;
  epoch_ = epoch;
  cache_.invalidate_before(epoch);
  hits_.clear();
  return true;
}

const HashRing& FleetNode::ring() {
  if (ring_version_ != peers_.version()) {
    ring_ = HashRing(peers_.ring_members(), options_.vnodes);
    ring_version_ = peers_.version();
  }
  return ring_;
}

bool FleetNode::record_hit(std::uint64_t cache_key,
                           std::uint64_t routing_key) {
  HotStat& stat = hits_[cache_key];
  stat.routing_key = routing_key;
  return ++stat.count == options_.hot_threshold;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> FleetNode::hot_entries()
    const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
  for (const auto& [key, stat] : hits_) {
    if (stat.count >= options_.hot_threshold) {
      entries.emplace_back(key, stat.routing_key);
    }
  }
  std::sort(entries.begin(), entries.end());
  return entries;
}

}  // namespace netpart::fleet

#include "fleet/node.hpp"

#include <algorithm>

#include "analysis/race/annotations.hpp"

namespace netpart::fleet {

namespace {

// Fleet request latencies span cache hits (~100 us) to failover chains
// (hundreds of ms of RTO); one wide range keeps every outcome in-bucket.
constexpr double kLatencyLoUs = 0.0;
constexpr double kLatencyHiUs = 2.0e6;
constexpr std::size_t kLatencyBuckets = 1000;

}  // namespace

FleetNode::FleetNode(NodeId id, const std::vector<NodeId>& nodes,
                     SimTime now, const PeerTableOptions& peer_options,
                     const NodeOptions& options)
    : id_(id),
      options_(options),
      peers_(nodes, id, now, peer_options),
      cache_(options.cache_capacity, options.cache_shards),
      telemetry_(std::make_unique<obs::TelemetryRegistry>(
          /*enabled=*/options.tracing)),
      metrics_{telemetry_->counter("fleet.node.requests"),
               telemetry_->counter("fleet.node.forwards"),
               telemetry_->counter("fleet.node.hits"),
               telemetry_->counter("fleet.node.misses"),
               telemetry_->counter("fleet.node.serves"),
               telemetry_->latency("fleet.node.request_us", kLatencyLoUs,
                                   kLatencyHiUs, kLatencyBuckets)} {
  telemetry_->set_trace_seed(options.trace_seed,
                             static_cast<std::uint64_t>(id));
}

obs::TraceContext FleetNode::new_root() {
  if (!options_.tracing) return obs::TraceContext{};
  obs::TraceContext ctx;
  ctx.trace_id = telemetry_->next_trace_id();
  ctx.span_id = telemetry_->next_trace_id();
  ctx.parent_span_id = 0;
  return ctx;
}

obs::TraceContext FleetNode::child_of(const obs::TraceContext& parent) {
  if (!options_.tracing) return obs::TraceContext{};
  if (!parent.valid()) return new_root();
  obs::TraceContext ctx;
  ctx.trace_id = parent.trace_id;
  ctx.span_id = telemetry_->next_trace_id();
  ctx.parent_span_id = parent.span_id;
  return ctx;
}

bool FleetNode::observe_epoch(std::uint64_t epoch) {
  // npracer: gossip epoch and hot-key stats are per-node state, touched
  // only from this node's handlers on the simulator thread.  Quiet today;
  // flagged immediately if the fleet driver ever goes multi-threaded.
  NP_READ(&epoch_, "fleet.node.epoch");
  if (epoch <= epoch_) return false;
  NP_WRITE(&epoch_, "fleet.node.epoch");
  epoch_ = epoch;
  cache_.invalidate_before(epoch);
  NP_WRITE(&hits_, "fleet.node.hot_stats");
  hits_.clear();
  return true;
}

const HashRing& FleetNode::ring() {
  if (ring_version_ != peers_.version()) {
    ring_ = HashRing(peers_.ring_members(), options_.vnodes);
    ring_version_ = peers_.version();
  }
  return ring_;
}

bool FleetNode::record_hit(std::uint64_t cache_key,
                           std::uint64_t routing_key) {
  NP_WRITE(&hits_, "fleet.node.hot_stats");
  HotStat& stat = hits_[cache_key];
  stat.routing_key = routing_key;
  return ++stat.count == options_.hot_threshold;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> FleetNode::hot_entries()
    const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
  NP_READ(&hits_, "fleet.node.hot_stats");
  for (const auto& [key, stat] : hits_) {
    if (stat.count >= options_.hot_threshold) {
      entries.emplace_back(key, stat.routing_key);
    }
  }
  std::sort(entries.begin(), entries.end());
  return entries;
}

}  // namespace netpart::fleet

// One netpartd node of the fleet (see DESIGN.md §12).
//
// A FleetNode is the per-node slice of PR 2's partition service, rebuilt
// for the multi-node setting: its own sharded DecisionCache, its own view
// of the peers (PeerTable), its own HashRing built from that view, and its
// own availability epoch.  Nothing here is shared between nodes -- two
// nodes communicate only through MMPS messages the Fleet layer sends on
// the simulated network, so a partition or crash affects exactly what it
// would affect in a real deployment.
//
// Epochs: the node folds its *current* epoch into every cache key it
// computes, and adopting a newer epoch (observe_epoch) purges entries
// computed under older ones -- the same invalidate-by-construction
// contract the single-node service has, propagated by gossip instead of a
// shared feed.
//
// Hotness: the node counts cache hits per key while it serves as the
// key's owner; when a key's count crosses the hot threshold the Fleet
// layer pushes the decision to the key's replicas.  Counts reset on epoch
// adoption (stale heat is no reason to replicate stale decisions).
//
// Telemetry: each node owns a private TelemetryRegistry -- real fleets do
// not share a metrics process, and the merged export (fleet_telemetry.hpp)
// needs per-node lanes.  Counters are always on; span recording and trace
// id draws follow NodeOptions::tracing.  The node's span-id stream is
// seeded from (trace_seed, node id), so one fleet seed yields one
// deterministic fleet-wide id assignment.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fleet/hash_ring.hpp"
#include "fleet/peer_table.hpp"
#include "obs/telemetry.hpp"
#include "svc/cache.hpp"
#include "svc/request.hpp"

namespace netpart::fleet {

struct NodeOptions {
  std::size_t cache_capacity = 512;
  int cache_shards = 8;
  /// Owner-side hits at which an entry is pushed to its replicas.
  int hot_threshold = 3;
  /// Virtual nodes per node on this node's HashRing.
  int vnodes = 16;
  /// Record spans (and draw trace ids) into the node's registry; counters
  /// stay on either way.  The Fleet ctor also turns this on when the
  /// process-wide obs registry has tracing enabled.
  bool tracing = false;
  /// Seed of the node's deterministic span-id stream (stream = node id).
  std::uint64_t trace_seed = 1;
};

class FleetNode {
 public:
  FleetNode(NodeId id, const std::vector<NodeId>& nodes, SimTime now,
            const PeerTableOptions& peer_options,
            const NodeOptions& options);

  NodeId id() const { return id_; }
  svc::DecisionCache& cache() { return cache_; }
  const svc::DecisionCache& cache() const { return cache_; }
  PeerTable& peers() { return peers_; }
  const PeerTable& peers() const { return peers_; }
  std::uint64_t epoch() const { return epoch_; }

  /// Adopt `epoch` when it is newer than the node's: bumps the local
  /// epoch, purges stale cache entries, resets hotness.  Returns true
  /// when adopted.
  bool observe_epoch(std::uint64_t epoch);

  /// This node's routing view, rebuilt lazily whenever its peer table
  /// records a health transition.
  const HashRing& ring();

  /// Owner-side hit count for one cache key, plus the epoch-independent
  /// routing key that placed it here (the audit needs the routing key to
  /// recompute the entry's replicas after a crash).
  struct HotStat {
    int count = 0;
    std::uint64_t routing_key = 0;
  };

  /// Record one owner-side hit on `cache_key`; returns true exactly when
  /// the count crosses the hot threshold (the caller replicates then,
  /// once).
  bool record_hit(std::uint64_t cache_key, std::uint64_t routing_key);

  /// (cache key, routing key) pairs this node has seen at least
  /// `hot_threshold` owner-side hits on under the current epoch (the set
  /// the failover audit checks replicas against).  Sorted by cache key.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> hot_entries() const;

  const std::unordered_map<std::uint64_t, HotStat>& hit_counts() const {
    return hits_;
  }

  /// This node's private telemetry (merged across the fleet by
  /// FleetTelemetry).  Span recording follows NodeOptions::tracing.
  obs::TelemetryRegistry& telemetry() { return *telemetry_; }
  const obs::TelemetryRegistry& telemetry() const { return *telemetry_; }
  bool tracing() const { return options_.tracing; }

  /// New root context for a request entering the fleet at this node.
  /// Invalid when tracing is off: the untraced path draws no ids, so
  /// enabling tracing never perturbs an untraced run's id-free exports.
  obs::TraceContext new_root();
  /// Child context under `parent` (a fresh root when `parent` is invalid
  /// -- a traced node never emits orphan ids).
  obs::TraceContext child_of(const obs::TraceContext& parent);

  /// Hot-path metric handles, resolved once at construction.
  struct Metrics {
    obs::Counter& requests;    ///< submits entering at this node
    obs::Counter& forwards;    ///< forwards this node relayed out
    obs::Counter& hits;        ///< cache hits served here
    obs::Counter& misses;      ///< cold computes served here
    obs::Counter& serves;      ///< decisions produced here (hit or cold)
    obs::LatencyHistogram& request_us;  ///< entry-side request latency
  };
  Metrics& metrics() { return metrics_; }

 private:
  NodeId id_;
  NodeOptions options_;
  PeerTable peers_;
  svc::DecisionCache cache_;
  std::uint64_t epoch_ = 1;
  std::unordered_map<std::uint64_t, HotStat> hits_;
  HashRing ring_;
  std::uint64_t ring_version_ = 0;  ///< peers_.version() the ring matches
  std::unique_ptr<obs::TelemetryRegistry> telemetry_;
  Metrics metrics_;
};

}  // namespace netpart::fleet

#include "fleet/peer_table.hpp"

#include <algorithm>

#include "analysis/race/annotations.hpp"
#include "util/error.hpp"

namespace netpart::fleet {

const char* to_string(PeerHealth health) {
  switch (health) {
    case PeerHealth::Alive:
      return "alive";
    case PeerHealth::Suspect:
      return "suspect";
    case PeerHealth::Dead:
      return "dead";
  }
  return "unknown";
}

PeerTable::PeerTable(std::vector<NodeId> nodes, NodeId self, SimTime now,
                     PeerTableOptions options)
    : self_(self), options_(options) {
  NP_REQUIRE(!nodes.empty(), "peer table needs at least one node");
  NP_REQUIRE(options.suspect_after > SimTime::zero() &&
                 options.dead_after > options.suspect_after,
             "peer timeouts must satisfy 0 < suspect_after < dead_after");
  std::sort(nodes.begin(), nodes.end());
  NP_REQUIRE(std::adjacent_find(nodes.begin(), nodes.end()) == nodes.end(),
             "peer table nodes must be distinct");
  NP_REQUIRE(std::binary_search(nodes.begin(), nodes.end(), self),
             "self must be one of the nodes");
  peers_.reserve(nodes.size());
  for (NodeId id : nodes) {
    peers_.push_back(Peer{id, PeerHealth::Alive, now});
  }
}

PeerTable::Peer& PeerTable::find(NodeId peer) {
  const auto it = std::lower_bound(
      peers_.begin(), peers_.end(), peer,
      [](const Peer& p, NodeId id) { return p.id < id; });
  NP_REQUIRE(it != peers_.end() && it->id == peer,
             "unknown peer id in peer table");
  return *it;
}

const PeerTable::Peer& PeerTable::find(NodeId peer) const {
  return const_cast<PeerTable*>(this)->find(peer);
}

void PeerTable::transition(Peer& peer, PeerHealth next) {
  if (peer.health == next) return;
  // npracer: each fleet node owns its table and mutates it only from that
  // node's event handlers.  Single-threaded in the simulator, so these
  // stay quiet; they become load-bearing if the fleet is ever threaded.
  NP_WRITE(&peers_, "fleet.peer_table.peers");
  peer.health = next;
  ++version_;
}

void PeerTable::record_heartbeat(NodeId peer, SimTime now) {
  Peer& p = find(peer);
  if (p.health == PeerHealth::Dead) return;  // fail-stop: no resurrection
  NP_WRITE(&peers_, "fleet.peer_table.peers");
  p.heard = std::max(p.heard, now);
  transition(p, PeerHealth::Alive);
}

void PeerTable::report_dead(NodeId peer) {
  if (peer == self_) return;  // a node never declares itself dead
  transition(find(peer), PeerHealth::Dead);
}

void PeerTable::tick(SimTime now) {
  NP_WRITE(&peers_, "fleet.peer_table.peers");
  for (Peer& p : peers_) {
    if (p.id == self_ || p.health == PeerHealth::Dead) continue;
    const SimTime silent = now - p.heard;
    if (silent >= options_.dead_after) {
      transition(p, PeerHealth::Dead);
    } else if (silent >= options_.suspect_after) {
      transition(p, PeerHealth::Suspect);
    }
  }
}

PeerHealth PeerTable::health(NodeId peer) const {
  NP_READ(&peers_, "fleet.peer_table.peers");
  return find(peer).health;
}

SimTime PeerTable::last_heard(NodeId peer) const {
  NP_READ(&peers_, "fleet.peer_table.peers");
  return find(peer).heard;
}

std::vector<NodeId> PeerTable::ring_members() const {
  NP_READ(&peers_, "fleet.peer_table.peers");
  std::vector<NodeId> members;
  members.reserve(peers_.size());
  for (const Peer& p : peers_) {
    if (p.health != PeerHealth::Dead) members.push_back(p.id);
  }
  return members;
}

int PeerTable::alive_count() const {
  int n = 0;
  for (const Peer& p : peers_) n += p.health == PeerHealth::Alive ? 1 : 0;
  return n;
}

int PeerTable::dead_count() const {
  int n = 0;
  for (const Peer& p : peers_) n += p.health == PeerHealth::Dead ? 1 : 0;
  return n;
}

}  // namespace netpart::fleet

// Per-node peer health view (see DESIGN.md §12).
//
// Each fleet node keeps its own PeerTable: the last simulated time it heard
// a heartbeat from every peer, classified into alive / suspect / dead by
// two timeouts.  Two inputs feed it:
//
//   * heartbeats over MMPS channels -- a crashed host stops sending, the
//     simulator silently drops anything addressed to/from it (datagram
//     semantics), and silence is the only failure signal;
//   * dead-peer reports -- the PR 1 fault-tolerant availability token ring
//     already proves which managers are unreachable (ProtocolResult::dead);
//     report_dead() folds those verdicts in immediately, skipping the
//     suspicion window.
//
// The table is deliberately monotone for fail-stop faults: dead is
// terminal (the sim's crashed hosts never return), while suspect recovers
// to alive on the next heartbeat -- a slow or partitioned peer is given
// the benefit of the doubt until dead_after elapses.  `version()` bumps on
// every health transition so the owner node knows when to rebuild its
// HashRing without diffing the whole table.
#pragma once

#include <cstdint>
#include <vector>

#include "fleet/hash_ring.hpp"
#include "util/time.hpp"

namespace netpart::fleet {

enum class PeerHealth : std::uint8_t {
  Alive,    ///< heard from within suspect_after
  Suspect,  ///< silent for suspect_after, still routed to
  Dead,     ///< silent for dead_after or reported dead; terminal
};

const char* to_string(PeerHealth health);

struct PeerTableOptions {
  /// Silence before a peer turns suspect.  Must exceed the heartbeat
  /// period or healthy peers flap (npcheck NP-F004 guards the configs).
  SimTime suspect_after = SimTime::millis(300);
  /// Silence before a suspect peer is declared dead and leaves the ring.
  SimTime dead_after = SimTime::millis(900);
};

class PeerTable {
 public:
  /// `self` starts (and stays) alive; every other node starts alive as of
  /// `now` -- the fleet bootstraps optimistically and lets the timeouts
  /// find the truth.
  PeerTable(std::vector<NodeId> nodes, NodeId self, SimTime now,
            PeerTableOptions options = {});

  NodeId self() const { return self_; }

  /// A heartbeat (or any authenticated traffic) from `peer` arrived at
  /// `now`.  Revives a suspect; ignored for a dead peer (fail-stop).
  void record_heartbeat(NodeId peer, SimTime now);

  /// Fold in a token-ring dead verdict: immediately Dead, no suspicion
  /// window.  Idempotent.
  void report_dead(NodeId peer);

  /// Advance health states to `now` (alive -> suspect -> dead as the
  /// timeouts expire).  Called from the node's periodic timer.
  void tick(SimTime now);

  PeerHealth health(NodeId peer) const;
  SimTime last_heard(NodeId peer) const;

  /// Ring membership: every node not known dead (self included).  Suspects
  /// stay in the ring -- evicting on first suspicion would reshuffle the
  /// key space on every transient hiccup.
  std::vector<NodeId> ring_members() const;

  int alive_count() const;
  int dead_count() const;

  /// Bumps on every health transition; the owner rebuilds its HashRing
  /// when the version it built against goes stale.
  std::uint64_t version() const { return version_; }

 private:
  struct Peer {
    NodeId id;
    PeerHealth health = PeerHealth::Alive;
    SimTime heard = SimTime::zero();
  };

  Peer& find(NodeId peer);
  const Peer& find(NodeId peer) const;
  void transition(Peer& peer, PeerHealth next);

  std::vector<Peer> peers_;  // ascending by id
  NodeId self_;
  PeerTableOptions options_;
  std::uint64_t version_ = 1;
};

}  // namespace netpart::fleet

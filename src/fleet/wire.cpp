#include "fleet/wire.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/error.hpp"

namespace netpart::fleet {

namespace {

template <typename T>
void put_le(std::vector<std::byte>& out, T v) {
  static_assert(std::is_unsigned_v<T>);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

}  // namespace

WireWriter& WireWriter::u8(std::uint8_t v) {
  bytes_.push_back(static_cast<std::byte>(v));
  return *this;
}

WireWriter& WireWriter::u32(std::uint32_t v) {
  put_le(bytes_, v);
  return *this;
}

WireWriter& WireWriter::u64(std::uint64_t v) {
  put_le(bytes_, v);
  return *this;
}

WireWriter& WireWriter::i32(std::int32_t v) {
  put_le(bytes_, static_cast<std::uint32_t>(v));
  return *this;
}

WireWriter& WireWriter::i64(std::int64_t v) {
  put_le(bytes_, static_cast<std::uint64_t>(v));
  return *this;
}

WireWriter& WireWriter::f64(double v) {
  // Mirror Fnv1a::f64's canonicalisation so value-equal doubles encode
  // identically (-0.0 -> +0.0, every NaN -> one quiet NaN).
  if (v == 0.0) v = 0.0;
  if (std::isnan(v)) v = std::numeric_limits<double>::quiet_NaN();
  put_le(bytes_, std::bit_cast<std::uint64_t>(v));
  return *this;
}

WireWriter& WireWriter::str(std::string_view s) {
  u64(s.size());
  for (char c : s) bytes_.push_back(static_cast<std::byte>(c));
  return *this;
}

std::uint8_t WireReader::u8() {
  NP_REQUIRE(pos_ + 1 <= bytes_.size(), "truncated fleet message");
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t WireReader::u32() {
  NP_REQUIRE(pos_ + 4 <= bytes_.size(), "truncated fleet message");
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  NP_REQUIRE(pos_ + 8 <= bytes_.size(), "truncated fleet message");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::int32_t WireReader::i32() { return static_cast<std::int32_t>(u32()); }
std::int64_t WireReader::i64() { return static_cast<std::int64_t>(u64()); }
double WireReader::f64() { return std::bit_cast<double>(u64()); }

std::string WireReader::str() {
  const std::uint64_t len = u64();
  NP_REQUIRE(pos_ + len <= bytes_.size(), "truncated fleet message");
  std::string s(len, '\0');
  std::memcpy(s.data(), bytes_.data() + pos_, len);
  pos_ += len;
  return s;
}

// --- message bodies -------------------------------------------------------

std::vector<std::byte> encode_announce(const EpochAnnounce& announce) {
  WireWriter w;
  w.i32(announce.from).u64(announce.epoch);
  return w.take();
}

EpochAnnounce decode_announce(const std::vector<std::byte>& bytes) {
  WireReader r(bytes);
  EpochAnnounce a;
  a.from = r.i32();
  a.epoch = r.u64();
  return a;
}

namespace {

void encode_request_into(WireWriter& w, const svc::PartitionRequest& req) {
  w.u8(static_cast<std::uint8_t>(req.kind))
      .str(req.spec)
      .i64(req.n)
      .i32(req.iterations)
      .u8(req.options.search == PartitionOptions::Search::Binary ? 0 : 1)
      .u8(req.options.stop_at_partial_cluster ? 1 : 0)
      .u64(req.rate_milli.size());
  for (std::int32_t rate : req.rate_milli) w.i32(rate);
}

svc::PartitionRequest decode_request_from(WireReader& r) {
  svc::PartitionRequest req;
  req.kind = static_cast<svc::PartitionRequest::Kind>(r.u8());
  req.spec = r.str();
  req.n = r.i64();
  req.iterations = r.i32();
  req.options.search = r.u8() == 0 ? PartitionOptions::Search::Binary
                                   : PartitionOptions::Search::Linear;
  req.options.stop_at_partial_cluster = r.u8() != 0;
  const std::uint64_t rates = r.u64();
  req.rate_milli.reserve(rates);
  for (std::uint64_t i = 0; i < rates; ++i) req.rate_milli.push_back(r.i32());
  return req;
}

}  // namespace

void encode_trace_context_into(WireWriter& w, const obs::TraceContext& ctx) {
  if (!ctx.valid()) {
    w.u64(0);
    return;
  }
  w.u64(24)  // three u64 ids follow
      .u64(ctx.trace_id)
      .u64(ctx.span_id)
      .u64(ctx.parent_span_id);
}

obs::TraceContext decode_trace_context_from(WireReader& r) {
  const std::uint64_t len = r.u64();
  if (len == 0) return obs::TraceContext{};
  NP_REQUIRE(len == 24, "malformed trace context length");
  obs::TraceContext ctx;
  ctx.trace_id = r.u64();
  ctx.span_id = r.u64();
  ctx.parent_span_id = r.u64();
  return ctx;
}

std::vector<std::byte> encode_forward(const ForwardEnvelope& envelope) {
  WireWriter w;
  w.i32(envelope.from).u64(envelope.routing_key).i32(envelope.reply_tag);
  encode_trace_context_into(w, envelope.trace);
  encode_request_into(w, envelope.request);
  return w.take();
}

ForwardEnvelope decode_forward(const std::vector<std::byte>& bytes) {
  WireReader r(bytes);
  ForwardEnvelope e;
  e.from = r.i32();
  e.routing_key = r.u64();
  e.reply_tag = r.i32();
  e.trace = decode_trace_context_from(r);
  e.request = decode_request_from(r);
  NP_REQUIRE(r.exhausted(), "trailing bytes in fleet forward");
  return e;
}

std::vector<std::byte> encode_replicate(const ReplicateEnvelope& envelope) {
  WireWriter w;
  encode_trace_context_into(w, envelope.trace);
  encode_decision_into(w, envelope.decision);
  return w.take();
}

ReplicateEnvelope decode_replicate(const std::vector<std::byte>& bytes) {
  WireReader r(bytes);
  ReplicateEnvelope e;
  e.trace = decode_trace_context_from(r);
  e.decision = decode_decision_from(r);
  NP_REQUIRE(r.exhausted(), "trailing bytes in fleet replicate");
  return e;
}

void encode_decision_into(WireWriter& w, const svc::PartitionDecision& d) {
  w.u64(d.key).u64(d.epoch).f64(d.t_c_ms).u64(d.evaluations);
  const std::vector<std::int64_t>& per_rank = d.partition.values();
  w.u64(per_rank.size());
  for (std::int64_t a : per_rank) w.i64(a);
  w.u64(d.config.size());
  for (int p : d.config) w.i32(p);
  w.u64(d.placement.size());
  for (const ProcessorRef& ref : d.placement) {
    w.i32(ref.cluster).i32(ref.index);
  }
}

svc::PartitionDecision decode_decision_from(WireReader& r) {
  svc::PartitionDecision d;
  d.key = r.u64();
  d.epoch = r.u64();
  d.t_c_ms = r.f64();
  d.evaluations = r.u64();
  const std::uint64_t ranks = r.u64();
  std::vector<std::int64_t> per_rank;
  per_rank.reserve(ranks);
  for (std::uint64_t i = 0; i < ranks; ++i) per_rank.push_back(r.i64());
  d.partition = PartitionVector(std::move(per_rank));
  const std::uint64_t clusters = r.u64();
  d.config.reserve(clusters);
  for (std::uint64_t i = 0; i < clusters; ++i) d.config.push_back(r.i32());
  const std::uint64_t placed = r.u64();
  d.placement.reserve(placed);
  for (std::uint64_t i = 0; i < placed; ++i) {
    ProcessorRef ref;
    ref.cluster = r.i32();
    ref.index = r.i32();
    d.placement.push_back(ref);
  }
  return d;
}

std::vector<std::byte> encode_decision(const svc::PartitionDecision& d) {
  WireWriter w;
  encode_decision_into(w, d);
  return w.take();
}

svc::PartitionDecision decode_decision(const std::vector<std::byte>& bytes) {
  WireReader r(bytes);
  svc::PartitionDecision d = decode_decision_from(r);
  NP_REQUIRE(r.exhausted(), "trailing bytes in fleet decision");
  return d;
}

}  // namespace netpart::fleet

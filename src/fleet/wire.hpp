// Wire format of the fleet control plane (see DESIGN.md §12).
//
// Fleet messages ride MMPS payloads, so -- like every payload in this
// system -- they are explicit little-endian byte sequences with
// length-prefixed variable fields, not memcpy'd structs: the bytes a node
// emits must decode identically on any peer regardless of host endianness
// or width, and the *size* of the encoding is what the simulator charges
// the channel for, so encoded size is part of the modelled cost.
//
// Four messages:
//   Heartbeat   {from, epoch}               -- liveness + piggybacked epoch
//   Gossip      {from, epoch}               -- ring-wise epoch propagation
//   Forward     {key, reply_tag, ctx, req}  -- a request relayed to its owner
//   Replicate   {ctx, decision}             -- a hot decision pushed to
//                                              replicas
//
// Forward replies reuse the Replicate decision encoding plus a status
// byte.  Decisions travel with partition/config/placement so a replica's
// copy is served verbatim after a failover, not recomputed.
//
// Trace context (DESIGN.md §13) rides Forward and Replicate as a
// length-prefixed field: u64 length (0 = no context, 24 = present)
// followed by trace_id/span_id/parent_span_id as little-endian u64s.  Any
// other length is a peer bug and decoding throws InvalidArgument.  The
// 8-or-32 extra bytes are part of the encoded payload, so the simulator
// charges the channel for them like any other header -- tracing has a
// modelled wire cost, not a free side channel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "fleet/hash_ring.hpp"
#include "obs/trace_context.hpp"
#include "svc/cache.hpp"
#include "svc/request.hpp"

namespace netpart::fleet {

/// Little-endian byte writer mirroring util/hash's serialisation rules
/// (fixed widths, length-prefixed strings/vectors).
class WireWriter {
 public:
  WireWriter& u8(std::uint8_t v);
  WireWriter& u32(std::uint32_t v);
  WireWriter& u64(std::uint64_t v);
  WireWriter& i32(std::int32_t v);
  WireWriter& i64(std::int64_t v);
  WireWriter& f64(double v);
  WireWriter& str(std::string_view s);

  std::vector<std::byte> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::byte> bytes_;
};

/// Bounds-checked reader; throws InvalidArgument on truncated payloads
/// (a malformed fleet message is a peer bug, not a crash).
class WireReader {
 public:
  explicit WireReader(const std::vector<std::byte>& bytes)
      : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  std::int64_t i64();
  double f64();
  std::string str();

  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  const std::vector<std::byte>& bytes_;
  std::size_t pos_ = 0;
};

// --- message bodies -------------------------------------------------------

/// Heartbeat and gossip share one body: the sender and the newest
/// availability epoch it has observed.
struct EpochAnnounce {
  NodeId from = -1;
  std::uint64_t epoch = 0;
};

std::vector<std::byte> encode_announce(const EpochAnnounce& announce);
EpochAnnounce decode_announce(const std::vector<std::byte>& bytes);

/// Length-prefixed trace-context field (0 = absent, 24 = three u64 ids).
/// Decoding throws InvalidArgument on any other length prefix.
void encode_trace_context_into(WireWriter& w, const obs::TraceContext& ctx);
obs::TraceContext decode_trace_context_from(WireReader& r);

/// A request relayed from the node a client happened to contact to the
/// key's owner.  `reply_tag` is the per-forward MMPS tag the relay waits
/// on; `routing_key` pins both sides to the same ring decision.  `trace`
/// carries the relay-side forward span's context so the owner's serve
/// span joins the same trace as a true child.
struct ForwardEnvelope {
  NodeId from = -1;
  std::uint64_t routing_key = 0;
  std::int32_t reply_tag = 0;
  obs::TraceContext trace;
  svc::PartitionRequest request;
};

std::vector<std::byte> encode_forward(const ForwardEnvelope& envelope);
ForwardEnvelope decode_forward(const std::vector<std::byte>& bytes);

/// A hot decision pushed to a replica, parented under the owner's serve
/// span via `trace`.
struct ReplicateEnvelope {
  obs::TraceContext trace;
  svc::PartitionDecision decision;
};

std::vector<std::byte> encode_replicate(const ReplicateEnvelope& envelope);
ReplicateEnvelope decode_replicate(const std::vector<std::byte>& bytes);

/// A full decision (replication push, or the payload of a forward reply).
std::vector<std::byte> encode_decision(const svc::PartitionDecision& d);
svc::PartitionDecision decode_decision(const std::vector<std::byte>& bytes);
void encode_decision_into(WireWriter& w, const svc::PartitionDecision& d);
svc::PartitionDecision decode_decision_from(WireReader& r);

}  // namespace netpart::fleet

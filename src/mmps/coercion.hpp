// Data-format coercion (the XDR-style conversion layer of MMPS).
//
// Messages travel in a canonical network representation (big-endian, like
// XDR).  Functionally the conversion is exact and format-independent --
// decode(encode(x)) == x for any trivially copyable scalar -- while the
// *cost* of converting depends on the machines involved and is modelled by
// the simulator's coerce_per_byte / the calibrated T_coerce function.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "net/processor.hpp"
#include "util/error.hpp"

namespace netpart::mmps {

/// Byte-swap a single scalar value.
template <typename T>
T byteswap_value(T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  for (std::size_t i = 0; i < sizeof(T) / 2; ++i) {
    std::swap(bytes[i], bytes[sizeof(T) - 1 - i]);
  }
  T out;
  std::memcpy(&out, bytes, sizeof(T));
  return out;
}

/// The data format of the machine running this process.
constexpr DataFormat simulation_host_format() {
  return std::endian::native == std::endian::big ? DataFormat::BigEndian
                                                 : DataFormat::LittleEndian;
}

/// Encode a scalar array into canonical network (big-endian) bytes.
template <typename T>
std::vector<std::byte> encode_array(std::span<const T> values) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> out(values.size() * sizeof(T));
  constexpr bool kSwap =
      simulation_host_format() == DataFormat::LittleEndian;
  for (std::size_t i = 0; i < values.size(); ++i) {
    T v = values[i];
    if constexpr (kSwap) {
      v = byteswap_value(v);
    }
    std::memcpy(out.data() + i * sizeof(T), &v, sizeof(T));
  }
  return out;
}

/// Decode canonical network bytes back into host scalars.
template <typename T>
std::vector<T> decode_array(std::span<const std::byte> bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  NP_REQUIRE(bytes.size() % sizeof(T) == 0,
             "payload size is not a multiple of the element size");
  std::vector<T> out(bytes.size() / sizeof(T));
  constexpr bool kSwap =
      simulation_host_format() == DataFormat::LittleEndian;
  for (std::size_t i = 0; i < out.size(); ++i) {
    T v;
    std::memcpy(&v, bytes.data() + i * sizeof(T), sizeof(T));
    if constexpr (kSwap) {
      v = byteswap_value(v);
    }
    out[i] = v;
  }
  return out;
}

}  // namespace netpart::mmps

#include "mmps/manager_protocol.hpp"

#include <memory>

#include "mmps/coercion.hpp"
#include "mmps/system.hpp"
#include "util/error.hpp"

namespace netpart::mmps {

namespace {
constexpr std::int32_t kRingTag = -101;
constexpr std::int32_t kResultTag = -102;

ProcessorRef manager_host(ClusterId c) { return ProcessorRef{c, 0}; }
}  // namespace

ProtocolResult run_availability_protocol(
    sim::NetSim& net, const std::vector<ClusterManager>& managers) {
  const Network& network = net.network();
  NP_REQUIRE(static_cast<int>(managers.size()) == network.num_clusters(),
             "need exactly one manager per cluster");
  NP_REQUIRE(net.engine().idle(), "engine must be idle at protocol start");
  const int k = network.num_clusters();
  const std::uint64_t messages_before = net.messages_delivered();
  const SimTime start = net.engine().now();

  ProtocolResult result;
  result.snapshot.available.assign(static_cast<std::size_t>(k), 0);

  if (k == 1) {
    // Single manager: no messages needed.
    result.snapshot.available[0] = managers[0].available(network);
    result.elapsed = SimTime::zero();
    return result;
  }

  System mmps(net);

  // Each manager counts its own availability locally (host time for the
  // threshold scan is negligible next to messaging and is folded into the
  // send initiation the simulator already charges).
  std::vector<std::int32_t> own(static_cast<std::size_t>(k));
  for (ClusterId c = 0; c < k; ++c) {
    own[static_cast<std::size_t>(c)] =
        managers[static_cast<std::size_t>(c)].available(network);
  }

  // Ring accumulation: manager c receives the partial vector from c-1,
  // fills in its slot, and forwards to c+1.  Manager 0 starts the token
  // and receives the complete vector from manager k-1.
  for (ClusterId c = 1; c < k; ++c) {
    mmps.recv(manager_host(c), manager_host(c - 1), kRingTag,
              [&mmps, &own, c, k](Message msg) {
                std::vector<std::int32_t> counts =
                    decode_array<std::int32_t>(msg.payload);
                counts[static_cast<std::size_t>(c)] =
                    own[static_cast<std::size_t>(c)];
                const ProcessorRef next =
                    c + 1 < k ? manager_host(c + 1) : manager_host(0);
                const std::int32_t tag =
                    c + 1 < k ? kRingTag : kResultTag;
                mmps.send(manager_host(c), next, tag,
                          encode_array(std::span<const std::int32_t>(
                              counts)));
              });
  }

  bool done = false;
  mmps.recv(manager_host(0), manager_host(k - 1), kResultTag,
            [&](Message msg) {
              const std::vector<std::int32_t> counts =
                  decode_array<std::int32_t>(msg.payload);
              for (std::size_t i = 0; i < counts.size(); ++i) {
                result.snapshot.available[i] = counts[i];
              }
              done = true;
              // Broadcast the final snapshot so every manager can serve
              // placement queries (fire-and-forget).
              for (ClusterId c = 1; c < k; ++c) {
                mmps.send(manager_host(0), manager_host(c), kResultTag,
                          encode_array(std::span<const std::int32_t>(
                              counts)));
              }
            });
  for (ClusterId c = 1; c < k; ++c) {
    mmps.recv(manager_host(c), manager_host(0), kResultTag,
              [](Message) { /* manager caches the snapshot */ });
  }

  // Kick off the ring.
  std::vector<std::int32_t> initial(static_cast<std::size_t>(k), 0);
  initial[0] = own[0];
  mmps.send(manager_host(0), manager_host(1), kRingTag,
            encode_array(std::span<const std::int32_t>(initial)));

  net.engine().run();
  NP_ASSERT(done);
  NP_ASSERT(mmps.unclaimed() == 0);
  result.elapsed = net.engine().now() - start;
  result.messages = net.messages_delivered() - messages_before;
  return result;
}

}  // namespace netpart::mmps

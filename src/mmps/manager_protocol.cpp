#include "mmps/manager_protocol.hpp"

#include <algorithm>
#include <memory>

#include "analysis/race/annotations.hpp"
#include "mmps/coercion.hpp"
#include "mmps/system.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"

namespace netpart::mmps {

namespace {
constexpr std::int32_t kRingTag = -101;
constexpr std::int32_t kResultTag = -102;
constexpr std::int32_t kAckTag = -103;
constexpr std::int32_t kBcastTag = -104;

ProcessorRef manager_host(ClusterId c) { return ProcessorRef{c, 0}; }

/// Shared state of one fault-tolerant protocol run.  Handlers capture it
/// via shared_ptr; `done` neuters every callback that fires after the run
/// finished or the budget expired.  The token payload genuinely rides the
/// messages (counts plus dead flags as one int32 array of length 2k);
/// receivers merge it so the initiator's view is built from real bytes.
struct Ring : std::enable_shared_from_this<Ring> {
  System mmps;
  std::vector<std::int32_t> own;
  std::vector<std::int32_t> counts;
  std::vector<char> dead;
  std::vector<char> got_token;
  bool done = false;
  bool completed = false;
  ProtocolOptions opts;
  ClusterId k;

  Ring(sim::NetSim& net, const ProtocolOptions& options, ClusterId clusters)
      : mmps(net),
        own(static_cast<std::size_t>(clusters), 0),
        counts(static_cast<std::size_t>(clusters), 0),
        dead(static_cast<std::size_t>(clusters), 0),
        got_token(static_cast<std::size_t>(clusters), 0),
        opts(options),
        k(clusters) {}

  std::vector<std::byte> payload() const {
    std::vector<std::int32_t> buf = counts;
    buf.reserve(counts.size() * 2);
    for (char d : dead) buf.push_back(d);
    return encode_array(std::span<const std::int32_t>(buf));
  }

  void merge(const Message& msg) {
    // npracer: all ring-state mutation happens in sim-engine callbacks.
    // Single-threaded today (always happens-before), but the annotations
    // light up the moment anyone drives the engine from multiple threads.
    NP_WRITE(&counts, "mmps.ring.state");
    const std::vector<std::int32_t> buf =
        decode_array<std::int32_t>(msg.payload);
    NP_ASSERT(static_cast<ClusterId>(buf.size()) == 2 * k);
    for (ClusterId c = 0; c < k; ++c) {
      const auto i = static_cast<std::size_t>(c);
      counts[i] = std::max(counts[i], buf[i]);
      dead[i] = static_cast<char>(dead[i] |
                                  buf[static_cast<std::size_t>(k + c)]);
    }
  }

  /// Next ring stop after position `after` as seen from `holder`,
  /// skipping managers already known dead; position 0 means "return the
  /// result to the initiator".
  ClusterId next_target(ClusterId after) const {
    ClusterId t = (after + 1) % k;
    while (t != 0 && dead[static_cast<std::size_t>(t)]) {
      t = (t + 1) % k;
    }
    return t;
  }

  /// Send the token from `holder` to `target` (attempt counts up to
  /// opts.max_attempts); every hop is acknowledged, and an unacknowledged
  /// successor is retried, then declared dead and skipped.
  void send_token(ClusterId holder, ClusterId target, int attempt) {
    if (done) return;
    if (attempt > 0) {
      static obs::Counter& retries =
          obs::TelemetryRegistry::global().counter("mmps.token_retries");
      retries.add(1);
    }
    const std::int32_t tag = target == 0 ? kResultTag : kRingTag;
    mmps.send(manager_host(holder), manager_host(target), tag, payload());
    auto self = shared_from_this();
    mmps.recv_with_timeout(
        manager_host(holder), manager_host(target), kAckTag,
        opts.ack_timeout,
        [self](Message) {
          // Hop acknowledged; the successor carries the ring forward.
        },
        [self, holder, target, attempt] {
          if (self->done) return;
          if (attempt + 1 < self->opts.max_attempts) {
            self->send_token(holder, target, attempt + 1);
            return;
          }
          NP_WRITE(&self->counts, "mmps.ring.state");
          self->dead[static_cast<std::size_t>(target)] = 1;
          self->counts[static_cast<std::size_t>(target)] = 0;
          if (target == 0) {
            // The initiator itself never acked -- nothing left to try;
            // the budget loop reports the run as incomplete.
            return;
          }
          self->send_token(holder, self->next_target(target), 0);
        });
  }

  /// Arm manager `c` to accept the token from whichever predecessor
  /// survives.  Re-armed after each receipt so retransmitted duplicates
  /// are absorbed (and re-acked, quieting a retrying predecessor).
  void post_token_recv(ClusterId c) {
    auto self = shared_from_this();
    mmps.recv_any(manager_host(c), kRingTag, [self, c](Message msg) {
      if (self->done) return;
      self->mmps.send(manager_host(c), msg.source, kAckTag, {});
      self->post_token_recv(c);
      const auto i = static_cast<std::size_t>(c);
      if (self->got_token[i]) return;  // duplicate: ack was enough
      NP_WRITE(&self->counts, "mmps.ring.state");
      self->got_token[i] = 1;
      self->merge(msg);
      self->counts[i] = self->own[i];
      self->send_token(c, self->next_target(c), 0);
    });
  }

  /// Arm the initiator for the completed vector coming off the ring.
  void post_result_recv() {
    auto self = shared_from_this();
    mmps.recv_any(manager_host(0), kResultTag, [self](Message msg) {
      if (self->done) return;
      self->mmps.send(manager_host(0), msg.source, kAckTag, {});
      self->merge(msg);
      NP_WRITE(&self->counts, "mmps.ring.state");
      self->done = true;
      self->completed = true;
      // Broadcast the final snapshot to the surviving managers
      // (fire-and-forget, as in the benign protocol).
      for (ClusterId c = 1; c < self->k; ++c) {
        if (self->dead[static_cast<std::size_t>(c)]) continue;
        self->mmps.send(manager_host(0), manager_host(c), kBcastTag,
                        self->payload());
      }
    });
  }
};
}  // namespace

ProtocolResult run_availability_protocol(
    sim::NetSim& net, const std::vector<ClusterManager>& managers) {
  const Network& network = net.network();
  NP_REQUIRE(static_cast<int>(managers.size()) == network.num_clusters(),
             "need exactly one manager per cluster");
  NP_REQUIRE(net.engine().idle(), "engine must be idle at protocol start");
  const int k = network.num_clusters();
  const std::uint64_t messages_before = net.messages_delivered();
  const SimTime start = net.engine().now();

  ProtocolResult result;
  result.snapshot.available.assign(static_cast<std::size_t>(k), 0);

  if (k == 1) {
    // Single manager: no messages needed.
    result.snapshot.available[0] = managers[0].available(network);
    result.elapsed = SimTime::zero();
    return result;
  }

  System mmps(net);

  // Each manager counts its own availability locally (host time for the
  // threshold scan is negligible next to messaging and is folded into the
  // send initiation the simulator already charges).
  std::vector<std::int32_t> own(static_cast<std::size_t>(k));
  for (ClusterId c = 0; c < k; ++c) {
    own[static_cast<std::size_t>(c)] =
        managers[static_cast<std::size_t>(c)].available(network);
  }

  // Ring accumulation: manager c receives the partial vector from c-1,
  // fills in its slot, and forwards to c+1.  Manager 0 starts the token
  // and receives the complete vector from manager k-1.
  for (ClusterId c = 1; c < k; ++c) {
    mmps.recv(manager_host(c), manager_host(c - 1), kRingTag,
              [&mmps, &own, c, k](Message msg) {
                std::vector<std::int32_t> counts =
                    decode_array<std::int32_t>(msg.payload);
                counts[static_cast<std::size_t>(c)] =
                    own[static_cast<std::size_t>(c)];
                const ProcessorRef next =
                    c + 1 < k ? manager_host(c + 1) : manager_host(0);
                const std::int32_t tag =
                    c + 1 < k ? kRingTag : kResultTag;
                mmps.send(manager_host(c), next, tag,
                          encode_array(std::span<const std::int32_t>(
                              counts)));
              });
  }

  bool done = false;
  mmps.recv(manager_host(0), manager_host(k - 1), kResultTag,
            [&](Message msg) {
              const std::vector<std::int32_t> counts =
                  decode_array<std::int32_t>(msg.payload);
              for (std::size_t i = 0; i < counts.size(); ++i) {
                result.snapshot.available[i] = counts[i];
              }
              done = true;
              // Broadcast the final snapshot so every manager can serve
              // placement queries (fire-and-forget).
              for (ClusterId c = 1; c < k; ++c) {
                mmps.send(manager_host(0), manager_host(c), kResultTag,
                          encode_array(std::span<const std::int32_t>(
                              counts)));
              }
            });
  for (ClusterId c = 1; c < k; ++c) {
    mmps.recv(manager_host(c), manager_host(0), kResultTag,
              [](Message) { /* manager caches the snapshot */ });
  }

  // Kick off the ring.
  std::vector<std::int32_t> initial(static_cast<std::size_t>(k), 0);
  initial[0] = own[0];
  mmps.send(manager_host(0), manager_host(1), kRingTag,
            encode_array(std::span<const std::int32_t>(initial)));

  net.engine().run();
  NP_ASSERT(done);
  NP_ASSERT(mmps.unclaimed() == 0);
  result.elapsed = net.engine().now() - start;
  result.messages = net.messages_delivered() - messages_before;
  return result;
}

ProtocolResult run_fault_tolerant_protocol(
    sim::NetSim& net, const std::vector<ClusterManager>& managers,
    const ProtocolOptions& options) {
  const Network& network = net.network();
  NP_REQUIRE(static_cast<int>(managers.size()) == network.num_clusters(),
             "need exactly one manager per cluster");
  NP_REQUIRE(options.max_attempts >= 1, "need at least one attempt");
  NP_REQUIRE(options.ack_timeout > SimTime::zero(),
             "ack timeout must be positive");
  NP_REQUIRE(options.budget > SimTime::zero(), "budget must be positive");
  NP_REQUIRE(net.host(manager_host(0)).alive(),
             "the initiating manager (cluster 0) must be alive");
  const ClusterId k = network.num_clusters();
  const std::uint64_t messages_before = net.messages_delivered();
  sim::Engine& engine = net.engine();
  const SimTime start = engine.now();
  const SimTime deadline = start + options.budget;

  ProtocolResult result;
  result.snapshot.available.assign(static_cast<std::size_t>(k), 0);

  if (k == 1) {
    result.snapshot.available[0] = managers[0].available(network);
    result.elapsed = SimTime::zero();
    return result;
  }

  auto ring = std::make_shared<Ring>(net, options, k);
  for (ClusterId c = 0; c < k; ++c) {
    ring->own[static_cast<std::size_t>(c)] =
        managers[static_cast<std::size_t>(c)].available(network);
  }

  for (ClusterId c = 1; c < k; ++c) {
    ring->post_token_recv(c);
    // Absorb the final broadcast so it is not left unclaimed.
    ring->mmps.recv_any(manager_host(c), kBcastTag,
                        [ring](Message) { /* manager caches snapshot */ });
  }
  ring->post_result_recv();

  // The initiator holds the token first.
  NP_WRITE(&ring->counts, "mmps.ring.state");
  ring->got_token[0] = 1;
  ring->counts[0] = ring->own[0];
  ring->send_token(0, ring->next_target(0), 0);

  // Drive the engine one event at a time: run() would also drain
  // unrelated future events (e.g. a fault injector's), and the budget
  // check must interleave with protocol progress.
  while (!ring->done && !engine.idle() && engine.now() < deadline) {
    engine.step();
  }
  NP_READ(&ring->counts, "mmps.ring.state");
  result.completed = ring->completed;
  // Neuter every handler still queued in the engine, and release the ones
  // stored in the mailbox (they hold the Ring alive via shared_ptr).
  NP_WRITE(&ring->counts, "mmps.ring.state");
  ring->done = true;
  ring->mmps.reset();

  for (ClusterId c = 0; c < k; ++c) {
    const auto i = static_cast<std::size_t>(c);
    if (ring->dead[i]) {
      result.dead.push_back(c);
    } else {
      result.snapshot.available[i] = ring->counts[i];
    }
  }
  result.elapsed = std::min(engine.now(), deadline) - start;
  result.messages = net.messages_delivered() - messages_before;
  return result;
}

}  // namespace netpart::mmps

// The cooperative availability protocol, run as real messages.
//
// Before partitioning, the cluster managers determine the available
// processors N_i (Section 5, detailed in the paper's reference [11]).
// gather_availability() gives the result as a direct query; this module
// runs the distributed version on the simulator so its cost can be
// measured: a token ring over the managers accumulates the per-cluster
// counts, and the last manager returns the full vector to the initiator,
// which broadcasts it back out.  The paper claims this overhead "is also
// small relative to elapsed time" -- the returned elapsed time lets
// benchmarks and tests check that.
#pragma once

#include <cstdint>

#include "net/availability.hpp"
#include "sim/netsim.hpp"

namespace netpart::mmps {

struct ProtocolResult {
  AvailabilitySnapshot snapshot;
  SimTime elapsed;
  std::uint64_t messages = 0;
};

/// Run the availability protocol among the managers (processor 0 of each
/// cluster acts as its manager's host).  The simulator's engine must be
/// idle on entry; it is drained before returning.
ProtocolResult run_availability_protocol(
    sim::NetSim& net, const std::vector<ClusterManager>& managers);

}  // namespace netpart::mmps

// The cooperative availability protocol, run as real messages.
//
// Before partitioning, the cluster managers determine the available
// processors N_i (Section 5, detailed in the paper's reference [11]).
// gather_availability() gives the result as a direct query; this module
// runs the distributed version on the simulator so its cost can be
// measured: a token ring over the managers accumulates the per-cluster
// counts, and the last manager returns the full vector to the initiator,
// which broadcasts it back out.  The paper claims this overhead "is also
// small relative to elapsed time" -- the returned elapsed time lets
// benchmarks and tests check that.
#pragma once

#include <cstdint>

#include "net/availability.hpp"
#include "sim/netsim.hpp"

namespace netpart::mmps {

struct ProtocolResult {
  AvailabilitySnapshot snapshot;
  SimTime elapsed;
  std::uint64_t messages = 0;
  /// True when the ring closed (the initiator received the full vector).
  /// The fault-tolerant variant reports false when the sim-time budget ran
  /// out first; the benign variant always completes.
  bool completed = true;
  /// Managers that never acknowledged the token (crashed peers); their
  /// clusters report zero availability.
  std::vector<ClusterId> dead;
};

/// Run the availability protocol among the managers (processor 0 of each
/// cluster acts as its manager's host).  The simulator's engine must be
/// idle on entry; it is drained before returning.  Assumes a benign
/// network: a crashed manager hangs this variant -- use
/// run_fault_tolerant_protocol under fault injection.
ProtocolResult run_availability_protocol(
    sim::NetSim& net, const std::vector<ClusterManager>& managers);

/// Tuning for the fault-tolerant protocol.
struct ProtocolOptions {
  /// Per-hop acknowledgement timeout (must cover a round trip including
  /// fragment retransmissions).
  SimTime ack_timeout = SimTime::millis(250);
  /// Token transmissions per successor before declaring it dead.
  int max_attempts = 3;
  /// Overall sim-time bound; the protocol never runs past it.
  SimTime budget = SimTime::seconds(30);
};

/// Fault-tolerant variant: every token hop is acknowledged; a successor
/// that does not ack within `ack_timeout` is retried and, after
/// `max_attempts` sends, declared dead and skipped (its count stays zero
/// and it lands in ProtocolResult::dead).  The whole run is bounded by
/// `budget` simulated time, so a crashed host can delay but never hang the
/// engine.  The initiator (cluster 0's manager) must be alive.
ProtocolResult run_fault_tolerant_protocol(
    sim::NetSim& net, const std::vector<ClusterManager>& managers,
    const ProtocolOptions& options = {});

}  // namespace netpart::mmps

#include "mmps/system.hpp"

#include <memory>
#include <utility>

#include "util/error.hpp"

namespace netpart::mmps {

System::Key System::make_key(ProcessorRef dst, ProcessorRef src,
                             std::int32_t tag) {
  return Key{dst.cluster, dst.index, src.cluster, src.index, tag};
}

void System::send(ProcessorRef src, ProcessorRef dst, std::int32_t tag,
                  std::vector<std::byte> payload) {
  const auto bytes = static_cast<std::int64_t>(payload.size());
  PairState& pair = pairs_[PairKey{src.cluster, src.index, dst.cluster,
                                   dst.index}];
  const std::int64_t seq = pair.next_send++;
  // The payload rides alongside the simulated transfer and materialises at
  // the receiver on delivery.
  auto carried = std::make_shared<Message>(
      Message{src, tag, std::move(payload)});
  net_.send(src, dst, bytes, [this, dst, seq, tag, carried] {
    arrived(dst, seq, tag, std::move(*carried));
  });
}

void System::arrived(ProcessorRef dst, std::int64_t seq, std::int32_t tag,
                     Message msg) {
  PairState& pair = pairs_[PairKey{msg.source.cluster, msg.source.index,
                                   dst.cluster, dst.index}];
  if (seq != pair.next_deliver) {
    // A retransmitted predecessor is still in flight: hold this message
    // until the sequence closes.
    NP_ASSERT(seq > pair.next_deliver);
    pair.held.emplace(seq, std::make_pair(tag, std::move(msg)));
    return;
  }
  ++pair.next_deliver;
  match(dst, tag, std::move(msg));
  while (!pair.held.empty() &&
         pair.held.begin()->first == pair.next_deliver) {
    auto node = pair.held.extract(pair.held.begin());
    ++pair.next_deliver;
    match(dst, node.mapped().first, std::move(node.mapped().second));
  }
}

void System::match(ProcessorRef dst, std::int32_t tag, Message msg) {
  Box& box = boxes_[make_key(dst, msg.source, tag)];
  if (!box.pending.empty()) {
    RecvHandler handler = std::move(box.pending.front());
    box.pending.pop_front();
    handler(std::move(msg));
    return;
  }
  box.ready.push_back(std::move(msg));
}

void System::recv(ProcessorRef dst, ProcessorRef src, std::int32_t tag,
                  RecvHandler handler) {
  NP_REQUIRE(handler != nullptr, "recv handler required");
  Box& box = boxes_[make_key(dst, src, tag)];
  if (!box.ready.empty()) {
    Message msg = std::move(box.ready.front());
    box.ready.pop_front();
    handler(std::move(msg));
    return;
  }
  box.pending.push_back(std::move(handler));
}

std::size_t System::unclaimed() const {
  std::size_t count = 0;
  for (const auto& [key, box] : boxes_) {
    count += box.ready.size();
  }
  return count;
}

}  // namespace netpart::mmps

#include "mmps/system.hpp"

#include <memory>
#include <utility>

#include "obs/telemetry.hpp"
#include "util/error.hpp"

namespace netpart::mmps {

namespace {

obs::Counter& mmps_counter(const char* name) {
  return obs::TelemetryRegistry::global().counter(name);
}

}  // namespace

System::Key System::make_key(ProcessorRef dst, ProcessorRef src,
                             std::int32_t tag) {
  return Key{dst.cluster, dst.index, src.cluster, src.index, tag};
}

void System::send(ProcessorRef src, ProcessorRef dst, std::int32_t tag,
                  std::vector<std::byte> payload) {
  const auto bytes = static_cast<std::int64_t>(payload.size());
  static obs::Counter& sends = mmps_counter("mmps.sends");
  static obs::Counter& sent_bytes = mmps_counter("mmps.bytes_sent");
  sends.add(1);
  sent_bytes.add(static_cast<std::uint64_t>(bytes));
  PairState& pair = core_->pairs[PairKey{src.cluster, src.index, dst.cluster,
                                         dst.index}];
  const std::int64_t seq = pair.next_send++;
  // The payload rides alongside the simulated transfer and materialises at
  // the receiver on delivery.  The mailbox core is captured weakly: if the
  // System is gone (or reset) by then, the delivery is a no-op.
  auto carried = std::make_shared<Message>(
      Message{src, tag, std::move(payload)});
  net_.send(src, dst, bytes,
            [core = std::weak_ptr<Core>(core_), dst, seq, tag, carried] {
              if (auto locked = core.lock()) {
                arrived(*locked, dst, seq, tag, std::move(*carried));
              }
            });
}

void System::arrived(Core& core, ProcessorRef dst, std::int64_t seq,
                     std::int32_t tag, Message msg) {
  PairState& pair = core.pairs[PairKey{msg.source.cluster, msg.source.index,
                                       dst.cluster, dst.index}];
  if (seq != pair.next_deliver) {
    // A retransmitted predecessor is still in flight: hold this message
    // until the sequence closes.  (After a reset() the pair state is
    // fresh, so a late delivery of sequence n > 0 parks here harmlessly.)
    if (seq < pair.next_deliver) return;
    pair.held.emplace(seq, std::make_pair(tag, std::move(msg)));
    return;
  }
  ++pair.next_deliver;
  match(core, dst, tag, std::move(msg));
  while (!pair.held.empty() &&
         pair.held.begin()->first == pair.next_deliver) {
    auto node = pair.held.extract(pair.held.begin());
    ++pair.next_deliver;
    match(core, dst, node.mapped().first, std::move(node.mapped().second));
  }
}

void System::match(Core& core, ProcessorRef dst, std::int32_t tag,
                   Message msg) {
  Box& box = core.boxes[make_key(dst, msg.source, tag)];
  if (!box.pending.empty()) {
    RecvHandler handler = std::move(box.pending.front().handler);
    box.pending.pop_front();
    handler(std::move(msg));
    return;
  }
  const auto any =
      core.any_pending.find(AnyKey{dst.cluster, dst.index, tag});
  if (any != core.any_pending.end() && !any->second.empty()) {
    RecvHandler handler = std::move(any->second.front());
    any->second.pop_front();
    handler(std::move(msg));
    return;
  }
  box.ready.push_back(std::move(msg));
}

void System::recv(ProcessorRef dst, ProcessorRef src, std::int32_t tag,
                  RecvHandler handler) {
  NP_REQUIRE(handler != nullptr, "recv handler required");
  static obs::Counter& posted = mmps_counter("mmps.recv_posted");
  posted.add(1);
  Box& box = core_->boxes[make_key(dst, src, tag)];
  if (!box.ready.empty()) {
    Message msg = std::move(box.ready.front());
    box.ready.pop_front();
    handler(std::move(msg));
    return;
  }
  box.pending.push_back(PendingRecv{std::move(handler), 0});
}

void System::recv_with_timeout(ProcessorRef dst, ProcessorRef src,
                               std::int32_t tag, SimTime timeout,
                               RecvHandler handler,
                               TimeoutHandler on_timeout) {
  NP_REQUIRE(handler != nullptr, "recv handler required");
  NP_REQUIRE(on_timeout != nullptr, "timeout handler required");
  NP_REQUIRE(timeout > SimTime::zero(), "timeout must be positive");
  static obs::Counter& posted = mmps_counter("mmps.recv_posted");
  posted.add(1);
  const Key key = make_key(dst, src, tag);
  Box& box = core_->boxes[key];
  if (!box.ready.empty()) {
    Message msg = std::move(box.ready.front());
    box.ready.pop_front();
    handler(std::move(msg));
    return;
  }
  const std::uint64_t id = core_->next_recv_id++;
  box.pending.push_back(PendingRecv{std::move(handler), id});
  net_.engine().schedule_after(
      timeout, [core = std::weak_ptr<Core>(core_), key, id,
                on_timeout = std::move(on_timeout)] {
        auto locked = core.lock();
        if (!locked) return;
        auto it = locked->boxes.find(key);
        if (it == locked->boxes.end()) return;
        auto& pending = it->second.pending;
        for (auto p = pending.begin(); p != pending.end(); ++p) {
          if (p->id == id) {
            pending.erase(p);
            static obs::Counter& timeouts =
                mmps_counter("mmps.recv_timeouts");
            timeouts.add(1);
            on_timeout();
            return;
          }
        }
        // Already matched: the timeout lost the race, nothing to do.
      });
}

void System::recv_any(ProcessorRef dst, std::int32_t tag,
                      RecvHandler handler) {
  NP_REQUIRE(handler != nullptr, "recv handler required");
  static obs::Counter& posted = mmps_counter("mmps.recv_any_posted");
  posted.add(1);
  // Serve the oldest already-delivered message with this (dst, tag) from
  // any source; Key order scans sources deterministically.
  for (auto& [key, box] : core_->boxes) {
    if (key.dst_cluster != dst.cluster || key.dst_index != dst.index ||
        key.tag != tag || box.ready.empty()) {
      continue;
    }
    Message msg = std::move(box.ready.front());
    box.ready.pop_front();
    handler(std::move(msg));
    return;
  }
  core_->any_pending[AnyKey{dst.cluster, dst.index, tag}].push_back(
      std::move(handler));
}

std::size_t System::unclaimed() const {
  std::size_t count = 0;
  for (const auto& [key, box] : core_->boxes) {
    count += box.ready.size();
  }
  return count;
}

}  // namespace netpart::mmps

// MMPS: reliable tagged message passing over the simulated network.
//
// The paper's substrate [5] is a portable message-passing library over UDP
// datagrams.  This layer provides its programming model: asynchronous
// tagged sends, receives that match on (source, tag), reliability (the
// simulator's fragment retransmission), and in-order delivery per
// (source, destination) pair -- a retransmitted message can physically
// arrive after its successors, so the receiver resequences before
// matching, exactly as a reliable transport does.  Payloads are real
// bytes: the functional applications (stencil, Gaussian elimination) move
// actual data through it and verify their numerics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "sim/netsim.hpp"

namespace netpart::mmps {

struct Message {
  ProcessorRef source;
  std::int32_t tag = 0;
  std::vector<std::byte> payload;
};

/// Handler invoked when a matching message has been fully received
/// (delivery-complete time on the receiving host).
using RecvHandler = std::function<void(Message)>;

class System {
 public:
  explicit System(sim::NetSim& net) : net_(net) {}

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Asynchronous send; completion is not signalled to the sender (MMPS
  /// semantics).  The payload is moved into the in-flight message.
  void send(ProcessorRef src, ProcessorRef dst, std::int32_t tag,
            std::vector<std::byte> payload);

  /// Post a receive at `dst` matching (src, tag).  If a matching message
  /// already arrived the handler fires immediately (same simulated time);
  /// otherwise it fires on delivery.  Multiple receives for the same key
  /// are served in posting order.
  void recv(ProcessorRef dst, ProcessorRef src, std::int32_t tag,
            RecvHandler handler);

  /// Messages delivered but not yet matched by a receive (diagnostics).
  std::size_t unclaimed() const;

 private:
  struct Key {
    std::int32_t dst_cluster;
    std::int32_t dst_index;
    std::int32_t src_cluster;
    std::int32_t src_index;
    std::int32_t tag;
    auto operator<=>(const Key&) const = default;
  };
  static Key make_key(ProcessorRef dst, ProcessorRef src, std::int32_t tag);

  struct Box {
    std::deque<Message> ready;
    std::deque<RecvHandler> pending;
  };

  /// Resequencing state per (src, dst) pair.
  struct PairKey {
    std::int32_t src_cluster;
    std::int32_t src_index;
    std::int32_t dst_cluster;
    std::int32_t dst_index;
    auto operator<=>(const PairKey&) const = default;
  };
  struct PairState {
    std::int64_t next_send = 0;
    std::int64_t next_deliver = 0;
    /// Messages that physically arrived ahead of a retransmitted
    /// predecessor, keyed by sequence number.
    std::map<std::int64_t, std::pair<std::int32_t, Message>> held;
  };

  /// A message's payload reached `dst` in sequence position `seq`; deliver
  /// it (and any held successors) once its predecessors are in.
  void arrived(ProcessorRef dst, std::int64_t seq, std::int32_t tag,
               Message msg);
  void match(ProcessorRef dst, std::int32_t tag, Message msg);

  sim::NetSim& net_;
  std::map<Key, Box> boxes_;
  std::map<PairKey, PairState> pairs_;
};

}  // namespace netpart::mmps

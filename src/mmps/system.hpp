// MMPS: reliable tagged message passing over the simulated network.
//
// The paper's substrate [5] is a portable message-passing library over UDP
// datagrams.  This layer provides its programming model: asynchronous
// tagged sends, receives that match on (source, tag), reliability (the
// simulator's fragment retransmission), and in-order delivery per
// (source, destination) pair -- a retransmitted message can physically
// arrive after its successors, so the receiver resequences before
// matching, exactly as a reliable transport does.  Payloads are real
// bytes: the functional applications (stencil, Gaussian elimination) move
// actual data through it and verify their numerics.
//
// Fault awareness: the simulator silently drops traffic touching a crashed
// host, so a plain recv() posted against a dead peer would wait forever.
// recv_with_timeout() is the RTO-style escape hatch: it reports the
// failure instead of blocking the engine.  The mailbox state is held
// behind a shared core that in-flight engine events capture weakly, so a
// System (and any budget-bounded protocol built on it) can be torn down
// while deliveries are still queued.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "sim/netsim.hpp"

namespace netpart::mmps {

struct Message {
  ProcessorRef source;
  std::int32_t tag = 0;
  std::vector<std::byte> payload;
};

/// Handler invoked when a matching message has been fully received
/// (delivery-complete time on the receiving host).
using RecvHandler = std::function<void(Message)>;

/// Handler invoked when a timed receive expires unmatched.
using TimeoutHandler = std::function<void()>;

class System {
 public:
  explicit System(sim::NetSim& net)
      : net_(net), core_(std::make_shared<Core>()) {}

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Asynchronous send; completion is not signalled to the sender (MMPS
  /// semantics).  The payload is moved into the in-flight message.
  void send(ProcessorRef src, ProcessorRef dst, std::int32_t tag,
            std::vector<std::byte> payload);

  /// Post a receive at `dst` matching (src, tag).  If a matching message
  /// already arrived the handler fires immediately (same simulated time);
  /// otherwise it fires on delivery.  Multiple receives for the same key
  /// are served in posting order.
  void recv(ProcessorRef dst, ProcessorRef src, std::int32_t tag,
            RecvHandler handler);

  /// Timed receive: like recv(), but if no matching message is delivered
  /// within `timeout` the posted receive is cancelled and `on_timeout`
  /// fires instead -- the RTO-style failure return that lets a caller
  /// detect a crashed peer rather than blocking the engine forever.
  void recv_with_timeout(ProcessorRef dst, ProcessorRef src,
                         std::int32_t tag, SimTime timeout,
                         RecvHandler handler, TimeoutHandler on_timeout);

  /// Any-source receive at `dst` matching `tag` alone: serves the oldest
  /// already-delivered message with that tag from any source, else fires
  /// on the next matching delivery.  Exact-source receives take precedence
  /// when both are pending.  (The fault-tolerant manager protocol needs
  /// this: after deaths, a token's predecessor is not known in advance.)
  void recv_any(ProcessorRef dst, std::int32_t tag, RecvHandler handler);

  /// Messages delivered but not yet matched by a receive (diagnostics).
  std::size_t unclaimed() const;

  /// Drop every queued message and cancel every posted receive (handlers
  /// are destroyed, not invoked).  Budget-bounded protocols call this on
  /// abort so no stored handler keeps their state alive.
  void reset() { *core_ = Core{}; }

 private:
  struct Key {
    std::int32_t dst_cluster;
    std::int32_t dst_index;
    std::int32_t src_cluster;
    std::int32_t src_index;
    std::int32_t tag;
    auto operator<=>(const Key&) const = default;
  };
  static Key make_key(ProcessorRef dst, ProcessorRef src, std::int32_t tag);

  struct PendingRecv {
    RecvHandler handler;
    std::uint64_t id = 0;  ///< non-zero for cancellable (timed) receives
  };
  struct Box {
    std::deque<Message> ready;
    std::deque<PendingRecv> pending;
  };
  /// Any-source receives, keyed by (dst, tag).
  struct AnyKey {
    std::int32_t dst_cluster;
    std::int32_t dst_index;
    std::int32_t tag;
    auto operator<=>(const AnyKey&) const = default;
  };

  /// Resequencing state per (src, dst) pair.
  struct PairKey {
    std::int32_t src_cluster;
    std::int32_t src_index;
    std::int32_t dst_cluster;
    std::int32_t dst_index;
    auto operator<=>(const PairKey&) const = default;
  };
  struct PairState {
    std::int64_t next_send = 0;
    std::int64_t next_deliver = 0;
    /// Messages that physically arrived ahead of a retransmitted
    /// predecessor, keyed by sequence number.
    std::map<std::int64_t, std::pair<std::int32_t, Message>> held;
  };

  /// All mailbox state; engine events capture it weakly so in-flight
  /// deliveries outliving the System are harmless no-ops.
  struct Core {
    std::map<Key, Box> boxes;
    std::map<AnyKey, std::deque<RecvHandler>> any_pending;
    std::map<PairKey, PairState> pairs;
    std::uint64_t next_recv_id = 1;
  };

  /// A message's payload reached `dst` in sequence position `seq`; deliver
  /// it (and any held successors) once its predecessors are in.
  static void arrived(Core& core, ProcessorRef dst, std::int64_t seq,
                      std::int32_t tag, Message msg);
  static void match(Core& core, ProcessorRef dst, std::int32_t tag,
                    Message msg);

  sim::NetSim& net_;
  std::shared_ptr<Core> core_;
};

}  // namespace netpart::mmps

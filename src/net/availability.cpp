#include "net/availability.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace netpart {

int ClusterManager::available(const Network& net) const {
  return static_cast<int>(available_indices(net).size());
}

std::vector<ProcessorIndex> ClusterManager::available_indices(
    const Network& net) const {
  const Cluster& c = net.cluster(cluster_);
  std::vector<ProcessorIndex> out;
  out.reserve(static_cast<std::size_t>(c.size()));
  for (ProcessorIndex i = 0; i < c.size(); ++i) {
    if (c.processor(i).load < policy_.load_threshold) {
      out.push_back(i);
    }
  }
  return out;
}

int AvailabilitySnapshot::total() const {
  int t = 0;
  for (int n : available) t += n;
  return t;
}

AvailabilitySnapshot gather_availability(
    const Network& net, const std::vector<ClusterManager>& managers) {
  NP_REQUIRE(static_cast<int>(managers.size()) == net.num_clusters(),
             "need exactly one manager per cluster");
  AvailabilitySnapshot snap;
  snap.available.assign(static_cast<std::size_t>(net.num_clusters()), 0);
  for (const ClusterManager& m : managers) {
    snap.available[static_cast<std::size_t>(m.cluster())] =
        m.available(net);
  }
  return snap;
}

std::vector<ClusterManager> make_managers(const Network& net,
                                          AvailabilityPolicy policy) {
  std::vector<ClusterManager> managers;
  managers.reserve(static_cast<std::size_t>(net.num_clusters()));
  for (ClusterId c = 0; c < net.num_clusters(); ++c) {
    managers.emplace_back(c, policy);
  }
  return managers;
}

namespace {

/// Final revoked/restored state per processor after replaying events with
/// at <= upto in time order (stable for equal times: later entry wins).
std::vector<std::pair<ProcessorRef, bool>> final_churn_state(
    const std::vector<ChurnEvent>& events, SimTime upto) {
  std::vector<ChurnEvent> applicable;
  for (const ChurnEvent& e : events) {
    if (e.at <= upto) applicable.push_back(e);
  }
  std::stable_sort(applicable.begin(), applicable.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.at < b.at;
                   });
  std::vector<std::pair<ProcessorRef, bool>> state;
  for (const ChurnEvent& e : applicable) {
    const bool revoked = e.kind == ChurnEvent::Kind::Revoke;
    auto it = std::find_if(state.begin(), state.end(),
                           [&](const auto& s) { return s.first == e.ref; });
    if (it == state.end()) {
      state.emplace_back(e.ref, revoked);
    } else {
      it->second = revoked;
    }
  }
  return state;
}

}  // namespace

void apply_churn_to_network(Network& net,
                            const std::vector<ChurnEvent>& events,
                            SimTime upto) {
  for (const auto& [ref, revoked] : final_churn_state(events, upto)) {
    NP_REQUIRE(ref.cluster >= 0 && ref.cluster < net.num_clusters(),
               "churn event names an unknown cluster");
    Cluster& c = net.cluster(ref.cluster);
    NP_REQUIRE(ref.index >= 0 && ref.index < c.size(),
               "churn event names an unknown processor");
    c.processor(ref.index).load = revoked ? 1.0 : 0.0;
  }
}

AvailabilitySnapshot apply_churn(const Network& net,
                                 AvailabilitySnapshot snapshot,
                                 const std::vector<ChurnEvent>& events,
                                 SimTime upto) {
  NP_REQUIRE(static_cast<int>(snapshot.available.size()) ==
                 net.num_clusters(),
             "snapshot does not match the network");
  for (const auto& [ref, revoked] : final_churn_state(events, upto)) {
    if (!revoked) continue;
    NP_REQUIRE(ref.cluster >= 0 && ref.cluster < net.num_clusters(),
               "churn event names an unknown cluster");
    int& n = snapshot.available[static_cast<std::size_t>(ref.cluster)];
    n = std::max(0, n - 1);
  }
  return snapshot;
}

AvailabilityFeed::AvailabilityFeed(AvailabilitySnapshot initial)
    : baseline_(initial), current_(std::move(initial)) {}

AvailabilityFeed::AvailabilityFeed(
    const Network& net, const std::vector<ClusterManager>& managers)
    : AvailabilityFeed(gather_availability(net, managers)) {}

std::uint64_t AvailabilityFeed::epoch() const {
  std::lock_guard lock(mutex_);
  return epoch_;
}

std::pair<AvailabilitySnapshot, std::uint64_t> AvailabilityFeed::read()
    const {
  std::lock_guard lock(mutex_);
  return {current_, epoch_};
}

std::uint64_t AvailabilityFeed::update(AvailabilitySnapshot next) {
  std::lock_guard lock(mutex_);
  if (next.available != current_.available) {
    current_ = std::move(next);
    ++epoch_;
  }
  return epoch_;
}

std::uint64_t AvailabilityFeed::refresh(
    const Network& net, const std::vector<ClusterManager>& managers) {
  return update(gather_availability(net, managers));
}

std::uint64_t AvailabilityFeed::apply_churn_events(
    const Network& net, const std::vector<ChurnEvent>& events,
    SimTime upto) {
  AvailabilitySnapshot base;
  {
    std::lock_guard lock(mutex_);
    base = baseline_;
  }
  return update(apply_churn(net, std::move(base), events, upto));
}

void apply_random_load(Network& net, Rng& rng, double mean_load) {
  NP_REQUIRE(mean_load >= 0.0, "mean load must be non-negative");
  for (ClusterId cid = 0; cid < net.num_clusters(); ++cid) {
    Cluster& c = net.cluster(cid);
    for (ProcessorIndex i = 0; i < c.size(); ++i) {
      const double load =
          mean_load == 0.0 ? 0.0 : rng.next_exponential(mean_load);
      c.processor(i).load = std::min(load, 1.0);
    }
  }
}

}  // namespace netpart

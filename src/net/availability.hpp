// Cluster managers and the cooperative availability protocol.
//
// The paper assumes processors are shared: each cluster has a manager that
// monitors per-processor load and applies a simple threshold policy --
// every processor below the threshold counts as available and equal in
// power.  Before partitioning, a cooperative algorithm run by the managers
// gathers the per-cluster available counts N_i.
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "net/ids.hpp"
#include "net/network.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace netpart {

/// Threshold availability policy.
struct AvailabilityPolicy {
  /// Processors with load strictly below this threshold are available.
  double load_threshold = 0.10;
};

/// One cluster's manager: applies the threshold policy to its processors.
class ClusterManager {
 public:
  ClusterManager(ClusterId cluster, AvailabilityPolicy policy)
      : cluster_(cluster), policy_(policy) {}

  ClusterId cluster() const { return cluster_; }

  /// Count of available processors under the threshold policy.
  int available(const Network& net) const;

  /// Indices of the available processors, in cluster order (the placement
  /// layer assigns tasks to the first P of these).
  std::vector<ProcessorIndex> available_indices(const Network& net) const;

 private:
  ClusterId cluster_;
  AvailabilityPolicy policy_;
};

/// Result of the cooperative availability-gathering round.
struct AvailabilitySnapshot {
  /// N_i: available processors per cluster, indexed by ClusterId.
  std::vector<int> available;

  int total() const;
};

/// Run the cooperative protocol: every manager reports its count, one
/// round-robin exchange.  (On a real system this is a message round among
/// managers; with the in-process model it reduces to querying each one.)
AvailabilitySnapshot gather_availability(
    const Network& net, const std::vector<ClusterManager>& managers);

/// Build one manager per cluster with a common policy.
std::vector<ClusterManager> make_managers(const Network& net,
                                          AvailabilityPolicy policy);

/// One availability-churn event: at `at`, `ref` is withdrawn from
/// (revoke) or offered back to (restore) the pool of partitionable
/// processors.  The fault-injection layer (sim/faults.hpp) produces these;
/// a crashed host is a permanent revocation.
struct ChurnEvent {
  SimTime at;
  ProcessorRef ref;
  enum class Kind { Revoke, Restore } kind = Kind::Revoke;
};

/// Apply every churn event with at <= upto to the network itself: revoked
/// processors are marked fully loaded (load 1.0) so the threshold policy --
/// and therefore available_indices() and any placement built from it --
/// excludes them; restored processors return to load 0.  Events are applied
/// in time order (ties: later event in the list wins).
void apply_churn_to_network(Network& net,
                            const std::vector<ChurnEvent>& events,
                            SimTime upto);

/// Snapshot-level variant: subtract each processor whose final state by
/// `upto` is revoked from its cluster's count (clamped at zero).  Assumes
/// the snapshot counted those processors as available.
AvailabilitySnapshot apply_churn(const Network& net,
                                 AvailabilitySnapshot snapshot,
                                 const std::vector<ChurnEvent>& events,
                                 SimTime upto);

/// Background-load generator: assigns each processor a load drawn from a
/// bounded exponential, modelling light sharing by other users.
void apply_random_load(Network& net, Rng& rng, double mean_load);

/// Thread-safe, versioned availability source for long-lived consumers.
///
/// A one-shot partitioner gathers a snapshot and dies; a partition *service*
/// outlives many availability changes and must know when cached decisions
/// went stale.  The feed pairs the current snapshot with a monotonically
/// increasing epoch that bumps exactly when the per-cluster counts change,
/// so a decision computed under epoch e is valid iff the feed still reports
/// e.  The epoch participates in the service's cache keys; a bump both
/// prevents stale hits and triggers eviction of older entries.
class AvailabilityFeed {
 public:
  /// Starts at epoch 1 with the given counts.
  explicit AvailabilityFeed(AvailabilitySnapshot initial);

  /// Convenience: gather from the managers, start at epoch 1.
  AvailabilityFeed(const Network& net,
                   const std::vector<ClusterManager>& managers);

  std::uint64_t epoch() const;

  /// The snapshot and the epoch it belongs to, read atomically.
  std::pair<AvailabilitySnapshot, std::uint64_t> read() const;

  /// Replace the snapshot; bumps the epoch only when the counts actually
  /// differ (an identical re-gather keeps caches warm).  Returns the epoch
  /// in force after the call.
  std::uint64_t update(AvailabilitySnapshot next);

  /// Re-run the cooperative protocol against the network's current load
  /// state and update().
  std::uint64_t refresh(const Network& net,
                        const std::vector<ClusterManager>& managers);

  /// Replay churn events (at <= upto) against the *initial* snapshot and
  /// update() -- the service-facing form of apply_churn, for drivers that
  /// never mutate the Network itself (the Network can then stay immutable
  /// and be shared with worker threads without locking).
  std::uint64_t apply_churn_events(const Network& net,
                                   const std::vector<ChurnEvent>& events,
                                   SimTime upto);

 private:
  mutable std::mutex mutex_;
  AvailabilitySnapshot baseline_;
  AvailabilitySnapshot current_;
  std::uint64_t epoch_ = 1;
};

}  // namespace netpart

#include "net/builder.hpp"

#include "util/error.hpp"

namespace netpart {

NetworkBuilder& NetworkBuilder::bandwidth_bps(double bps) {
  NP_REQUIRE(bps > 0, "bandwidth must be positive");
  bandwidth_bps_ = bps;
  return *this;
}

NetworkBuilder& NetworkBuilder::frame_overhead(SimTime t) {
  NP_REQUIRE(t >= SimTime::zero(), "frame overhead must be non-negative");
  frame_overhead_ = t;
  return *this;
}

NetworkBuilder& NetworkBuilder::router_delay(SimTime per_byte,
                                             SimTime per_packet) {
  NP_REQUIRE(per_byte >= SimTime::zero() && per_packet >= SimTime::zero(),
             "router delays must be non-negative");
  router_per_byte_ = per_byte;
  router_per_packet_ = per_packet;
  return *this;
}

NetworkBuilder& NetworkBuilder::add_cluster(const std::string& name,
                                            const ProcessorType& type,
                                            int num_processors) {
  NP_REQUIRE(num_processors > 0, "cluster must contain processors");
  pending_.push_back(PendingCluster{name, type, num_processors,
                                    /*bandwidth_bps=*/-1.0,
                                    /*frame_overhead=*/SimTime::nanos(-1)});
  return *this;
}

NetworkBuilder& NetworkBuilder::add_cluster_on(
    const std::string& name, const ProcessorType& type, int num_processors,
    double segment_bps, SimTime segment_frame_overhead) {
  NP_REQUIRE(num_processors > 0, "cluster must contain processors");
  NP_REQUIRE(segment_bps > 0, "segment bandwidth must be positive");
  NP_REQUIRE(segment_frame_overhead >= SimTime::zero(),
             "frame overhead must be non-negative");
  pending_.push_back(PendingCluster{name, type, num_processors, segment_bps,
                                    segment_frame_overhead});
  return *this;
}

NetworkBuilder& NetworkBuilder::relax_equal_bandwidth() {
  relax_equal_bandwidth_ = true;
  return *this;
}

Network NetworkBuilder::build() const {
  NP_REQUIRE(!pending_.empty(), "network needs at least one cluster");
  std::vector<Cluster> clusters;
  std::vector<Segment> segments;
  std::vector<RouterLink> routers;
  clusters.reserve(pending_.size());
  segments.reserve(pending_.size());
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const auto id = static_cast<ClusterId>(i);
    Segment seg;
    seg.id = static_cast<SegmentId>(i);
    seg.bandwidth_bps = pending_[i].bandwidth_bps > 0
                            ? pending_[i].bandwidth_bps
                            : bandwidth_bps_;
    seg.frame_overhead = pending_[i].frame_overhead >= SimTime::zero()
                             ? pending_[i].frame_overhead
                             : frame_overhead_;
    segments.push_back(seg);
    clusters.emplace_back(id, pending_[i].name, pending_[i].type, seg.id,
                          pending_[i].count);
  }
  for (std::size_t a = 0; a < segments.size(); ++a) {
    for (std::size_t b = a + 1; b < segments.size(); ++b) {
      RouterLink link;
      link.a = static_cast<SegmentId>(a);
      link.b = static_cast<SegmentId>(b);
      link.delay_per_byte = router_per_byte_;
      link.delay_per_packet = router_per_packet_;
      routers.push_back(link);
    }
  }
  NetworkPolicy policy;
  policy.require_equal_bandwidth = !relax_equal_bandwidth_;
  return Network(std::move(clusters), std::move(segments),
                 std::move(routers), policy);
}

}  // namespace netpart

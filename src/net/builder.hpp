// Fluent construction of valid networks.
//
// The builder assigns dense ids, creates one segment per cluster, and wires
// a router between every pair of segments, so the result always satisfies
// the model's structural assumptions.
#pragma once

#include <string>
#include <vector>

#include "net/network.hpp"

namespace netpart {

class NetworkBuilder {
 public:
  NetworkBuilder() = default;

  /// Channel bandwidth shared by all segments (assumption 1).
  NetworkBuilder& bandwidth_bps(double bps);

  /// Per-frame channel overhead on every segment.
  NetworkBuilder& frame_overhead(SimTime t);

  /// Router characteristics used for every inter-segment link.
  NetworkBuilder& router_delay(SimTime per_byte, SimTime per_packet);

  /// Add a homogeneous cluster on its own fresh segment.
  NetworkBuilder& add_cluster(const std::string& name,
                              const ProcessorType& type, int num_processors);

  /// Add a cluster whose segment runs at its own bandwidth (a metasystem
  /// component, e.g. a multicomputer's internal interconnect).  Requires
  /// relax_equal_bandwidth() if it differs from the default.
  NetworkBuilder& add_cluster_on(const std::string& name,
                                 const ProcessorType& type,
                                 int num_processors, double segment_bps,
                                 SimTime segment_frame_overhead);

  /// Opt out of assumption 1 (equal segment bandwidth).
  NetworkBuilder& relax_equal_bandwidth();

  /// Build and validate.  The builder can be reused afterwards.
  Network build() const;

 private:
  struct PendingCluster {
    std::string name;
    ProcessorType type;
    int count = 0;
    /// Segment overrides; negative bandwidth means "use the default".
    double bandwidth_bps = -1.0;
    SimTime frame_overhead = SimTime::nanos(-1);
  };

  double bandwidth_bps_ = 10e6;
  SimTime frame_overhead_ = SimTime::micros(100);
  SimTime router_per_byte_ = SimTime::nanos(600);
  SimTime router_per_packet_ = SimTime::micros(50);
  bool relax_equal_bandwidth_ = false;
  std::vector<PendingCluster> pending_;
};

}  // namespace netpart

#include "net/cluster.hpp"

#include "util/error.hpp"

namespace netpart {

Cluster::Cluster(ClusterId id, std::string name, ProcessorType type,
                 SegmentId segment, int num_processors)
    : id_(id),
      name_(std::move(name)),
      type_(std::move(type)),
      segment_(segment),
      processors_(static_cast<std::size_t>(num_processors)) {
  NP_REQUIRE(num_processors > 0, "cluster must contain processors");
  NP_REQUIRE(type_.flop_time > SimTime::zero(),
             "processor flop_time must be positive");
}

const Processor& Cluster::processor(ProcessorIndex i) const {
  NP_REQUIRE(i >= 0 && i < size(), "processor index out of range");
  return processors_[static_cast<std::size_t>(i)];
}

Processor& Cluster::processor(ProcessorIndex i) {
  NP_REQUIRE(i >= 0 && i < size(), "processor index out of range");
  return processors_[static_cast<std::size_t>(i)];
}

}  // namespace netpart

// Clusters and network segments.
//
// The paper's network model: the network is a set of physical segments with
// *private* bandwidth, each segment hosts exactly one homogeneous cluster,
// and every pair of segments is joined by a single router (messages travel
// at most one hop).
#pragma once

#include <string>
#include <vector>

#include "net/ids.hpp"
#include "net/processor.hpp"
#include "util/time.hpp"

namespace netpart {

/// A physical network segment with private bandwidth.
struct Segment {
  SegmentId id = -1;
  /// Raw channel bandwidth in bits per second (10 Mbit/s for the paper's
  /// ethernet segments).
  double bandwidth_bps = 10e6;
  /// Fixed per-frame channel overhead (preamble, inter-frame gap, MAC
  /// arbitration).
  SimTime frame_overhead = SimTime::micros(100);
};

/// A homogeneous group of processors on one segment.
class Cluster {
 public:
  Cluster(ClusterId id, std::string name, ProcessorType type,
          SegmentId segment, int num_processors);

  ClusterId id() const { return id_; }
  const std::string& name() const { return name_; }
  const ProcessorType& type() const { return type_; }
  SegmentId segment() const { return segment_; }

  int size() const { return static_cast<int>(processors_.size()); }

  const Processor& processor(ProcessorIndex i) const;
  Processor& processor(ProcessorIndex i);

  /// Instruction rate ordering key: clusters with smaller flop_time are
  /// faster and are considered first by the partitioning heuristic.
  SimTime flop_time() const { return type_.flop_time; }

 private:
  ClusterId id_;
  std::string name_;
  ProcessorType type_;
  SegmentId segment_;
  std::vector<Processor> processors_;
};

/// A router joining two segments.  Empirically (per the paper) a router
/// behaves as one additional station contending for each channel plus an
/// internal per-byte delay.
struct RouterLink {
  SegmentId a = -1;
  SegmentId b = -1;
  /// Internal forwarding delay per byte.
  SimTime delay_per_byte = SimTime::nanos(600);  // 0.0006 ms/byte in paper
  /// Fixed per-packet forwarding latency.
  SimTime delay_per_packet = SimTime::micros(50);
};

}  // namespace netpart

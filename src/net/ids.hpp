// Identifier types for the network model.
//
// Clusters, segments, and processors are stored in dense vectors; these
// aliases document which index space a value lives in.  A GlobalRank
// identifies a task slot in a running SPMD computation (assigned by the
// placement layer), which is distinct from a processor's position within
// its cluster.
#pragma once

#include <cstdint>

namespace netpart {

using ClusterId = std::int32_t;
using SegmentId = std::int32_t;
using ProcessorIndex = std::int32_t;  ///< index within a cluster
using GlobalRank = std::int32_t;      ///< task rank in a running computation

/// A processor named by (cluster, index-within-cluster).
struct ProcessorRef {
  ClusterId cluster = -1;
  ProcessorIndex index = -1;

  friend auto operator<=>(const ProcessorRef&,
                          const ProcessorRef&) = default;
};

}  // namespace netpart

#include "net/network.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace netpart {

Network::Network(std::vector<Cluster> clusters, std::vector<Segment> segments,
                 std::vector<RouterLink> routers, NetworkPolicy policy)
    : clusters_(std::move(clusters)),
      segments_(std::move(segments)),
      routers_(std::move(routers)) {
  NP_REQUIRE(!clusters_.empty(), "network needs at least one cluster");
  NP_REQUIRE(!segments_.empty(), "network needs at least one segment");

  // Ids must match vector positions (dense storage).
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    NP_REQUIRE(clusters_[i].id() == static_cast<ClusterId>(i),
               "cluster ids must be dense and ordered");
  }
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    NP_REQUIRE(segments_[i].id == static_cast<SegmentId>(i),
               "segment ids must be dense and ordered");
  }

  // Assumption 1: equal bandwidth on all segments (relaxable for
  // metasystem configurations -- calibration fits each cluster on its own
  // segment, so the cost model stays valid either way).
  if (policy.require_equal_bandwidth) {
    for (const Segment& s : segments_) {
      NP_REQUIRE(
          std::abs(s.bandwidth_bps - segments_[0].bandwidth_bps) < 1e-6,
          "all segments must have equal bandwidth (assumption 1)");
    }
  }

  // Assumption 2: each segment hosts exactly one cluster.
  std::vector<int> clusters_on_segment(segments_.size(), 0);
  for (const Cluster& c : clusters_) {
    NP_REQUIRE(c.segment() >= 0 &&
                   c.segment() < static_cast<SegmentId>(segments_.size()),
               "cluster references an unknown segment");
    ++clusters_on_segment[static_cast<std::size_t>(c.segment())];
  }
  for (int n : clusters_on_segment) {
    NP_REQUIRE(n == 1, "each segment must host exactly one cluster "
                       "(assumption 2)");
  }

  // Assumption 3: every pair of segments joined by exactly one router.
  const std::size_t n = segments_.size();
  std::vector<int> pair_count(n * n, 0);
  for (const RouterLink& r : routers_) {
    NP_REQUIRE(r.a >= 0 && r.a < static_cast<SegmentId>(n) && r.b >= 0 &&
                   r.b < static_cast<SegmentId>(n) && r.a != r.b,
               "router must join two distinct known segments");
    const std::size_t lo = static_cast<std::size_t>(std::min(r.a, r.b));
    const std::size_t hi = static_cast<std::size_t>(std::max(r.a, r.b));
    ++pair_count[lo * n + hi];
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      NP_REQUIRE(pair_count[a * n + b] == 1,
                 "every pair of segments needs exactly one router "
                 "(assumption 3)");
    }
  }
}

const Cluster& Network::cluster(ClusterId id) const {
  NP_REQUIRE(id >= 0 && id < num_clusters(), "cluster id out of range");
  return clusters_[static_cast<std::size_t>(id)];
}

Cluster& Network::cluster(ClusterId id) {
  NP_REQUIRE(id >= 0 && id < num_clusters(), "cluster id out of range");
  return clusters_[static_cast<std::size_t>(id)];
}

const Segment& Network::segment(SegmentId id) const {
  NP_REQUIRE(id >= 0 && id < num_segments(), "segment id out of range");
  return segments_[static_cast<std::size_t>(id)];
}

std::optional<RouterLink> Network::router_between(ClusterId a,
                                                  ClusterId b) const {
  const SegmentId sa = cluster(a).segment();
  const SegmentId sb = cluster(b).segment();
  if (sa == sb) return std::nullopt;
  for (const RouterLink& r : routers_) {
    if ((r.a == sa && r.b == sb) || (r.a == sb && r.b == sa)) return r;
  }
  throw LogicError("validated network missing a router link");
}

int Network::total_processors() const {
  int total = 0;
  for (const Cluster& c : clusters_) total += c.size();
  return total;
}

bool Network::needs_coercion(ClusterId a, ClusterId b) const {
  return cluster(a).type().data_format != cluster(b).type().data_format;
}

const Cluster& Network::cluster_by_name(const std::string& name) const {
  for (const Cluster& c : clusters_) {
    if (c.name() == name) return c;
  }
  throw InvalidArgument("no cluster named " + name);
}

std::string Network::describe() const {
  std::ostringstream os;
  os << "heterogeneous network: " << num_clusters() << " cluster(s), "
     << num_segments() << " segment(s), " << routers_.size()
     << " router link(s)\n";
  for (const Cluster& c : clusters_) {
    os << "  cluster " << c.id() << " '" << c.name() << "': " << c.size()
       << " x " << c.type().name << " (flop " << c.type().flop_time.as_micros()
       << "us) on segment " << c.segment() << " ("
       << segment(c.segment()).bandwidth_bps / 1e6 << " Mbit/s)\n";
  }
  for (const RouterLink& r : routers_) {
    os << "  router: segment " << r.a << " <-> segment " << r.b << " ("
       << r.delay_per_byte.as_nanos() << " ns/byte)\n";
  }
  return os.str();
}

}  // namespace netpart

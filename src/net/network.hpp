// The heterogeneous network: clusters + segments + routers.
//
// Network validates the paper's three structural assumptions on
// construction:
//   1. all segments have equal communication bandwidth,
//   2. each segment contains a single (homogeneous) cluster,
//   3. every pair of segments is connected by a single router.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/cluster.hpp"
#include "net/ids.hpp"

namespace netpart {

/// Which of the model's structural assumptions to enforce.  The paper
/// names relaxing the network model as future work; the *metasystem*
/// direction (multicomputers next to workstation clusters) needs segments
/// of different speeds, so assumption 1 can be opted out of.  Assumptions
/// 2 and 3 are load-bearing for the cost model and stay mandatory.
struct NetworkPolicy {
  bool require_equal_bandwidth = true;
};

class Network {
 public:
  /// Validates the structural assumptions; throws InvalidArgument if they
  /// do not hold.
  Network(std::vector<Cluster> clusters, std::vector<Segment> segments,
          std::vector<RouterLink> routers, NetworkPolicy policy = {});

  int num_clusters() const { return static_cast<int>(clusters_.size()); }
  int num_segments() const { return static_cast<int>(segments_.size()); }

  const Cluster& cluster(ClusterId id) const;
  Cluster& cluster(ClusterId id);
  const std::vector<Cluster>& clusters() const { return clusters_; }

  const Segment& segment(SegmentId id) const;
  const std::vector<Segment>& segments() const { return segments_; }

  const std::vector<RouterLink>& routers() const { return routers_; }

  /// The router joining the segments of two clusters, or nullopt when both
  /// clusters share a segment (never happens under assumption 2, but the
  /// API tolerates same-cluster queries).
  std::optional<RouterLink> router_between(ClusterId a, ClusterId b) const;

  /// Total processors across all clusters.
  int total_processors() const;

  /// Whether messages between the two clusters need data coercion.
  bool needs_coercion(ClusterId a, ClusterId b) const;

  /// Find a cluster by name; throws InvalidArgument if absent.
  const Cluster& cluster_by_name(const std::string& name) const;

  /// Human-readable inventory (used by the Fig. 1 bench).
  std::string describe() const;

 private:
  std::vector<Cluster> clusters_;
  std::vector<Segment> segments_;
  std::vector<RouterLink> routers_;
};

}  // namespace netpart

#include "net/presets.hpp"

#include "net/builder.hpp"
#include "util/error.hpp"

namespace netpart {
namespace presets {

namespace {
/// Common ethernet parameters for all presets: 10 Mbit/s wire and a small
/// MAC-level per-frame overhead (the dominant per-message fixed cost is on
/// the hosts, so this stays small).
void ethernet_defaults(NetworkBuilder& b) {
  b.bandwidth_bps(10e6);
  b.frame_overhead(SimTime::micros(50));
  b.router_delay(/*per_byte=*/SimTime::nanos(600),
                 /*per_packet=*/SimTime::micros(100));
}
}  // namespace

ProcessorType sparc2() {
  ProcessorType t;
  t.name = "Sparc2";
  t.flop_time = SimTime::micros(0.3);
  t.int_time = SimTime::micros(0.15);
  t.comm_per_byte = SimTime::nanos(600);
  t.comm_per_message = SimTime::micros(500);
  t.data_format = DataFormat::BigEndian;
  t.coerce_per_byte = SimTime::nanos(300);
  return t;
}

ProcessorType sun_ipc() {
  ProcessorType t;
  t.name = "IPC";
  t.flop_time = SimTime::micros(0.6);
  t.int_time = SimTime::micros(0.3);
  t.comm_per_byte = SimTime::nanos(1485);
  t.comm_per_message = SimTime::micros(900);
  t.data_format = DataFormat::BigEndian;
  t.coerce_per_byte = SimTime::nanos(600);
  return t;
}

ProcessorType sun4() {
  ProcessorType t = sparc2();
  t.name = "Sun4";
  return t;
}

ProcessorType hp9000() {
  ProcessorType t;
  t.name = "HP9000";
  t.flop_time = SimTime::micros(0.2);
  t.int_time = SimTime::micros(0.1);
  t.comm_per_byte = SimTime::nanos(500);
  t.comm_per_message = SimTime::micros(400);
  t.data_format = DataFormat::BigEndian;
  t.coerce_per_byte = SimTime::nanos(250);
  return t;
}

ProcessorType rs6000() {
  ProcessorType t;
  t.name = "RS6000";
  t.flop_time = SimTime::micros(0.12);
  t.int_time = SimTime::micros(0.08);
  t.comm_per_byte = SimTime::nanos(450);
  t.comm_per_message = SimTime::micros(350);
  t.data_format = DataFormat::BigEndian;
  t.coerce_per_byte = SimTime::nanos(200);
  return t;
}

ProcessorType i860() {
  ProcessorType t;
  t.name = "i860";
  t.flop_time = SimTime::micros(0.25);
  t.int_time = SimTime::micros(0.12);
  t.comm_per_byte = SimTime::nanos(700);
  t.comm_per_message = SimTime::micros(550);
  t.data_format = DataFormat::LittleEndian;
  t.coerce_per_byte = SimTime::nanos(350);
  return t;
}

Network paper_testbed() {
  NetworkBuilder b;
  ethernet_defaults(b);
  b.add_cluster("sparc2", sparc2(), 6);
  b.add_cluster("ipc", sun_ipc(), 6);
  return b.build();
}

Network fig1_network() {
  NetworkBuilder b;
  ethernet_defaults(b);
  b.add_cluster("sun4", sun4(), 8);
  b.add_cluster("hp", hp9000(), 4);
  b.add_cluster("rs6000", rs6000(), 4);
  return b.build();
}

Network coercion_testbed() {
  NetworkBuilder b;
  ethernet_defaults(b);
  b.add_cluster("sparc2", sparc2(), 6);
  b.add_cluster("i860", i860(), 6);
  return b.build();
}

Network metasystem() {
  // Multicomputer node: i860-class compute with a fast message
  // coprocessor -- per-message and per-byte host costs an order of
  // magnitude below the workstations'.
  ProcessorType node;
  node.name = "mc-node";
  node.flop_time = SimTime::micros(0.08);
  node.int_time = SimTime::micros(0.05);
  node.comm_per_byte = SimTime::nanos(60);
  node.comm_per_message = SimTime::micros(60);
  node.data_format = DataFormat::BigEndian;
  node.coerce_per_byte = SimTime::nanos(150);

  NetworkBuilder b;
  ethernet_defaults(b);
  b.relax_equal_bandwidth();
  // 80 Mbit/s internal interconnect with a small per-frame cost.
  b.add_cluster_on("multicomputer", node, 8, 80e6, SimTime::micros(10));
  b.add_cluster("sparc2", sparc2(), 6);
  b.add_cluster("ipc", sun_ipc(), 6);
  return b.build();
}

Network random_network(Rng& rng, int clusters, int max_per_cluster) {
  NP_REQUIRE(clusters >= 1, "need at least one cluster");
  NP_REQUIRE(max_per_cluster >= 2, "need at least two processors/cluster");
  NetworkBuilder b;
  ethernet_defaults(b);
  for (int i = 0; i < clusters; ++i) {
    ProcessorType t;
    t.name = "cpu" + std::to_string(i);
    // Flop times spread over roughly a factor of 6 (0.1 .. 0.6 us): the
    // Sparc2/IPC gap of the paper sits inside this range.
    t.flop_time = SimTime::micros(0.1 + 0.5 * rng.next_double());
    t.int_time = t.flop_time * 0.5;
    t.comm_per_byte = SimTime::nanos(rng.next_int(400, 1600));
    t.comm_per_message =
        SimTime::micros(static_cast<double>(rng.next_int(300, 1000)));
    t.data_format =
        rng.next_bool(0.25) ? DataFormat::LittleEndian : DataFormat::BigEndian;
    t.coerce_per_byte = SimTime::nanos(rng.next_int(200, 700));
    b.add_cluster(t.name, t,
                  static_cast<int>(rng.next_int(2, max_per_cluster)));
  }
  return b.build();
}

}  // namespace presets
}  // namespace netpart

// Canned networks.
//
// paper_testbed() reproduces the HPDC'94 evaluation platform: 6 Sun Sparc2
// and 6 Sun IPC workstations on two 10 Mbit/s ethernet segments joined by a
// router.  Host messaging parameters are calibrated so that benchmarking the
// 1-D topology in the simulator and fitting Eq. 1 lands near the constants
// the paper reports:
//
//   T_comm[C1,1-D] ~ (-.0055 + .00283 P1) b + 1.1 P1   (msec)
//   T_comm[C2,1-D] ~ (-.0123 + .00457 P2) b + 1.9 P2
//   T_router       ~ .0006 b
//
// In a chain of p stations, 2(p-1) messages serialise on the shared channel
// per cycle, so the fitted per-byte-per-processor slope c4 is twice the
// per-byte channel occupancy and the fitted per-processor latency c2 is
// twice the per-message fixed cost.  That gives:
//   Sparc2: fixed ~ 550 us/message, pacing ~ 0.6 us/byte (+0.8 us/byte wire)
//   IPC:    fixed ~ 950 us/message, pacing ~ 1.5 us/byte
#pragma once

#include "net/network.hpp"
#include "util/rng.hpp"

namespace netpart {
namespace presets {

/// Machine models.
ProcessorType sparc2();
ProcessorType sun_ipc();
ProcessorType sun4();     ///< Fig. 1 cluster
ProcessorType hp9000();   ///< Fig. 1 cluster
ProcessorType rs6000();   ///< Fig. 1 cluster
ProcessorType i860();     ///< little-endian model, exercises coercion

/// The evaluation platform of Section 6: 6 Sparc2 + 6 IPC.
Network paper_testbed();

/// The example network of Fig. 1: Sun4, HP, and RS-6000 clusters on three
/// ethernet segments joined by routers.
Network fig1_network();

/// A mixed-endianness network (Sparc2 + i860) for coercion experiments.
Network coercion_testbed();

/// A metasystem (the paper's Section 7 target): an 8-node multicomputer
/// whose internal interconnect is much faster than ethernet, next to the
/// two workstation clusters of the evaluation testbed.  Relaxes
/// assumption 1 (equal segment bandwidth).
Network metasystem();

/// A random heterogeneous network for ablation studies: `clusters` clusters
/// of 2..max_per_cluster processors whose speeds and messaging costs vary
/// around the Sparc2 baseline.
Network random_network(Rng& rng, int clusters, int max_per_cluster);

}  // namespace presets
}  // namespace netpart

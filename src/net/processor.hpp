// Processor types and processor instances.
//
// A ProcessorType captures everything the partitioner and the simulator need
// to know about a machine model: instruction rates (the paper's S_i), the
// host-side messaging overheads that make communication "faster on a cluster
// of Sun4's than on a cluster of Sun3's", and the data format used for
// coercion decisions.
#pragma once

#include <string>

#include "util/time.hpp"

namespace netpart {

/// Byte order of a machine's native data representation.  Messages between
/// clusters with different formats pay a per-byte coercion cost (T_coerce).
enum class DataFormat { BigEndian, LittleEndian };

/// Static description of a machine model (e.g. "Sparc2", "IPC").
struct ProcessorType {
  std::string name;

  /// Average time per floating-point operation (the paper's S_i; Sparc2 is
  /// about 0.3 us, IPC about 0.6 us).
  SimTime flop_time;

  /// Average time per integer operation.
  SimTime int_time;

  /// Host software cost to push one byte through the protocol stack
  /// (checksums, copies).  Slower CPUs send slower on the same wire.
  SimTime comm_per_byte;

  /// Host software cost per message (system call, UDP encapsulation).
  SimTime comm_per_message;

  DataFormat data_format = DataFormat::BigEndian;

  /// Time to coerce one byte into another representation when receiving
  /// from a machine with a different data format.
  SimTime coerce_per_byte;
};

/// Dynamic state of one machine.
struct Processor {
  /// CPU utilisation by other users in [0, 1].  The cluster manager's
  /// threshold policy decides availability from this.
  double load = 0.0;
};

}  // namespace netpart

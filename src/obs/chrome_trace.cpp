#include "obs/chrome_trace.hpp"

namespace netpart::obs {

namespace {

constexpr int kWallPid = 1;
constexpr int kSimPid = 2;

JsonValue args_json(const AttrList& attrs) {
  JsonValue args = JsonValue::object();
  for (const auto& [key, value] : attrs) {
    args.set(key, value);
  }
  return args;
}

JsonValue process_name(int pid, const char* name) {
  return JsonValue::object()
      .set("name", "process_name")
      .set("ph", "M")
      .set("pid", pid)
      .set("tid", 0)
      .set("args", JsonValue::object().set("name", name));
}

}  // namespace

JsonValue chrome_trace_json(const TelemetryRegistry& registry) {
  JsonValue events = JsonValue::array();
  events.push(process_name(kWallPid, "wall clock"));
  events.push(process_name(kSimPid, "simulated time"));

  for (const SpanRecord& span : registry.spans()) {
    JsonValue event = JsonValue::object()
                          .set("name", span.name)
                          .set("cat", span.category)
                          .set("ph", "X")
                          .set("ts", span.start_us)
                          .set("dur", span.dur_us)
                          .set("pid", span.sim_clock ? kSimPid : kWallPid)
                          .set("tid", static_cast<std::int64_t>(span.tid));
    if (!span.attrs.empty()) event.set("args", args_json(span.attrs));
    events.push(std::move(event));
  }
  for (const InstantRecord& instant : registry.instants()) {
    JsonValue event =
        JsonValue::object()
            .set("name", instant.name)
            .set("cat", instant.category)
            .set("ph", "i")
            .set("s", "t")
            .set("ts", instant.ts_us)
            .set("pid", instant.sim_clock ? kSimPid : kWallPid)
            .set("tid", static_cast<std::int64_t>(instant.tid));
    if (!instant.attrs.empty()) event.set("args", args_json(instant.attrs));
    events.push(std::move(event));
  }

  return JsonValue::object()
      .set("traceEvents", std::move(events))
      .set("displayTimeUnit", "ms");
}

void write_chrome_trace(std::ostream& os,
                        const TelemetryRegistry& registry) {
  os << chrome_trace_json(registry).dump(1);
}

}  // namespace netpart::obs

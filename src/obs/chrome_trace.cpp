#include "obs/chrome_trace.hpp"

#include <cstdio>

namespace netpart::obs {

namespace {

constexpr int kWallPid = 1;
constexpr int kSimPid = 2;

JsonValue args_json(const AttrList& attrs) {
  JsonValue args = JsonValue::object();
  for (const auto& [key, value] : attrs) {
    args.set(key, value);
  }
  return args;
}

JsonValue process_name(int pid, const std::string& name) {
  return JsonValue::object()
      .set("name", "process_name")
      .set("ph", "M")
      .set("pid", pid)
      .set("tid", 0)
      .set("args", JsonValue::object().set("name", name));
}

JsonValue span_event(const SpanRecord& span, int pid) {
  JsonValue event = JsonValue::object()
                        .set("name", span.name)
                        .set("cat", span.category)
                        .set("ph", "X")
                        .set("ts", span.start_us)
                        .set("dur", span.dur_us)
                        .set("pid", pid)
                        .set("tid", static_cast<std::int64_t>(span.tid));
  if (span.trace_id != 0 || !span.attrs.empty()) {
    JsonValue args = args_json(span.attrs);
    if (span.trace_id != 0) {
      args.set("trace_id", trace_id_hex(span.trace_id));
      args.set("span_id", trace_id_hex(span.span_id));
      if (span.parent_span_id != 0) {
        args.set("parent_span_id", trace_id_hex(span.parent_span_id));
      }
    }
    event.set("args", std::move(args));
  }
  return event;
}

JsonValue instant_event(const InstantRecord& instant, int pid) {
  JsonValue event = JsonValue::object()
                        .set("name", instant.name)
                        .set("cat", instant.category)
                        .set("ph", "i")
                        .set("s", "t")
                        .set("ts", instant.ts_us)
                        .set("pid", pid)
                        .set("tid", static_cast<std::int64_t>(instant.tid));
  if (!instant.attrs.empty()) event.set("args", args_json(instant.attrs));
  return event;
}

JsonValue trace_document(JsonValue events) {
  return JsonValue::object()
      .set("traceEvents", std::move(events))
      .set("displayTimeUnit", "ms");
}

}  // namespace

std::string trace_id_hex(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

JsonValue chrome_trace_json(const TelemetryRegistry& registry) {
  JsonValue events = JsonValue::array();
  events.push(process_name(kWallPid, "wall clock"));
  events.push(process_name(kSimPid, "simulated time"));

  for (const SpanRecord& span : registry.spans()) {
    events.push(span_event(span, span.sim_clock ? kSimPid : kWallPid));
  }
  for (const InstantRecord& instant : registry.instants()) {
    events.push(
        instant_event(instant, instant.sim_clock ? kSimPid : kWallPid));
  }

  return trace_document(std::move(events));
}

JsonValue chrome_trace_json(const std::vector<TraceLane>& lanes) {
  JsonValue events = JsonValue::array();
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    events.push(
        process_name(kLanePidBase + static_cast<int>(i), lanes[i].name));
  }
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const int pid = kLanePidBase + static_cast<int>(i);
    for (const SpanRecord& span : lanes[i].registry->spans()) {
      events.push(span_event(span, pid));
    }
    for (const InstantRecord& instant : lanes[i].registry->instants()) {
      events.push(instant_event(instant, pid));
    }
  }
  return trace_document(std::move(events));
}

void write_chrome_trace(std::ostream& os,
                        const TelemetryRegistry& registry) {
  os << chrome_trace_json(registry).dump(1);
}

void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceLane>& lanes) {
  os << chrome_trace_json(lanes).dump(1);
}

}  // namespace netpart::obs

// Chrome trace-event export (loadable in Perfetto / chrome://tracing).
//
// Spans render as complete events (ph "X"), instants as thread-scoped
// instant events (ph "i").  The two clocks become two processes -- pid 1
// "wall clock" and pid 2 "simulated time" -- named by metadata events, so
// the viewer never interleaves wall microseconds with simulated ones.
// Output is deterministic: metadata first, then events in recording order,
// rendered through the insertion-ordered util/json emitter.
//
// Trace identity: spans carrying a TraceContext export it in `args` as
// 16-digit hex strings ("trace_id"/"span_id"/"parent_span_id") -- strings
// because JSON doubles cannot hold 64 bits, and hex is what trace_check
// and humans grep for.  Untraced spans (trace_id 0) omit the keys, which
// keeps pre-PR 8 goldens stable.
//
// The multi-lane overload merges several registries -- one per fleet node
// -- into a single file: lane i renders on pid (10 + i) with a
// process_name metadata event, so Perfetto shows one swimlane per node and
// cross-node parent links stay resolvable via the id args.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "util/json.hpp"

namespace netpart::obs {

/// One process lane in a merged export: `name` becomes the Chrome
/// process_name, events come from `registry`.
struct TraceLane {
  std::string name;
  const TelemetryRegistry* registry = nullptr;
};

/// First pid used by the multi-lane export (lane i renders as pid
/// kLanePidBase + i; pids 1/2 stay reserved for the single-registry
/// wall/sim split).
inline constexpr int kLanePidBase = 10;

/// {"traceEvents": [...], "displayTimeUnit": "ms"}.
JsonValue chrome_trace_json(const TelemetryRegistry& registry);

/// Merged multi-lane export: lane i on pid (kLanePidBase + i), metadata
/// first, then each lane's spans and instants in recording order.
/// Deterministic for deterministic inputs.
JsonValue chrome_trace_json(const std::vector<TraceLane>& lanes);

/// chrome_trace_json() pretty-printed to `os`.
void write_chrome_trace(std::ostream& os, const TelemetryRegistry& registry);
void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceLane>& lanes);

/// 16-digit lowercase hex of a 64-bit id (the args encoding above).
std::string trace_id_hex(std::uint64_t id);

}  // namespace netpart::obs

// Chrome trace-event export (loadable in Perfetto / chrome://tracing).
//
// Spans render as complete events (ph "X"), instants as thread-scoped
// instant events (ph "i").  The two clocks become two processes -- pid 1
// "wall clock" and pid 2 "simulated time" -- named by metadata events, so
// the viewer never interleaves wall microseconds with simulated ones.
// Output is deterministic: metadata first, then events in recording order,
// rendered through the insertion-ordered util/json emitter.
#pragma once

#include <ostream>

#include "obs/telemetry.hpp"
#include "util/json.hpp"

namespace netpart::obs {

/// {"traceEvents": [...], "displayTimeUnit": "ms"}.
JsonValue chrome_trace_json(const TelemetryRegistry& registry);

/// chrome_trace_json() pretty-printed to `os`.
void write_chrome_trace(std::ostream& os, const TelemetryRegistry& registry);

}  // namespace netpart::obs

#include "obs/metrics.hpp"

#include "analysis/race/annotations.hpp"

namespace netpart::obs {

LatencyHistogram::LatencyHistogram(double lo_us, double hi_us,
                                   std::size_t buckets)
    : histogram_(lo_us, hi_us, buckets) {
  // npracer contract: the histogram and running stats (tracked as one
  // location) move only under mutex_.
  NP_GUARDED_BY(&stats_, &mutex_, "obs.latency.stats");
}

void LatencyHistogram::record(double us) {
  std::lock_guard lock(mutex_);
  NP_LOCK_SCOPE(&mutex_, "obs.latency.mutex");
  NP_WRITE(&stats_, "obs.latency.stats");
  histogram_.add(us);
  stats_.add(us);
}

std::size_t LatencyHistogram::count() const {
  std::lock_guard lock(mutex_);
  NP_LOCK_SCOPE(&mutex_, "obs.latency.mutex");
  NP_READ(&stats_, "obs.latency.stats");
  return stats_.count();
}

double LatencyHistogram::mean_us() const {
  std::lock_guard lock(mutex_);
  NP_LOCK_SCOPE(&mutex_, "obs.latency.mutex");
  NP_READ(&stats_, "obs.latency.stats");
  return stats_.mean();
}

double LatencyHistogram::min_us() const {
  std::lock_guard lock(mutex_);
  NP_LOCK_SCOPE(&mutex_, "obs.latency.mutex");
  NP_READ(&stats_, "obs.latency.stats");
  return stats_.min();
}

double LatencyHistogram::max_us() const {
  std::lock_guard lock(mutex_);
  NP_LOCK_SCOPE(&mutex_, "obs.latency.mutex");
  NP_READ(&stats_, "obs.latency.stats");
  return stats_.max();
}

QuantileSummary LatencyHistogram::quantiles() const {
  std::lock_guard lock(mutex_);
  NP_LOCK_SCOPE(&mutex_, "obs.latency.mutex");
  NP_READ(&stats_, "obs.latency.stats");
  if (stats_.count() == 0) return {};
  return summarize_quantiles(histogram_);
}

MetricsSnapshot snapshot_delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : after.counters) {
    const auto it = before.counters.find(name);
    const std::uint64_t base = it == before.counters.end() ? 0 : it->second;
    if (value != base) delta.counters.emplace(name, value - base);
  }
  for (const auto& [name, value] : after.latency_counts) {
    const auto it = before.latency_counts.find(name);
    const std::uint64_t base =
        it == before.latency_counts.end() ? 0 : it->second;
    if (value != base) delta.latency_counts.emplace(name, value - base);
  }
  return delta;
}

JsonValue snapshot_json(const MetricsSnapshot& snapshot) {
  JsonValue counters = JsonValue::object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.set(name, value);
  }
  JsonValue latencies = JsonValue::object();
  for (const auto& [name, value] : snapshot.latency_counts) {
    latencies.set(name, value);
  }
  return JsonValue::object()
      .set("counters", std::move(counters))
      .set("latency_counts", std::move(latencies));
}

std::string snapshot_text(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    out += "counter " + name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.latency_counts) {
    out += "latency " + name + " count " + std::to_string(value) + "\n";
  }
  return out;
}

}  // namespace netpart::obs

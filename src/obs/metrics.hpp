// Telemetry primitives shared by every subsystem (see DESIGN.md §9).
//
// Counter and LatencyHistogram used to live in svc/metrics.hpp; they moved
// here so the partitioner, estimator, adaptive executor, MMPS, and the
// service all meter through one vocabulary.  Callers resolve a metric once
// (registry mutex) and then update it lock-free (counters) or under the
// metric's own short lock (histograms), never the registry's.
//
// MetricsSnapshot captures the registry's counter values and histogram
// counts at a point in time; snapshot_delta() subtracts two snapshots so
// benchmarks can report what one phase cost without resetting anything.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace netpart::obs {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Latency distribution: a fixed-width histogram (drives the p50/p95/p99
/// quantile estimates) plus exact running mean/min/max.
class LatencyHistogram {
 public:
  /// Range in microseconds; samples outside clamp into the end buckets.
  LatencyHistogram(double lo_us, double hi_us, std::size_t buckets);

  void record(double us);

  std::size_t count() const;
  double mean_us() const;
  double min_us() const;
  double max_us() const;
  /// Interpolated from the histogram buckets (empty summary when count==0).
  QuantileSummary quantiles() const;

 private:
  mutable std::mutex mutex_;
  Histogram histogram_;
  RunningStats stats_;
};

/// Point-in-time view of a registry: counter values plus per-histogram
/// sample counts (the deterministic parts -- wall-clock latencies are
/// excluded so two identical seeded runs snapshot identically).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint64_t> latency_counts;
};

/// after - before, keeping only entries that changed (a metric absent from
/// `before` counts from zero).  Benchmarks wrap a phase in two snapshots
/// and report the delta.
MetricsSnapshot snapshot_delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after);

/// {"counters": {...}, "latency_counts": {...}} -- map order, so the
/// rendering is deterministic and name-ordered.
JsonValue snapshot_json(const MetricsSnapshot& snapshot);

/// One metric per line ("counter <name> <value>" / "latency <name> count
/// <n>"), name-ordered: byte-identical for identical snapshots.
std::string snapshot_text(const MetricsSnapshot& snapshot);

}  // namespace netpart::obs

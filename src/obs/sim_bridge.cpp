#include "obs/sim_bridge.hpp"

#include <deque>
#include <map>
#include <string>
#include <utility>

namespace netpart::obs {

namespace {

std::string ref_string(const ProcessorRef& ref) {
  // Built with += rather than one operator+ chain: gcc 12's -Wrestrict
  // fires a false positive on the chained temporaries under -O2.
  std::string out = "(";
  out += std::to_string(ref.cluster);
  out += ',';
  out += std::to_string(ref.index);
  out += ')';
  return out;
}

}  // namespace

void bridge_trace_log(const sim::TraceLog& log, TelemetryRegistry& registry,
                      SimTime origin) {
  using Kind = sim::TraceEvent::Kind;

  // One viewer lane per sending processor, numbered in first-seen order so
  // the export is deterministic for a deterministic log.
  std::map<std::pair<int, int>, std::uint32_t> lanes;
  const auto lane = [&lanes](const ProcessorRef& ref) {
    const auto [it, inserted] = lanes.try_emplace(
        {ref.cluster, ref.index},
        static_cast<std::uint32_t>(lanes.size()));
    (void)inserted;
    return it->second;
  };

  // FIFO-match sends to deliveries per (src, dst) pair, like
  // TraceLog::mean_latency (the simulator's channels are FIFO per pair).
  using Pair = std::pair<std::pair<int, int>, std::pair<int, int>>;
  struct Open {
    SimTime at;
    std::int64_t bytes;
  };
  std::map<Pair, std::deque<Open>> open;

  std::uint64_t delivered = 0;
  std::int64_t bytes_delivered = 0;
  std::uint64_t lost = 0;
  std::uint64_t dropped = 0;

  for (const sim::TraceEvent& e : log.events()) {
    const double ts_us = (origin + e.at).as_micros();
    const Pair key{{e.src.cluster, e.src.index},
                   {e.dst.cluster, e.dst.index}};
    switch (e.kind) {
      case Kind::SendInitiated:
        open[key].push_back({origin + e.at, e.bytes});
        continue;
      case Kind::Delivered: {
        ++delivered;
        bytes_delivered += e.bytes;
        auto& queue = open[key];
        if (queue.empty()) continue;  // send predates the log (ring drop)
        SpanRecord span;
        span.name = "msg";
        span.category = "sim.msg";
        span.sim_clock = true;
        span.tid = lane(e.src);
        span.start_us = queue.front().at.as_micros();
        span.dur_us = ts_us - span.start_us;
        span.attrs.emplace_back("src", ref_string(e.src));
        span.attrs.emplace_back("dst", ref_string(e.dst));
        span.attrs.emplace_back("bytes", JsonValue(e.bytes));
        queue.pop_front();
        registry.record_span(std::move(span));
        continue;
      }
      case Kind::FragmentLost:
        ++lost;
        break;
      case Kind::MessageDropped:
        ++dropped;
        break;
      default:
        break;
    }
    // Everything that was not a send/delivery becomes an instant: losses,
    // drops, and every fault/churn event from sim/faults.hpp.
    InstantRecord instant;
    instant.name = sim::TraceEvent::kind_name(e.kind);
    instant.category = "sim.event";
    instant.sim_clock = true;
    instant.tid = lane(e.src);
    instant.ts_us = ts_us;
    instant.attrs.emplace_back("src", ref_string(e.src));
    if (e.dst.cluster >= 0) {
      instant.attrs.emplace_back("dst", ref_string(e.dst));
    }
    if (e.bytes != 0) instant.attrs.emplace_back("bytes", JsonValue(e.bytes));
    if (e.segment >= 0) {
      instant.attrs.emplace_back("segment",
                                 JsonValue(static_cast<int>(e.segment)));
    }
    if (e.factor != 0.0) instant.attrs.emplace_back("factor", e.factor);
    registry.record_instant(std::move(instant));
  }

  registry.counter("sim.messages_delivered").add(delivered);
  registry.counter("sim.bytes_delivered")
      .add(static_cast<std::uint64_t>(bytes_delivered));
  registry.counter("sim.fragments_lost").add(lost);
  registry.counter("sim.messages_dropped").add(dropped);
  registry.counter("sim.trace_dropped_events").add(log.dropped_events());
  registry.counter("obs.trace.dropped").add(log.dropped_events());
}

void bridge_net_loss(const sim::NetSim& net, TelemetryRegistry& registry) {
  registry.counter("sim.messages_dropped").add(net.messages_dropped());
}

void bridge_trace_loss(const sim::TraceLog& log,
                       TelemetryRegistry& registry) {
  registry.counter("obs.trace.dropped").add(log.dropped_events());
}

}  // namespace netpart::obs

// sim::TraceLog -> telemetry bridge.
//
// The simulator's message-lifecycle tracer and the span timeline were two
// disconnected views of the same run.  This bridge folds a collected
// TraceLog into a TelemetryRegistry: each SendInitiated/Delivered pair
// becomes a sim-clock "msg" span (one lane per sender, so concurrent
// messages stack in the viewer), every other event -- fragment losses,
// drops, host/channel faults, availability churn -- becomes an instant
// event, and the aggregate counts (delivered, lost, dropped trace events)
// land in the registry's counters.  After bridging, `netpartd --trace-out`
// shows message traffic and fault onsets on the same Perfetto timeline as
// the partitioner and service spans.
// Silent-loss surfacing: the simulator counts what it discards --
// NetSim::messages_dropped() for dead-destination sends, TraceLog's
// dropped_events() for ring-buffer truncation -- but a getter nobody polls
// reads as a healthy run.  bridge_loss_counters() folds both into the
// registry's counters (`sim.messages_dropped`, `obs.trace.dropped`) so
// every metrics export carries the loss totals.
#pragma once

#include "obs/telemetry.hpp"
#include "sim/netsim.hpp"
#include "sim/trace.hpp"
#include "util/time.hpp"

namespace netpart::obs {

/// Fold `log` into `registry`.  `origin` shifts the log's local sim clock
/// onto the pipeline clock (the adaptive executor restarts each chunk's
/// simulator at time zero).  Ignores the registry's enabled() gate: the
/// caller holding a TraceLog has already opted into tracing.
void bridge_trace_log(const sim::TraceLog& log, TelemetryRegistry& registry,
                      SimTime origin = SimTime::zero());

/// Record the simulator's cumulative message-drop count as the
/// `sim.messages_dropped` counter.  Counters are monotonic adds, so call
/// once per (net, registry) pair -- typically right before export.
void bridge_net_loss(const sim::NetSim& net, TelemetryRegistry& registry);

/// Record a TraceLog's ring-buffer truncation count as the
/// `obs.trace.dropped` counter (same once-per-export discipline).
void bridge_trace_loss(const sim::TraceLog& log,
                       TelemetryRegistry& registry);

}  // namespace netpart::obs

// sim::TraceLog -> telemetry bridge.
//
// The simulator's message-lifecycle tracer and the span timeline were two
// disconnected views of the same run.  This bridge folds a collected
// TraceLog into a TelemetryRegistry: each SendInitiated/Delivered pair
// becomes a sim-clock "msg" span (one lane per sender, so concurrent
// messages stack in the viewer), every other event -- fragment losses,
// drops, host/channel faults, availability churn -- becomes an instant
// event, and the aggregate counts (delivered, lost, dropped trace events)
// land in the registry's counters.  After bridging, `netpartd --trace-out`
// shows message traffic and fault onsets on the same Perfetto timeline as
// the partitioner and service spans.
#pragma once

#include "obs/telemetry.hpp"
#include "sim/trace.hpp"
#include "util/time.hpp"

namespace netpart::obs {

/// Fold `log` into `registry`.  `origin` shifts the log's local sim clock
/// onto the pipeline clock (the adaptive executor restarts each chunk's
/// simulator at time zero).  Ignores the registry's enabled() gate: the
/// caller holding a TraceLog has already opted into tracing.
void bridge_trace_log(const sim::TraceLog& log, TelemetryRegistry& registry,
                      SimTime origin = SimTime::zero());

}  // namespace netpart::obs

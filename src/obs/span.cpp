#include "obs/span.hpp"

namespace netpart::obs {

namespace {
thread_local int t_span_depth = 0;
}  // namespace

Span::Span(TelemetryRegistry& registry, const char* name,
           const char* category) {
  if (!registry.enabled()) return;
  registry_ = &registry;
  name_ = name;
  category_ = category;
  start_us_ = registry.wall_now_us();
  open_context(registry);
  ++t_span_depth;
}

Span::Span(TelemetryRegistry& registry, const char* name, SimTime start,
           const char* category) {
  if (!registry.enabled()) return;
  registry_ = &registry;
  name_ = name;
  category_ = category;
  sim_clock_ = true;
  start_us_ = start.as_micros();
  end_us_ = start_us_;
  open_context(registry);
  ++t_span_depth;
}

void Span::open_context(TelemetryRegistry& registry) {
  const TraceContext parent = current_context();
  context_.trace_id =
      parent.valid() ? parent.trace_id : registry.next_trace_id();
  context_.span_id = registry.next_trace_id();
  context_.parent_span_id = parent.valid() ? parent.span_id : 0;
  detail::push_context(context_);
}

Span::~Span() {
  if (registry_ == nullptr || ended_) return;
  finish(sim_clock_ ? end_us_ : registry_->wall_now_us());
}

void Span::attr(const char* key, JsonValue value) {
  if (registry_ == nullptr || ended_) return;
  attrs_.emplace_back(key, std::move(value));
}

void Span::end() {
  if (registry_ == nullptr || ended_) return;
  finish(sim_clock_ ? end_us_ : registry_->wall_now_us());
}

void Span::end_at(SimTime end) {
  if (registry_ == nullptr || ended_) return;
  finish(end.as_micros());
}

int Span::depth() { return t_span_depth; }

void Span::finish(double end_us) {
  ended_ = true;
  --t_span_depth;
  detail::pop_context();
  SpanRecord record;
  record.name = name_;
  record.category = category_;
  record.sim_clock = sim_clock_;
  record.tid = this_thread_id();
  record.start_us = start_us_;
  record.dur_us = end_us > start_us_ ? end_us - start_us_ : 0.0;
  record.trace_id = context_.trace_id;
  record.span_id = context_.span_id;
  record.parent_span_id = context_.parent_span_id;
  record.attrs = std::move(attrs_);
  registry_->record_span(std::move(record));
}

}  // namespace netpart::obs

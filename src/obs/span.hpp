// RAII spans over the telemetry registry (see DESIGN.md §9).
//
// A Span brackets one unit of work and records a SpanRecord when it ends.
// Two clocks:
//
//   * wall clock -- the default; start/end are taken from the registry's
//     steady-clock timebase.  Used by real concurrent code (the service,
//     the partitioner running on worker threads).
//   * explicit sim clock -- the overload taking a SimTime start; the
//     simulator stamps both ends itself via end_at(), because simulated
//     work does not advance the wall clock.  Used by the adaptive executor
//     and the sim TraceLog bridge.
//
// Spans form a per-thread stack (strict LIFO: construct them as locals).
// Span::depth() exposes the nesting level; Chrome trace viewers nest
// complete events by timestamp containment, so the stack exists mainly to
// keep instrumented callees cheap and attribution-free.
//
// Disabled path: when the registry's span recording is off at construction
// time, the Span holds a null registry and every member is a single branch
// -- no strings are built, no attribute storage is allocated, no trace ids
// are drawn.
//
// Trace identity (DESIGN.md §13): an enabled span draws a span_id from its
// registry and parents itself under the thread's current TraceContext --
// the enclosing Span's, or one adopted from another thread/node via
// ContextScope.  With no current context it opens a new root trace.  The
// context is pushed for the span's lifetime, so nesting and adoption
// compose without any caller wiring.
#pragma once

#include <utility>

#include "obs/telemetry.hpp"
#include "util/time.hpp"

namespace netpart::obs {

class Span {
 public:
  /// Wall-clock span.  `name`/`category` must be string literals (or
  /// otherwise outlive the span): the disabled path must not copy them.
  Span(TelemetryRegistry& registry, const char* name,
       const char* category = "app");

  /// Sim-clock span starting at `start`; close it with end_at().  A
  /// sim-clock span destroyed without end_at() records zero duration.
  Span(TelemetryRegistry& registry, const char* name, SimTime start,
       const char* category = "sim");

  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// No-op when the span is disabled.
  void attr(const char* key, JsonValue value);

  /// End a wall-clock span now (idempotent; the destructor calls it).
  void end();

  /// End a sim-clock span at the given simulated time.
  void end_at(SimTime end);

  bool active() const { return registry_ != nullptr; }

  /// This span's trace identity -- capture it to parent work on another
  /// thread or node under this span (invalid when the span is disabled).
  const TraceContext& context() const { return context_; }

  /// Nesting depth of this thread's innermost active span (0 = none).
  static int depth();

 private:
  void finish(double end_us);
  void open_context(TelemetryRegistry& registry);

  TelemetryRegistry* registry_ = nullptr;
  const char* name_ = "";
  const char* category_ = "";
  TraceContext context_;
  bool sim_clock_ = false;
  bool ended_ = false;
  double start_us_ = 0.0;
  double end_us_ = 0.0;
  AttrList attrs_;
};

}  // namespace netpart::obs

#include "obs/telemetry.hpp"

#include "analysis/race/annotations.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

namespace netpart::obs {

namespace {
constexpr std::size_t kDefaultRecordCapacity = 1 << 18;  // 262144 events

std::atomic<std::uint32_t> g_next_thread_id{0};
}  // namespace

std::uint32_t this_thread_id() {
  thread_local const std::uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

TelemetryRegistry::TelemetryRegistry(bool enabled)
    : enabled_(enabled),
      record_capacity_(kDefaultRecordCapacity),
      wall_origin_(std::chrono::steady_clock::now()) {
  // npracer contract: the metric maps move under metrics_mutex_; the span
  // and instant buffers (tracked as one location) under events_mutex_.
  NP_GUARDED_BY(&counters_, &metrics_mutex_, "obs.telemetry.counters");
  NP_GUARDED_BY(&spans_, &events_mutex_, "obs.telemetry.events");
}

TelemetryRegistry& TelemetryRegistry::global() {
  static TelemetryRegistry* registry =
      new TelemetryRegistry(/*enabled=*/false);  // leaked: outlives statics
  return *registry;
}

void TelemetryRegistry::set_trace_seed(std::uint64_t seed,
                                       std::uint64_t stream) {
  trace_ids_.reset(seed, stream);
}

void TelemetryRegistry::set_enabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
  if (this == &global()) {
    detail_global_enabled.store(enabled, std::memory_order_relaxed);
  }
}

Counter& TelemetryRegistry::counter(const std::string& name) {
  std::lock_guard lock(metrics_mutex_);
  NP_LOCK_SCOPE(&metrics_mutex_, "obs.telemetry.metrics_mutex");
  NP_WRITE(&counters_, "obs.telemetry.counters");
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
    // Counter::add is a relaxed fetch_add by design: metric increments
    // are deliberately unordered against each other, and readers only see
    // totals through value()'s own atomic load.
    NP_BENIGN_RACE(slot.get(), "obs.counter",
                   "relaxed fetch_add counter; increments need no ordering");
  }
  return *slot;
}

LatencyHistogram& TelemetryRegistry::latency(const std::string& name,
                                             double lo_us, double hi_us,
                                             std::size_t buckets) {
  std::lock_guard lock(metrics_mutex_);
  NP_LOCK_SCOPE(&metrics_mutex_, "obs.telemetry.metrics_mutex");
  NP_WRITE(&counters_, "obs.telemetry.counters");
  auto& slot = latencies_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>(lo_us, hi_us, buckets);
  return *slot;
}

MetricsSnapshot TelemetryRegistry::snapshot() const {
  std::lock_guard lock(metrics_mutex_);
  NP_LOCK_SCOPE(&metrics_mutex_, "obs.telemetry.metrics_mutex");
  NP_READ(&counters_, "obs.telemetry.counters");
  MetricsSnapshot snapshot;
  for (const auto& [name, c] : counters_) {
    snapshot.counters.emplace(name, c->value());
  }
  for (const auto& [name, h] : latencies_) {
    snapshot.latency_counts.emplace(name,
                                    static_cast<std::uint64_t>(h->count()));
  }
  return snapshot;
}

JsonValue TelemetryRegistry::to_json() const {
  std::lock_guard lock(metrics_mutex_);
  NP_LOCK_SCOPE(&metrics_mutex_, "obs.telemetry.metrics_mutex");
  NP_READ(&counters_, "obs.telemetry.counters");
  JsonValue counters = JsonValue::object();
  for (const auto& [name, c] : counters_) {
    counters.set(name, c->value());
  }
  JsonValue latencies = JsonValue::object();
  for (const auto& [name, h] : latencies_) {
    const QuantileSummary q = h->quantiles();
    latencies.set(name,
                  JsonValue::object()
                      .set("count", static_cast<std::uint64_t>(h->count()))
                      .set("mean_us", h->mean_us())
                      .set("min_us", h->min_us())
                      .set("max_us", h->max_us())
                      .set("p50_us", q.p50)
                      .set("p90_us", q.p90)
                      .set("p95_us", q.p95)
                      .set("p99_us", q.p99));
  }
  return JsonValue::object()
      .set("counters", std::move(counters))
      .set("latencies", std::move(latencies));
}

void TelemetryRegistry::write_csv(std::ostream& os) const {
  std::lock_guard lock(metrics_mutex_);
  NP_LOCK_SCOPE(&metrics_mutex_, "obs.telemetry.metrics_mutex");
  NP_READ(&counters_, "obs.telemetry.counters");
  CsvWriter csv(os, {"kind", "name", "field", "value"});
  for (const auto& [name, c] : counters_) {
    csv.write_row({"counter", name, "value", std::to_string(c->value())});
  }
  const auto row = [&csv](const std::string& name, const std::string& field,
                          double v) {
    csv.write_row({"latency", name, field, format_double(v, 3)});
  };
  for (const auto& [name, h] : latencies_) {
    const QuantileSummary q = h->quantiles();
    csv.write_row({"latency", name, "count", std::to_string(h->count())});
    row(name, "mean_us", h->mean_us());
    row(name, "min_us", h->min_us());
    row(name, "max_us", h->max_us());
    row(name, "p50_us", q.p50);
    row(name, "p90_us", q.p90);
    row(name, "p95_us", q.p95);
    row(name, "p99_us", q.p99);
  }
}

std::string TelemetryRegistry::metrics_text() const {
  return metrics_text(std::string_view{});
}

std::string TelemetryRegistry::metrics_text(std::string_view dimension) const {
  // Built piecewise rather than via `"{" + std::string(dimension) + "}"`:
  // that operator+ chain trips GCC 12's -Wrestrict false positive
  // (PR 105329) under -Werror in the strict preset.
  std::string label;
  if (!dimension.empty()) {
    label.reserve(dimension.size() + 2);
    label.push_back('{');
    label.append(dimension);
    label.push_back('}');
  }
  std::lock_guard lock(metrics_mutex_);
  NP_LOCK_SCOPE(&metrics_mutex_, "obs.telemetry.metrics_mutex");
  NP_READ(&counters_, "obs.telemetry.counters");
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += "counter " + name + label + " " + std::to_string(c->value()) +
           "\n";
  }
  for (const auto& [name, h] : latencies_) {
    const QuantileSummary q = h->quantiles();
    out += "latency " + name + label + " count " +
           std::to_string(h->count()) + " mean_us " +
           format_double(h->mean_us(), 3) + " min_us " +
           format_double(h->min_us(), 3) + " max_us " +
           format_double(h->max_us(), 3) + " p50_us " +
           format_double(q.p50, 3) + " p90_us " + format_double(q.p90, 3) +
           " p95_us " + format_double(q.p95, 3) + " p99_us " +
           format_double(q.p99, 3) + "\n";
  }
  return out;
}

void TelemetryRegistry::record_span(SpanRecord record) {
  std::lock_guard lock(events_mutex_);
  NP_LOCK_SCOPE(&events_mutex_, "obs.telemetry.events_mutex");
  NP_WRITE(&spans_, "obs.telemetry.events");
  if (spans_.size() + instants_.size() >= record_capacity_) {
    ++dropped_;
    return;
  }
  spans_.push_back(std::move(record));
}

void TelemetryRegistry::record_instant(InstantRecord record) {
  std::lock_guard lock(events_mutex_);
  NP_LOCK_SCOPE(&events_mutex_, "obs.telemetry.events_mutex");
  NP_WRITE(&spans_, "obs.telemetry.events");
  if (spans_.size() + instants_.size() >= record_capacity_) {
    ++dropped_;
    return;
  }
  instants_.push_back(std::move(record));
}

std::vector<SpanRecord> TelemetryRegistry::spans() const {
  std::lock_guard lock(events_mutex_);
  NP_LOCK_SCOPE(&events_mutex_, "obs.telemetry.events_mutex");
  NP_READ(&spans_, "obs.telemetry.events");
  return {spans_.begin(), spans_.end()};
}

std::vector<InstantRecord> TelemetryRegistry::instants() const {
  std::lock_guard lock(events_mutex_);
  NP_LOCK_SCOPE(&events_mutex_, "obs.telemetry.events_mutex");
  NP_READ(&spans_, "obs.telemetry.events");
  return {instants_.begin(), instants_.end()};
}

std::size_t TelemetryRegistry::span_count() const {
  std::lock_guard lock(events_mutex_);
  NP_LOCK_SCOPE(&events_mutex_, "obs.telemetry.events_mutex");
  NP_READ(&spans_, "obs.telemetry.events");
  return spans_.size();
}

std::uint64_t TelemetryRegistry::dropped_records() const {
  std::lock_guard lock(events_mutex_);
  NP_LOCK_SCOPE(&events_mutex_, "obs.telemetry.events_mutex");
  NP_READ(&spans_, "obs.telemetry.events");
  return dropped_;
}

void TelemetryRegistry::set_record_capacity(std::size_t capacity) {
  std::lock_guard lock(events_mutex_);
  NP_LOCK_SCOPE(&events_mutex_, "obs.telemetry.events_mutex");
  NP_WRITE(&spans_, "obs.telemetry.events");
  record_capacity_ = capacity;
}

void TelemetryRegistry::clear_events() {
  std::lock_guard lock(events_mutex_);
  NP_LOCK_SCOPE(&events_mutex_, "obs.telemetry.events_mutex");
  NP_WRITE(&spans_, "obs.telemetry.events");
  spans_.clear();
  instants_.clear();
  dropped_ = 0;
}

double TelemetryRegistry::wall_now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - wall_origin_)
      .count();
}

}  // namespace netpart::obs

// Process-wide telemetry registry (see DESIGN.md §9).
//
// One TelemetryRegistry holds everything a run observes: named counters,
// latency histograms, and the structured span/instant event buffer that the
// Chrome-trace exporter renders.  The PartitionService keeps a private
// instance (its counters are per-service state the tests assert on); the
// library instrumentation in core/, exec/, svc/, and mmps/ writes to
// TelemetryRegistry::global() so one `netpartd --trace-out` file shows the
// partitioner search, the service request lifecycle, and the adaptive
// executor's repartitions on a single timeline.
//
// Cost discipline: counters are a relaxed atomic add; spans are recorded
// only while `enabled()` -- the disabled path is one relaxed load and no
// allocation, so always-on instrumentation in hot paths stays free.  The
// event buffer is capacity-bounded: once full, new records are dropped and
// counted (`dropped_records()`), never grown without bound.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_context.hpp"
#include "util/json.hpp"
#include "util/time.hpp"

namespace netpart::obs {

/// Attribute list attached to spans and instants ("args" in Chrome trace).
using AttrList = std::vector<std::pair<std::string, JsonValue>>;

/// A completed span.  `sim_clock` separates the two timelines: wall spans
/// are stamped in microseconds since the registry was constructed, sim
/// spans in simulated microseconds -- the exporter renders them as two
/// processes so Perfetto never interleaves the clocks.
struct SpanRecord {
  std::string name;
  std::string category;
  bool sim_clock = false;
  std::uint32_t tid = 0;
  double start_us = 0.0;
  double dur_us = 0.0;
  /// Trace identity (DESIGN.md §13).  0 = untraced (pre-PR 8 producers or
  /// spans recorded while id generation is unseeded-default).
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  AttrList attrs;
};

/// A point event (fault onsets, sheds, drops).
struct InstantRecord {
  std::string name;
  std::string category;
  bool sim_clock = false;
  std::uint32_t tid = 0;
  double ts_us = 0.0;
  AttrList attrs;
};

/// Stable small integer identifying the calling thread (assigned on first
/// use, process-wide).  Chrome trace events use it as `tid`.
std::uint32_t this_thread_id();

class TelemetryRegistry {
 public:
  /// A locally constructed registry starts with span recording enabled;
  /// the process-wide global() starts disabled (pay for tracing only when
  /// a front-end like `netpartd --trace-out` opts in).
  explicit TelemetryRegistry(bool enabled = true);

  TelemetryRegistry(const TelemetryRegistry&) = delete;
  TelemetryRegistry& operator=(const TelemetryRegistry&) = delete;

  /// The process-wide registry the library instrumentation targets.
  static TelemetryRegistry& global();

  /// Whether global() is currently recording spans, as one relaxed atomic
  /// load -- no initialisation guard, no registry lookup.  Hot paths (the
  /// estimator's per-evaluation check) branch on this and skip all
  /// telemetry work, including counter lookups, when tracing is off.
  static bool global_enabled() {
    return detail_global_enabled.load(std::memory_order_relaxed);
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled);

  // --- trace identity --------------------------------------------------
  /// Re-seed this registry's span-id source (stream separates fleet nodes
  /// sharing one seed).  Call before recording; ids already handed out
  /// keep their values.
  void set_trace_seed(std::uint64_t seed, std::uint64_t stream = 0);
  /// Next deterministic 64-bit id (never 0).
  std::uint64_t next_trace_id() { return trace_ids_.next(); }

  // --- metrics --------------------------------------------------------
  /// Find-or-create.  References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  LatencyHistogram& latency(const std::string& name, double lo_us,
                            double hi_us, std::size_t buckets);

  MetricsSnapshot snapshot() const;

  /// {"counters": {name: value...},
  ///  "latencies": {name: {count, mean_us, min_us, max_us, p50_us...}}}
  JsonValue to_json() const;

  /// Long-form rows: kind,name,field,value (one row per exported number).
  void write_csv(std::ostream& os) const;

  /// Full metrics dump, one per line, name-ordered.  Counters render as
  /// "counter <name> <value>"; histograms add count/mean/min/max and the
  /// quantile estimates.  Deterministic for deterministic inputs.
  std::string metrics_text() const;

  /// Same rows with a `{<dimension>}` label suffix after each name, e.g.
  /// `counter fleet.node.requests{node=2} 57`.  The fleet merger uses it
  /// to keep per-node lanes distinct in one combined dump; the plain
  /// overload's format is unchanged (tier-1 tooling greps it).
  std::string metrics_text(std::string_view dimension) const;

  // --- structured events ----------------------------------------------
  void record_span(SpanRecord record);
  void record_instant(InstantRecord record);

  /// Copies (the live buffers stay locked only for the copy).
  std::vector<SpanRecord> spans() const;
  std::vector<InstantRecord> instants() const;
  std::size_t span_count() const;

  /// Records rejected because the event buffer was full.
  std::uint64_t dropped_records() const;
  /// Combined span+instant capacity; lowering it below the current size
  /// does not evict already-recorded events.
  void set_record_capacity(std::size_t capacity);

  void clear_events();

  /// Microseconds since this registry was constructed (the wall-span
  /// timebase; small offsets keep Chrome-trace timestamps readable).
  double wall_now_us() const;

 private:
  /// Mirror of global()'s enabled_ flag.  Constant-initialised, so it is
  /// readable without (and before) constructing the global registry.
  static inline std::atomic<bool> detail_global_enabled{false};

  std::atomic<bool> enabled_;
  TraceIdGenerator trace_ids_;

  mutable std::mutex metrics_mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> latencies_;

  mutable std::mutex events_mutex_;
  std::deque<SpanRecord> spans_;
  std::deque<InstantRecord> instants_;
  std::size_t record_capacity_;
  std::uint64_t dropped_ = 0;

  std::chrono::steady_clock::time_point wall_origin_;
};

}  // namespace netpart::obs

#include "obs/trace_context.hpp"

#include <vector>

#include "analysis/race/recorder.hpp"

namespace netpart::obs {

namespace {

// npracer's recorder is a leaf library and cannot link obs; it learns the
// active span through this probe instead, so every recorded annotation
// event carries its (trace_id, span_id) and race reports can name both
// stacks' span context.  Registered at static-init: the probe target is a
// constant-initialized atomic in np_race, so order does not matter.
[[maybe_unused]] const bool kRaceProbeRegistered = [] {
  analysis::race::set_context_probe(
      [](std::uint64_t* trace_id, std::uint64_t* span_id) {
        const TraceContext ctx = current_context();
        *trace_id = ctx.trace_id;
        *span_id = ctx.span_id;
      });
  return true;
}();

constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;  // SplitMix64 step

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

thread_local std::vector<TraceContext> t_context_stack;

}  // namespace

void TraceIdGenerator::reset(std::uint64_t seed, std::uint64_t stream) {
  // Avalanche the stream into the base so per-node streams of the same
  // seed land far apart, then let next() walk the Weyl sequence from it.
  base_ = mix64(seed ^ mix64(stream * kGamma + 1));
  sequence_.store(0, std::memory_order_relaxed);
}

std::uint64_t TraceIdGenerator::next() {
  const std::uint64_t n =
      sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t id = mix64(base_ + n * kGamma);
  return id != 0 ? id : 1;  // 0 means "no id"; remap the (2^-64) collision
}

TraceContext current_context() {
  if (t_context_stack.empty()) return TraceContext{};
  return t_context_stack.back();
}

ContextScope::ContextScope(const TraceContext& ctx) {
  if (!ctx.valid()) return;
  t_context_stack.push_back(ctx);
  pushed_ = true;
}

ContextScope::~ContextScope() {
  if (pushed_) t_context_stack.pop_back();
}

namespace detail {

void push_context(const TraceContext& ctx) {
  t_context_stack.push_back(ctx);
}

void pop_context() { t_context_stack.pop_back(); }

}  // namespace detail

}  // namespace netpart::obs

#include "obs/trace_context.hpp"

#include <vector>

namespace netpart::obs {

namespace {

constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;  // SplitMix64 step

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

thread_local std::vector<TraceContext> t_context_stack;

}  // namespace

void TraceIdGenerator::reset(std::uint64_t seed, std::uint64_t stream) {
  // Avalanche the stream into the base so per-node streams of the same
  // seed land far apart, then let next() walk the Weyl sequence from it.
  base_ = mix64(seed ^ mix64(stream * kGamma + 1));
  sequence_.store(0, std::memory_order_relaxed);
}

std::uint64_t TraceIdGenerator::next() {
  const std::uint64_t n =
      sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t id = mix64(base_ + n * kGamma);
  return id != 0 ? id : 1;  // 0 means "no id"; remap the (2^-64) collision
}

TraceContext current_context() {
  if (t_context_stack.empty()) return TraceContext{};
  return t_context_stack.back();
}

ContextScope::ContextScope(const TraceContext& ctx) {
  if (!ctx.valid()) return;
  t_context_stack.push_back(ctx);
  pushed_ = true;
}

ContextScope::~ContextScope() {
  if (pushed_) t_context_stack.pop_back();
}

namespace detail {

void push_context(const TraceContext& ctx) {
  t_context_stack.push_back(ctx);
}

void pop_context() { t_context_stack.pop_back(); }

}  // namespace detail

}  // namespace netpart::obs

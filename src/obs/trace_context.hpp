// Span identity and cross-hop propagation (see DESIGN.md §13).
//
// A TraceContext names one span globally: `trace_id` groups every span a
// single logical request produced (across threads and across fleet nodes),
// `span_id` names this span, `parent_span_id` links it to the span that
// caused it (0 = root).  Contexts travel two ways:
//
//   * within a thread -- obs::Span pushes its context on a thread-local
//     stack; a nested Span becomes its child automatically.
//   * across threads or nodes -- the producer captures `Span::context()`,
//     ships it (struct copy, or the fleet wire encoding in fleet/wire.hpp),
//     and the consumer re-establishes it with a ContextScope before opening
//     its own spans.
//
// Identity is deterministic: ids come from a TraceIdGenerator, a seeded
// SplitMix64 counter stream.  Same seed, same allocation order, same ids --
// sim runs stay replayable and the merged fleet exports golden-testable.
// Zero is reserved as "no id": a context with trace_id 0 is invalid and a
// ContextScope over it is a no-op.
#pragma once

#include <atomic>
#include <cstdint>

namespace netpart::obs {

struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  bool valid() const { return trace_id != 0; }

  friend bool operator==(const TraceContext& a, const TraceContext& b) {
    return a.trace_id == b.trace_id && a.span_id == b.span_id &&
           a.parent_span_id == b.parent_span_id;
  }
};

/// Deterministic id source: the i-th call returns
/// splitmix64(base + i * gamma) where `base` is derived from (seed,
/// stream).  Distinct streams (one per fleet node) give disjoint-looking
/// id sequences from one seed.  Thread-safe (one relaxed fetch_add per
/// id); never returns 0.
class TraceIdGenerator {
 public:
  explicit TraceIdGenerator(std::uint64_t seed = 1, std::uint64_t stream = 0) {
    reset(seed, stream);
  }

  /// Re-seed; the next id restarts the (seed, stream) sequence.
  void reset(std::uint64_t seed, std::uint64_t stream = 0);

  std::uint64_t next();

 private:
  std::uint64_t base_ = 0;
  std::atomic<std::uint64_t> sequence_{0};
};

/// This thread's innermost propagated-or-active context (invalid when no
/// span is open and nothing was adopted).  New spans become its children.
TraceContext current_context();

/// RAII adoption of a context shipped from another thread or node: spans
/// opened inside the scope become children of `ctx`.  Adopting an invalid
/// context is a no-op (spans open as roots, as without the scope).
class ContextScope {
 public:
  explicit ContextScope(const TraceContext& ctx);
  ~ContextScope();

  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  bool pushed_ = false;
};

namespace detail {
/// Raw stack access for obs::Span (push on open, pop on finish).
void push_context(const TraceContext& ctx);
void pop_context();
}  // namespace detail

}  // namespace netpart::obs

#include "sim/channel.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace netpart::sim {

Channel::Channel(double bandwidth_bps, SimTime frame_overhead)
    : frame_overhead_(frame_overhead) {
  NP_REQUIRE(bandwidth_bps > 0, "bandwidth must be positive");
  // bits/sec -> ns/byte.
  byte_time_ = SimTime::nanos(
      static_cast<std::int64_t>(8.0 * 1e9 / bandwidth_bps + 0.5));
}

ChannelGrant Channel::reserve(SimTime ready_at, SimTime occupancy) {
  NP_REQUIRE(occupancy >= SimTime::zero(), "occupancy must be non-negative");
  if (degradation_ != 1.0) occupancy = occupancy * degradation_;
  ChannelGrant grant;
  grant.start = std::max(ready_at, busy_until_);
  grant.end = grant.start + occupancy;
  busy_until_ = grant.end;
  total_busy_ += occupancy;
  return grant;
}

void Channel::set_degradation(double factor) {
  NP_REQUIRE(factor >= 1.0, "degradation factor must be >= 1");
  degradation_ = factor;
}

SimTime Channel::wire_time(std::int64_t bytes) const {
  NP_REQUIRE(bytes >= 0, "bytes must be non-negative");
  return byte_time_ * bytes;
}

}  // namespace netpart::sim

// Shared-medium channel model.
//
// An ethernet segment is modelled as a FIFO resource: transmissions
// serialise, so with p stations offering load the per-cycle channel time is
// linear in p -- exactly the contention behaviour the paper's Eq. 1 encodes
// with its c2*p and c4*b*p terms.  We deliberately do not model CSMA/CD
// backoff; under the paper's "lightly loaded network" measurement conditions
// serialisation is the dominant effect, and the cost-function *fit* is what
// the partitioner consumes.
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace netpart::sim {

/// A reservation granted by the channel.
struct ChannelGrant {
  SimTime start;  ///< when the transmission begins on the wire
  SimTime end;    ///< when the channel becomes free again
};

class Channel {
 public:
  explicit Channel(double bandwidth_bps, SimTime frame_overhead);

  /// Reserve the channel for a transmission that is ready at `ready_at` and
  /// occupies the medium for `occupancy`.  The transmission starts when the
  /// channel frees up (FIFO order of reservation calls).
  ChannelGrant reserve(SimTime ready_at, SimTime occupancy);

  /// Wire time for `bytes` at the raw bandwidth (no overheads).
  SimTime wire_time(std::int64_t bytes) const;

  /// Per-byte wire time.
  SimTime byte_time() const { return byte_time_; }

  SimTime frame_overhead() const { return frame_overhead_; }

  /// Time at which the channel is next free.
  SimTime busy_until() const { return busy_until_; }

  /// Total busy time accumulated (utilisation accounting).
  SimTime total_busy() const { return total_busy_; }

  /// Fault state: a down (partitioned / flapping) segment still serialises
  /// transmission attempts but drops every fragment, so the reliable layer
  /// sees pure loss until the channel comes back.
  bool down() const { return down_; }
  void set_down(bool down) { down_ = down; }

  /// Bandwidth degradation (>= 1): reservations occupy the medium for
  /// `factor` times the nominal occupancy (effective bandwidth divided by
  /// `factor`), modelling a saturated or renegotiated segment.
  double degradation() const { return degradation_; }
  void set_degradation(double factor);

 private:
  SimTime byte_time_;
  SimTime frame_overhead_;
  SimTime busy_until_ = SimTime::zero();
  SimTime total_busy_ = SimTime::zero();
  bool down_ = false;
  double degradation_ = 1.0;
};

}  // namespace netpart::sim

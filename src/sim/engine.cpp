#include "sim/engine.hpp"

#include <utility>

#include "util/error.hpp"

namespace netpart::sim {

void Engine::schedule_at(SimTime at, Action action) {
  NP_REQUIRE(at >= now_, "cannot schedule events in the past");
  NP_REQUIRE(action != nullptr, "event action must be callable");
  queue_.push(Entry{at, next_seq_++, std::move(action)});
}

void Engine::schedule_after(SimTime delay, Action action) {
  NP_REQUIRE(delay >= SimTime::zero(), "delay must be non-negative");
  schedule_at(now_ + delay, std::move(action));
}

SimTime Engine::run() {
  while (step()) {
  }
  return now_;
}

SimTime Engine::run_until(SimTime limit) {
  while (!queue_.empty() && queue_.top().at <= limit) {
    step();
  }
  if (now_ < limit && queue_.empty()) {
    // Idle until the limit: time advances even with nothing to do, so
    // run_until composes with timeout-style callers.
    now_ = limit;
  }
  return now_;
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // Move the action out before popping so re-entrant schedules are safe.
  Entry top = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  NP_ASSERT(top.at >= now_);
  now_ = top.at;
  ++executed_;
  top.action();
  return true;
}

}  // namespace netpart::sim

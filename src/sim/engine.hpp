// Discrete-event simulation engine.
//
// A minimal, deterministic event loop: events fire in (time, insertion
// sequence) order, so two runs with the same seed produce identical
// schedules.  The engine is the substrate for the network simulator and the
// SPMD executor; it is strictly single-threaded by design (the measurement
// instrument must be reproducible).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace netpart::sim {

class Engine {
 public:
  using Action = std::function<void()>;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedule `action` to run at absolute time `at` (>= now).
  void schedule_at(SimTime at, Action action);

  /// Schedule `action` to run `delay` from now (delay >= 0).
  void schedule_after(SimTime delay, Action action);

  /// Run events until the queue drains.  Returns the time of the last
  /// event executed (== now()).
  SimTime run();

  /// Run events with time <= limit; later events stay queued.
  /// Returns now(), which is min(limit, last event time).
  SimTime run_until(SimTime limit);

  /// Execute a single event if one is pending.  Returns false when idle.
  bool step();

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  /// Total events executed since construction (used by overhead tests).
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace netpart::sim

#include "sim/faults.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace netpart::sim {

namespace {

void check_ref(const Network& net, ProcessorRef ref, const char* what) {
  NP_REQUIRE(ref.cluster >= 0 && ref.cluster < net.num_clusters(),
             std::string(what) + " names an unknown cluster");
  NP_REQUIRE(ref.index >= 0 &&
                 ref.index < net.cluster(ref.cluster).size(),
             std::string(what) + " names an unknown processor");
}

void check_segment(const Network& net, SegmentId seg, const char* what) {
  NP_REQUIRE(seg >= 0 && seg < net.num_segments(),
             std::string(what) + " names an unknown segment");
}

void check_window(SimTime from, SimTime until, const char* what) {
  NP_REQUIRE(from >= SimTime::zero() && from < until,
             std::string(what) + " window must satisfy 0 <= from < until");
}

SimTime uniform_time(Rng& rng, SimTime lo, SimTime hi) {
  if (hi <= lo) return lo;
  return SimTime::nanos(rng.next_int(lo.as_nanos(), hi.as_nanos()));
}

double uniform_factor(Rng& rng, double hi) {
  const double lo = 1.5;
  return lo + rng.next_double() * (std::max(hi, lo) - lo);
}

}  // namespace

// ------------------------------------------------------------- FaultPlan

bool FaultPlan::empty() const {
  return crashes.empty() && slowdowns.empty() && flaps.empty() &&
         degrades.empty() && churn.empty();
}

bool FaultPlan::crashed_by(ProcessorRef ref, SimTime at) const {
  for (const HostCrash& c : crashes) {
    if (c.host == ref && c.at <= at) return true;
  }
  return false;
}

double FaultPlan::slowdown_at(ProcessorRef ref, SimTime at) const {
  double factor = 1.0;
  for (const HostSlowdown& s : slowdowns) {
    if (s.host == ref && s.from <= at && at < s.until) factor *= s.factor;
  }
  return factor;
}

double FaultPlan::degradation_at(SegmentId segment, SimTime at) const {
  double factor = 1.0;
  for (const SegmentDegrade& d : degrades) {
    if (d.segment == segment && d.from <= at && at < d.until) {
      factor *= d.factor;
    }
  }
  return factor;
}

bool FaultPlan::channel_down_at(SegmentId segment, SimTime at) const {
  for (const ChannelFlap& f : flaps) {
    if (f.segment == segment && f.from <= at && at < f.until) return true;
  }
  return false;
}

bool FaultPlan::disturbs(SimTime from, SimTime until) const {
  const auto hit = [&](SimTime t) { return from < t && t <= until; };
  for (const HostCrash& c : crashes) {
    if (hit(c.at)) return true;
  }
  for (const HostSlowdown& s : slowdowns) {
    if (hit(s.from) || (s.until != SimTime::max() && hit(s.until))) {
      return true;
    }
  }
  for (const ChannelFlap& f : flaps) {
    if (hit(f.from) || hit(f.until)) return true;
  }
  for (const SegmentDegrade& d : degrades) {
    if (hit(d.from) || hit(d.until)) return true;
  }
  for (const ChurnEvent& e : churn) {
    if (hit(e.at)) return true;
  }
  return false;
}

std::vector<ChurnEvent> FaultPlan::churn_events() const {
  std::vector<ChurnEvent> events = churn;
  for (const HostCrash& c : crashes) {
    events.push_back(ChurnEvent{c.at, c.host, ChurnEvent::Kind::Revoke});
  }
  return events;
}

void FaultPlan::validate(const Network& net) const {
  for (const HostCrash& c : crashes) {
    check_ref(net, c.host, "crash");
    NP_REQUIRE(c.at >= SimTime::zero(), "crash time must be non-negative");
  }
  for (const HostSlowdown& s : slowdowns) {
    check_ref(net, s.host, "slowdown");
    check_window(s.from, s.until, "slowdown");
    NP_REQUIRE(s.factor >= 1.0, "slowdown factor must be >= 1");
  }
  for (const ChannelFlap& f : flaps) {
    check_segment(net, f.segment, "flap");
    check_window(f.from, f.until, "flap");
  }
  for (const SegmentDegrade& d : degrades) {
    check_segment(net, d.segment, "degrade");
    check_window(d.from, d.until, "degrade");
    NP_REQUIRE(d.factor >= 1.0, "degradation factor must be >= 1");
  }
  for (const ChurnEvent& e : churn) {
    check_ref(net, e.ref, "churn");
    NP_REQUIRE(e.at >= SimTime::zero(), "churn time must be non-negative");
  }
}

std::string FaultPlan::describe() const {
  std::vector<std::pair<SimTime, std::string>> lines;
  const auto add = [&](SimTime at, const std::ostringstream& os) {
    lines.emplace_back(at, os.str());
  };
  const auto until_str = [](SimTime until) {
    std::ostringstream os;
    if (until == SimTime::max()) {
      os << " until forever";
    } else {
      os << " until " << until.as_millis() << "ms";
    }
    return os.str();
  };
  for (const HostCrash& c : crashes) {
    std::ostringstream os;
    os << c.at.as_millis() << "ms crash (" << c.host.cluster << ','
       << c.host.index << ")";
    add(c.at, os);
  }
  for (const HostSlowdown& s : slowdowns) {
    std::ostringstream os;
    os << s.from.as_millis() << "ms slow (" << s.host.cluster << ','
       << s.host.index << ") x" << s.factor << until_str(s.until);
    add(s.from, os);
  }
  for (const ChannelFlap& f : flaps) {
    std::ostringstream os;
    os << f.from.as_millis() << "ms flap seg=" << f.segment
       << until_str(f.until);
    add(f.from, os);
  }
  for (const SegmentDegrade& d : degrades) {
    std::ostringstream os;
    os << d.from.as_millis() << "ms degrade seg=" << d.segment << " x"
       << d.factor << until_str(d.until);
    add(d.from, os);
  }
  for (const ChurnEvent& e : churn) {
    std::ostringstream os;
    os << e.at.as_millis() << "ms "
       << (e.kind == ChurnEvent::Kind::Revoke ? "revoke" : "restore")
       << " (" << e.ref.cluster << ',' << e.ref.index << ")";
    add(e.at, os);
  }
  std::sort(lines.begin(), lines.end());
  std::ostringstream os;
  for (const auto& [at, line] : lines) os << line << "\n";
  return os.str();
}

// -------------------------------------------------------------- ChaosRng

FaultPlan ChaosRng::make_plan(const Network& net,
                              const ChaosOptions& options) {
  FaultPlan plan;

  // Candidate pool for fail-stop faults: everything but the spared host.
  std::vector<ProcessorRef> pool;
  for (ClusterId c = 0; c < net.num_clusters(); ++c) {
    for (ProcessorIndex i = 0; i < net.cluster(c).size(); ++i) {
      const ProcessorRef ref{c, i};
      if (ref == options.spared) continue;
      pool.push_back(ref);
    }
  }
  const auto draw_from_pool = [&]() {
    const auto idx = static_cast<std::size_t>(
        rng_.next_int(0, static_cast<std::int64_t>(pool.size()) - 1));
    const ProcessorRef ref = pool[idx];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
    return ref;
  };
  const auto control_time = [&]() {
    return uniform_time(rng_, SimTime::zero(), options.control_horizon);
  };

  // Fail-stop faults: leave at least one non-spared processor untouched so
  // the partitioner always has something to choose beyond the spared host.
  const int fail_stop_budget =
      std::max(0, static_cast<int>(pool.size()) - 1);
  const int n_crashes = std::min(options.crashes, fail_stop_budget);
  for (int i = 0; i < n_crashes; ++i) {
    plan.crashes.push_back(FaultPlan::HostCrash{control_time(),
                                                draw_from_pool()});
  }
  const int n_revocations =
      std::min(options.revocations,
               std::max(0, static_cast<int>(pool.size()) - 1));
  for (int i = 0; i < n_revocations; ++i) {
    const SimTime at = control_time();
    const ProcessorRef ref = draw_from_pool();
    plan.churn.push_back(ChurnEvent{at, ref, ChurnEvent::Kind::Revoke});
    // Occasionally hand the processor back later in the control window.
    if (rng_.next_bool(0.25)) {
      plan.churn.push_back(
          ChurnEvent{uniform_time(rng_, at, options.control_horizon), ref,
                     ChurnEvent::Kind::Restore});
    }
  }

  // Performance faults may hit any host (a slow spared host is survivable).
  const auto any_host = [&]() {
    const ClusterId c = static_cast<ClusterId>(
        rng_.next_int(0, net.num_clusters() - 1));
    const ProcessorIndex i = static_cast<ProcessorIndex>(
        rng_.next_int(0, net.cluster(c).size() - 1));
    return ProcessorRef{c, i};
  };
  for (int i = 0; i < options.slowdowns; ++i) {
    FaultPlan::HostSlowdown s;
    s.host = any_host();
    s.from = uniform_time(rng_, SimTime::zero(), options.horizon);
    const SimTime dur = uniform_time(rng_, options.horizon * 0.125,
                                     options.horizon * 0.5);
    s.until = options.open_ended_slowdowns ? SimTime::max()
                                           : s.from + dur;
    s.factor = uniform_factor(rng_, options.max_slowdown);
    plan.slowdowns.push_back(s);
  }
  for (int i = 0; i < options.flaps; ++i) {
    FaultPlan::ChannelFlap f;
    f.segment = static_cast<SegmentId>(
        rng_.next_int(0, net.num_segments() - 1));
    f.from = uniform_time(rng_, SimTime::zero(), options.horizon);
    f.until = f.from + uniform_time(rng_, options.max_flap * 0.25,
                                    options.max_flap);
    plan.flaps.push_back(f);
  }
  for (int i = 0; i < options.degrades; ++i) {
    FaultPlan::SegmentDegrade d;
    d.segment = static_cast<SegmentId>(
        rng_.next_int(0, net.num_segments() - 1));
    d.from = uniform_time(rng_, SimTime::zero(), options.horizon);
    d.until = d.from + uniform_time(rng_, options.horizon * 0.125,
                                    options.horizon * 0.5);
    d.factor = uniform_factor(rng_, options.max_degrade);
    plan.degrades.push_back(d);
  }

  plan.validate(net);
  return plan;
}

// --------------------------------------------------------- FaultInjector

FaultInjector::FaultInjector(NetSim& net, const FaultPlan& plan,
                             SimTime origin)
    : net_(net), plan_(plan), origin_(origin) {
  plan_.validate(net_.network());
}

SimTime FaultInjector::local(SimTime at) const {
  const SimTime now = net_.engine().now();
  if (at <= origin_) return now;
  return now + (at - origin_);
}

void FaultInjector::arm() {
  NP_REQUIRE(!armed_, "fault injector already armed");
  armed_ = true;
  Engine& engine = net_.engine();

  // Absolute plan time of the currently-executing engine event.
  const auto abs_now = [this]() {
    return origin_ + net_.engine().now();
  };

  for (const FaultPlan::HostCrash& c : plan_.crashes) {
    engine.schedule_at(local(c.at), [this, ref = c.host] {
      Host& host = net_.host(ref);
      if (!host.alive()) return;  // two crashes on one host: first wins
      host.crash();
      net_.emit(TraceEvent{TraceEvent::Kind::HostCrashed,
                           net_.engine().now(), ref, ref});
    });
  }

  // Slowdown / degradation / flap boundaries recompute the combined state
  // from the plan, which makes overlapping windows compose exactly and
  // keeps the transitions idempotent.
  const auto host_boundary = [this, abs_now](ProcessorRef ref) {
    Host& host = net_.host(ref);
    const double factor = plan_.slowdown_at(ref, abs_now());
    if (factor == host.slowdown()) return;
    host.set_slowdown(factor);
    net_.emit(TraceEvent{factor > 1.0 ? TraceEvent::Kind::HostSlowed
                                      : TraceEvent::Kind::HostRestored,
                         net_.engine().now(), ref, ref, 0, -1, factor});
  };
  for (const FaultPlan::HostSlowdown& s : plan_.slowdowns) {
    if (s.until != SimTime::max() && s.until <= origin_) continue;
    engine.schedule_at(local(s.from),
                       [host_boundary, ref = s.host] { host_boundary(ref); });
    if (s.until != SimTime::max()) {
      engine.schedule_at(local(s.until), [host_boundary, ref = s.host] {
        host_boundary(ref);
      });
    }
  }

  const auto flap_boundary = [this, abs_now](SegmentId seg) {
    Channel& channel = net_.channel(seg);
    const bool down = plan_.channel_down_at(seg, abs_now());
    if (down == channel.down()) return;
    channel.set_down(down);
    net_.emit(TraceEvent{down ? TraceEvent::Kind::ChannelDown
                              : TraceEvent::Kind::ChannelUp,
                         net_.engine().now(), ProcessorRef{}, ProcessorRef{},
                         0, seg});
  };
  for (const FaultPlan::ChannelFlap& f : plan_.flaps) {
    if (f.until <= origin_) continue;
    engine.schedule_at(local(f.from), [flap_boundary, seg = f.segment] {
      flap_boundary(seg);
    });
    engine.schedule_at(local(f.until), [flap_boundary, seg = f.segment] {
      flap_boundary(seg);
    });
  }

  const auto degrade_boundary = [this, abs_now](SegmentId seg) {
    Channel& channel = net_.channel(seg);
    const double factor = plan_.degradation_at(seg, abs_now());
    if (factor == channel.degradation()) return;
    channel.set_degradation(factor);
    net_.emit(TraceEvent{factor > 1.0 ? TraceEvent::Kind::SegmentDegraded
                                      : TraceEvent::Kind::SegmentRestored,
                         net_.engine().now(), ProcessorRef{}, ProcessorRef{},
                         0, seg, factor});
  };
  for (const FaultPlan::SegmentDegrade& d : plan_.degrades) {
    if (d.until <= origin_) continue;
    engine.schedule_at(local(d.from), [degrade_boundary, seg = d.segment] {
      degrade_boundary(seg);
    });
    engine.schedule_at(local(d.until), [degrade_boundary, seg = d.segment] {
      degrade_boundary(seg);
    });
  }

  // Churn is control-plane only: trace it so the stream shows why the
  // availability layer changed its mind, but flip no data-plane state.
  for (const ChurnEvent& e : plan_.churn) {
    if (e.at <= origin_) continue;
    engine.schedule_at(local(e.at), [this, e] {
      net_.emit(TraceEvent{e.kind == ChurnEvent::Kind::Revoke
                               ? TraceEvent::Kind::ProcessorRevoked
                               : TraceEvent::Kind::ProcessorRestored,
                           net_.engine().now(), e.ref, e.ref});
    });
  }
}

}  // namespace netpart::sim

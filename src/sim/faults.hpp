// Deterministic fault injection.
//
// The runtime partitioner exists because workstation networks are dynamic:
// hosts come and go, other users move in, segments saturate.  This module
// makes that churn a first-class, *reproducible* simulation input.  A
// FaultPlan is a fixed schedule of failures; the FaultInjector replays it
// against a NetSim by scheduling engine events that flip host/channel fault
// state and emit fault TraceEvents through the simulator's tracer, so every
// fault is visible on the same stream as the message lifecycle.  ChaosRng
// turns a single seed into a randomised plan -- the same seed always yields
// the same plan, and a plan always yields the same event stream, which is
// what lets the chaos test tier shrink any failing run to one integer.
//
// What can fail:
//   * crash     -- a host dies at time t and never returns; traffic touching
//                  it is silently dropped (datagram semantics),
//   * slowdown  -- a host's service rate is divided by f over [from, until),
//   * flap      -- a segment drops every fragment over [from, until)
//                  (a partition the retransmission layer must ride out),
//   * degrade   -- a segment's effective bandwidth is divided by f,
//   * churn     -- a processor is revoked from / restored to the
//                  availability pool (consumed by net/availability.hpp,
//                  no data-plane effect).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/availability.hpp"
#include "net/ids.hpp"
#include "net/network.hpp"
#include "sim/netsim.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace netpart::sim {

/// A fixed, seed-independent schedule of faults.  Times are absolute
/// pipeline times: an execution phase that starts later passes its start
/// time as the injector origin and the plan applies from there.
struct FaultPlan {
  struct HostCrash {
    SimTime at;
    ProcessorRef host;
  };
  struct HostSlowdown {
    SimTime from;
    SimTime until;  ///< SimTime::max() = never recovers
    ProcessorRef host;
    double factor = 2.0;  ///< service time multiplier, >= 1
  };
  struct ChannelFlap {
    SimTime from;
    SimTime until;
    SegmentId segment = -1;
  };
  struct SegmentDegrade {
    SimTime from;
    SimTime until;
    SegmentId segment = -1;
    double factor = 2.0;  ///< occupancy multiplier, >= 1
  };

  std::vector<HostCrash> crashes;
  std::vector<HostSlowdown> slowdowns;
  std::vector<ChannelFlap> flaps;
  std::vector<SegmentDegrade> degrades;
  std::vector<ChurnEvent> churn;

  bool empty() const;

  /// True when `ref` has crashed at or before `at`.
  bool crashed_by(ProcessorRef ref, SimTime at) const;

  /// Combined service-time multiplier on `ref` at `at` (product of the
  /// active slowdown windows; 1.0 when unperturbed).
  double slowdown_at(ProcessorRef ref, SimTime at) const;

  /// Combined occupancy multiplier on `segment` at `at`.
  double degradation_at(SegmentId segment, SimTime at) const;

  /// True when any flap window covers `segment` at `at`.
  bool channel_down_at(SegmentId segment, SimTime at) const;

  /// True when any fault boundary (crash, window start or end, churn event)
  /// lands in (from, until].  The adaptive executor polls this between
  /// chunks: a disturbed window forces a repartition.
  bool disturbs(SimTime from, SimTime until) const;

  /// Churn events plus every crash re-expressed as a permanent revocation
  /// -- the stream net/availability consumes.
  std::vector<ChurnEvent> churn_events() const;

  /// Check every reference against `net`; throws InvalidArgument on bad
  /// hosts/segments, inverted windows, or factors below 1.
  void validate(const Network& net) const;

  /// Stable human/diff-friendly rendering (one fault per line, sorted by
  /// time).  Two plans are identical iff their renderings match.
  std::string describe() const;
};

/// Options for randomised plan generation.
struct ChaosOptions {
  int crashes = 1;      ///< hosts to crash (distinct, never `spared`)
  int slowdowns = 2;    ///< slow-host windows
  int flaps = 1;        ///< channel partition windows
  int degrades = 1;     ///< bandwidth degradation windows
  int revocations = 1;  ///< availability revocations (never `spared`)

  /// Crash and churn times are drawn from [0, control_horizon]: the fail-
  /// stop faults land while the control plane (availability protocol) runs,
  /// so the partitioner sees the post-fault network.
  SimTime control_horizon = SimTime::zero();
  /// Performance-fault windows start within [0, horizon).
  SimTime horizon = SimTime::seconds(2);
  /// Maximum flap duration; keep below rto * max_retransmit_rounds or the
  /// reliable layer legitimately gives up mid-run.
  SimTime max_flap = SimTime::millis(400);
  /// Slowdown / degradation factors are drawn from [1.5, max_*].
  double max_slowdown = 4.0;
  double max_degrade = 4.0;
  /// When set, slowdown windows never close (until = SimTime::max()), which
  /// gives the adaptive executor a stable post-fault optimum to converge to.
  bool open_ended_slowdowns = false;
  /// The processor that is never crashed or revoked (the protocol
  /// initiator / driver host must survive).
  ProcessorRef spared{0, 0};
};

/// Randomised-but-reproducible plan generation: one seed fully determines
/// the plan (and hence, with a seeded simulator, the entire event stream).
class ChaosRng {
 public:
  explicit ChaosRng(std::uint64_t seed) : rng_(seed) {}

  /// Draw a plan for `net`.  Consecutive calls on the same ChaosRng yield
  /// different (but still seed-determined) plans.
  FaultPlan make_plan(const Network& net, const ChaosOptions& options = {});

 private:
  Rng rng_;
};

/// Replays a FaultPlan against one NetSim: schedules engine events at each
/// fault boundary that flip the corresponding Host/Channel fault state and
/// emit the fault TraceEvents.  Faults at or before `origin` are applied
/// immediately on arm(); later faults fire at engine time (t - origin).
/// The plan and the simulator must outlive the armed events.
class FaultInjector {
 public:
  FaultInjector(NetSim& net, const FaultPlan& plan,
                SimTime origin = SimTime::zero());

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedule the plan.  Idempotent per injector (second call is an error).
  void arm();

  const FaultPlan& plan() const { return plan_; }

 private:
  /// Engine time for absolute plan time `at` (clamped to now for the past).
  SimTime local(SimTime at) const;

  NetSim& net_;
  const FaultPlan& plan_;
  SimTime origin_;
  bool armed_ = false;
};

}  // namespace netpart::sim

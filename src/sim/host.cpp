#include "sim/host.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace netpart::sim {

SimTime Host::reserve(SimTime ready_at, SimTime duration) {
  NP_REQUIRE(duration >= SimTime::zero(), "duration must be non-negative");
  if (slowdown_ != 1.0) duration = duration * slowdown_;
  const SimTime start = std::max(ready_at, busy_until_);
  busy_until_ = start + duration;
  total_busy_ += duration;
  return busy_until_;
}

void Host::set_slowdown(double factor) {
  NP_REQUIRE(factor >= 1.0, "slowdown factor must be >= 1");
  slowdown_ = factor;
}

}  // namespace netpart::sim

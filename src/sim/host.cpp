#include "sim/host.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace netpart::sim {

SimTime Host::reserve(SimTime ready_at, SimTime duration) {
  NP_REQUIRE(duration >= SimTime::zero(), "duration must be non-negative");
  const SimTime start = std::max(ready_at, busy_until_);
  busy_until_ = start + duration;
  total_busy_ += duration;
  return busy_until_;
}

}  // namespace netpart::sim

// Host CPU resource.
//
// Each workstation serialises its own activities (compute phases, message
// initiation, receive processing, coercion).  Like Channel, a Host is a
// busy-until resource; the executor and the network simulator reserve time
// on it and schedule engine events at the reservation ends.
#pragma once

#include "util/time.hpp"

namespace netpart::sim {

class Host {
 public:
  /// Reserve the CPU for `duration` starting no earlier than `ready_at`.
  /// Returns the completion time.
  SimTime reserve(SimTime ready_at, SimTime duration);

  /// Time at which the CPU is next free.
  SimTime busy_until() const { return busy_until_; }

  /// Total CPU time consumed (utilisation accounting).
  SimTime total_busy() const { return total_busy_; }

 private:
  SimTime busy_until_ = SimTime::zero();
  SimTime total_busy_ = SimTime::zero();
};

}  // namespace netpart::sim

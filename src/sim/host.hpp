// Host CPU resource.
//
// Each workstation serialises its own activities (compute phases, message
// initiation, receive processing, coercion).  Like Channel, a Host is a
// busy-until resource; the executor and the network simulator reserve time
// on it and schedule engine events at the reservation ends.
#pragma once

#include "util/time.hpp"

namespace netpart::sim {

class Host {
 public:
  /// Reserve the CPU for `duration` starting no earlier than `ready_at`.
  /// The nominal duration is stretched by the current slowdown factor.
  /// Returns the completion time.
  SimTime reserve(SimTime ready_at, SimTime duration);

  /// Time at which the CPU is next free.
  SimTime busy_until() const { return busy_until_; }

  /// Total CPU time consumed (utilisation accounting).
  SimTime total_busy() const { return total_busy_; }

  /// Fault state: a crashed host neither sends nor receives; the network
  /// simulator silently drops traffic touching it (the datagram semantics
  /// the MMPS timeout path exists to absorb).
  bool alive() const { return alive_; }
  void crash() { alive_ = false; }

  /// Service-rate degradation (>= 1): reservations take `factor` times the
  /// nominal duration.  Set by the fault injector for slow-host windows.
  double slowdown() const { return slowdown_; }
  void set_slowdown(double factor);

 private:
  SimTime busy_until_ = SimTime::zero();
  SimTime total_busy_ = SimTime::zero();
  bool alive_ = true;
  double slowdown_ = 1.0;
};

}  // namespace netpart::sim

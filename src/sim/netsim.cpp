#include "sim/netsim.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace netpart::sim {

NetSim::NetSim(Engine& engine, const Network& network, NetSimParams params,
               Rng rng)
    : engine_(engine), network_(network), params_(params), rng_(rng) {
  NP_REQUIRE(params_.loss_rate >= 0.0 && params_.loss_rate < 1.0,
             "loss rate must be in [0, 1)");
  NP_REQUIRE(params_.mtu > 0, "mtu must be positive");
  channels_.reserve(static_cast<std::size_t>(network_.num_segments()));
  for (const Segment& seg : network_.segments()) {
    channels_.emplace_back(seg.bandwidth_bps, seg.frame_overhead);
  }
  host_base_.reserve(static_cast<std::size_t>(network_.num_clusters()));
  std::size_t base = 0;
  for (const Cluster& c : network_.clusters()) {
    host_base_.push_back(base);
    base += static_cast<std::size_t>(c.size());
  }
  hosts_.resize(base);
}

std::size_t NetSim::host_slot(ProcessorRef ref) const {
  NP_REQUIRE(ref.cluster >= 0 && ref.cluster < network_.num_clusters(),
             "bad cluster in processor ref");
  const Cluster& c = network_.cluster(ref.cluster);
  NP_REQUIRE(ref.index >= 0 && ref.index < c.size(),
             "bad index in processor ref");
  return host_base_[static_cast<std::size_t>(ref.cluster)] +
         static_cast<std::size_t>(ref.index);
}

Host& NetSim::host(ProcessorRef ref) { return hosts_[host_slot(ref)]; }

const Host& NetSim::host(ProcessorRef ref) const {
  return hosts_[host_slot(ref)];
}

Channel& NetSim::channel(SegmentId id) {
  NP_REQUIRE(id >= 0 && id < network_.num_segments(),
             "segment id out of range");
  return channels_[static_cast<std::size_t>(id)];
}

std::int64_t NetSim::fragments(std::int64_t bytes) const {
  NP_REQUIRE(bytes >= 0, "bytes must be non-negative");
  if (bytes == 0) return 1;
  return (bytes + params_.mtu - 1) / params_.mtu;
}

SimTime NetSim::message_occupancy(const ProcessorType& sender_type,
                                  const Segment& segment,
                                  std::int64_t bytes) const {
  const SimTime wire = SimTime::nanos(
      static_cast<std::int64_t>(8.0 * 1e9 / segment.bandwidth_bps + 0.5));
  return sender_type.comm_per_message +
         segment.frame_overhead * fragments(bytes) +
         (wire + sender_type.comm_per_byte) * bytes;
}

void NetSim::send(ProcessorRef src, ProcessorRef dst, std::int64_t bytes,
                  DeliveryCallback on_delivered) {
  NP_REQUIRE(bytes >= 0, "bytes must be non-negative");
  NP_REQUIRE(on_delivered != nullptr, "delivery callback required");

  // Sender host pays the asynchronous-send initiation cost.
  Host& sender = host(src);
  if (!sender.alive()) {
    // A crashed sender initiates nothing; the message silently vanishes
    // (datagram semantics -- nobody is told).
    Transit ghost;
    ghost.src = src;
    ghost.dst = dst;
    ghost.bytes = bytes;
    drop(ghost);
    return;
  }
  const SimTime ready =
      sender.reserve(engine_.now(), params_.send_initiation);

  const Cluster& src_cluster = network_.cluster(src.cluster);
  const Cluster& dst_cluster = network_.cluster(dst.cluster);

  auto transit = std::make_shared<Transit>();
  transit->src = src;
  transit->dst = dst;
  transit->bytes = bytes;
  transit->on_delivered = std::move(on_delivered);
  if (network_.needs_coercion(src.cluster, dst.cluster)) {
    transit->coerce_cost = dst_cluster.type().coerce_per_byte * bytes;
  }

  // Local (same-host) messages skip the wire entirely.
  if (!(src == dst)) {
    Leg first;
    first.channel = &channel(src_cluster.segment());
    first.fixed = src_cluster.type().comm_per_message;
    first.per_byte =
        first.channel->byte_time() + src_cluster.type().comm_per_byte;
    if (src_cluster.segment() != dst_cluster.segment()) {
      const auto link = network_.router_between(src.cluster, dst.cluster);
      NP_ASSERT(link.has_value());
      first.post_delay = link->delay_per_packet * fragments(bytes) +
                         link->delay_per_byte * bytes;
      transit->legs.push_back(first);

      // The router contends as one additional station on the destination
      // segment, pacing at that cluster's interface speed.
      Leg second;
      second.channel = &channel(dst_cluster.segment());
      second.fixed = dst_cluster.type().comm_per_message;
      second.per_byte =
          second.channel->byte_time() + dst_cluster.type().comm_per_byte;
      transit->legs.push_back(second);
    } else {
      transit->legs.push_back(first);
    }
  }

  trace(TraceEvent::Kind::SendInitiated, *transit, ready);
  engine_.schedule_at(ready,
                      [this, transit]() mutable { run_leg(transit); });
}

void NetSim::trace(TraceEvent::Kind kind, const Transit& t, SimTime at) {
  if (!tracer_) return;
  tracer_(TraceEvent{kind, at, t.src, t.dst, t.bytes});
}

void NetSim::drop(const Transit& t) {
  ++dropped_;
  trace(TraceEvent::Kind::MessageDropped, t, engine_.now());
}

void NetSim::run_leg(std::shared_ptr<Transit> t) {
  if (t->next_leg >= t->legs.size()) {
    finish_delivery(t);
    return;
  }
  const std::int64_t frags = fragments(t->bytes);
  attempt(std::move(t), frags, /*first=*/true, /*round=*/0);
}

void NetSim::attempt(std::shared_ptr<Transit> t, std::int64_t frags,
                     bool first, int round) {
  NP_ASSERT(round <= params_.max_retransmit_rounds);
  const std::int64_t attempt_bytes =
      first ? t->bytes : std::min(t->bytes, frags * params_.mtu);
  next_fragment(std::move(t), frags, attempt_bytes, /*lost=*/0, first,
                round);
}

void NetSim::next_fragment(std::shared_ptr<Transit> t,
                           std::int64_t frags_left, std::int64_t bytes_left,
                           std::int64_t lost, bool first, int round) {
  const Leg& leg = t->legs[t->next_leg];

  if (frags_left == 0) {
    if (lost == 0) {
      const SimTime done = engine_.now() + leg.post_delay;
      trace(TraceEvent::Kind::LegCompleted, *t, done);
      engine_.schedule_at(done, [this, t = std::move(t)]() mutable {
        ++t->next_leg;
        run_leg(std::move(t));
      });
      return;
    }
    if (round >= params_.max_retransmit_rounds &&
        params_.give_up_after_max_rounds) {
      drop(*t);
      return;
    }
    NP_ASSERT(round < params_.max_retransmit_rounds);
    retransmissions_ += static_cast<std::uint64_t>(lost);
    engine_.schedule_after(params_.rto, [this, t = std::move(t), lost,
                                         round] {
      attempt(t, lost, /*first=*/false, round + 1);
    });
    return;
  }

  const std::int64_t frag_bytes = std::min(bytes_left, params_.mtu);
  // The per-message fixed cost rides on the first fragment of the first
  // attempt; retransmitted fragments pay only the (small) resend cost.
  const bool lead = first && frags_left == fragments(t->bytes);
  const SimTime occupancy =
      (lead ? leg.fixed : (first ? SimTime::zero() : params_.send_initiation)) +
      leg.channel->frame_overhead() + leg.per_byte * frag_bytes;
  const ChannelGrant grant = leg.channel->reserve(engine_.now(), occupancy);
  // Draw the Bernoulli loss unconditionally so the loss pattern of the
  // surviving traffic is independent of when channels flap.
  const bool bernoulli_drop = rng_.next_bool(params_.loss_rate);
  const bool dropped = bernoulli_drop || leg.channel->down();
  if (dropped) {
    trace(TraceEvent::Kind::FragmentLost, *t, grant.end);
  }
  engine_.schedule_at(
      grant.end, [this, t = std::move(t), frags_left, bytes_left, frag_bytes,
                  lost, dropped, first, round]() mutable {
        next_fragment(std::move(t), frags_left - 1, bytes_left - frag_bytes,
                      lost + (dropped ? 1 : 0), first, round);
      });
}

void NetSim::finish_delivery(const std::shared_ptr<Transit>& t) {
  Host& receiver = host(t->dst);
  if (!receiver.alive()) {
    // The payload reached a dead host: nobody processes it, the delivery
    // callback never fires.  The MMPS timeout path reports the peer.
    drop(*t);
    return;
  }
  const SimTime done = receiver.reserve(
      engine_.now(), params_.recv_processing + t->coerce_cost);
  trace(TraceEvent::Kind::Delivered, *t, done);
  engine_.schedule_at(done, [this, t] {
    ++delivered_;
    t->on_delivered();
  });
}

}  // namespace netpart::sim

// Message-level network simulator.
//
// NetSim realises the delivery path of one message on the modelled network:
//
//   sender host (initiation) -> source segment channel -> [router ->
//   destination segment channel] -> receiver host (+ coercion) -> delivery
//
// The channel occupancy of a message sent by a processor of type T is
//
//   T.comm_per_message + nfrags * frame_overhead + bytes * (wire + T.comm_per_byte)
//
// i.e. the host paces the wire (1994 UDP stacks were host-limited), which is
// what makes communication "faster on a cluster of Sun4's than Sun3's" and
// gives the per-cluster cost functions of Eq. 1.  A router hop adds the
// paper's per-byte internal delay and makes the router contend as one
// additional station on each segment it touches.
//
// Datagram loss is Bernoulli per fragment; lost fragments are retransmitted
// after an RTO, which is how the MMPS layer above provides reliability.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/ids.hpp"
#include "net/network.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/host.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace netpart::sim {

struct NetSimParams {
  /// Probability that a fragment is lost on a channel hop.
  double loss_rate = 0.0;
  /// Retransmission timeout applied by the reliable layer.
  SimTime rto = SimTime::millis(50);
  /// Datagram payload limit (ethernet MTU minus UDP/IP headers).
  std::int64_t mtu = 1472;
  /// Host cost to initiate an asynchronous send (system call).
  SimTime send_initiation = SimTime::micros(30);
  /// Host cost to accept a delivered message.
  SimTime recv_processing = SimTime::micros(50);
  /// Cap on retransmission rounds before the simulator reports a bug (the
  /// reliable layer never gives up; this guards against loss_rate ~ 1).
  int max_retransmit_rounds = 64;
  /// When true, a message that exhausts max_retransmit_rounds is dropped
  /// (traced as MessageDropped) instead of tripping an assertion.  Enable
  /// under fault injection, where a long channel partition legitimately
  /// defeats the retransmission layer.
  bool give_up_after_max_rounds = false;
};

/// Delivery notification: fires when the receiving host has fully processed
/// the message (after coercion, if any).
using DeliveryCallback = std::function<void()>;

class NetSim {
 public:
  NetSim(Engine& engine, const Network& network, NetSimParams params,
         Rng rng);

  NetSim(const NetSim&) = delete;
  NetSim& operator=(const NetSim&) = delete;

  /// Initiate a message from `src` to `dst` at engine.now().  The sender
  /// host is reserved for the initiation cost; the callback fires at the
  /// delivery-complete time.  Messages between a pair of hosts are
  /// delivered in initiation order (FIFO channels).
  void send(ProcessorRef src, ProcessorRef dst, std::int64_t bytes,
            DeliveryCallback on_delivered);

  Host& host(ProcessorRef ref);
  const Host& host(ProcessorRef ref) const;
  Channel& channel(SegmentId id);

  const Network& network() const { return network_; }
  Engine& engine() { return engine_; }
  const NetSimParams& params() const { return params_; }

  /// Channel occupancy of a `bytes`-byte message paced by a host of the
  /// given type (exposed for tests and the analytical cost model).
  SimTime message_occupancy(const ProcessorType& sender_type,
                            const Segment& segment,
                            std::int64_t bytes) const;

  std::int64_t fragments(std::int64_t bytes) const;

  /// Number of messages fully delivered so far.
  std::uint64_t messages_delivered() const { return delivered_; }
  /// Number of fragment retransmissions performed so far.
  std::uint64_t retransmissions() const { return retransmissions_; }
  /// Number of messages abandoned (dead host, retransmit cap).
  std::uint64_t messages_dropped() const { return dropped_; }

  /// Install a message-lifecycle observer (see sim/trace.hpp); pass
  /// nullptr to disable.  The tracer must outlive the simulator.
  void set_tracer(Tracer tracer) { tracer_ = std::move(tracer); }

  /// Emit an event through the installed tracer (no-op without one).  The
  /// fault injector uses this to put fault transitions on the same stream
  /// as the message lifecycle.
  void emit(const TraceEvent& event) {
    if (tracer_) tracer_(event);
  }

 private:
  /// One channel hop of a message's path.
  struct Leg {
    Channel* channel = nullptr;
    SimTime fixed;       ///< per-message occupancy (first attempt only)
    SimTime per_byte;    ///< wire + sender-side pacing
    SimTime post_delay;  ///< router internal delay after this leg
  };

  /// In-flight message state shared by the chained engine events.
  struct Transit {
    std::vector<Leg> legs;
    std::size_t next_leg = 0;
    ProcessorRef src;
    ProcessorRef dst;
    std::int64_t bytes = 0;
    SimTime coerce_cost;
    DeliveryCallback on_delivered;
  };

  /// Start (or continue to) the leg at t->next_leg; called at the time the
  /// message is ready to enter that channel.
  void run_leg(std::shared_ptr<Transit> t);

  /// One transmission attempt of `frags` fragments on the current leg.
  /// Fragments reserve the channel one at a time, so concurrent messages
  /// interleave at datagram granularity -- the packet-level fairness of a
  /// shared ethernet.  Fragments lost in this attempt are retransmitted in
  /// a follow-up attempt after the RTO.
  void attempt(std::shared_ptr<Transit> t, std::int64_t frags, bool first,
               int round);

  /// Transmit the next fragment of the current attempt.
  void next_fragment(std::shared_ptr<Transit> t, std::int64_t frags_left,
                     std::int64_t bytes_left, std::int64_t lost, bool first,
                     int round);

  /// All legs done: receiver host processing, then the delivery callback.
  void finish_delivery(const std::shared_ptr<Transit>& t);

  std::size_t host_slot(ProcessorRef ref) const;

  Engine& engine_;
  const Network& network_;
  NetSimParams params_;
  Rng rng_;
  std::vector<Channel> channels_;        // by SegmentId
  std::vector<Host> hosts_;              // dense, cluster-major
  std::vector<std::size_t> host_base_;   // cluster -> first host slot
  std::uint64_t delivered_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t dropped_ = 0;
  Tracer tracer_;

  void trace(TraceEvent::Kind kind, const Transit& t, SimTime at);
  void drop(const Transit& t);
};

}  // namespace netpart::sim

#include "sim/trace.hpp"

#include <deque>
#include <map>
#include <sstream>

#include "util/error.hpp"

namespace netpart::sim {

const char* TraceEvent::kind_name(Kind kind) {
  switch (kind) {
    case Kind::SendInitiated:
      return "send";
    case Kind::LegCompleted:
      return "leg";
    case Kind::FragmentLost:
      return "lost";
    case Kind::Delivered:
      return "delivered";
    case Kind::MessageDropped:
      return "dropped";
    case Kind::HostCrashed:
      return "host-crash";
    case Kind::HostSlowed:
      return "host-slow";
    case Kind::HostRestored:
      return "host-restore";
    case Kind::ChannelDown:
      return "chan-down";
    case Kind::ChannelUp:
      return "chan-up";
    case Kind::SegmentDegraded:
      return "seg-degrade";
    case Kind::SegmentRestored:
      return "seg-restore";
    case Kind::ProcessorRevoked:
      return "proc-revoke";
    case Kind::ProcessorRestored:
      return "proc-restore";
  }
  return "?";
}

Tracer TraceLog::tracer() {
  return [this](const TraceEvent& event) {
    if (capacity_ > 0 && events_.size() >= capacity_) {
      events_.pop_front();
      ++dropped_;
    }
    events_.push_back(event);
  };
}

std::size_t TraceLog::count(TraceEvent::Kind kind) const {
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::int64_t TraceLog::bytes_delivered() const {
  std::int64_t total = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == TraceEvent::Kind::Delivered) total += e.bytes;
  }
  return total;
}

SimTime TraceLog::mean_latency() const {
  // Match SendInitiated with Delivered per (src, dst) pair in FIFO order
  // (the simulator's channels are FIFO per pair).
  using Pair = std::pair<std::pair<int, int>, std::pair<int, int>>;
  std::map<Pair, std::deque<SimTime>> starts;
  std::int64_t total_ns = 0;
  std::int64_t matched = 0;
  for (const TraceEvent& e : events_) {
    const Pair key{{e.src.cluster, e.src.index},
                   {e.dst.cluster, e.dst.index}};
    if (e.kind == TraceEvent::Kind::SendInitiated) {
      starts[key].push_back(e.at);
    } else if (e.kind == TraceEvent::Kind::Delivered) {
      auto& queue = starts[key];
      // A bounded log may have dropped the initiation; skip the orphan.
      if (queue.empty()) continue;
      total_ns += (e.at - queue.front()).as_nanos();
      queue.pop_front();
      ++matched;
    }
  }
  if (matched == 0) return SimTime::zero();
  return SimTime::nanos(total_ns / matched);
}

std::string TraceLog::render(std::size_t limit) const {
  std::ostringstream os;
  std::size_t shown = 0;
  for (const TraceEvent& e : events_) {
    if (shown++ == limit) {
      os << "... (" << events_.size() - limit << " more)\n";
      break;
    }
    os << e.at.as_millis() << "ms " << TraceEvent::kind_name(e.kind) << " ("
       << e.src.cluster << ',' << e.src.index << ")->(" << e.dst.cluster
       << ',' << e.dst.index << ") " << e.bytes << "B";
    if (e.segment >= 0) os << " seg=" << e.segment;
    if (e.factor != 0.0) os << " x" << e.factor;
    os << "\n";
  }
  return os.str();
}

}  // namespace netpart::sim

// Message-lifecycle tracing.
//
// The simulator can emit an event stream describing every message's path
// (initiation, per-channel-leg completion, retransmissions, delivery).
// TraceLog collects the stream and renders summaries; tests use it to
// verify the simulator's behaviour from the outside, and users debug
// placement/contention problems with it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "net/ids.hpp"
#include "util/time.hpp"

namespace netpart::sim {

struct TraceEvent {
  enum class Kind {
    SendInitiated,   ///< sender host accepted the message
    LegCompleted,    ///< finished one channel hop
    FragmentLost,    ///< a datagram was dropped (will retransmit)
    Delivered,       ///< receiver host finished processing
    MessageDropped,  ///< message abandoned (dead host or retransmit cap)
    // Fault-injection events (see sim/faults.hpp).  Host faults name the
    // affected processor in `src`; channel faults set `segment`; the rate
    // faults carry their multiplier in `factor`.
    HostCrashed,        ///< host failed permanently
    HostSlowed,         ///< host service-rate degradation began
    HostRestored,       ///< host service rate back to nominal
    ChannelDown,        ///< segment partitioned (drops every fragment)
    ChannelUp,          ///< segment reachable again
    SegmentDegraded,    ///< segment bandwidth divided by `factor`
    SegmentRestored,    ///< segment bandwidth back to nominal
    ProcessorRevoked,   ///< availability churn: processor withdrawn
    ProcessorRestored,  ///< availability churn: processor offered again
  };
  Kind kind;
  SimTime at;
  ProcessorRef src;
  ProcessorRef dst;
  std::int64_t bytes = 0;
  SegmentId segment = -1;  ///< for channel/segment fault events
  double factor = 0.0;     ///< for slowdown/degradation fault events

  static const char* kind_name(Kind kind);
};

/// Observer callback; installed on a NetSim via set_tracer().
using Tracer = std::function<void(const TraceEvent&)>;

/// A collecting tracer with summary queries.
///
/// By default the log grows without bound -- fine for tests, ruinous for
/// long chaos runs.  Constructing with a capacity turns it into a ring
/// buffer: once full, the oldest event is discarded per new arrival and
/// `dropped_events()` counts the loss (exported as the
/// `sim.trace_dropped_events` counter by the obs bridge).
class TraceLog {
 public:
  /// capacity = 0 keeps every event; capacity > 0 retains only the most
  /// recent `capacity` events.
  explicit TraceLog(std::size_t capacity = 0) : capacity_(capacity) {}

  /// The callback to install: log.tracer() keeps a reference to the log.
  Tracer tracer();

  const std::deque<TraceEvent>& events() const { return events_; }
  std::size_t count(TraceEvent::Kind kind) const;

  /// Events discarded because the ring was full (0 when unbounded).
  std::uint64_t dropped_events() const { return dropped_; }

  /// Total payload bytes delivered.
  std::int64_t bytes_delivered() const;

  /// Mean latency from initiation to delivery, over completed messages
  /// matched by (src, dst) in FIFO order.  Deliveries whose initiation was
  /// dropped from the ring are skipped.
  SimTime mean_latency() const;

  /// Render the first `limit` events, one per line.
  std::string render(std::size_t limit = 50) const;

  void clear() {
    events_.clear();
    dropped_ = 0;
  }

 private:
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  std::deque<TraceEvent> events_;
};

}  // namespace netpart::sim

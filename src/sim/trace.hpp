// Message-lifecycle tracing.
//
// The simulator can emit an event stream describing every message's path
// (initiation, per-channel-leg completion, retransmissions, delivery).
// TraceLog collects the stream and renders summaries; tests use it to
// verify the simulator's behaviour from the outside, and users debug
// placement/contention problems with it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/ids.hpp"
#include "util/time.hpp"

namespace netpart::sim {

struct TraceEvent {
  enum class Kind {
    SendInitiated,   ///< sender host accepted the message
    LegCompleted,    ///< finished one channel hop
    FragmentLost,    ///< a datagram was dropped (will retransmit)
    Delivered,       ///< receiver host finished processing
  };
  Kind kind;
  SimTime at;
  ProcessorRef src;
  ProcessorRef dst;
  std::int64_t bytes = 0;

  static const char* kind_name(Kind kind);
};

/// Observer callback; installed on a NetSim via set_tracer().
using Tracer = std::function<void(const TraceEvent&)>;

/// A collecting tracer with summary queries.
class TraceLog {
 public:
  /// The callback to install: log.tracer() keeps a reference to the log.
  Tracer tracer();

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t count(TraceEvent::Kind kind) const;

  /// Total payload bytes delivered.
  std::int64_t bytes_delivered() const;

  /// Mean latency from initiation to delivery, over completed messages
  /// matched by (src, dst) in FIFO order.
  SimTime mean_latency() const;

  /// Render the first `limit` events, one per line.
  std::string render(std::size_t limit = 50) const;

  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace netpart::sim

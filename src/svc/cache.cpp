#include "svc/cache.hpp"

#include <algorithm>

#include "analysis/race/annotations.hpp"
#include "util/error.hpp"

namespace netpart::svc {

DecisionCache::DecisionCache(std::size_t capacity, int shards) {
  NP_REQUIRE(capacity >= 1, "cache capacity must be positive");
  NP_REQUIRE(shards >= 1, "cache needs at least one shard");
  const auto n = std::min<std::size_t>(static_cast<std::size_t>(shards),
                                       capacity);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    // npracer contract: everything behind a shard -- the LRU list, the
    // key index, and the counters -- moves only under that shard's mutex.
    [[maybe_unused]] Shard& shard = *shards_.back();
    NP_GUARDED_BY(&shard.lru, &shard.mutex, "svc.cache.shard.lru");
    NP_GUARDED_BY(&shard.stats, &shard.mutex, "svc.cache.shard.stats");
  }
  shard_capacity_ = (capacity + n - 1) / n;  // ceil: never below 1
}

DecisionCache::Shard& DecisionCache::shard_for(std::uint64_t key) const {
  // FNV output is well mixed; fold the high half in anyway so shard count
  // choices that divide 2^32 still spread.
  return *shards_[(key ^ (key >> 32)) % shards_.size()];
}

std::shared_ptr<const PartitionDecision> DecisionCache::lookup(
    std::uint64_t key) {
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  NP_LOCK_SCOPE(&shard.mutex, "svc.cache.shard.mutex");
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    NP_WRITE(&shard.stats, "svc.cache.shard.stats");
    ++shard.stats.misses;
    return nullptr;
  }
  NP_WRITE(&shard.lru, "svc.cache.shard.lru");
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  NP_WRITE(&shard.stats, "svc.cache.shard.stats");
  ++shard.stats.hits;
  return it->second->decision;
}

std::shared_ptr<const PartitionDecision> DecisionCache::peek(
    std::uint64_t key) const {
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  NP_LOCK_SCOPE(&shard.mutex, "svc.cache.shard.mutex");
  NP_READ(&shard.lru, "svc.cache.shard.lru");
  const auto it = shard.index.find(key);
  return it == shard.index.end() ? nullptr : it->second->decision;
}

void DecisionCache::insert(
    std::shared_ptr<const PartitionDecision> decision) {
  NP_ASSERT(decision != nullptr);
  const std::uint64_t key = decision->key;
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  NP_LOCK_SCOPE(&shard.mutex, "svc.cache.shard.mutex");
  NP_WRITE(&shard.lru, "svc.cache.shard.lru");
  if (const auto it = shard.index.find(key); it != shard.index.end()) {
    it->second->decision = std::move(decision);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(decision)});
  shard.index[key] = shard.lru.begin();
  if (shard.index.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    NP_WRITE(&shard.stats, "svc.cache.shard.stats");
    ++shard.stats.evictions;
  }
}

std::size_t DecisionCache::invalidate_before(std::uint64_t epoch) {
  std::size_t purged = 0;
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    NP_LOCK_SCOPE(&shard->mutex, "svc.cache.shard.mutex");
    NP_WRITE(&shard->lru, "svc.cache.shard.lru");
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->decision->epoch < epoch) {
        shard->index.erase(it->key);
        it = shard->lru.erase(it);
        NP_WRITE(&shard->stats, "svc.cache.shard.stats");
        ++shard->stats.invalidated;
        ++purged;
      } else {
        ++it;
      }
    }
  }
  return purged;
}

std::size_t DecisionCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    NP_LOCK_SCOPE(&shard->mutex, "svc.cache.shard.mutex");
    NP_READ(&shard->lru, "svc.cache.shard.lru");
    total += shard->index.size();
  }
  return total;
}

std::vector<DecisionCache::ShardSnapshot> DecisionCache::shard_stats() const {
  std::vector<ShardSnapshot> snapshots;
  snapshots.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    NP_LOCK_SCOPE(&shard->mutex, "svc.cache.shard.mutex");
    NP_READ(&shard->lru, "svc.cache.shard.lru");
    NP_READ(&shard->stats, "svc.cache.shard.stats");
    snapshots.push_back(ShardSnapshot{shard->index.size(), shard->stats});
  }
  return snapshots;
}

DecisionCache::Stats DecisionCache::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    NP_LOCK_SCOPE(&shard->mutex, "svc.cache.shard.mutex");
    NP_READ(&shard->stats, "svc.cache.shard.stats");
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.evictions += shard->stats.evictions;
    total.invalidated += shard->stats.invalidated;
  }
  return total;
}

}  // namespace netpart::svc

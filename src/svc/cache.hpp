// Sharded LRU cache of partition decisions.
//
// The service's hot path is a lookup; a global lock would serialise every
// worker and client thread on it.  The key space is already well mixed
// (FNV-1a), so keys map to shards by simple modulo and each shard carries
// its own mutex, LRU list, and counters.  Capacity is divided evenly
// across shards (an approximation of global LRU that never takes more
// than one lock per operation).
//
// Invalidation: the availability epoch is folded into every key, so stale
// entries can never be *hit* -- invalidate_before() exists to reclaim
// their memory the moment the service observes a bump, and to make
// staleness visible in the stats.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/partitioner.hpp"
#include "dp/partition_vector.hpp"
#include "topo/placement.hpp"

namespace netpart::svc {

/// The cached answer to one PartitionRequest.
struct PartitionDecision {
  std::uint64_t key = 0;    ///< the cache key this decision answers
  std::uint64_t epoch = 0;  ///< availability epoch it was computed under
  /// Always set by the cold path: the PDU assignment (Eq. 3 / the
  /// heuristic's choice).  PartitionVector has no empty state, so the
  /// default is a single zero-PDU placeholder rank.
  PartitionVector partition = PartitionVector(std::vector<std::int64_t>{0});
  /// Partition-kind decisions also carry the chosen configuration, its
  /// placement, and the estimator's objective; empty/zero for Repartition.
  ProcessorConfig config;
  Placement placement;
  double t_c_ms = 0.0;
  std::uint64_t evaluations = 0;
};

class DecisionCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;    ///< capacity evictions (LRU tail)
    std::uint64_t invalidated = 0;  ///< entries purged by epoch bumps
  };

  /// `capacity` entries total, spread over `shards` independent shards.
  DecisionCache(std::size_t capacity, int shards);

  /// nullptr on miss; refreshes recency on hit.
  std::shared_ptr<const PartitionDecision> lookup(std::uint64_t key);

  /// Stats-neutral lookup: no hit/miss counting, no recency refresh.  The
  /// service's double-checked admission uses this to close the race between
  /// a lock-free miss and a concurrent worker completing the same key.
  std::shared_ptr<const PartitionDecision> peek(std::uint64_t key) const;

  /// Insert (or refresh) decision->key.  Evicts the shard's LRU tail when
  /// the shard is full.
  void insert(std::shared_ptr<const PartitionDecision> decision);

  /// Drop every entry computed under an epoch < `epoch`; returns how many.
  std::size_t invalidate_before(std::uint64_t epoch);

  std::size_t size() const;
  Stats stats() const;

  /// One shard's live occupancy and counters (index = shard number).
  struct ShardSnapshot {
    std::size_t size = 0;
    Stats stats;
  };

  /// Per-shard snapshots, in shard order.  Exposes skew that the summed
  /// stats() hides: a pathological key family landing on one shard shows
  /// up as one outsized size/eviction row here.
  std::vector<ShardSnapshot> shard_stats() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Per-shard entry budget (capacity / shards, rounded up).
  std::size_t shard_capacity() const { return shard_capacity_; }

 private:
  struct Entry {
    std::uint64_t key;
    std::shared_ptr<const PartitionDecision> decision;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    Stats stats;
  };

  Shard& shard_for(std::uint64_t key) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_capacity_;
};

}  // namespace netpart::svc
